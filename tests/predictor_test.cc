#include <gtest/gtest.h>

#include <algorithm>

#include "src/machine_desc/generator.h"
#include "src/predictor/optimizer.h"
#include "src/predictor/predictor.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/topology/enumerate.h"

namespace pandia {
namespace {

const MachineDescription& X3Desc() {
  static const MachineDescription desc = [] {
    const sim::Machine machine{sim::MakeX3_2()};
    return GenerateMachineDescription(machine);
  }();
  return desc;
}

WorkloadDescription SomeWorkload() {
  WorkloadDescription desc;
  desc.workload = "synthetic";
  desc.machine = "x3-2";
  desc.t1 = 100.0;
  desc.demands.instr_rate = 4.0;
  desc.demands.l1_bw = 40.0;
  desc.demands.l2_bw = 10.0;
  desc.demands.l3_bw = 6.0;
  desc.demands.dram_local_bw = 8.0;
  desc.memory_policy = MemoryPolicy::kInterleaveActive;
  desc.parallel_fraction = 0.99;
  desc.inter_socket_overhead = 0.01;
  desc.load_balance = 0.5;
  desc.burstiness = 0.3;
  return desc;
}

TEST(Predictor, SingleThreadHasNoSlowdown) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const Prediction p = predictor.Predict(Placement::OnePerCore(X3Desc().topo, 1));
  EXPECT_NEAR(p.speedup, 1.0, 1e-6);
  EXPECT_NEAR(p.time, 100.0, 1e-4);
}

TEST(Predictor, SpeedupNeverExceedsAmdahl) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  for (const Placement& placement : EnumerateCanonicalPlacements(X3Desc().topo)) {
    const Prediction p = predictor.Predict(placement);
    EXPECT_LE(p.speedup, p.amdahl_speedup * (1.0 + 1e-9)) << placement.ToString();
  }
}

TEST(Predictor, SlowdownsAtLeastOne) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const Prediction p =
      predictor.Predict(Placement::TwoPerCore(X3Desc().topo, 20));
  for (const ThreadPrediction& thread : p.threads) {
    EXPECT_GE(thread.overall_slowdown, 1.0 - 1e-9);
    EXPECT_GE(thread.resource_slowdown, 1.0 - 1e-9);
    EXPECT_GE(thread.comm_penalty, 0.0);
    EXPECT_GE(thread.balance_penalty, -1e-9);
  }
}

TEST(Predictor, SymmetricPlacementGivesEqualThreads) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  std::vector<SocketLoad> loads{{4, 0}, {4, 0}};
  const Prediction p =
      predictor.Predict(Placement::FromSocketLoads(X3Desc().topo, loads));
  for (const ThreadPrediction& thread : p.threads) {
    EXPECT_NEAR(thread.overall_slowdown, p.threads[0].overall_slowdown, 1e-9);
  }
}

TEST(Predictor, UtilizationIsAmdahlOverNTimesSlowdown) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const Placement placement = Placement::OnePerCore(X3Desc().topo, 4);
  const Prediction p = predictor.Predict(placement);
  for (const ThreadPrediction& thread : p.threads) {
    EXPECT_NEAR(thread.utilization,
                p.amdahl_speedup / 4.0 / thread.overall_slowdown, 1e-9);
  }
}

TEST(Predictor, BurstinessOnlyAffectsSharedCores) {
  WorkloadDescription workload = SomeWorkload();
  workload.inter_socket_overhead = 0.0;
  const Predictor predictor(X3Desc(), workload);
  const Prediction spread = predictor.Predict(Placement::OnePerCore(X3Desc().topo, 2));
  const Prediction packed = predictor.Predict(Placement::TwoPerCore(X3Desc().topo, 2));
  EXPECT_GT(packed.threads[0].resource_slowdown,
            spread.threads[0].resource_slowdown);
  PredictionOptions no_burst;
  no_burst.model_burstiness = false;
  const Predictor ablated(X3Desc(), workload, no_burst);
  const Prediction packed_ablated =
      ablated.Predict(Placement::TwoPerCore(X3Desc().topo, 2));
  EXPECT_LT(packed_ablated.threads[0].resource_slowdown,
            packed.threads[0].resource_slowdown);
}

TEST(Predictor, CommunicationPenaltyGrowsWithRemotePeers) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  std::vector<SocketLoad> split{{2, 0}, {2, 0}};
  std::vector<SocketLoad> more_split{{4, 0}, {4, 0}};
  const Prediction a =
      predictor.Predict(Placement::FromSocketLoads(X3Desc().topo, split));
  const Prediction b =
      predictor.Predict(Placement::FromSocketLoads(X3Desc().topo, more_split));
  EXPECT_GT(b.threads[0].comm_penalty, a.threads[0].comm_penalty * 0.99);
  // Single-socket placements pay no communication penalty.
  const Prediction local = predictor.Predict(Placement::OnePerCore(X3Desc().topo, 4));
  EXPECT_DOUBLE_EQ(local.threads[0].comm_penalty, 0.0);
}

TEST(Predictor, LoadBalancePullsTowardSlowest) {
  WorkloadDescription workload = SomeWorkload();
  workload.load_balance = 0.0;  // lockstep
  workload.inter_socket_overhead = 0.0;
  const Predictor lockstep(X3Desc(), workload);
  // Asymmetric: one shared core plus one solo thread.
  const Placement placement(X3Desc().topo, {2, 1, 0, 0, 0, 0, 0, 0,
                                            0, 0, 0, 0, 0, 0, 0, 0});
  const Prediction p = lockstep.Predict(placement);
  const double s0 = p.threads[0].overall_slowdown;
  for (const ThreadPrediction& thread : p.threads) {
    EXPECT_NEAR(thread.overall_slowdown, s0, 1e-6);
  }
  workload.load_balance = 1.0;  // fully dynamic: no pull
  const Predictor dynamic(X3Desc(), workload);
  const Prediction q = dynamic.Predict(placement);
  EXPECT_LT(q.threads[2].overall_slowdown, q.threads[0].overall_slowdown);
  EXPECT_DOUBLE_EQ(q.threads[2].balance_penalty, 0.0);
}

TEST(Predictor, MemoryPolicyRoutesDramDemand) {
  WorkloadDescription workload = SomeWorkload();
  workload.demands.dram_local_bw = 10.0;
  workload.memory_policy = MemoryPolicy::kLocal;
  const ResourceIndex index(X3Desc().topo);
  std::vector<SocketLoad> loads{{2, 0}, {2, 0}};
  const Placement placement = Placement::FromSocketLoads(X3Desc().topo, loads);
  {
    const Predictor predictor(X3Desc(), workload);
    const Prediction p = predictor.Predict(placement);
    EXPECT_DOUBLE_EQ(p.resource_load[index.Link(0, 1)], 0.0);
  }
  workload.memory_policy = MemoryPolicy::kInterleaveActive;
  {
    const Predictor predictor(X3Desc(), workload);
    const Prediction p = predictor.Predict(placement);
    EXPECT_GT(p.resource_load[index.Link(0, 1)], 0.0);
    // Both DRAM nodes loaded equally.
    EXPECT_NEAR(p.resource_load[index.Dram(0)], p.resource_load[index.Dram(1)], 1e-9);
  }
}

TEST(Predictor, ResourceLoadConsistentWithUtilizations) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const Placement placement = Placement::OnePerCore(X3Desc().topo, 3);
  const Prediction p = predictor.Predict(placement);
  const ResourceIndex index(X3Desc().topo);
  double f_sum = 0.0;
  for (const ThreadPrediction& thread : p.threads) {
    f_sum += thread.utilization;
  }
  // Note: resource_load is computed from the f at the start of the last
  // iteration; after convergence that equals f_initial * s_res / s_overall,
  // and for a converged run it is close to the final utilizations when the
  // only penalties are resource penalties.
  EXPECT_NEAR(p.resource_load[index.Core(0)] + p.resource_load[index.Core(1)] +
                  p.resource_load[index.Core(2)],
              SomeWorkload().demands.instr_rate * f_sum,
              0.05 * SomeWorkload().demands.instr_rate * f_sum);
}

TEST(Predictor, DampeningBoundsIterations) {
  // A pathological description that tends to oscillate: enormous burstiness
  // and strong comm. The iteration must still terminate.
  WorkloadDescription workload = SomeWorkload();
  workload.burstiness = 5.0;
  workload.inter_socket_overhead = 0.5;
  workload.load_balance = 0.0;
  const Predictor predictor(X3Desc(), workload);
  const Prediction p = predictor.Predict(Placement::TwoPerCore(X3Desc().topo, 32));
  EXPECT_LE(p.iterations, 1000);
  EXPECT_GT(p.speedup, 0.0);
}

TEST(PredictorDeath, RejectsForeignTopology) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const MachineTopology x5 = sim::MakeX5_2().topo;
  EXPECT_DEATH(predictor.Predict(Placement::OnePerCore(x5, 1)), "topology");
}

TEST(PredictorDeath, RejectsInvalidDescription) {
  WorkloadDescription bad = SomeWorkload();
  bad.t1 = 0.0;
  EXPECT_DEATH(Predictor(X3Desc(), bad), "PANDIA_CHECK");
}

// --- optimizer ---

TEST(Optimizer, BestPlacementIsTopRanked) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const RankedPlacement best = FindBestPlacement(predictor);
  const std::vector<RankedPlacement> top = RankPlacements(predictor, 5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_TRUE(top[0].placement == best.placement);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].prediction.speedup, top[i].prediction.speedup);
  }
}

TEST(Optimizer, BestBeatsEveryEnumeratedPlacement) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const RankedPlacement best = FindBestPlacement(predictor);
  for (const Placement& placement : EnumerateCanonicalPlacements(X3Desc().topo)) {
    EXPECT_GE(best.prediction.speedup,
              predictor.Predict(placement).speedup - 1e-9);
  }
}

TEST(Optimizer, CheapestPlacementMeetsTarget) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const RankedPlacement best = FindBestPlacement(predictor);
  const std::optional<RankedPlacement> cheap = FindCheapestPlacement(predictor, 0.8);
  ASSERT_TRUE(cheap.has_value());
  EXPECT_GE(cheap->prediction.speedup, 0.8 * best.prediction.speedup - 1e-9);
  EXPECT_LE(cheap->placement.TotalThreads(), best.placement.TotalThreads());
}

TEST(Optimizer, CheapestAtFullTargetIsStillFound) {
  const Predictor predictor(X3Desc(), SomeWorkload());
  const std::optional<RankedPlacement> cheap = FindCheapestPlacement(predictor, 1.0);
  ASSERT_TRUE(cheap.has_value());
}

TEST(Optimizer, PoorScalingWorkloadUsesFewThreads) {
  WorkloadDescription poor = SomeWorkload();
  poor.parallel_fraction = 0.05;
  const Predictor predictor(X3Desc(), poor);
  const std::optional<RankedPlacement> cheap = FindCheapestPlacement(predictor, 0.95);
  ASSERT_TRUE(cheap.has_value());
  // Nearly serial workload: almost all performance from very few threads.
  EXPECT_LE(cheap->placement.TotalThreads(), 4);
}

}  // namespace
}  // namespace pandia
