// src/rack/fleet.h + src/serve/fleet_service.h: the fleet routing layer —
// deterministic shard preference orders, per-verb request routing, the
// cross-shard admission invariants, and the acceptance-criterion soak: a
// mixed event stream against a 2-shard fleet whose STATUS and TELEMETRY
// replay byte-identically after killing and replaying every shard's
// journal.
#include "src/serve/fleet_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/eval/pipeline.h"
#include "src/rack/fleet.h"
#include "src/serialize/serialize.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace serve {
namespace {

const eval::Pipeline& X3() {
  static const eval::Pipeline* pipeline = new eval::Pipeline("x3-2");
  return *pipeline;
}

const std::string& DescriptionText(const std::string& workload) {
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  auto it = cache->find(workload);
  if (it == cache->end()) {
    it = cache
             ->emplace(workload, WorkloadDescriptionToText(
                                     X3().Profile(workloads::ByName(workload))))
             .first;
  }
  return it->second;
}

std::vector<rack::RackMachine> Nodes(int count) {
  std::vector<rack::RackMachine> machines;
  for (int i = 0; i < count; ++i) {
    machines.push_back({StrFormat("node%d", i), X3().description()});
  }
  return machines;
}

std::string AdmitLine(const std::string& name, const std::string& workload,
                      int threads) {
  wire::Request request;
  request.verb = "ADMIT";
  request.params.emplace_back("name", name);
  request.params.emplace_back("threads", StrFormat("%d", threads));
  request.params.emplace_back("desc.x3-2", DescriptionText(workload));
  return wire::FormatRequest(request);
}

std::unique_ptr<FleetService> MustCreate(std::vector<rack::RackMachine> machines,
                                         FleetOptions options) {
  StatusOr<std::unique_ptr<FleetService>> fleet =
      FleetService::Create(std::move(machines), std::move(options));
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  return std::move(fleet).value();
}

bool IsOkBlock(const std::string& block) { return block.rfind("ok ", 0) == 0; }
bool IsErrBlock(const std::string& block) { return block.rfind("err ", 0) == 0; }

// The shard an ok ADMIT/DEPART block reports via its "shard = k" row.
int ShardOf(const std::string& block) {
  const size_t at = block.find("shard = ");
  EXPECT_NE(at, std::string::npos) << block;
  return at == std::string::npos ? -1 : std::atoi(block.c_str() + at + 8);
}

TEST(FleetRouter, ShardOrderIsADeterministicPermutation) {
  const rack::Fleet first(4, rack::ShardPolicy::kConsistentHash);
  const rack::Fleet second(4, rack::ShardPolicy::kConsistentHash);
  const std::vector<rack::ShardLoad> loads(4);
  for (const char* name : {"web", "db", "cache", "batch-17", ""}) {
    const std::vector<int> order = first.ShardOrder(name, loads);
    // Independently built rings agree: routing is a pure function of the
    // name, never of construction history.
    EXPECT_EQ(order, second.ShardOrder(name, loads)) << name;
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3})) << name;
  }
}

TEST(FleetRouter, ConsistentHashIgnoresLoads) {
  const rack::Fleet fleet(3, rack::ShardPolicy::kConsistentHash);
  std::vector<rack::ShardLoad> idle(3);
  std::vector<rack::ShardLoad> skewed{{0, 50}, {96, 0}, {1, 1}};
  EXPECT_EQ(fleet.ShardOrder("sticky", idle), fleet.ShardOrder("sticky", skewed));
}

TEST(FleetRouter, LeastLoadedFollowsFreeThreadsThenJobsThenIndex) {
  const rack::Fleet fleet(3, rack::ShardPolicy::kLeastLoaded);
  const std::vector<rack::ShardLoad> loads{{4, 1}, {10, 5}, {10, 2}};
  // Most free threads first; the 10-thread tie breaks on fewer jobs.
  EXPECT_EQ(fleet.ShardOrder("any", loads), (std::vector<int>{2, 1, 0}));
  const std::vector<rack::ShardLoad> equal(3, rack::ShardLoad{8, 2});
  // Full tie: shard index keeps the order stable.
  EXPECT_EQ(fleet.ShardOrder("any", equal), (std::vector<int>{0, 1, 2}));
}

TEST(FleetRouter, PolicyNamesRoundTrip) {
  for (const rack::ShardPolicy policy :
       {rack::ShardPolicy::kConsistentHash, rack::ShardPolicy::kLeastLoaded}) {
    const StatusOr<rack::ShardPolicy> parsed =
        rack::ShardPolicyFromName(rack::ShardPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(rack::ShardPolicyFromName("round-robin").ok());
}

TEST(FleetService, CreateValidatesShardAndMachineCounts) {
  FleetOptions zero;
  zero.shards = 0;
  EXPECT_EQ(FleetService::Create(Nodes(2), zero).status().code(),
            StatusCode::kInvalidArgument);
  FleetOptions starved;
  starved.shards = 3;
  EXPECT_EQ(FleetService::Create(Nodes(2), starved).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FleetService, HelloAdvertisesFleetCapability) {
  FleetOptions options;
  options.shards = 2;
  std::unique_ptr<FleetService> fleet = MustCreate(Nodes(4), options);
  const std::string hello = fleet->HandleLine("HELLO");
  ASSERT_TRUE(IsOkBlock(hello)) << hello;
  EXPECT_NE(hello.find("capabilities = compact,fleet,recorder,telemetry"),
            std::string::npos)
      << hello;
  EXPECT_NE(hello.find("shards = 2"), std::string::npos) << hello;
  EXPECT_NE(hello.find("shard-policy = consistent-hash"), std::string::npos)
      << hello;
}

TEST(FleetService, DepartFollowsTheAdmittingShard) {
  FleetOptions options;
  options.shards = 2;
  std::unique_ptr<FleetService> fleet = MustCreate(Nodes(4), options);
  const std::string admitted = fleet->HandleLine(AdmitLine("web", "EP", 4));
  ASSERT_TRUE(IsOkBlock(admitted)) << admitted;
  const int home = ShardOf(admitted);
  const std::string departed = fleet->HandleLine("DEPART name=web");
  ASSERT_TRUE(IsOkBlock(departed)) << departed;
  EXPECT_EQ(ShardOf(departed), home);
  const std::string ghost = fleet->HandleLine("DEPART name=web");
  EXPECT_TRUE(IsErrBlock(ghost)) << ghost;
  EXPECT_NE(ghost.find("not-found"), std::string::npos) << ghost;
}

TEST(FleetService, DuplicateNameRefusedAcrossShards) {
  FleetOptions options;
  options.shards = 2;
  std::unique_ptr<FleetService> fleet = MustCreate(Nodes(4), options);
  ASSERT_TRUE(IsOkBlock(fleet->HandleLine(AdmitLine("web", "EP", 2))));
  // The duplicate must be refused no matter which shard it would route to:
  // a name is fleet-unique, not shard-unique.
  const std::string duplicate = fleet->HandleLine(AdmitLine("web", "MD", 2));
  ASSERT_TRUE(IsErrBlock(duplicate)) << duplicate;
  EXPECT_NE(duplicate.find("failed-precondition"), std::string::npos)
      << duplicate;
  EXPECT_NE(duplicate.find("already\\sresident"), std::string::npos) << duplicate;
}

TEST(FleetService, AdmissionFallsThroughAFullShard) {
  // One machine per shard, so one 32-thread job fills a shard outright.
  FleetOptions options;
  options.shards = 2;
  std::unique_ptr<FleetService> fleet = MustCreate(Nodes(2), options);
  const rack::Fleet router(2, rack::ShardPolicy::kConsistentHash);
  const std::vector<rack::ShardLoad> loads(2);
  const std::string probe = "fallthrough-job";
  const int preferred = router.PreferredShard(probe, loads);
  // Fill the probe's preferred shard with a job that also prefers it.
  std::string filler;
  for (int i = 0;; ++i) {
    filler = StrFormat("fill%d", i);
    if (router.PreferredShard(filler, loads) == preferred) {
      break;
    }
  }
  const std::string filled = fleet->HandleLine(AdmitLine(filler, "EP", 32));
  ASSERT_TRUE(IsOkBlock(filled)) << filled;
  ASSERT_EQ(ShardOf(filled), preferred);
  // The probe's preferred shard has nothing free: admission must land on
  // the other shard instead of failing.
  const std::string admitted = fleet->HandleLine(AdmitLine(probe, "EP", 32));
  ASSERT_TRUE(IsOkBlock(admitted)) << admitted;
  EXPECT_EQ(ShardOf(admitted), 1 - preferred);
  // With every shard full, the refusal is the preferred shard's.
  const std::string refused = fleet->HandleLine(AdmitLine("late", "EP", 32));
  ASSERT_TRUE(IsErrBlock(refused)) << refused;
  EXPECT_NE(refused.find("failed-precondition"), std::string::npos) << refused;
}

TEST(FleetService, StatusFansOutInShardIndexOrder) {
  FleetOptions options;
  options.shards = 2;
  options.shard_policy = rack::ShardPolicy::kLeastLoaded;
  std::unique_ptr<FleetService> fleet = MustCreate(Nodes(4), options);
  ASSERT_TRUE(IsOkBlock(fleet->HandleLine(AdmitLine("a", "EP", 2))));
  const std::string status = fleet->HandleLine("STATUS");
  ASSERT_TRUE(IsOkBlock(status)) << status;
  EXPECT_NE(status.find("shards = 2"), std::string::npos) << status;
  EXPECT_NE(status.find("shard-policy = least-loaded"), std::string::npos)
      << status;
  const size_t first = status.find("shard = 0");
  const size_t second = status.find("shard = 1");
  ASSERT_NE(first, std::string::npos) << status;
  ASSERT_NE(second, std::string::npos) << status;
  EXPECT_LT(first, second);
}

TEST(FleetService, MalformedAndUnknownRequestsGetStructuredErrors) {
  FleetOptions options;
  options.shards = 2;
  std::unique_ptr<FleetService> fleet = MustCreate(Nodes(4), options);
  EXPECT_TRUE(IsErrBlock(fleet->HandleLine("GARBAGE ???")));
  EXPECT_TRUE(IsErrBlock(fleet->HandleLine("NOSUCHVERB")));
  EXPECT_TRUE(IsErrBlock(fleet->HandleLine("ADMIT")));
  EXPECT_TRUE(IsErrBlock(fleet->HandleLine("DEPART")));
}

// A fixed request script replayed against two independently built fleets
// must produce identical transcripts — the routing layer may not consult
// anything beyond (name, loads).
TEST(FleetService, TwoRunsProduceByteIdenticalTranscripts) {
  const auto transcript = [] {
    FleetOptions options;
    options.shards = 2;
    std::unique_ptr<FleetService> fleet = MustCreate(Nodes(4), options);
    Rng rng(7);
    std::vector<std::string> live;
    std::string all;
    int next_id = 0;
    for (int event = 0; event < 60; ++event) {
      const uint64_t roll = rng.NextU64() % 10;
      if (roll < 6) {
        const std::string name = StrFormat("job%d", next_id++);
        const std::string response =
            fleet->HandleLine(AdmitLine(name, "EP", 1 + static_cast<int>(
                                                          rng.NextU64() % 4)));
        if (IsOkBlock(response)) {
          live.push_back(name);
        }
        all += response;
      } else if (roll < 8 && !live.empty()) {
        const size_t victim = rng.NextU64() % live.size();
        all += fleet->HandleLine("DEPART name=" + live[victim]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      } else {
        all += fleet->HandleLine("STATUS");
      }
    }
    all += fleet->HandleLine("TELEMETRY");
    return all;
  };
  EXPECT_EQ(transcript(), transcript());
}

// Acceptance criterion: kill a journaled fleet mid-life, replay every
// shard's journal, and the revived fleet's STATUS and TELEMETRY match the
// pre-kill bytes exactly.
TEST(FleetSoak, KillAndReplayEveryShardJournal) {
  const std::string base = ::testing::TempDir() + "/pandia_fleet_journal.wire";
  for (int k = 0; k < 2; ++k) {
    std::remove(StrFormat("%s.shard%d", base.c_str(), k).c_str());
  }
  FleetOptions options;
  options.shards = 2;
  options.service.journal_path = base;

  std::optional<std::unique_ptr<FleetService>> fleet(
      MustCreate(Nodes(4), options));
  Rng rng(42);
  std::vector<std::string> live;
  const std::vector<std::string> suite = {"EP", "MD", "CG"};
  int next_id = 0;
  for (int event = 0; event < 120; ++event) {
    const uint64_t roll = rng.NextU64() % 10;
    std::string response;
    if (roll < 5) {
      const std::string name = StrFormat("job%d", next_id++);
      response = (*fleet)->HandleLine(
          AdmitLine(name, suite[rng.NextU64() % suite.size()],
                    1 + static_cast<int>(rng.NextU64() % 4)));
      if (IsOkBlock(response)) {
        live.push_back(name);
      }
    } else if (roll < 8) {
      std::string name = "ghost";
      if (!live.empty() && roll != 7) {
        const size_t victim = rng.NextU64() % live.size();
        name = live[victim];
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      }
      response = (*fleet)->HandleLine("DEPART name=" + name);
    } else {
      response = (*fleet)->HandleLine("REBALANCE max-migrations=1");
    }
    ASSERT_TRUE(IsOkBlock(response) || IsErrBlock(response))
        << "event " << event << ": " << response;
  }
  const std::string status_before = (*fleet)->HandleLine("STATUS");
  const std::string telemetry_before = (*fleet)->HandleLine("TELEMETRY");
  ASSERT_TRUE(IsOkBlock(status_before)) << status_before;
  ASSERT_TRUE(IsOkBlock(telemetry_before)) << telemetry_before;
  fleet.reset();  // the "kill": no graceful teardown

  std::optional<std::unique_ptr<FleetService>> replayed(
      MustCreate(Nodes(4), options));
  EXPECT_EQ((*replayed)->HandleLine("STATUS"), status_before);
  EXPECT_EQ((*replayed)->HandleLine("TELEMETRY"), telemetry_before);

  // The revived fleet keeps serving — and still refuses duplicates of jobs
  // whose residency it only knows from replay.
  if (!live.empty()) {
    const std::string duplicate =
        (*replayed)->HandleLine(AdmitLine(live.front(), "EP", 1));
    ASSERT_TRUE(IsErrBlock(duplicate)) << duplicate;
    EXPECT_NE(duplicate.find("already\\sresident"), std::string::npos)
        << duplicate;
  }
}

}  // namespace
}  // namespace serve
}  // namespace pandia
