// Cross-subsystem concurrency regression: drives every lock the thread-
// safety annotations now guard (src/util/mutex.h) from many threads at
// once — the ThreadPool queue, the metrics registry, the sharded prediction
// cache, and the placement service behind concurrent socket clients. The
// assertions are deliberately coarse (counts, invariants, clean shutdown);
// the real check is running this binary under TSan, which the
// PANDIA_SANITIZE=thread CI job does:
//
//   cmake -B build-tsan -S . -DPANDIA_SANITIZE=thread
//   ctest --test-dir build-tsan -R Concurrency
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/eval/pipeline.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/predictor/prediction_cache.h"
#include "src/serialize/serialize.h"
#include "src/serve/service.h"
#include "src/serve/client.h"
#include "src/serve/fleet_service.h"
#include "src/serve/socket.h"
#include "src/util/lock_rank.h"
#include "src/util/parallel.h"
#include "src/util/strings.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

// Force the runtime lock-rank checker on in every build type (it defaults
// off under NDEBUG): while TSan hunts races, the checker validates the
// kLockRank* acquisition order on every ranked lock these tests drive.
const bool kLockRankCheckingForced = [] {
  util::SetLockRankChecking(true);
  return true;
}();

TEST(ConcurrencyRegression, ThreadPoolSubmitAndParallelForFromManyThreads) {
  std::atomic<int> ran{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 64;

  {
    util::ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&pool, &ran] {
        for (int i = 0; i < kTasksEach; ++i) {
          pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (std::thread& thread : submitters) thread.join();

    // ParallelFor on the shared pool while this pool drains its own queue.
    constexpr size_t kItems = 512;
    std::vector<int> slots(kItems, 0);
    util::ParallelFor(kItems, /*jobs=*/4,
                      [&slots](size_t i) { slots[i] = static_cast<int>(i); });
    for (size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(slots[i], static_cast<int>(i));
    }
    // The pool destructor drains the queue before joining, so every
    // submitted task has run once the scope closes.
  }
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach);

  {
    util::ThreadPool drain(2);
    for (int i = 0; i < 100; ++i) {
      drain.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach + 100);
}

TEST(ConcurrencyRegression, MetricsRegistryConcurrentRegisterAndSnapshot) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Same-name registration from every thread: first one wins, all get
        // the same instrument.
        registry.counter("concurrency.shared").Increment();
        registry.counter(StrFormat("concurrency.per_thread.%d", t)).Increment();
        registry.gauge("concurrency.gauge").Set(static_cast<double>(i));
        if (i % 16 == 0) {
          (void)registry.Snapshot();  // reader racing the writers
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  uint64_t shared = 0;
  int per_thread_counters = 0;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "concurrency.shared") shared = counter.value;
    if (counter.name.rfind("concurrency.per_thread.", 0) == 0) {
      ++per_thread_counters;
      EXPECT_EQ(counter.value, static_cast<uint64_t>(kIterations));
    }
  }
  EXPECT_EQ(shared, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(per_thread_counters, kThreads);
}

TEST(ConcurrencyRegression, FlightRecorderConcurrentWritersAndDumpers) {
  obs::FlightRecorder recorder(64);
  constexpr int kThreads = 8;
  constexpr int kEvents = 500;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.Record("request",
                        StrFormat("thread=%d i=%d", t, i), i % 7 != 0);
        if (i % 32 == 0) {
          // Dumpers racing the writers: every dump must be internally
          // ordered even while slots are being overwritten.
          const std::vector<obs::FlightEvent> events = recorder.Dump();
          for (size_t k = 1; k < events.size(); ++k) {
            EXPECT_GT(events[k].seq, events[k - 1].seq);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(recorder.recorded(), static_cast<uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(recorder.dropped(),
            static_cast<uint64_t>(kThreads) * kEvents - recorder.capacity());
  const std::vector<obs::FlightEvent> events = recorder.Dump();
  EXPECT_EQ(events.size(), recorder.capacity());
  for (size_t k = 1; k < events.size(); ++k) {
    EXPECT_EQ(events[k].seq, events[k - 1].seq + 1);
  }
}

TEST(ConcurrencyRegression, EventLogConcurrentSitesAndLevelChanges) {
  obs::EventLog log;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  log.SetStream(sink);
  log.SetRateLimit(4, int64_t{1} << 60);
  constexpr int kThreads = 8;
  constexpr int kEvents = 200;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      const std::string site = StrFormat("stress.site_%d", t % 3);
      for (int i = 0; i < kEvents; ++i) {
        log.Log(obs::LogLevel::kWarn, site, "stress", {{"i", i}});
        if (i % 64 == 0) {
          // Writers racing a level flip: the fast path is a relaxed load.
          log.SetMinLevel(i % 128 == 0 ? obs::LogLevel::kInfo
                                       : obs::LogLevel::kWarn);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // 3 sites x 4 events pass the limiter; the rest are suppressed.
  EXPECT_EQ(log.suppressed(),
            static_cast<uint64_t>(kThreads) * kEvents - 3 * 4);
  log.SetStream(nullptr);
  std::fclose(sink);
}

TEST(ConcurrencyRegression, PredictionCacheConcurrentInsertLookupInvalidate) {
  PredictionCache cache(/*max_entries=*/256);
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kRounds = 50;
  std::atomic<uint64_t> hits{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &hits, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          const PredictionCacheKey key{static_cast<uint64_t>(k),
                                       static_cast<uint64_t>(k * 31 + 7)};
          if (std::optional<Prediction> found = cache.Lookup(key)) {
            hits.fetch_add(1, std::memory_order_relaxed);
            // Everyone inserts the same value per key, so a hit is exact.
            EXPECT_DOUBLE_EQ(found->speedup, static_cast<double>(k));
          } else {
            Prediction prediction;
            prediction.speedup = static_cast<double>(k);
            cache.Insert(key, prediction);
          }
        }
        // One thread periodically invalidates everything mid-flight.
        if (t == 0 && round % 10 == 9) cache.BumpGeneration();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_GT(hits.load(), 0u);
  EXPECT_GE(cache.generation(), static_cast<uint64_t>(kRounds) / 10);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ConcurrencyRegression, ServiceSurvivesConcurrentSocketClients) {
  const eval::Pipeline pipeline("x3-2");
  std::vector<rack::RackMachine> machines;
  for (int i = 0; i < 4; ++i) {
    machines.push_back({StrFormat("node%d", i), pipeline.description()});
  }
  StatusOr<serve::PlacementService> service =
      serve::PlacementService::Create(std::move(machines),
                                      serve::ServiceOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const std::string path =
      ::testing::TempDir() + "/pandia_concurrency_test.sock";
  StatusOr<serve::SocketServer> server = serve::SocketServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::thread loop([&service, &server] {
    const Status served =
        serve::RunEventLoop(*service, /*stdin_fd=*/-1, stdout, &*server);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  const std::string desc =
      WorkloadDescriptionToText(pipeline.Profile(workloads::ByName("EP")));
  constexpr int kClients = 6;
  constexpr int kRequestsEach = 8;
  std::atomic<int> ok_blocks{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&path, &desc, &ok_blocks, c] {
      for (int i = 0; i < kRequestsEach; ++i) {
        std::string request;
        if (i == 0) {
          wire::Request admit;
          admit.verb = "ADMIT";
          admit.params.emplace_back("name", StrFormat("job-%d", c));
          admit.params.emplace_back("threads", "2");
          admit.params.emplace_back("desc.x3-2", desc);
          request = wire::FormatRequest(admit) + "\n";
        } else if (i + 1 == kRequestsEach) {
          request = StrFormat("DEPART name=job-%d\n", c);
        } else {
          request = (i % 2 == 0) ? "STATUS\n" : "METRICS\n";
        }
        const StatusOr<std::string> reply = serve::SocketExchange(path, request);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        if (reply->rfind("ok ", 0) == 0) {
          ok_blocks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  // Every request got an ok reply: the admits found capacity, the departs
  // found their jobs, and STATUS/METRICS never raced the mutations.
  EXPECT_EQ(ok_blocks.load(), kClients * kRequestsEach);

  const StatusOr<std::string> status = serve::SocketExchange(path, "STATUS\n");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_NE(status->find("jobs = 0"), std::string::npos) << *status;

  const StatusOr<std::string> bye = serve::SocketExchange(path, "SHUTDOWN\n");
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  loop.join();
  EXPECT_TRUE(service->shutdown_requested());
}

// Concurrent pipelined clients against the multi-client event loop: each
// serve::Client pipelines its whole batch (CallMany) so the loop must
// interleave partially-read requests and partially-written responses across
// connections without cross-talk. Run against a 2-shard fleet so the fleet
// mutex is also under contention. Exercised twice — once with the default
// poller (epoll on Linux) and once forced onto the poll() fallback.
void PipelinedFleetClients(const char* event_loop) {
  if (event_loop != nullptr) {
    ASSERT_EQ(setenv("PANDIA_EVENT_LOOP", event_loop, 1), 0);
  } else {
    unsetenv("PANDIA_EVENT_LOOP");
  }
  const eval::Pipeline pipeline("x3-2");
  std::vector<rack::RackMachine> machines;
  for (int i = 0; i < 4; ++i) {
    machines.push_back({StrFormat("node%d", i), pipeline.description()});
  }
  serve::FleetOptions options;
  options.shards = 2;
  StatusOr<std::unique_ptr<serve::FleetService>> fleet =
      serve::FleetService::Create(std::move(machines), options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  const std::string path = StrFormat(
      "%s/pandia_pipelined_%s.sock", ::testing::TempDir().c_str(),
      event_loop == nullptr ? "default" : event_loop);
  std::remove(path.c_str());
  StatusOr<serve::SocketServer> server = serve::SocketServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::thread loop([&fleet, &server] {
    const Status served =
        serve::RunEventLoop(**fleet, /*stdin_fd=*/-1, stdout, &*server);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  const std::string desc =
      WorkloadDescriptionToText(pipeline.Profile(workloads::ByName("EP")));
  constexpr int kClients = 6;
  constexpr int kRounds = 4;
  std::atomic<int> ok_responses{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&path, &desc, &ok_responses, c] {
      StatusOr<serve::Client> client = serve::Client::Connect(path);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      EXPECT_TRUE(client->has_capability("fleet"));
      for (int round = 0; round < kRounds; ++round) {
        wire::Request admit;
        admit.verb = "ADMIT";
        admit.params.emplace_back("name", StrFormat("job-%d-%d", c, round));
        admit.params.emplace_back("threads", "2");
        admit.params.emplace_back("desc.x3-2", desc);
        const std::vector<std::string> batch = {
            wire::FormatRequest(admit), "STATUS", "TELEMETRY",
            StrFormat("DEPART name=job-%d-%d", c, round)};
        StatusOr<std::vector<wire::Response>> responses =
            client->CallMany(batch);
        ASSERT_TRUE(responses.ok()) << responses.status().ToString();
        ASSERT_EQ(responses->size(), batch.size());
        // Responses must come back in request order, on the right
        // connection: the DEPART can only succeed if it was this client's
        // ADMIT that preceded it.
        EXPECT_EQ((*responses)[0].verb, "ADMIT");
        EXPECT_EQ((*responses)[1].verb, "STATUS");
        EXPECT_EQ((*responses)[2].verb, "TELEMETRY");
        EXPECT_EQ((*responses)[3].verb, "DEPART");
        for (const wire::Response& response : *responses) {
          if (response.ok) {
            ok_responses.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok_responses.load(), kClients * kRounds * 4);

  StatusOr<serve::Client> closer = serve::Client::Connect(path);
  ASSERT_TRUE(closer.ok()) << closer.status().ToString();
  const StatusOr<wire::Response> bye = closer->Call("SHUTDOWN");
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  EXPECT_TRUE(bye->ok);
  loop.join();
  unsetenv("PANDIA_EVENT_LOOP");
}

TEST(ConcurrencyRegression, PipelinedFleetClientsDefaultPoller) {
  PipelinedFleetClients(nullptr);
}

TEST(ConcurrencyRegression, PipelinedFleetClientsPollFallback) {
  PipelinedFleetClients("poll");
}

}  // namespace
}  // namespace pandia
