// Machine-generic invariants, parameterized over all four evaluation
// machines (§6.1-§6.2): description generation, profiling, prediction, and
// sweep metrics must hold on every topology, including the 4-socket X2-4.
#include <gtest/gtest.h>

#include <map>

#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/sim/machine_spec.h"
#include "src/topology/enumerate.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

class EveryMachine : public ::testing::TestWithParam<std::string> {
 protected:
  static const eval::Pipeline& PipelineFor(const std::string& name) {
    static std::map<std::string, eval::Pipeline> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      it = cache.emplace(name, eval::Pipeline(name)).first;
    }
    return it->second;
  }
  const eval::Pipeline& P() const { return PipelineFor(GetParam()); }
};

TEST_P(EveryMachine, DescriptionCapacitiesArePositiveAndOrdered) {
  const MachineDescription& desc = P().description();
  EXPECT_GT(desc.core_ops, 0.0);
  EXPECT_GT(desc.smt_combined_ops, desc.core_ops);
  // The memory hierarchy narrows on the way down.
  EXPECT_GT(desc.l1_bw, desc.l2_bw);
  EXPECT_GT(desc.l2_bw, desc.l3_port_bw);
  EXPECT_GT(desc.l3_agg_bw, desc.l3_port_bw);
  EXPECT_GT(desc.dram_bw, 0.0);
  EXPECT_GT(desc.link_bw, 0.0);
  EXPECT_LT(desc.link_bw, desc.dram_bw * desc.topo.num_sockets);
}

TEST_P(EveryMachine, TurboIsMeasuredAtTheAllCoreBin) {
  const sim::MachineSpec truth = sim::MachineByName(GetParam());
  const double all_core = truth.turbo.Multiplier(
      truth.topo.cores_per_socket, truth.topo.cores_per_socket, true);
  // CPU stressor ILP cap is 0.75 of the core.
  EXPECT_NEAR(P().description().core_ops, truth.core_ops * all_core * 0.75,
              P().description().core_ops * 0.05);
}

TEST_P(EveryMachine, ProfilerProducesValidDescriptions) {
  for (const char* name : {"MD", "CG"}) {
    const WorkloadDescription desc = P().Profile(workloads::ByName(name));
    EXPECT_GT(desc.t1, 0.0) << GetParam() << "/" << name;
    EXPECT_GE(desc.parallel_fraction, 0.9) << GetParam() << "/" << name;
    EXPECT_GE(desc.profile_threads, 2);
    EXPECT_LE(desc.profile_threads, P().machine().topology().cores_per_socket);
  }
}

TEST_P(EveryMachine, SweepMetricsStayInPaperBallpark) {
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  const WorkloadDescription desc = P().Profile(workload);
  const Predictor predictor = P().MakePredictor(desc);
  eval::SweepOptions options;
  options.exhaustive_limit = 1100;  // exhaustive only on the 8-core parts
  options.sample_count = 400;
  const eval::SweepResult result =
      eval::RunSweep(P().machine(), predictor, workload, options);
  EXPECT_LT(result.error_median, 25.0) << GetParam();
  EXPECT_LT(result.best_placement_gap_pct, 12.0) << GetParam();
}

TEST_P(EveryMachine, PredictionsCoverTheWholeCanonicalSpace) {
  const sim::WorkloadSpec workload = workloads::ByName("EP");
  const WorkloadDescription desc = P().Profile(workload);
  const Predictor predictor = P().MakePredictor(desc);
  const MachineTopology& topo = P().machine().topology();
  for (const Placement& placement : SampleCanonicalPlacements(topo, 60, 5)) {
    const Prediction p = predictor.Predict(placement);
    EXPECT_GT(p.speedup, 0.0) << GetParam() << " " << placement.ToString();
    EXPECT_TRUE(p.converged) << GetParam() << " " << placement.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllMachines, EveryMachine,
                         ::testing::Values("x5-2", "x4-2", "x3-2", "x2-4"));

TEST(FourSocket, InterleaveAllRoutesOverEveryLink) {
  const eval::Pipeline pipeline("x2-4");
  const MachineTopology& topo = pipeline.machine().topology();
  sim::WorkloadSpec workload = workloads::ByName("NPO");  // interleave-all
  std::vector<SocketLoad> loads{{2, 0}, {2, 0}, {2, 0}, {2, 0}};
  const sim::RunResult result = pipeline.machine().RunOne(
      workload, Placement::FromSocketLoads(topo, loads));
  const ResourceIndex& index = pipeline.machine().index();
  for (int a = 0; a < topo.num_sockets; ++a) {
    for (int b = a + 1; b < topo.num_sockets; ++b) {
      EXPECT_GT(result.jobs[0].resource_consumption[index.Link(a, b)], 0.0)
          << a << "-" << b;
    }
  }
}

TEST(FourSocket, CommunicationPenaltyCountsPeersAcrossAllSockets) {
  const eval::Pipeline pipeline("x2-4");
  const WorkloadDescription desc = pipeline.Profile(workloads::ByName("FT"));
  const Predictor predictor = pipeline.MakePredictor(desc);
  const MachineTopology& topo = pipeline.machine().topology();
  std::vector<SocketLoad> two{{4, 0}, {4, 0}, {0, 0}, {0, 0}};
  std::vector<SocketLoad> four{{2, 0}, {2, 0}, {2, 0}, {2, 0}};
  const Prediction on_two = predictor.Predict(Placement::FromSocketLoads(topo, two));
  const Prediction on_four = predictor.Predict(Placement::FromSocketLoads(topo, four));
  // Same thread count; more remote peers on four sockets.
  EXPECT_GE(on_four.threads[0].comm_penalty, on_two.threads[0].comm_penalty);
}

}  // namespace
}  // namespace pandia
