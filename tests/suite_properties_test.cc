// Parameterized properties that must hold for every workload in the
// evaluation suite: simulator invariants (conservation, determinism,
// monotonicity of contention), predictor sanity, and agreement between the
// predictor's demand routing and the simulator's observed traffic.
#include <gtest/gtest.h>

#include "src/counters/counters.h"
#include "src/eval/pipeline.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

std::vector<std::string> AllWorkloadNames() {
  std::vector<std::string> names;
  for (const sim::WorkloadSpec& spec : workloads::EvaluationSuite()) {
    names.push_back(spec.name);
  }
  return names;
}

const eval::Pipeline& X3() {
  static const eval::Pipeline pipeline("x3-2");
  return pipeline;
}

class SuiteWorkload : public ::testing::TestWithParam<std::string> {
 protected:
  sim::WorkloadSpec Spec() const { return workloads::ByName(GetParam()); }
};

TEST_P(SuiteWorkload, WorkIsConservedAtSeveralPlacements) {
  const sim::WorkloadSpec spec = Spec();
  const MachineTopology& topo = X3().machine().topology();
  for (int n : {1, 5, 16}) {
    const sim::RunResult result =
        X3().machine().RunOne(spec, Placement::OnePerCore(topo, n));
    double total = 0.0;
    for (const sim::ThreadResult& thread : result.jobs[0].threads) {
      total += thread.work_done;
    }
    EXPECT_NEAR(total, spec.total_work, spec.total_work * 1e-6)
        << spec.name << " n=" << n;
  }
}

TEST_P(SuiteWorkload, SimulationIsDeterministic) {
  const sim::WorkloadSpec spec = Spec();
  const Placement placement = Placement::TwoPerCore(X3().machine().topology(), 10);
  const double a = X3().machine().RunOne(spec, placement).jobs[0].completion_time;
  const double b = X3().machine().RunOne(spec, placement).jobs[0].completion_time;
  EXPECT_DOUBLE_EQ(a, b) << spec.name;
}

TEST_P(SuiteWorkload, MoreThreadsOnOneSocketNeverCatastrophicallyWorse) {
  // Within a socket, going from 2 to 8 one-per-core threads must not slow
  // the workload down by more than the noise band: contention can flatten
  // scaling but not reverse it by much for suite workloads.
  const sim::WorkloadSpec spec = Spec();
  const MachineTopology& topo = X3().machine().topology();
  const double t2 = X3().machine().RunOne(spec, Placement::OnePerCore(topo, 2))
                        .jobs[0].completion_time;
  const double t8 = X3().machine().RunOne(spec, Placement::OnePerCore(topo, 8))
                        .jobs[0].completion_time;
  EXPECT_LT(t8, t2 * 1.05) << spec.name;
}

TEST_P(SuiteWorkload, ProfileParametersAreInRange) {
  const WorkloadDescription desc = X3().Profile(Spec());
  EXPECT_GT(desc.t1, 0.0);
  EXPECT_GE(desc.parallel_fraction, 0.0);
  EXPECT_LE(desc.parallel_fraction, 1.0);
  EXPECT_GE(desc.inter_socket_overhead, 0.0);
  EXPECT_LT(desc.inter_socket_overhead, 1.0) << GetParam();
  EXPECT_GE(desc.load_balance, 0.0);
  EXPECT_LE(desc.load_balance, 1.0);
  EXPECT_GE(desc.burstiness, 0.0);
  EXPECT_LT(desc.burstiness, 3.0) << GetParam();
  EXPECT_GE(desc.profile_threads, 2);
  EXPECT_EQ(desc.profile_threads % 2, 0);
}

TEST_P(SuiteWorkload, ProfiledParallelFractionTracksGroundTruth) {
  const sim::WorkloadSpec spec = Spec();
  const WorkloadDescription desc = X3().Profile(spec);
  // The measured p absorbs mild contention, so only require closeness.
  EXPECT_NEAR(desc.parallel_fraction, spec.parallel_fraction, 0.05) << spec.name;
}

TEST_P(SuiteWorkload, PredictionsConvergeAndStayBounded) {
  const sim::WorkloadSpec spec = Spec();
  const WorkloadDescription desc = X3().Profile(spec);
  const Predictor predictor = X3().MakePredictor(desc);
  const MachineTopology& topo = X3().machine().topology();
  for (const Placement& placement :
       {Placement::OnePerCore(topo, 3), Placement::TwoPerCore(topo, 20),
        Placement::TwoPerCore(topo, topo.NumHwThreads())}) {
    const Prediction p = predictor.Predict(placement);
    EXPECT_TRUE(p.converged) << spec.name << " " << placement.ToString();
    EXPECT_GT(p.speedup, 0.0);
    EXPECT_LE(p.speedup, p.amdahl_speedup * (1.0 + 1e-9));
    EXPECT_LT(p.iterations, 200) << spec.name;
  }
}

TEST_P(SuiteWorkload, PredictedTimeWithinFactorTwoOfMeasured) {
  // Coarse end-to-end accuracy gate for every workload at three placements.
  const sim::WorkloadSpec spec = Spec();
  const WorkloadDescription desc = X3().Profile(spec);
  const Predictor predictor = X3().MakePredictor(desc);
  const MachineTopology& topo = X3().machine().topology();
  for (int n : {4, 16}) {
    const Placement placement = Placement::OnePerCore(topo, n);
    const double measured =
        X3().machine().RunOne(spec, placement).jobs[0].completion_time;
    const double predicted = predictor.Predict(placement).time;
    EXPECT_LT(predicted, measured * 2.0) << spec.name << " n=" << n;
    EXPECT_GT(predicted, measured * 0.5) << spec.name << " n=" << n;
  }
}

TEST_P(SuiteWorkload, RoutingAgreesWithSimulatedTraffic) {
  // The predictor's DRAM-per-node split (policy-aware routing) must match
  // the traffic the machine actually produces for a cross-socket placement.
  const sim::WorkloadSpec spec = Spec();
  const WorkloadDescription desc = X3().Profile(spec);
  const Predictor predictor = X3().MakePredictor(desc);
  const MachineTopology& topo = X3().machine().topology();
  std::vector<SocketLoad> loads{{4, 0}, {4, 0}};
  const Placement placement = Placement::FromSocketLoads(topo, loads);
  const Prediction prediction = predictor.Predict(placement);
  const sim::RunResult run = X3().machine().RunOne(spec, placement);
  const CounterView view(X3().machine(), run, 0);
  const ResourceIndex index(topo);
  const double predicted_link = prediction.resource_load[index.Link(0, 1)];
  const double observed_link = view.InterconnectBytes() / view.CompletionTime();
  if (spec.memory_policy == MemoryPolicy::kLocal && spec.comm_bytes_per_work == 0.0) {
    EXPECT_DOUBLE_EQ(predicted_link, 0.0) << spec.name;
    EXPECT_DOUBLE_EQ(observed_link, 0.0) << spec.name;
  } else if (spec.memory_policy != MemoryPolicy::kLocal) {
    EXPECT_GT(predicted_link, 0.0) << spec.name;
    EXPECT_GT(observed_link, 0.0) << spec.name;
    // Same order of magnitude (the model scales demand by utilization).
    EXPECT_LT(predicted_link, observed_link * 3.0) << spec.name;
    EXPECT_GT(predicted_link, observed_link / 3.0) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteWorkload,
                         ::testing::ValuesIn(AllWorkloadNames()));

}  // namespace
}  // namespace pandia
