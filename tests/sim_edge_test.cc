// Simulator edge cases: degenerate workload parameters and unusual job
// combinations that the engine must handle without surprises.
#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/stress/stress.h"

namespace pandia {
namespace sim {
namespace {

MachineSpec Calm() {
  MachineSpec spec = MakeX3_2();
  spec.turbo_enabled = false;
  spec.noise_magnitude = 0.0;
  return spec;
}

WorkloadSpec Tiny(const char* name) {
  WorkloadSpec spec;
  spec.name = name;
  spec.total_work = 10.0;
  spec.parallel_fraction = 1.0;
  spec.single_thread_ipc = 0.5;
  spec.l1_bpw = 1.0;
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

TEST(SimEdge, FullySerialWorkloadIgnoresExtraThreads) {
  const Machine machine{Calm()};
  WorkloadSpec spec = Tiny("serial");
  spec.parallel_fraction = 0.0;
  const MachineTopology& topo = machine.topology();
  const double t1 =
      machine.RunOne(spec, Placement::OnePerCore(topo, 1)).jobs[0].completion_time;
  const double t8 =
      machine.RunOne(spec, Placement::OnePerCore(topo, 8)).jobs[0].completion_time;
  EXPECT_NEAR(t1, t8, t1 * 1e-9);
}

TEST(SimEdge, DynamicChunkLargerThanPoolIsClamped) {
  const Machine machine{Calm()};
  WorkloadSpec spec = Tiny("bigchunk");
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 10.0;  // silly: clamp to pool/threads
  const RunResult result =
      machine.RunOne(spec, Placement::OnePerCore(machine.topology(), 4));
  double total = 0.0;
  for (const ThreadResult& thread : result.jobs[0].threads) {
    total += thread.work_done;
  }
  EXPECT_NEAR(total, spec.total_work, 1e-6);
  EXPECT_GT(result.wall_time, 0.0);
}

TEST(SimEdge, ZeroChunkDynamicIsPerfectlyBalanced) {
  const Machine machine{Calm()};
  WorkloadSpec spec = Tiny("zerochunk");
  spec.balance = BalanceMode::kDynamic;
  spec.chunk_fraction = 0.0;
  const MachineTopology& topo = machine.topology();
  const double t1 =
      machine.RunOne(spec, Placement::OnePerCore(topo, 1)).jobs[0].completion_time;
  const double t4 =
      machine.RunOne(spec, Placement::OnePerCore(topo, 4)).jobs[0].completion_time;
  EXPECT_NEAR(t1 / t4, 4.0, 0.01);
}

TEST(SimEdge, SmtSlotOfIdleThreadCostsNothing) {
  // An idle (max_active-capped) thread sharing a core must not slow the
  // working sibling: spinners consume no pipeline resources (§2.3).
  const Machine machine{Calm()};
  WorkloadSpec spec = Tiny("capped");
  spec.max_active_threads = 1;
  const MachineTopology& topo = machine.topology();
  const double alone =
      machine.RunOne(spec, Placement::OnePerCore(topo, 1)).jobs[0].completion_time;
  const double with_idle_sibling =
      machine.RunOne(spec, Placement::TwoPerCore(topo, 2)).jobs[0].completion_time;
  EXPECT_NEAR(alone, with_idle_sibling, alone * 1e-9);
}

TEST(SimEdge, MultipleBackgroundJobsCoexist) {
  const Machine machine{Calm()};
  const WorkloadSpec fg = Tiny("fg");
  const sim::WorkloadSpec cpu = stress::CpuStressor();
  const sim::WorkloadSpec dram = stress::DramStressor();
  const MachineTopology& topo = machine.topology();
  std::vector<SocketLoad> bg1{{0, 0}, {4, 0}};
  std::vector<SocketLoad> bg2{{0, 0}, {0, 4}};
  const std::vector<JobRequest> jobs{
      {&fg, Placement::OnePerCore(topo, 2), false},
      {&cpu, Placement::FromSocketLoads(topo, bg1), true},
      {&dram, Placement::FromSocketLoads(topo, bg2), true},
  };
  const RunResult result = machine.Run(jobs);
  EXPECT_EQ(result.jobs.size(), 3u);
  EXPECT_GT(result.jobs[1].threads[0].work_done, 0.0);
  EXPECT_GT(result.jobs[2].threads[0].work_done, 0.0);
}

TEST(SimEdge, HomeSocketOverrideOnForeground) {
  const Machine machine{Calm()};
  WorkloadSpec spec = Tiny("remote-home");
  spec.dram_bpw = 1.0;
  spec.l3_bpw = 1.0;
  spec.memory_policy = MemoryPolicy::kHomeSocket;
  spec.home_socket = 1;
  const MachineTopology& topo = machine.topology();
  const RunResult result = machine.RunOne(spec, Placement::OnePerCore(topo, 1));
  const ResourceIndex& index = machine.index();
  // Thread on socket 0, data on socket 1: all DRAM traffic remote.
  EXPECT_DOUBLE_EQ(result.jobs[0].resource_consumption[index.Dram(0)], 0.0);
  EXPECT_GT(result.jobs[0].resource_consumption[index.Dram(1)], 0.0);
  EXPECT_GT(result.jobs[0].resource_consumption[index.Link(0, 1)], 0.0);
}

TEST(SimEdge, QuantaWithMoreThreadsThanQuantaLeavesThreadsIdle) {
  const Machine machine{Calm()};
  WorkloadSpec spec = Tiny("fewquanta");
  spec.parallel_quanta = 3;
  const RunResult result =
      machine.RunOne(spec, Placement::OnePerCore(machine.topology(), 6));
  int workers_with_work = 0;
  double total = 0.0;
  for (const ThreadResult& thread : result.jobs[0].threads) {
    workers_with_work += thread.work_done > 0.0 ? 1 : 0;
    total += thread.work_done;
  }
  EXPECT_EQ(workers_with_work, 3);
  EXPECT_NEAR(total, spec.total_work, 1e-6);
}

TEST(SimEdge, BurstinessAboveOneClamps) {
  // duty_cycle must stay in (0,1]; a smooth workload with duty 1.0 and a
  // saturated one with duty near 0 both simulate without issues.
  const Machine machine{Calm()};
  WorkloadSpec spec = Tiny("verybursty");
  spec.ops_per_work = 4.0;
  spec.duty_cycle = 0.05;
  const double packed =
      machine.RunOne(spec, Placement::TwoPerCore(machine.topology(), 2))
          .jobs[0].completion_time;
  EXPECT_GT(packed, 0.0);
  EXPECT_TRUE(std::isfinite(packed));
}

}  // namespace
}  // namespace sim
}  // namespace pandia
