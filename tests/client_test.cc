// src/serve/client.h: the reusable daemon client — HELLO negotiation on
// connect (including graceful fallback against pre-HELLO servers), CallMany
// pipelining, connect retries riding through a late-starting daemon, and
// the failure contract: timeouts surface as unavailable, a stream cut
// mid-response as data-loss, never as a half-parsed success.
#include "src/serve/client.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/eval/pipeline.h"
#include "src/serve/service.h"
#include "src/serve/socket.h"
#include "src/util/strings.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace serve {
namespace {

std::vector<rack::RackMachine> OneNodeRack() {
  static const eval::Pipeline* pipeline = new eval::Pipeline("x3-2");
  return {{"node0", pipeline->description()}};
}

// A real daemon on a Unix socket, torn down by SHUTDOWN in the destructor.
class LiveDaemon {
 public:
  explicit LiveDaemon(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
    StatusOr<PlacementService> service =
        PlacementService::Create(OneNodeRack(), ServiceOptions{});
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    service_.emplace(std::move(service).value());
    StatusOr<SocketServer> server = SocketServer::Listen(path_);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_.emplace(std::move(server).value());
    loop_ = std::thread([this] {
      const Status served =
          RunEventLoop(*service_, /*stdin_fd=*/-1, stdout, &*server_);
      EXPECT_TRUE(served.ok()) << served.ToString();
    });
  }

  ~LiveDaemon() {
    StatusOr<Client> client = Client::Connect(path_);
    if (client.ok()) {
      (void)client->Call("SHUTDOWN");
    }
    loop_.join();
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::optional<PlacementService> service_;
  std::optional<SocketServer> server_;
  std::thread loop_;
};

// A scripted fake on a Unix socket: accepts one connection, answers each
// request line with the next canned block (or nothing, to starve the
// client), then closes. Lets the tests pin down client behaviour that a
// correct daemon never exhibits.
void ServeScript(const std::string& path, std::vector<std::string> blocks,
                 bool close_mid_block) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(fd, 0);
  std::string buffer;
  size_t next = 0;
  char chunk[4096];
  while (next < blocks.size()) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (next < blocks.size() &&
           (newline = buffer.find('\n')) != std::string::npos) {
      buffer.erase(0, newline + 1);
      const std::string& block = blocks[next++];
      if (!block.empty()) {
        (void)::send(fd, block.data(), block.size(), MSG_NOSIGNAL);
      }
    }
  }
  if (!close_mid_block) {
    // Hold the connection open (no EOF to the client) until the client
    // hangs up — a timed-out client must see silence, not a closed stream.
    while (::read(fd, chunk, sizeof(chunk)) > 0) {
    }
  }
  ::close(fd);
  ::close(listen_fd);
}

TEST(Client, HandshakeNegotiatesProtocolAndCapabilities) {
  LiveDaemon daemon("client_handshake.sock");
  StatusOr<Client> client = Client::Connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->protocol_version(), wire::kProtocolVersion);
  EXPECT_TRUE(client->has_capability("telemetry"));
  EXPECT_TRUE(client->has_capability("recorder"));
  EXPECT_TRUE(client->has_capability("compact"));
  EXPECT_FALSE(client->has_capability("fleet"));
}

TEST(Client, CallManyPipelinesInOrder) {
  LiveDaemon daemon("client_pipeline.sock");
  StatusOr<Client> client = Client::Connect(daemon.path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::vector<std::string> requests = {"STATUS", "TELEMETRY", "HELLO",
                                             "NOSUCHVERB"};
  StatusOr<std::vector<wire::Response>> responses = client->CallMany(requests);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 4u);
  EXPECT_TRUE((*responses)[0].ok);
  EXPECT_EQ((*responses)[0].verb, "STATUS");
  EXPECT_TRUE((*responses)[1].ok);
  EXPECT_EQ((*responses)[1].verb, "TELEMETRY");
  EXPECT_TRUE((*responses)[2].ok);
  EXPECT_EQ((*responses)[2].verb, "HELLO");
  EXPECT_FALSE((*responses)[3].ok);
}

TEST(Client, ToleratesPreHelloServers) {
  // A v1 server that predates HELLO answers it with a structured error;
  // the client must treat that as protocol 1, no capabilities — and keep
  // the connection usable.
  const std::string path = ::testing::TempDir() + "/client_prehello.sock";
  std::remove(path.c_str());
  std::thread fake(ServeScript, path,
                   std::vector<std::string>{
                       "err invalid-argument unknown verb 'HELLO'\n.\n",
                       "ok STATUS\njobs = 0\n.\n"},
                   false);
  ClientOptions options;
  options.retries = 10;  // ride through the fake still binding its socket
  StatusOr<Client> client = Client::Connect(path, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->protocol_version(), 1);
  EXPECT_TRUE(client->capabilities().empty());
  StatusOr<wire::Response> status = client->Call("STATUS");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->ok);
  client = Status::InvalidArgument("drop connection");  // hang up first
  fake.join();
}

TEST(Client, TimeoutSurfacesAsUnavailable) {
  // A server that accepts but never answers must fail the call within the
  // timeout, not hang the client forever.
  const std::string path = ::testing::TempDir() + "/client_timeout.sock";
  std::remove(path.c_str());
  std::thread fake(ServeScript, path, std::vector<std::string>{""}, false);
  ClientOptions options;
  options.retries = 10;
  options.timeout_ms = 100;
  options.handshake = false;
  StatusOr<Client> client = Client::Connect(path, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const StatusOr<wire::Response> response = client->Call("STATUS");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status().message().find("timed out"),
            std::string::npos)
      << response.status().ToString();
  client = Status::InvalidArgument("drop connection");  // unblock the fake
  fake.join();
}

TEST(Client, StreamCutMidResponseIsDataLoss) {
  const std::string path = ::testing::TempDir() + "/client_cut.sock";
  std::remove(path.c_str());
  std::thread fake(ServeScript, path,
                   std::vector<std::string>{"ok STATUS\njobs = "}, true);
  ClientOptions options;
  options.retries = 10;
  options.handshake = false;
  StatusOr<Client> client = Client::Connect(path, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const StatusOr<wire::Response> response = client->Call("STATUS");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDataLoss);
  fake.join();
}

TEST(Client, RetriesRideThroughALateStartingDaemon) {
  const std::string path = ::testing::TempDir() + "/client_retry.sock";
  std::remove(path.c_str());
  std::thread late([&path] {
    // Start well after the client's first connect attempts have failed.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    LiveDaemon daemon("client_retry_daemon.sock");
    // Hand the expected path to the client by symlinking the live socket.
    ASSERT_EQ(::symlink(daemon.path().c_str(), path.c_str()), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });
  ClientOptions options;
  options.retries = 8;
  StatusOr<Client> client = Client::Connect(path, options);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  if (client.ok()) {
    const StatusOr<wire::Response> status = client->Call("STATUS");
    EXPECT_TRUE(status.ok() && status->ok);
  }
  client = Status::InvalidArgument("done");  // disconnect before teardown
  late.join();
  std::remove(path.c_str());
}

TEST(Client, ConnectWithoutRetriesFailsFastOnAbsentSocket) {
  ClientOptions options;
  options.retries = 0;
  const StatusOr<Client> client =
      Client::Connect(::testing::TempDir() + "/client_absent.sock", options);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace serve
}  // namespace pandia
