// src/serve: the placement service — request lifecycle, structured error
// replies (no request may abort the daemon), the Unix-socket transport, and
// the acceptance-criterion soak: 200+ admit/depart/rebalance events on a
// simulated 4-machine rack with a kill-and-replay restart whose STATUS
// matches the pre-kill STATUS byte for byte.
#include "src/serve/service.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/eval/pipeline.h"
#include "src/serialize/serialize.h"
#include "src/serve/client.h"
#include "src/serve/socket.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace serve {
namespace {

const eval::Pipeline& X3() {
  static const eval::Pipeline* pipeline = new eval::Pipeline("x3-2");
  return *pipeline;
}

const std::string& DescriptionText(const std::string& workload) {
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  auto it = cache->find(workload);
  if (it == cache->end()) {
    it = cache
             ->emplace(workload, WorkloadDescriptionToText(
                                     X3().Profile(workloads::ByName(workload))))
             .first;
  }
  return it->second;
}

std::vector<rack::RackMachine> FourNodeRack() {
  std::vector<rack::RackMachine> machines;
  for (int i = 0; i < 4; ++i) {
    machines.push_back({StrFormat("node%d", i), X3().description()});
  }
  return machines;
}

std::string AdmitLine(const std::string& name, const std::string& workload,
                      int threads) {
  wire::Request request;
  request.verb = "ADMIT";
  request.params.emplace_back("name", name);
  request.params.emplace_back("threads", StrFormat("%d", threads));
  request.params.emplace_back("desc.x3-2", DescriptionText(workload));
  return wire::FormatRequest(request);
}

PlacementService MustCreate(std::vector<rack::RackMachine> machines,
                            ServiceOptions options) {
  StatusOr<PlacementService> service =
      PlacementService::Create(std::move(machines), std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

bool IsOkBlock(const std::string& block) { return block.rfind("ok ", 0) == 0; }
bool IsErrBlock(const std::string& block) { return block.rfind("err ", 0) == 0; }

TEST(PlacementService, AdmitStatusDepartLifecycle) {
  PlacementService service = MustCreate(FourNodeRack(), ServiceOptions{});

  const std::string admitted = service.HandleLine(AdmitLine("web", "EP", 4));
  ASSERT_TRUE(IsOkBlock(admitted)) << admitted;
  EXPECT_NE(admitted.find("machine = "), std::string::npos);
  EXPECT_NE(admitted.find("threads = "), std::string::npos);
  EXPECT_NE(admitted.find("speedup = "), std::string::npos);

  const std::string status = service.HandleLine("STATUS");
  ASSERT_TRUE(IsOkBlock(status)) << status;
  EXPECT_NE(status.find("version = 1"), std::string::npos);
  EXPECT_NE(status.find("jobs = 1"), std::string::npos);
  EXPECT_NE(status.find("job = web"), std::string::npos);
  EXPECT_NE(status.find("bottleneck="), std::string::npos);

  const std::string departed = service.HandleLine("DEPART name=web");
  ASSERT_TRUE(IsOkBlock(departed)) << departed;
  const std::string after = service.HandleLine("STATUS");
  EXPECT_NE(after.find("jobs = 0"), std::string::npos);

  const std::string metrics = service.HandleLine("METRICS");
  ASSERT_TRUE(IsOkBlock(metrics)) << metrics;
  EXPECT_NE(metrics.find("counter rack.admissions"), std::string::npos);
}

TEST(PlacementService, MalformedRequestsGetStructuredErrors) {
  PlacementService service = MustCreate(FourNodeRack(), ServiceOptions{});
  const std::vector<std::string> bad = {
      "",                                  // empty line
      "lowercase verb",                    // bad verb charset
      "FROBNICATE everything",             // unknown verb / bad param
      "ADMIT",                             // no description
      "ADMIT name=x threads=zero desc.x3-2=junk",  // bad int, bad desc
      "ADMIT name=x threads=4 bogus=1",    // unknown parameter
      "DEPART",                            // missing name
      "DEPART name=ghost",                 // not resident
      "REBALANCE max-migrations=-1",       // negative budget
      "REBALANCE budget=3",                // unknown parameter
  };
  for (const std::string& line : bad) {
    const std::string response = service.HandleLine(line);
    EXPECT_TRUE(IsErrBlock(response)) << "'" << line << "' -> " << response;
    EXPECT_EQ(response.substr(response.size() - 2), ".\n") << response;
  }
  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.rack().JobCount(), 0);
}

TEST(PlacementService, AdmitRefusedWhenNothingFits) {
  // One machine, fill it, then ask for more than remains.
  std::vector<rack::RackMachine> machines{{"node0", X3().description()}};
  PlacementService service = MustCreate(std::move(machines), ServiceOptions{});
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("big", "EP", 32))));
  const std::string refused = service.HandleLine(AdmitLine("late", "MD", 32));
  EXPECT_TRUE(IsErrBlock(refused)) << refused;
  EXPECT_NE(refused.find("failed-precondition"), std::string::npos) << refused;
}

TEST(PlacementService, DepartReplacesDegradedNeighbours) {
  // Two bandwidth hogs squeezed onto one node; when one leaves, the
  // survivor should be re-placed onto the freed threads (journaled MOVED).
  std::vector<rack::RackMachine> machines{{"node0", X3().description()}};
  ServiceOptions options;
  const std::string journal =
      ::testing::TempDir() + "/pandia_serve_replace_journal.wire";
  std::remove(journal.c_str());
  options.journal_path = journal;
  PlacementService service = MustCreate(std::move(machines), options);
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("hog-a", "Swim", 16))));
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("hog-b", "Swim", 16))));
  const std::string departed = service.HandleLine("DEPART name=hog-a");
  ASSERT_TRUE(IsOkBlock(departed)) << departed;
  if (departed.find("moved = hog-b") != std::string::npos) {
    const StatusOr<std::string> text = ReadTextFile(journal);
    ASSERT_TRUE(text.ok());
    EXPECT_NE(text->find("MOVED name=hog-b"), std::string::npos) << *text;
  }
}

TEST(SocketTransport, ServesClientsAndShutsDown) {
  PlacementService service = MustCreate(FourNodeRack(), ServiceOptions{});
  const std::string path = ::testing::TempDir() + "/pandia_serve_test.sock";
  StatusOr<SocketServer> server = SocketServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::thread loop([&service, &server] {
    const Status served = RunEventLoop(service, /*stdin_fd=*/-1, stdout, &*server);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  const StatusOr<std::string> first =
      SocketExchange(path, AdmitLine("sock-job", "MD", 4) + "\nSTATUS\n");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(IsOkBlock(*first)) << *first;
  EXPECT_NE(first->find("job = sock-job"), std::string::npos) << *first;

  const StatusOr<std::string> second = SocketExchange(path, "SHUTDOWN\n");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(second->find("ok SHUTDOWN"), std::string::npos) << *second;
  loop.join();
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(SocketTransport, SurvivesStdinEofWhileSocketConfigured) {
  // A backgrounded daemon has its stdin closed immediately; with a socket
  // configured that must detach stdin, not end the loop.
  PlacementService service = MustCreate(FourNodeRack(), ServiceOptions{});
  const std::string path = ::testing::TempDir() + "/pandia_serve_eof.sock";
  StatusOr<SocketServer> server = SocketServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  int stdin_pipe[2];
  ASSERT_EQ(pipe(stdin_pipe), 0);
  close(stdin_pipe[1]);  // immediate EOF, like `daemon < /dev/null &`

  std::thread loop([&service, &server, &stdin_pipe] {
    const Status served =
        RunEventLoop(service, stdin_pipe[0], stdout, &*server);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  const StatusOr<std::string> status = SocketExchange(path, "STATUS\n");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_NE(status->find("ok STATUS"), std::string::npos) << *status;

  const StatusOr<std::string> bye = SocketExchange(path, "SHUTDOWN\n");
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  loop.join();
  close(stdin_pipe[0]);
  EXPECT_TRUE(service.shutdown_requested());
}

// The acceptance-criterion soak. Every response must be a framed ok/err
// block (nothing may abort), and a daemon rebuilt from the journal after a
// "kill" must answer STATUS with the exact pre-kill bytes.
TEST(ServeSoak, TwoHundredEventsThenKillAndReplay) {
  const std::string journal = ::testing::TempDir() + "/pandia_soak_journal.wire";
  std::remove(journal.c_str());
  ServiceOptions options;
  options.journal_path = journal;

  std::optional<PlacementService> service(MustCreate(FourNodeRack(), options));
  const std::vector<std::string> suite = {"EP", "MD", "CG"};
  Rng rng(42);
  std::vector<std::string> live;
  int events = 0;
  int admits = 0;
  int departs = 0;
  int rebalances = 0;
  int next_id = 0;
  while (events < 220) {
    ++events;
    const uint64_t roll = rng.NextU64() % 10;
    std::string response;
    if (roll < 5) {
      const std::string name = StrFormat("job%d", next_id++);
      const std::string& workload = suite[rng.NextU64() % suite.size()];
      const int threads = 1 + static_cast<int>(rng.NextU64() % 4);
      response = service->HandleLine(AdmitLine(name, workload, threads));
      ++admits;
      if (IsOkBlock(response)) {
        live.push_back(name);
      }
    } else if (roll < 8) {
      // Departures sometimes target a job that never existed — that must be
      // a clean not-found error, not a crash.
      std::string name = "ghost";
      if (!live.empty() && roll != 7) {
        const size_t victim = rng.NextU64() % live.size();
        name = live[victim];
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      }
      response = service->HandleLine("DEPART name=" + name);
      ++departs;
    } else {
      response = service->HandleLine("REBALANCE max-migrations=1");
      ++rebalances;
    }
    ASSERT_TRUE(IsOkBlock(response) || IsErrBlock(response))
        << "event " << events << ": " << response;
    ASSERT_GE(response.size(), 2u);
    ASSERT_EQ(response.substr(response.size() - 2), ".\n") << response;
    if (events % 13 == 0) {
      const std::string garbage = service->HandleLine("GARBAGE ???");
      ASSERT_TRUE(IsErrBlock(garbage)) << garbage;
    }
  }
  EXPECT_GE(admits + departs + rebalances, 200);
  EXPECT_GT(admits, 0);
  EXPECT_GT(departs, 0);
  EXPECT_GT(rebalances, 0);
  EXPECT_EQ(service->rack().JobCount(), static_cast<int>(live.size()));

  const std::string status_before = service->HandleLine("STATUS");
  ASSERT_TRUE(IsOkBlock(status_before));
  service.reset();  // the "kill": no graceful teardown of rack state

  std::optional<PlacementService> replayed(MustCreate(FourNodeRack(), options));
  EXPECT_EQ(replayed->rack().JobCount(), static_cast<int>(live.size()));
  const std::string status_after = replayed->HandleLine("STATUS");
  EXPECT_EQ(status_after, status_before);

  // The revived daemon keeps serving: admissions still work and journal.
  const std::string more = replayed->HandleLine(AdmitLine("revived", "EP", 2));
  EXPECT_TRUE(IsOkBlock(more) || IsErrBlock(more)) << more;
}

TEST(PlacementService, EmptyJournalFileIsAFreshJournal) {
  // A 0-byte journal (touch, or a crash between fopen and the header write)
  // must replay as empty AND still get the header, so records appended
  // afterwards survive the next restart.
  const std::string journal = ::testing::TempDir() + "/pandia_empty_journal.wire";
  ASSERT_TRUE(WriteTextFile(journal, "").ok());
  ServiceOptions options;
  options.journal_path = journal;
  {
    StatusOr<PlacementService> service =
        PlacementService::Create(FourNodeRack(), options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ(service->rack().JobCount(), 0);
    ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("survivor", "EP", 2))));
  }
  StatusOr<PlacementService> replayed =
      PlacementService::Create(FourNodeRack(), options);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->rack().JobCount(), 1);
  EXPECT_TRUE(replayed->rack().Has("survivor"));
  std::remove(journal.c_str());
}

TEST(SocketTransport, RefusesToClobberALiveListener) {
  const std::string path = ::testing::TempDir() + "/pandia_clobber.sock";
  std::remove(path.c_str());
  {
    StatusOr<SocketServer> first = SocketServer::Listen(path);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    StatusOr<SocketServer> second = SocketServer::Listen(path);
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  }
  // The first server's teardown removed the path; a fresh Listen works.
  StatusOr<SocketServer> again = SocketServer::Listen(path);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST(SocketTransport, RefusesToDeleteANonSocketPath) {
  const std::string path = ::testing::TempDir() + "/pandia_not_a_socket";
  ASSERT_TRUE(WriteTextFile(path, "precious data\n").ok());
  StatusOr<SocketServer> server = SocketServer::Listen(path);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kFailedPrecondition);
  const StatusOr<std::string> kept = ReadTextFile(path);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, "precious data\n");
  std::remove(path.c_str());
}

TEST(SocketTransport, ReplacesAStaleSocketFile) {
  // A bound-then-closed socket leaves its file behind with nobody
  // listening, exactly what a crashed daemon leaves; Listen reclaims it.
  const std::string path = ::testing::TempDir() + "/pandia_stale.sock";
  std::remove(path.c_str());
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(stale);

  StatusOr<SocketServer> server = SocketServer::Listen(path);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
}

TEST(SocketTransport, SurvivesClientsThatHangUpBeforeTheResponse) {
  // Clients that connect, ask, and vanish before reading must cost the
  // daemon one failed write, not a SIGPIPE death.
  PlacementService service = MustCreate(FourNodeRack(), ServiceOptions{});
  const std::string path = ::testing::TempDir() + "/pandia_hangup.sock";
  std::remove(path.c_str());
  StatusOr<SocketServer> server = SocketServer::Listen(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::thread loop([&service, &server] {
    const Status served = RunEventLoop(service, /*stdin_fd=*/-1, stdout, &*server);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int round = 0; round < 8; ++round) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    const char request[] = "STATUS\nSTATUS\nSTATUS\n";
    (void)::send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL);
    ::close(fd);  // gone before the daemon can possibly have answered
  }

  // The daemon is still alive and serving.
  const StatusOr<std::string> status = SocketExchange(path, "STATUS\n");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_NE(status->find("ok STATUS"), std::string::npos) << *status;
  const StatusOr<std::string> bye = SocketExchange(path, "SHUTDOWN\n");
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  loop.join();
}

// --- serving telemetry (TELEMETRY / RECORDER / METRICS format=expo) ------

TEST(PlacementService, TelemetryListsResidentJobsWithAdmitPrediction) {
  PlacementService service = MustCreate(FourNodeRack(), ServiceOptions{});
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("web", "EP", 4))));
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("db", "MD", 2))));

  const std::string telemetry = service.HandleLine("TELEMETRY");
  ASSERT_TRUE(IsOkBlock(telemetry)) << telemetry;
  EXPECT_NE(telemetry.find("jobs = 2"), std::string::npos);
  EXPECT_NE(telemetry.find("job = db "), std::string::npos);
  EXPECT_NE(telemetry.find("job = web "), std::string::npos);
  EXPECT_NE(telemetry.find("speedup-at-admit="), std::string::npos);
  EXPECT_NE(telemetry.find("slowdown-at-admit="), std::string::npos);
  EXPECT_NE(telemetry.find("current-speedup="), std::string::npos);
  EXPECT_NE(telemetry.find("degradation="), std::string::npos);
  // The prediction at admit is a real number, not the 0.0 fallback.
  EXPECT_EQ(telemetry.find("speedup-at-admit=0.000000"), std::string::npos);

  // TELEMETRY is read-only and takes no parameters.
  EXPECT_TRUE(IsErrBlock(service.HandleLine("TELEMETRY verbose=1")));

  ASSERT_TRUE(IsOkBlock(service.HandleLine("DEPART name=web")));
  const std::string after = service.HandleLine("TELEMETRY");
  EXPECT_NE(after.find("jobs = 1"), std::string::npos);
  EXPECT_EQ(after.find("job = web "), std::string::npos);
}

TEST(PlacementService, TelemetrySurvivesKillAndReplay) {
  const std::string journal =
      ::testing::TempDir() + "/pandia_telemetry_journal.wire";
  std::remove(journal.c_str());
  ServiceOptions options;
  options.journal_path = journal;

  std::optional<PlacementService> service(MustCreate(FourNodeRack(), options));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("web", "EP", 4))));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("db", "MD", 2))));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("cache", "CG", 2))));
  (void)service->HandleLine("REBALANCE max-migrations=2");
  ASSERT_TRUE(IsOkBlock(service->HandleLine("DEPART name=db")));
  const std::string before = service->HandleLine("TELEMETRY");
  ASSERT_TRUE(IsOkBlock(before)) << before;
  service.reset();  // the "kill"

  std::optional<PlacementService> replayed(MustCreate(FourNodeRack(), options));
  const std::string after = replayed->HandleLine("TELEMETRY");
  // Replay reconstructs the full telemetry state — admit-time predictions,
  // sequence numbers, and co-event counters — byte for byte.
  EXPECT_EQ(after, before);
  std::remove(journal.c_str());
}

TEST(PlacementService, MetricsExpoFormat) {
  PlacementService service = MustCreate(FourNodeRack(), ServiceOptions{});
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("web", "EP", 4))));

  const std::string expo = service.HandleLine("METRICS format=expo");
  ASSERT_TRUE(IsOkBlock(expo)) << expo;
  // Bare `name value` samples (the registry is process-global, so only
  // presence is asserted, not exact counts) and histogram rows with
  // cumulative le-buckets plus count and sum.
  EXPECT_NE(expo.find("serve.admit.requests "), std::string::npos);
  EXPECT_NE(expo.find("serve.admit.latency_us{le="), std::string::npos);
  EXPECT_NE(expo.find("serve.admit.latency_us{le=+inf}"), std::string::npos);
  EXPECT_NE(expo.find("serve.admit.latency_us.count "), std::string::npos);
  EXPECT_NE(expo.find("serve.admit.latency_us.sum "), std::string::npos);
  EXPECT_NE(expo.find("serve.jobs "), std::string::npos);
  // The default table rendering is unchanged, and bad formats are errors.
  const std::string table = service.HandleLine("METRICS");
  ASSERT_TRUE(IsOkBlock(table)) << table;
  EXPECT_NE(table.find("counter rack.admissions"), std::string::npos);
  EXPECT_TRUE(IsErrBlock(service.HandleLine("METRICS format=xml")));
  EXPECT_TRUE(IsErrBlock(service.HandleLine("METRICS verbose=1")));
}

// Pulls the "<VERB> name=<x>" journal-event sequence out of a RECORDER dump.
std::vector<std::string> RecorderJournalEvents(const std::string& dump) {
  std::vector<std::string> events;
  for (size_t at = dump.find(" journal "); at != std::string::npos;
       at = dump.find(" journal ", at + 1)) {
    const size_t start = at + std::strlen(" journal ");
    const size_t end = dump.find(" ok\n", start);
    if (end != std::string::npos) {
      events.push_back(dump.substr(start, end - start));
    }
  }
  return events;
}

TEST(PlacementService, RecorderDumpMatchesJournal) {
  const std::string journal =
      ::testing::TempDir() + "/pandia_recorder_journal.wire";
  std::remove(journal.c_str());
  ServiceOptions options;
  options.journal_path = journal;
  PlacementService service = MustCreate(FourNodeRack(), options);
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("web", "EP", 4))));
  ASSERT_TRUE(IsOkBlock(service.HandleLine(AdmitLine("db", "MD", 2))));
  ASSERT_TRUE(IsOkBlock(service.HandleLine("DEPART name=web")));

  const std::string dump = service.HandleLine("RECORDER");
  ASSERT_TRUE(IsOkBlock(dump)) << dump;
  EXPECT_NE(dump.find("capacity = 256"), std::string::npos);
  EXPECT_NE(dump.find("recorded = "), std::string::npos);
  EXPECT_NE(dump.find("dropped = 0"), std::string::npos);
  EXPECT_TRUE(IsErrBlock(service.HandleLine("RECORDER clear=1")));

  // The flight recorder's journal events mirror the journal file: same
  // records, same order.
  const std::vector<std::string> recorded = RecorderJournalEvents(dump);
  ASSERT_EQ(recorded.size(), 3u) << dump;
  EXPECT_EQ(recorded[0], "ADMITTED name=web");
  EXPECT_EQ(recorded[1], "ADMITTED name=db");
  EXPECT_EQ(recorded[2], "DEPARTED name=web");
  const StatusOr<std::string> journal_text = ReadTextFile(journal);
  ASSERT_TRUE(journal_text.ok());
  size_t cursor = 0;
  for (const std::string& event : recorded) {
    const size_t at = journal_text->find(event, cursor);
    ASSERT_NE(at, std::string::npos)
        << "journal is missing '" << event << "' after offset " << cursor;
    cursor = at + event.size();
  }

  // A request-class event exists for every verb handled so far.
  EXPECT_NE(dump.find("request ADMIT name=web"), std::string::npos);
  EXPECT_NE(dump.find("request DEPART name=web"), std::string::npos);
  std::remove(journal.c_str());
}

TEST(PlacementService, RejectsCorruptJournal) {
  const std::string journal = ::testing::TempDir() + "/pandia_corrupt_journal.wire";
  ASSERT_TRUE(WriteTextFile(journal, "not a journal\n").ok());
  ServiceOptions options;
  options.journal_path = journal;
  StatusOr<PlacementService> service =
      PlacementService::Create(FourNodeRack(), options);
  EXPECT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kDataLoss);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace pandia
