#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"

namespace pandia {
namespace sim {
namespace {

// A small deterministic machine for precise expectations: no turbo, no
// noise, generous caches.
MachineSpec CalmMachine() {
  MachineSpec spec = MakeX3_2();
  spec.topo.name = "calm";
  spec.turbo_enabled = false;
  spec.noise_magnitude = 0.0;
  spec.smt_pressure = 0.3;
  return spec;
}

// A fully parallel compute-light workload that contends with nothing.
WorkloadSpec IdealWorkload() {
  WorkloadSpec spec;
  spec.name = "ideal";
  spec.total_work = 100.0;
  spec.parallel_fraction = 1.0;
  spec.balance = BalanceMode::kStatic;
  spec.ops_per_work = 1.0;
  spec.single_thread_ipc = 0.5;
  spec.l1_bpw = 1.0;
  spec.l2_bpw = 0.0;
  spec.l3_bpw = 0.0;
  spec.dram_bpw = 0.0;
  spec.duty_cycle = 1.0;
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

double RunTime(const Machine& machine, const WorkloadSpec& workload,
               const Placement& placement) {
  return machine.RunOne(workload, placement).jobs[0].completion_time;
}

TEST(SimMachine, SingleThreadTimeMatchesClosedForm) {
  const Machine machine{CalmMachine()};
  const WorkloadSpec workload = IdealWorkload();
  const double time =
      RunTime(machine, workload, Placement::OnePerCore(machine.topology(), 1));
  // Rate = single_thread_ipc * core_ops (no turbo) = 0.5 * 7.4.
  EXPECT_NEAR(time, 100.0 / (0.5 * 7.4), 1e-9);
}

TEST(SimMachine, PerfectScalingForIdealWorkload) {
  const Machine machine{CalmMachine()};
  const WorkloadSpec workload = IdealWorkload();
  const double t1 = RunTime(machine, workload, Placement::OnePerCore(machine.topology(), 1));
  const double t8 = RunTime(machine, workload, Placement::OnePerCore(machine.topology(), 8));
  EXPECT_NEAR(t1 / t8, 8.0, 1e-6);
}

TEST(SimMachine, AmdahlLimitsSpeedup) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.parallel_fraction = 0.9;
  const double t1 = RunTime(machine, workload, Placement::OnePerCore(machine.topology(), 1));
  const double t8 = RunTime(machine, workload, Placement::OnePerCore(machine.topology(), 8));
  const double expected = 1.0 / (0.1 + 0.9 / 8.0);
  EXPECT_NEAR(t1 / t8, expected, 1e-6);
}

TEST(SimMachine, WorkIsConserved) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.parallel_fraction = 0.8;
  const RunResult result =
      machine.RunOne(workload, Placement::OnePerCore(machine.topology(), 6));
  double total = 0.0;
  for (const ThreadResult& thread : result.jobs[0].threads) {
    total += thread.work_done;
  }
  EXPECT_NEAR(total, workload.total_work, 1e-6);
}

TEST(SimMachine, CountersMatchDemandTimesWork) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.l1_bpw = 3.0;
  const RunResult result =
      machine.RunOne(workload, Placement::OnePerCore(machine.topology(), 2));
  const ResourceIndex& index = machine.index();
  double l1_bytes = 0.0;
  double instructions = 0.0;
  for (int c = 0; c < machine.topology().NumCores(); ++c) {
    l1_bytes += result.jobs[0].resource_consumption[index.L1(c)];
    instructions += result.jobs[0].resource_consumption[index.Core(c)];
  }
  EXPECT_NEAR(l1_bytes, 3.0 * workload.total_work, 1e-6);
  EXPECT_NEAR(instructions, 1.0 * workload.total_work, 1e-6);
}

TEST(SimMachine, DramChannelSaturationFlattensScaling) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.dram_bpw = 4.0;  // per-thread demand 4 * 3.7 = 14.8; channel is 42
  workload.l3_bpw = 4.0;
  const MachineTopology& topo = machine.topology();
  const double t1 = RunTime(machine, workload, Placement::OnePerCore(topo, 1));
  const double t2 = RunTime(machine, workload, Placement::OnePerCore(topo, 2));
  const double t8 = RunTime(machine, workload, Placement::OnePerCore(topo, 8));
  // Two threads still scale nearly perfectly (bank-level parallelism also
  // raises the channel's achievable bandwidth); eight saturate the channel
  // well below 8x.
  EXPECT_GT(t1 / t2, 1.8);
  EXPECT_LE(t1 / t2, 2.0 + 1e-9);
  EXPECT_LT(t1 / t8, 4.5);
  EXPECT_GT(t1 / t8, 2.0);
}

TEST(SimMachine, InterleavedTrafficCrossesTheInterconnect) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.dram_bpw = 2.0;
  workload.l3_bpw = 2.0;
  workload.memory_policy = MemoryPolicy::kInterleaveActive;
  const MachineTopology& topo = machine.topology();
  // 8 threads over both sockets: half of all DRAM traffic is remote.
  std::vector<SocketLoad> loads{{4, 0}, {4, 0}};
  const RunResult result =
      machine.RunOne(workload, Placement::FromSocketLoads(topo, loads));
  const double link_bytes =
      result.jobs[0].resource_consumption[machine.index().Link(0, 1)];
  EXPECT_NEAR(link_bytes, 0.5 * 2.0 * workload.total_work, 1e-6);
}

TEST(SimMachine, LocalPolicyAvoidsTheInterconnect) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.dram_bpw = 2.0;
  workload.memory_policy = MemoryPolicy::kLocal;
  std::vector<SocketLoad> loads{{4, 0}, {4, 0}};
  const RunResult result = machine.RunOne(
      workload, Placement::FromSocketLoads(machine.topology(), loads));
  EXPECT_DOUBLE_EQ(result.jobs[0].resource_consumption[machine.index().Link(0, 1)], 0.0);
}

TEST(SimMachine, RemoteAccessCostSlowsSpreadPlacements) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.dram_bpw = 0.5;
  workload.remote_access_cost = 0.05;
  workload.memory_policy = MemoryPolicy::kInterleaveActive;
  const MachineTopology& topo = machine.topology();
  const double local =
      RunTime(machine, workload, Placement::OnePerCore(topo, 2));
  std::vector<SocketLoad> loads{{1, 0}, {1, 0}};
  const double spread =
      RunTime(machine, workload, Placement::FromSocketLoads(topo, loads));
  EXPECT_GT(spread, local * 1.05);
}

TEST(SimMachine, CommIntensityChargesRemotePeers) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.comm_intensity = 0.01;
  const MachineTopology& topo = machine.topology();
  const double same_socket = RunTime(machine, workload, Placement::OnePerCore(topo, 4));
  std::vector<SocketLoad> loads{{2, 0}, {2, 0}};
  const double split = RunTime(machine, workload, Placement::FromSocketLoads(topo, loads));
  EXPECT_GT(split, same_socket * 1.02);
}

TEST(SimMachine, SmtSharingSlowsCoLocatedThreads) {
  const Machine machine{CalmMachine()};
  const WorkloadSpec workload = IdealWorkload();
  const MachineTopology& topo = machine.topology();
  const double spread = RunTime(machine, workload, Placement::OnePerCore(topo, 2));
  const double packed = RunTime(machine, workload, Placement::TwoPerCore(topo, 2));
  // smt_pressure = 0.3 halves nothing but costs ~23%.
  EXPECT_GT(packed, spread * 1.1);
}

TEST(SimMachine, BurstyThreadsCollideHarderOnSharedCores) {
  const Machine machine{CalmMachine()};
  WorkloadSpec smooth = IdealWorkload();
  smooth.ops_per_work = 4.0;  // make the core the contended resource
  WorkloadSpec bursty = smooth;
  bursty.name = "bursty";
  bursty.duty_cycle = 0.5;
  const MachineTopology& topo = machine.topology();
  const Placement packed = Placement::TwoPerCore(topo, 2);
  const Placement spread = Placement::OnePerCore(topo, 2);
  const double smooth_ratio =
      RunTime(machine, smooth, packed) / RunTime(machine, smooth, spread);
  const double bursty_ratio =
      RunTime(machine, bursty, packed) / RunTime(machine, bursty, spread);
  EXPECT_GT(bursty_ratio, smooth_ratio * 1.05);
}

TEST(SimMachine, TurboBoostsLightlyLoadedSockets) {
  MachineSpec spec = CalmMachine();
  spec.turbo_enabled = true;
  const Machine machine{spec};
  const WorkloadSpec workload = IdealWorkload();
  const MachineTopology& topo = machine.topology();
  const double alone = RunTime(machine, workload, Placement::OnePerCore(topo, 1));
  // Same single thread, but its socket is fully awake via idle co-runners:
  // use 8 one-per-core threads and compare per-thread completion indirectly.
  const RunResult result = machine.RunOne(workload, Placement::OnePerCore(topo, 8));
  EXPECT_GT(result.socket_frequency[0], 1.0);
  const Machine no_turbo{CalmMachine()};
  const double nominal = RunTime(no_turbo, workload, Placement::OnePerCore(topo, 1));
  // Single active core runs at max single-core turbo: 3.5 / 2.7.
  EXPECT_NEAR(nominal / alone, 3.5 / 2.7, 1e-6);
}

TEST(SimMachine, StaticStragglersDelayTheBarrier) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.ops_per_work = 4.0;
  const MachineTopology& topo = machine.topology();
  // 3 threads: two share a core (slow), one alone (fast).
  const Placement asym(topo, {2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  WorkloadSpec dynamic = workload;
  dynamic.name = "dynamic";
  dynamic.balance = BalanceMode::kDynamic;
  dynamic.chunk_fraction = 0.001;
  const double t_static = RunTime(machine, workload, asym);
  const double t_dynamic = RunTime(machine, dynamic, asym);
  // With stealing, the fast thread absorbs the imbalance.
  EXPECT_LT(t_dynamic, t_static * 0.97);
}

TEST(SimMachine, DynamicChunkTailCostsTime) {
  const Machine machine{CalmMachine()};
  WorkloadSpec fine = IdealWorkload();
  fine.balance = BalanceMode::kDynamic;
  fine.chunk_fraction = 0.0005;
  WorkloadSpec coarse = fine;
  coarse.name = "coarse";
  coarse.chunk_fraction = 0.1;
  const Placement placement = Placement::OnePerCore(machine.topology(), 8);
  EXPECT_GT(RunTime(machine, coarse, placement), RunTime(machine, fine, placement));
}

TEST(SimMachine, WorkGrowthAddsWorkPerThread) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.work_growth = 0.1;
  const RunResult result =
      machine.RunOne(workload, Placement::OnePerCore(machine.topology(), 4));
  double total = 0.0;
  for (const ThreadResult& thread : result.jobs[0].threads) {
    total += thread.work_done;
  }
  EXPECT_NEAR(total, 100.0 * (1.0 + 0.1 * 3), 1e-6);
}

TEST(SimMachine, MaxActiveThreadsLeavesOthersIdle) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.max_active_threads = 1;
  const RunResult result =
      machine.RunOne(workload, Placement::OnePerCore(machine.topology(), 4));
  EXPECT_GT(result.jobs[0].threads[0].work_done, 0.0);
  for (size_t i = 1; i < result.jobs[0].threads.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.jobs[0].threads[i].work_done, 0.0);
  }
}

TEST(SimMachine, CacheOverflowIncreasesDramTraffic) {
  const Machine machine{CalmMachine()};
  WorkloadSpec workload = IdealWorkload();
  workload.l3_bpw = 4.0;
  workload.dram_bpw = 0.1;
  workload.working_set = 4.0;  // 8 threads * 4 = 32 > 20 (L3) on one socket
  const MachineTopology& topo = machine.topology();
  const ResourceIndex& index = machine.index();
  const RunResult one = machine.RunOne(workload, Placement::OnePerCore(topo, 1));
  const RunResult eight = machine.RunOne(workload, Placement::OnePerCore(topo, 8));
  const double dram_per_work_1 =
      one.jobs[0].resource_consumption[index.Dram(0)] / workload.total_work;
  const double dram_per_work_8 =
      eight.jobs[0].resource_consumption[index.Dram(0)] / workload.total_work;
  EXPECT_GT(dram_per_work_8, dram_per_work_1 * 2.0);
}

TEST(SimMachine, BackgroundJobRunsForTheWholeDuration) {
  const Machine machine{CalmMachine()};
  const WorkloadSpec foreground = IdealWorkload();
  WorkloadSpec background = IdealWorkload();
  background.name = "bg";
  const MachineTopology& topo = machine.topology();
  std::vector<SocketLoad> bg_loads{{0, 0}, {1, 0}};
  const std::vector<JobRequest> jobs{
      {&foreground, Placement::OnePerCore(topo, 1), false},
      {&background, Placement::FromSocketLoads(topo, bg_loads), true},
  };
  const RunResult result = machine.Run(jobs);
  // The background thread is busy for the whole run.
  EXPECT_NEAR(result.jobs[1].threads[0].busy_time, result.wall_time, 1e-6);
  EXPECT_GT(result.jobs[1].threads[0].work_done, 0.0);
}

TEST(SimMachine, CoRunnerOnSameCoreSlowsForeground) {
  const Machine machine{CalmMachine()};
  const WorkloadSpec foreground = IdealWorkload();
  WorkloadSpec corunner = IdealWorkload();
  corunner.name = "corunner";
  const MachineTopology& topo = machine.topology();
  const double alone = RunTime(machine, foreground, Placement::OnePerCore(topo, 1));
  const std::vector<JobRequest> jobs{
      {&foreground, Placement::OnePerCore(topo, 1), false},
      {&corunner, Placement::OnePerCore(topo, 1), true},
  };
  const RunResult result = machine.Run(jobs);
  EXPECT_GT(result.jobs[0].completion_time, alone * 1.15);
}

TEST(SimMachine, DeterministicAcrossRuns) {
  const Machine machine{MakeX3_2()};
  const WorkloadSpec workload = IdealWorkload();
  const Placement placement = Placement::OnePerCore(machine.topology(), 5);
  const double a = RunTime(machine, workload, placement);
  const double b = RunTime(machine, workload, placement);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimMachine, NoiseVariesWithPlacement) {
  const Machine machine{MakeX3_2()};
  WorkloadSpec workload = IdealWorkload();
  workload.parallel_fraction = 0.0;  // same serial time regardless of threads
  const MachineTopology& topo = machine.topology();
  std::vector<SocketLoad> a_loads{{2, 0}, {0, 0}};
  std::vector<SocketLoad> b_loads{{0, 1}, {0, 0}};
  const double a = RunTime(machine, workload, Placement::FromSocketLoads(topo, a_loads));
  const double b = RunTime(machine, workload, Placement::FromSocketLoads(topo, b_loads));
  EXPECT_NE(a, b);
}

TEST(SimMachineDeath, RequiresExactlyOneForeground) {
  const Machine machine{CalmMachine()};
  const WorkloadSpec workload = IdealWorkload();
  const Placement placement = Placement::OnePerCore(machine.topology(), 1);
  const std::vector<JobRequest> none{{&workload, placement, true}};
  EXPECT_DEATH(machine.Run(none), "foreground");
  const std::vector<JobRequest> two{{&workload, placement, false},
                                    {&workload, placement, false}};
  EXPECT_DEATH(machine.Run(two), "foreground");
}

TEST(SimMachineDeath, RejectsMismatchedTopology) {
  const Machine machine{CalmMachine()};
  const Machine other{MakeX5_2()};
  const WorkloadSpec workload = IdealWorkload();
  const Placement placement = Placement::OnePerCore(other.topology(), 1);
  const std::vector<JobRequest> jobs{{&workload, placement, false}};
  EXPECT_DEATH(machine.Run(jobs), "topology");
}

// --- TurboCurve unit behaviour ---

TEST(TurboCurve, MonotonicallyDecreasing) {
  const TurboCurve curve{.nominal_ghz = 2.3, .max_single_ghz = 3.6, .max_all_ghz = 2.8};
  double prev = curve.Multiplier(1, 18, true);
  for (int active = 2; active <= 18; ++active) {
    const double mult = curve.Multiplier(active, 18, true);
    EXPECT_LE(mult, prev);
    prev = mult;
  }
  EXPECT_NEAR(curve.Multiplier(18, 18, true), 2.8 / 2.3, 1e-12);
}

TEST(TurboCurve, DisabledIsNominal) {
  const TurboCurve curve{.nominal_ghz = 2.3, .max_single_ghz = 3.6, .max_all_ghz = 2.8};
  EXPECT_DOUBLE_EQ(curve.Multiplier(1, 18, false), 1.0);
  EXPECT_DOUBLE_EQ(curve.Multiplier(18, 18, false), 1.0);
}

TEST(MachineSpecs, LookupByName) {
  EXPECT_EQ(MachineByName("x5-2").topo.cores_per_socket, 18);
  EXPECT_EQ(MachineByName("x2-4").topo.num_sockets, 4);
  EXPECT_FALSE(MachineByName("x2-4").adaptive_caches);
  EXPECT_DEATH(MachineByName("pdp-11"), "unknown machine");
}

}  // namespace
}  // namespace sim
}  // namespace pandia
