#include <gtest/gtest.h>

#include <cstdio>

#include "src/machine_desc/generator.h"
#include "src/serialize/serialize.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/topology/placement_parse.h"
#include "src/util/strings.h"

namespace pandia {
namespace {

MachineDescription SomeMachine() {
  const sim::Machine machine{sim::MakeX3_2()};
  return GenerateMachineDescription(machine);
}

WorkloadDescription SomeWorkload() {
  WorkloadDescription desc;
  desc.workload = "MD";
  desc.machine = "x3-2";
  desc.t1 = 167.25;
  desc.demands = ResourceDemandVector{5.9, 71.0, 18.0, 13.5, 1.1, 0.25};
  desc.parallel_fraction = 0.9951;
  desc.inter_socket_overhead = 0.0108;
  desc.load_balance = 0.94;
  desc.burstiness = 0.14;
  desc.memory_policy = MemoryPolicy::kInterleaveAll;
  desc.profile_threads = 8;
  desc.r2 = 0.13;
  desc.r3 = 0.14;
  desc.r4 = 0.22;
  desc.r5 = 0.15;
  desc.r6 = 0.19;
  return desc;
}

// --- machine description round trip ---

TEST(SerializeMachine, RoundTripsAllFields) {
  const MachineDescription original = SomeMachine();
  const std::string text = MachineDescriptionToText(original);
  const StatusOr<MachineDescription> parsed = MachineDescriptionFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->topo.name, original.topo.name);
  EXPECT_EQ(parsed->topo.num_sockets, original.topo.num_sockets);
  EXPECT_EQ(parsed->topo.cores_per_socket, original.topo.cores_per_socket);
  EXPECT_EQ(parsed->topo.threads_per_core, original.topo.threads_per_core);
  EXPECT_DOUBLE_EQ(parsed->topo.l3_size, original.topo.l3_size);
  EXPECT_DOUBLE_EQ(parsed->core_ops, original.core_ops);
  EXPECT_DOUBLE_EQ(parsed->smt_combined_ops, original.smt_combined_ops);
  EXPECT_DOUBLE_EQ(parsed->l1_bw, original.l1_bw);
  EXPECT_DOUBLE_EQ(parsed->l2_bw, original.l2_bw);
  EXPECT_DOUBLE_EQ(parsed->l3_port_bw, original.l3_port_bw);
  EXPECT_DOUBLE_EQ(parsed->l3_agg_bw, original.l3_agg_bw);
  EXPECT_DOUBLE_EQ(parsed->dram_bw, original.dram_bw);
  EXPECT_DOUBLE_EQ(parsed->link_bw, original.link_bw);
}

TEST(SerializeMachine, RejectsWrongMagic) {
  const StatusOr<MachineDescription> parsed =
      MachineDescriptionFromText("bogus v9\ncore_ops = 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("magic"), std::string::npos);
}

TEST(SerializeMachine, RejectsMissingKey) {
  const std::string text = MachineDescriptionToText(SomeMachine());
  // Drop the dram_bw line.
  std::string mutated;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.rfind("dram_bw", 0) != 0) {
      mutated += line + "\n";
    }
  }
  const StatusOr<MachineDescription> parsed = MachineDescriptionFromText(mutated);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("dram_bw"), std::string::npos);
}

TEST(SerializeMachine, RejectsNonNumericValue) {
  std::string text = MachineDescriptionToText(SomeMachine());
  const size_t pos = text.find("core_ops = ");
  text.replace(pos, std::string("core_ops = ").size(), "core_ops = fast");
  // Remove the rest of the old value up to the newline.
  const size_t line_end = text.find('\n', pos);
  const size_t value_end = text.find('\n', pos + std::string("core_ops = fast").size());
  (void)line_end;
  text.erase(pos + std::string("core_ops = fast").size(),
             value_end - (pos + std::string("core_ops = fast").size()));
  const StatusOr<MachineDescription> parsed = MachineDescriptionFromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("core_ops"), std::string::npos);
}

TEST(SerializeMachine, RejectsDuplicateKey) {
  std::string text = MachineDescriptionToText(SomeMachine());
  text += "core_ops = 2\n";
  const StatusOr<MachineDescription> parsed = MachineDescriptionFromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("duplicate"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("core_ops"), std::string::npos);
}

TEST(SerializeMachine, RejectsImplausibleValueViaValidate) {
  std::string text = MachineDescriptionToText(SomeMachine());
  const size_t pos = text.find("dram_bw = ");
  const size_t end = text.find('\n', pos);
  text.replace(pos, end - pos, "dram_bw = -3");
  const StatusOr<MachineDescription> parsed = MachineDescriptionFromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("dram_bw"), std::string::npos);
}

TEST(SerializeMachine, ToleratesCommentsAndBlankLines) {
  std::string text = MachineDescriptionToText(SomeMachine());
  text += "\n# trailing comment\n\n";
  EXPECT_TRUE(MachineDescriptionFromText(text).ok());
}

// --- workload description round trip ---

TEST(SerializeWorkload, RoundTripsAllFields) {
  const WorkloadDescription original = SomeWorkload();
  const std::string text = WorkloadDescriptionToText(original);
  const StatusOr<WorkloadDescription> parsed = WorkloadDescriptionFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->workload, original.workload);
  EXPECT_EQ(parsed->machine, original.machine);
  EXPECT_DOUBLE_EQ(parsed->t1, original.t1);
  EXPECT_DOUBLE_EQ(parsed->demands.instr_rate, original.demands.instr_rate);
  EXPECT_DOUBLE_EQ(parsed->demands.dram_remote_bw, original.demands.dram_remote_bw);
  EXPECT_DOUBLE_EQ(parsed->parallel_fraction, original.parallel_fraction);
  EXPECT_DOUBLE_EQ(parsed->inter_socket_overhead, original.inter_socket_overhead);
  EXPECT_DOUBLE_EQ(parsed->load_balance, original.load_balance);
  EXPECT_DOUBLE_EQ(parsed->burstiness, original.burstiness);
  EXPECT_EQ(parsed->memory_policy, original.memory_policy);
  EXPECT_EQ(parsed->profile_threads, original.profile_threads);
  EXPECT_DOUBLE_EQ(parsed->r6, original.r6);
}

TEST(SerializeWorkload, RejectsUnknownPolicy) {
  std::string text = WorkloadDescriptionToText(SomeWorkload());
  const size_t pos = text.find("memory_policy = ");
  const size_t end = text.find('\n', pos);
  text.replace(pos, end - pos, "memory_policy = quantum");
  const StatusOr<WorkloadDescription> parsed = WorkloadDescriptionFromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("quantum"), std::string::npos);
}

TEST(SerializeWorkload, RejectsMachineMagic) {
  EXPECT_FALSE(
      WorkloadDescriptionFromText(MachineDescriptionToText(SomeMachine())).ok());
}

TEST(SerializeWorkload, RejectsOutOfRangeParallelFraction) {
  std::string text = WorkloadDescriptionToText(SomeWorkload());
  const size_t pos = text.find("parallel_fraction = ");
  const size_t end = text.find('\n', pos);
  text.replace(pos, end - pos, "parallel_fraction = 1.75");
  const StatusOr<WorkloadDescription> parsed = WorkloadDescriptionFromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("parallel_fraction"), std::string::npos);
}

TEST(SerializeWorkload, RejectsNaNField) {
  std::string text = WorkloadDescriptionToText(SomeWorkload());
  const size_t pos = text.find("t1 = ");
  const size_t end = text.find('\n', pos);
  text.replace(pos, end - pos, "t1 = nan");
  const StatusOr<WorkloadDescription> parsed = WorkloadDescriptionFromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("t1"), std::string::npos);
}

// --- file round trip ---

TEST(SerializeFiles, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/pandia_serialize_test.txt";
  const std::string content = MachineDescriptionToText(SomeMachine());
  ASSERT_TRUE(WriteTextFile(path, content).ok());
  const StatusOr<std::string> read = ReadTextFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
  std::remove(path.c_str());
}

TEST(SerializeFiles, ReadMissingFileFails) {
  const StatusOr<std::string> read = ReadTextFile("/nonexistent/pandia/file");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_NE(read.status().message().find("/nonexistent/pandia/file"),
            std::string::npos);
}

TEST(SerializeFiles, WriteToUnwritablePathFails) {
  const Status written = WriteTextFile("/nonexistent/pandia/file", "x");
  ASSERT_FALSE(written.ok());
  EXPECT_NE(written.message().find("/nonexistent/pandia/file"), std::string::npos);
}

// --- placement parsing ---

class PlacementParse : public ::testing::Test {
 protected:
  const MachineTopology topo_ = sim::MakeX3_2().topo;
};

TEST_F(PlacementParse, RoundTripsToString) {
  std::vector<SocketLoad> loads{{3, 2}, {1, 0}};
  const Placement original = Placement::FromSocketLoads(topo_, loads);
  std::string error;
  const std::optional<Placement> parsed =
      ParsePlacement(topo_, original.ToString().substr(original.ToString().find('[')),
                     &error);
  // ToString embeds "N threads [s0: ..., s1: ...]"; parse just the loads.
  ASSERT_FALSE(parsed.has_value());  // brackets are not part of the grammar
  const std::optional<Placement> direct = ParsePlacement(topo_, "s0:3x1+2x2,s1:1x1");
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(*direct == original);
}

TEST_F(PlacementParse, ShorthandOnePerCore) {
  const std::optional<Placement> p = ParsePlacement(topo_, "12");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(*p == Placement::OnePerCore(topo_, 12));
}

TEST_F(PlacementParse, ShorthandTwoPerCore) {
  const std::optional<Placement> p = ParsePlacement(topo_, "10x2");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(*p == Placement::TwoPerCore(topo_, 10));
}

TEST_F(PlacementParse, EmptySocketSpelledZero) {
  const std::optional<Placement> p = ParsePlacement(topo_, "s0:0,s1:4x1");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ThreadsOnSocket(0), 0);
  EXPECT_EQ(p->ThreadsOnSocket(1), 4);
}

TEST_F(PlacementParse, ToleratesSpaces) {
  const std::optional<Placement> p = ParsePlacement(topo_, "s0: 2x1+1x2, s1: 0");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->TotalThreads(), 4);
}

TEST_F(PlacementParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParsePlacement(topo_, "", &error).has_value());
  EXPECT_FALSE(ParsePlacement(topo_, "sA:1x1", &error).has_value());
  EXPECT_FALSE(ParsePlacement(topo_, "s0:1x3", &error).has_value());
  EXPECT_NE(error.find("x3"), std::string::npos);
  EXPECT_FALSE(ParsePlacement(topo_, "s9:1x1", &error).has_value());
  EXPECT_FALSE(ParsePlacement(topo_, "s0:9x1", &error).has_value());  // > 8 cores
  EXPECT_FALSE(ParsePlacement(topo_, "s0:0,s1:0", &error).has_value());  // empty
  EXPECT_FALSE(ParsePlacement(topo_, "99", &error).has_value());  // > cores
  EXPECT_FALSE(ParsePlacement(topo_, "999x2", &error).has_value());
}

TEST_F(PlacementParse, RejectsOversubscribedMix) {
  std::string error;
  EXPECT_FALSE(ParsePlacement(topo_, "s0:5x1+4x2", &error).has_value());
  EXPECT_NE(error.find("over-subscribed"), std::string::npos);
}

}  // namespace
}  // namespace pandia
