#include <gtest/gtest.h>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/report.h"

namespace pandia {
namespace {

// The paper's worked-example machine (Figure 3) keeps expectations exact.
MachineDescription ExampleMachine() {
  MachineDescription desc;
  desc.topo = MachineTopology{.name = "figure3",
                              .num_sockets = 2,
                              .cores_per_socket = 2,
                              .threads_per_core = 2,
                              .l1_size = 1.0,
                              .l2_size = 1.0,
                              .l3_size = 1.0};
  desc.core_ops = 10.0;
  desc.smt_combined_ops = 10.0;
  desc.l1_bw = 1e9;
  desc.l2_bw = 1e9;
  desc.l3_port_bw = 1e9;
  desc.l3_agg_bw = 1e9;
  desc.dram_bw = 100.0;
  desc.link_bw = 50.0;
  return desc;
}

WorkloadDescription ExampleWorkload() {
  WorkloadDescription desc;
  desc.workload = "example";
  desc.machine = "figure3";
  desc.t1 = 1000.0;
  desc.demands.instr_rate = 7.0;
  desc.demands.dram_local_bw = 40.0;
  desc.demands.dram_remote_bw = 40.0;
  desc.memory_policy = MemoryPolicy::kInterleaveAll;
  desc.parallel_fraction = 0.9;
  desc.inter_socket_overhead = 0.1;
  desc.load_balance = 0.5;
  desc.burstiness = 0.5;
  return desc;
}

TEST(Report, FoldsIdenticalThreadsAndNamesBottleneck) {
  const MachineDescription machine = ExampleMachine();
  const Predictor predictor(machine, ExampleWorkload());
  const Placement placement(machine.topo, {2, 0, 1, 0});
  const Prediction prediction = predictor.Predict(placement);
  const std::string report = ExplainPrediction(machine, placement, prediction);
  // U and V fold into one 2-thread row; W gets its own row.
  EXPECT_NE(report.find("prediction for 3 threads"), std::string::npos) << report;
  EXPECT_NE(report.find("Amdahl speedup 2.50"), std::string::npos) << report;
  EXPECT_NE(report.find("link0-1"), std::string::npos) << report;
  // Two data rows: one with 2 threads, one with 1.
  EXPECT_NE(report.find("\n  2        0"), std::string::npos) << report;
  EXPECT_NE(report.find("\n  1        1"), std::string::npos) << report;
}

TEST(Report, LargePlacementStaysCompact) {
  const MachineDescription machine = ExampleMachine();
  const Predictor predictor(machine, ExampleWorkload());
  // Fully packed machine: 8 identical threads -> a single folded row.
  const Placement placement = Placement::TwoPerCore(machine.topo, 8);
  const Prediction prediction = predictor.Predict(placement);
  const std::string report = ExplainPrediction(machine, placement, prediction);
  int rows = 0;
  size_t pos = 0;
  while ((pos = report.find("\n  ", pos)) != std::string::npos) {
    ++rows;
    pos += 3;
  }
  // Header lines plus at most a handful of folded class rows.
  EXPECT_LE(rows, 6) << report;
}

TEST(ReportDeath, RejectsMismatchedPrediction) {
  const MachineDescription machine = ExampleMachine();
  const Predictor predictor(machine, ExampleWorkload());
  const Placement small = Placement::OnePerCore(machine.topo, 1);
  const Placement large = Placement::OnePerCore(machine.topo, 3);
  const Prediction prediction = predictor.Predict(small);
  EXPECT_DEATH(ExplainPrediction(machine, large, prediction), "PANDIA_CHECK");
}

}  // namespace
}  // namespace pandia
