#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/crc32c.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace pandia {
namespace {

// --- stats ---

TEST(Stats, MeanOfSingleton) { EXPECT_DOUBLE_EQ(Mean(std::vector<double>{3.5}), 3.5); }

TEST(Stats, MeanOfSeveral) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{9.0, 1.0, 5.0}), 5.0);
}

TEST(Stats, MedianEvenCountAveragesMiddle) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianUnsortedInputIsSortedInternally) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{100.0, -5.0, 7.0}), 7.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 30.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 75.0), 7.5);
}

TEST(Stats, StdDevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(StdDev(std::vector<double>{2.0, 2.0, 2.0}), 0.0);
}

TEST(Stats, StdDevKnownValue) {
  // Population stddev of {1, 3} is 1.
  EXPECT_DOUBLE_EQ(StdDev(std::vector<double>{1.0, 3.0}), 1.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(Stats, SummarizeIsConsistent) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
}

TEST(Stats, GeoMeanKnownValue) {
  EXPECT_NEAR(GeoMean(std::vector<double>{1.0, 4.0}), 2.0, 1e-12);
}

TEST(StatsDeath, EmptyInputAborts) {
  EXPECT_DEATH(Mean(std::vector<double>{}), "PANDIA_CHECK");
  EXPECT_DEATH(Median(std::vector<double>{}), "PANDIA_CHECK");
  EXPECT_DEATH(Min(std::vector<double>{}), "PANDIA_CHECK");
}

TEST(StatsDeath, GeoMeanRejectsNonPositive) {
  EXPECT_DEATH(GeoMean(std::vector<double>{1.0, 0.0}), "positive");
}

// --- rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextBounded(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, JitterSymmetricRange) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double j = rng.NextJitter(0.05);
    EXPECT_LE(std::fabs(j), 0.05);
    sum += j;
  }
  // Mean jitter is close to zero.
  EXPECT_NEAR(sum / 2000.0, 0.0, 0.005);
}

TEST(Rng, HashCombineDependsOnAllKeys) {
  EXPECT_NE(HashCombine(1, 2, 3), HashCombine(1, 3, 2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 2));
  EXPECT_EQ(HashCombine(1, 2, 3), HashCombine(1, 2, 3));
}

// --- strings ---

TEST(Strings, FormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
}

TEST(Strings, FormatEmpty) { EXPECT_EQ(StrFormat("%s", ""), ""); }

TEST(Strings, FormatLongOutput) {
  const std::string s = StrFormat("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(Strings, SplitKeepsEmptyFields) {
  const std::vector<std::string> fields = StrSplit("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitNoSeparator) {
  const std::vector<std::string> fields = StrSplit("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

// --- table ---

TEST(Table, CountsRows) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableDeath, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "v"});
  t.AddRow({"x", "10"});
  t.AddRow({"longer", "2"});
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  t.Print(tmp);
  std::rewind(tmp);
  char buffer[256];
  ASSERT_NE(std::fgets(buffer, sizeof buffer, tmp), nullptr);
  EXPECT_EQ(std::string(buffer), "name    v \n");
  std::fclose(tmp);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  t.PrintCsv(tmp);
  std::rewind(tmp);
  char buffer[64];
  ASSERT_NE(std::fgets(buffer, sizeof buffer, tmp), nullptr);
  EXPECT_EQ(std::string(buffer), "a,b\n");
  ASSERT_NE(std::fgets(buffer, sizeof buffer, tmp), nullptr);
  EXPECT_EQ(std::string(buffer), "1,2\n");
  std::fclose(tmp);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32c, Rfc3720CheckValue) {
  // The CRC32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32c, SensitiveToEveryByte) {
  EXPECT_NE(Crc32c("ADMITTED name=web"), Crc32c("ADMITTED name=wec"));
  EXPECT_NE(Crc32c("a"), Crc32c(std::string("a\0", 2)));
  EXPECT_NE(Crc32c("ab"), Crc32c("ba"));
}

TEST(Crc32c, ExtendComposesLikeOneShot) {
  const std::string text = "pandia journal record payload";
  for (size_t split = 0; split <= text.size(); ++split) {
    uint32_t crc = ExtendCrc32c(0, text.substr(0, split));
    crc = ExtendCrc32c(crc, text.substr(split));
    EXPECT_EQ(crc, Crc32c(text)) << "split at " << split;
  }
}

}  // namespace
}  // namespace pandia
