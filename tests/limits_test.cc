// Tests for the §6.3/§6.4 limit-study mechanics: work growth, capped
// parallelism, and discontinuous scaling via quantized parallel loops.
#include <gtest/gtest.h>

#include "src/eval/pipeline.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

const sim::Machine& X5() {
  static const sim::Machine machine{sim::MakeX5_2()};
  return machine;
}

double Time(const sim::Machine& machine, const sim::WorkloadSpec& spec, int threads) {
  const MachineTopology& topo = machine.topology();
  const Placement placement = threads <= topo.NumCores()
                                  ? Placement::OnePerCore(topo, threads)
                                  : Placement::TwoPerCore(topo, threads);
  return machine.RunOne(spec, placement).jobs[0].completion_time;
}

TEST(Limits, QuantizedLoopPlateausBetweenDivisors) {
  const sim::WorkloadSpec spec = workloads::BtSmall();
  ASSERT_EQ(spec.parallel_quanta, 64);
  // §6.4: "By the time 32 threads are reached there will be no further
  // performance increase until 64 threads are available". With 33..63
  // threads some thread still executes 2 of the 64 iterations.
  const double t32 = Time(X5(), spec, 32);
  const double t48 = Time(X5(), spec, 48);
  const double t64 = Time(X5(), spec, 64);
  EXPECT_GT(t48, t32 * 0.95);   // no meaningful gain from 32 -> 48
  EXPECT_LT(t64, t48 * 0.85);   // the next divisor unlocks a real gain
}

TEST(Limits, QuantizedLoopConservesWork) {
  const sim::WorkloadSpec spec = workloads::BtSmall();
  const sim::RunResult result =
      X5().RunOne(spec, Placement::OnePerCore(X5().topology(), 23));
  double total = 0.0;
  for (const sim::ThreadResult& thread : result.jobs[0].threads) {
    total += thread.work_done;
  }
  EXPECT_NEAR(total, spec.total_work, spec.total_work * 1e-6);
}

TEST(Limits, QuantizedLoopMatchesEqualSplitAtDivisors) {
  // At thread counts dividing the quanta, quantization changes nothing.
  sim::WorkloadSpec quantized = workloads::BtSmall();
  sim::WorkloadSpec smooth = quantized;
  smooth.name = "BT-small-smooth";
  smooth.parallel_quanta = 0;
  for (int n : {8, 16, 32}) {
    EXPECT_NEAR(Time(X5(), quantized, n), Time(X5(), smooth, n),
                Time(X5(), smooth, n) * 0.021)  // noise keys differ by name
        << n;
  }
}

TEST(Limits, ModelMissesThePlateau) {
  // The predictor assumes plentiful fine-grained work (§2.3), so it keeps
  // predicting gains between 32 and 63 threads where the machine plateaus.
  const eval::Pipeline pipeline("x5-2");
  const sim::WorkloadSpec spec = workloads::BtSmall();
  const WorkloadDescription desc = pipeline.Profile(spec);
  const Predictor predictor = pipeline.MakePredictor(desc);
  const MachineTopology& topo = pipeline.machine().topology();
  const double pred32 = predictor.Predict(Placement::OnePerCore(topo, 32)).time;
  const double pred36 = predictor.Predict(Placement::OnePerCore(topo, 36)).time;
  EXPECT_LT(pred36, pred32 * 0.97);  // model predicts a gain...
  const double meas32 = Time(pipeline.machine(), spec, 32);
  const double meas36 = Time(pipeline.machine(), spec, 36);
  EXPECT_GT(meas36, meas32 * 0.97);  // ...that the machine does not deliver
                                     // (36 threads still run 2 iterations each)
}

TEST(Limits, EquakeWorkGrowthRaisesTotalWork) {
  const sim::WorkloadSpec spec = workloads::Equake();
  const sim::RunResult result =
      X5().RunOne(spec, Placement::OnePerCore(X5().topology(), 20));
  double total = 0.0;
  for (const sim::ThreadResult& thread : result.jobs[0].threads) {
    total += thread.work_done;
  }
  EXPECT_NEAR(total, spec.total_work * (1.0 + spec.work_growth * 19), 1.0);
}

TEST(Limits, Npo1tIgnoresExtraThreadsEntirely) {
  const sim::WorkloadSpec spec = workloads::NpoSingleThreaded();
  // With local-socket-only placements the run time is independent of the
  // number of idle extra threads (modulo turbo and noise).
  const MachineTopology& topo = X5().topology();
  const double t4 = X5().RunOne(spec, Placement::OnePerCore(topo, 4))
                        .jobs[0].completion_time;
  const double t16 = X5().RunOne(spec, Placement::OnePerCore(topo, 16))
                         .jobs[0].completion_time;
  EXPECT_NEAR(t4, t16, t4 * 0.1);
}

}  // namespace
}  // namespace pandia
