#include <gtest/gtest.h>

#include "src/machine_desc/generator.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/workload_desc/assumptions.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

const sim::Machine& X3() {
  static const sim::Machine machine{sim::MakeX3_2()};
  return machine;
}

const MachineDescription& X3Desc() {
  static const MachineDescription desc = GenerateMachineDescription(X3());
  return desc;
}

TEST(Assumptions, SuiteWorkloadsPassValidation) {
  for (const char* name : {"BT", "CG", "EP", "MD", "Swim", "NPO"}) {
    const AssumptionReport report =
        ValidateAssumptions(X3(), X3Desc(), workloads::ByName(name));
    EXPECT_TRUE(report.AllOk()) << name << ": "
                                << (report.warnings.empty() ? "" : report.warnings[0]);
    EXPECT_LT(report.work_growth_per_thread, 0.02) << name;
    EXPECT_LT(report.busy_time_skew, 0.08) << name;
  }
}

TEST(Assumptions, DetectsEquakeWorkGrowth) {
  const AssumptionReport report =
      ValidateAssumptions(X3(), X3Desc(), workloads::Equake());
  EXPECT_FALSE(report.constant_work_ok);
  // Ground truth growth is 0.05 per thread.
  EXPECT_NEAR(report.work_growth_per_thread, 0.05, 0.015);
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("constant-work"), std::string::npos);
}

TEST(Assumptions, DetectsCoarseParallelLoops) {
  // BT-small's 64 iterations over 7 threads: one thread runs 10 quanta,
  // the others 9 -> ~10% busy-time skew.
  const AssumptionReport report =
      ValidateAssumptions(X3(), X3Desc(), workloads::BtSmall());
  EXPECT_FALSE(report.fine_grained_ok);
  EXPECT_GT(report.busy_time_skew, 0.08);
  ASSERT_FALSE(report.warnings.empty());
}

TEST(Assumptions, RegularBtPassesWhereSmallFails) {
  const AssumptionReport big = ValidateAssumptions(X3(), X3Desc(), workloads::ByName("BT"));
  const AssumptionReport small = ValidateAssumptions(X3(), X3Desc(), workloads::BtSmall());
  EXPECT_TRUE(big.fine_grained_ok);
  EXPECT_FALSE(small.fine_grained_ok);
}

TEST(Assumptions, ReportIsCheapTwoRuns) {
  // The validator must stay two runs: cheap enough to bolt onto the six
  // profiling runs. (Smoke-check by timing: far below a placement sweep.)
  const AssumptionReport report =
      ValidateAssumptions(X3(), X3Desc(), workloads::ByName("CG"));
  EXPECT_TRUE(report.AllOk());
}

}  // namespace
}  // namespace pandia
