// Tests for the rack-scale scheduler (§8 future-work extension).
#include <gtest/gtest.h>

#include "src/eval/pipeline.h"
#include "src/rack/rack.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace rack {
namespace {

const eval::Pipeline& X3() {
  static const eval::Pipeline pipeline("x3-2");
  return pipeline;
}

const eval::Pipeline& X5() {
  static const eval::Pipeline pipeline("x5-2");
  return pipeline;
}

JobRequest MakeJob(const std::string& workload, int threads) {
  JobRequest job;
  job.name = workload;
  job.requested_threads = threads;
  job.descriptions.emplace("x3-2", X3().Profile(workloads::ByName(workload)));
  job.descriptions.emplace("x5-2", X5().Profile(workloads::ByName(workload)));
  return job;
}

std::vector<RackMachine> TwoNodeRack() {
  return {{"node0", X3().description()}, {"node1", X3().description()}};
}

// --- PlaceLoadsOnFreeCores ---

TEST(PlaceOnFreeCores, UsesOnlyFreeSlots) {
  const MachineTopology& topo = X3().machine().topology();
  std::vector<uint8_t> free(static_cast<size_t>(topo.NumCores()), 2);
  free[0] = 0;  // core 0 fully occupied
  free[1] = 1;  // core 1 half occupied
  std::vector<SocketLoad> loads{{2, 1}, {0, 0}};
  const std::optional<Placement> placement = PlaceLoadsOnFreeCores(topo, loads, free);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->ThreadsOnCore(0), 0);
  EXPECT_EQ(placement->TotalThreads(), 4);
  // Singles prefer the half-occupied core.
  EXPECT_EQ(placement->ThreadsOnCore(1), 1);
}

TEST(PlaceOnFreeCores, FailsWhenDoublesDoNotFit) {
  const MachineTopology& topo = X3().machine().topology();
  std::vector<uint8_t> free(static_cast<size_t>(topo.NumCores()), 1);  // all half
  std::vector<SocketLoad> loads{{0, 1}, {0, 0}};
  EXPECT_FALSE(PlaceLoadsOnFreeCores(topo, loads, free).has_value());
}

TEST(PlaceOnFreeCores, FailsWhenSocketFull) {
  const MachineTopology& topo = X3().machine().topology();
  std::vector<uint8_t> free(static_cast<size_t>(topo.NumCores()), 2);
  for (int c = 0; c < topo.cores_per_socket; ++c) {
    free[c] = 0;
  }
  std::vector<SocketLoad> loads{{1, 0}, {0, 0}};
  EXPECT_FALSE(PlaceLoadsOnFreeCores(topo, loads, free).has_value());
}

// --- scheduling ---

TEST(RackScheduler, PlacesEveryJobWhileRoomRemains) {
  RackScheduler scheduler(TwoNodeRack());
  const std::vector<JobRequest> jobs{MakeJob("CG", 8), MakeJob("EP", 8),
                                     MakeJob("MD", 8)};
  const std::vector<Assignment> assignments =
      scheduler.Schedule(jobs, Policy::kBestSpeedup);
  ASSERT_EQ(assignments.size(), 3u);
  for (const Assignment& assignment : assignments) {
    EXPECT_GE(assignment.machine_index, 0) << assignment.job;
    ASSERT_TRUE(assignment.placement.has_value());
    EXPECT_GE(assignment.placement->TotalThreads(), 1);
    EXPECT_LE(assignment.placement->TotalThreads(), 8);
    EXPECT_GT(assignment.predicted_speedup, 0.0);
  }
}

TEST(RackScheduler, NeverOverSubscribesAMachine) {
  RackScheduler scheduler(TwoNodeRack());
  // Far more thread demand than the rack holds (2 x 32 hardware threads).
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob("EP", 16));
  }
  const std::vector<Assignment> assignments =
      scheduler.Schedule(jobs, Policy::kFirstFit);
  std::vector<std::vector<int>> used(2);
  for (auto& u : used) {
    u.assign(static_cast<size_t>(X3().machine().topology().NumCores()), 0);
  }
  for (const Assignment& assignment : assignments) {
    if (assignment.machine_index < 0) {
      continue;
    }
    for (int c = 0; c < X3().machine().topology().NumCores(); ++c) {
      used[assignment.machine_index][c] += assignment.placement->ThreadsOnCore(c);
      EXPECT_LE(used[assignment.machine_index][c], 2);
    }
  }
}

TEST(RackScheduler, FirstFitFillsNodeZeroFirst) {
  RackScheduler scheduler(TwoNodeRack());
  const std::vector<JobRequest> jobs{MakeJob("EP", 4)};
  const std::vector<Assignment> assignments =
      scheduler.Schedule(jobs, Policy::kFirstFit);
  EXPECT_EQ(assignments[0].machine_index, 0);
}

TEST(RackScheduler, BestSpeedupAvoidsTheBusyMachine) {
  RackScheduler scheduler(TwoNodeRack());
  // Saturate node0 with a bandwidth hog, then place another one.
  const std::vector<JobRequest> first{MakeJob("Swim", 16)};
  scheduler.Schedule(first, Policy::kFirstFit);
  const std::vector<JobRequest> second{MakeJob("Swim", 16)};
  const std::vector<Assignment> assignments =
      scheduler.Schedule(second, Policy::kBestSpeedup);
  EXPECT_EQ(assignments[0].machine_index, 1);
}

TEST(RackScheduler, HeterogeneousRackPrefersTheBiggerMachine) {
  std::vector<RackMachine> machines{{"small", X3().description()},
                                    {"big", X5().description()}};
  RackScheduler scheduler(std::move(machines));
  const std::vector<JobRequest> jobs{MakeJob("MD", 36)};
  const std::vector<Assignment> assignments =
      scheduler.Schedule(jobs, Policy::kBestSpeedup);
  // MD scales: 36 threads on the Haswell beat 32 on the Sandy Bridge.
  EXPECT_EQ(assignments[0].machine_index, 1);
  EXPECT_EQ(assignments[0].placement->TotalThreads(), 36);
}

TEST(RackScheduler, SkipsMachinesWithoutADescription) {
  std::vector<RackMachine> machines{{"small", X3().description()},
                                    {"big", X5().description()}};
  RackScheduler scheduler(std::move(machines));
  JobRequest job;
  job.name = "CG-x5-only";
  job.requested_threads = 8;
  job.descriptions.emplace("x5-2", X5().Profile(workloads::ByName("CG")));
  const std::vector<Assignment> assignments =
      scheduler.Schedule(std::vector<JobRequest>{job}, Policy::kFirstFit);
  EXPECT_EQ(assignments[0].machine_index, 1);
}

TEST(RackScheduler, ReportsUnplaceableJobs) {
  std::vector<RackMachine> machines{{"node0", X3().description()}};
  RackScheduler scheduler(std::move(machines));
  std::vector<JobRequest> jobs{MakeJob("EP", 32), MakeJob("EP", 32),
                               MakeJob("EP", 4)};
  const std::vector<Assignment> assignments =
      scheduler.Schedule(jobs, Policy::kFirstFit);
  EXPECT_GE(assignments[0].machine_index, 0);
  EXPECT_EQ(assignments[1].machine_index, -1);  // machine already full
  EXPECT_EQ(assignments[2].machine_index, -1);
}

TEST(RackScheduler, LeastInterferenceBeatsFirstFitOnAggregateSpeedup) {
  // Two bandwidth hogs and two compute jobs on two nodes: interference-
  // aware assignment pairs a hog with a compute job instead of stacking
  // the hogs.
  const std::vector<JobRequest> jobs{MakeJob("Swim", 8), MakeJob("Bwaves", 8),
                                     MakeJob("EP", 8), MakeJob("MD", 8)};
  auto aggregate = [&](Policy policy) {
    RackScheduler scheduler(TwoNodeRack());
    double total = 0.0;
    for (const Assignment& assignment : scheduler.Schedule(jobs, policy)) {
      total += assignment.predicted_speedup;
    }
    return total;
  };
  EXPECT_GE(aggregate(Policy::kLeastInterference),
            aggregate(Policy::kFirstFit) * 0.99);
}

// --- Rack online mutations (the placement service's state machine) ---

TEST(Rack, AdmitDepartReadmitSequence) {
  Rack rack(TwoNodeRack());
  const StatusOr<Assignment> first = rack.Admit(MakeJob("EP", 8), Policy::kFirstFit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->machine_index, 0);
  EXPECT_TRUE(rack.Has("EP"));
  EXPECT_EQ(rack.JobCount(), 1);

  const StatusOr<Assignment> duplicate =
      rack.Admit(MakeJob("EP", 4), Policy::kFirstFit);
  EXPECT_EQ(duplicate.status().code(), StatusCode::kFailedPrecondition);

  const StatusOr<int> departed = rack.Depart("EP");
  ASSERT_TRUE(departed.ok());
  EXPECT_EQ(*departed, 0);
  EXPECT_FALSE(rack.Has("EP"));
  EXPECT_EQ(rack.JobCount(), 0);
  EXPECT_EQ(rack.Depart("EP").status().code(), StatusCode::kNotFound);

  // Re-admission of the freed name lands exactly where the first one did.
  const StatusOr<Assignment> second =
      rack.Admit(MakeJob("EP", 8), Policy::kFirstFit);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->machine_index, first->machine_index);
  ASSERT_TRUE(second->placement.has_value());
  EXPECT_TRUE(*second->placement == *first->placement);
}

TEST(Rack, RejectsJobWithNoDescriptionForAnyMachineType) {
  Rack rack(TwoNodeRack());  // both machines are x3-2
  JobRequest job;
  job.name = "x5-only";
  job.requested_threads = 4;
  job.descriptions.emplace("x5-2", X5().Profile(workloads::ByName("CG")));
  const StatusOr<Assignment> refused = rack.Admit(job, Policy::kFirstFit);
  EXPECT_EQ(refused.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rack.JobCount(), 0);
}

TEST(Rack, RejectsAdmissionWhenRackHasZeroFreeThreads) {
  std::vector<RackMachine> machines{{"node0", X3().description()}};
  Rack rack(std::move(machines));
  const MachineTopology& topo = X3().machine().topology();
  // Fill every hardware thread with one recorded admission.
  const std::vector<uint8_t> all_free(static_cast<size_t>(topo.NumCores()), 2);
  const std::vector<SocketLoad> full_loads(
      static_cast<size_t>(topo.num_sockets), SocketLoad{0, topo.cores_per_socket});
  const std::optional<Placement> full =
      PlaceLoadsOnFreeCores(topo, full_loads, all_free);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->TotalThreads(), topo.NumHwThreads());
  const JobRequest filler = MakeJob("EP", full->TotalThreads());
  ASSERT_TRUE(
      rack.AdmitAt("filler", 0, filler.descriptions.at("x3-2"), *full).ok());
  EXPECT_EQ(rack.FreeThreadCount(0), 0);

  const StatusOr<Assignment> refused =
      rack.Admit(MakeJob("MD", 1), Policy::kBestSpeedup);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(rack.JobCount(), 1);  // the filler is untouched
}

TEST(Rack, MoveRelocatesAcrossMachinesLikeDepartAndReadmit) {
  Rack rack(TwoNodeRack());
  ASSERT_TRUE(rack.Admit(MakeJob("EP", 4), Policy::kFirstFit).ok());
  const MachineTopology& topo = X3().machine().topology();
  const std::vector<SocketLoad> loads{{4, 0}, {0, 0}};
  const std::optional<Placement> placement =
      PlaceLoadsOnFreeCores(topo, loads, rack.FreeThreads(1));
  ASSERT_TRUE(placement.has_value());
  ASSERT_TRUE(rack.Move("EP", 1, *placement).ok());
  const StatusOr<int> where = rack.MachineOf("EP");
  ASSERT_TRUE(where.ok());
  EXPECT_EQ(*where, 1);
  EXPECT_TRUE(rack.JobsOn(0).empty());
  ASSERT_EQ(rack.JobsOn(1).size(), 1u);
  EXPECT_TRUE(rack.JobsOn(1)[0].placement == *placement);
}

TEST(Rack, TelemetryTracksAdmitSeqMovesAndCoEvents) {
  Rack rack(TwoNodeRack());
  ASSERT_TRUE(rack.Admit(MakeJob("EP", 4), Policy::kFirstFit).ok());
  {
    const Rack::TelemetrySnapshot snapshot = rack.Telemetry();
    EXPECT_EQ(snapshot.mutation_seq, 1u);
    ASSERT_EQ(snapshot.jobs.size(), 1u);
    const Rack::JobTelemetry& job = snapshot.jobs[0];
    EXPECT_EQ(job.name, "EP");
    EXPECT_EQ(job.machine_index, 0);
    EXPECT_EQ(job.threads, 4);
    EXPECT_EQ(job.admit_seq, 1u);
    EXPECT_EQ(job.moves, 0);
    EXPECT_EQ(job.co_events, 0u);
    EXPECT_GT(job.speedup_at_admit, 0.0);
    EXPECT_NEAR(job.slowdown_at_admit, 1.0 / job.speedup_at_admit, 1e-9);
    EXPECT_GT(job.current_speedup, 0.0);
  }

  // A second admission on the same machine is one co-event for EP.
  ASSERT_TRUE(rack.Admit(MakeJob("MD", 4), Policy::kFirstFit).ok());
  {
    const Rack::TelemetrySnapshot snapshot = rack.Telemetry();
    EXPECT_EQ(snapshot.mutation_seq, 2u);
    ASSERT_EQ(snapshot.jobs.size(), 2u);
    for (const Rack::JobTelemetry& job : snapshot.jobs) {
      EXPECT_EQ(job.co_events, job.name == "EP" ? 1u : 0u) << job.name;
    }
  }

  // Moving MD away churns machine 0 again and re-baselines MD on machine 1.
  const MachineTopology& topo = X3().machine().topology();
  const std::vector<SocketLoad> loads{{4, 0}, {0, 0}};
  const std::optional<Placement> placement =
      PlaceLoadsOnFreeCores(topo, loads, rack.FreeThreads(1));
  ASSERT_TRUE(placement.has_value());
  ASSERT_TRUE(rack.Move("MD", 1, *placement).ok());
  const Rack::TelemetrySnapshot snapshot = rack.Telemetry();
  EXPECT_EQ(snapshot.mutation_seq, 3u);
  for (const Rack::JobTelemetry& job : snapshot.jobs) {
    if (job.name == "MD") {
      EXPECT_EQ(job.machine_index, 1);
      EXPECT_EQ(job.moves, 1);
      EXPECT_EQ(job.co_events, 0u);  // re-baselined at the move
      EXPECT_EQ(job.admit_seq, 2u);  // admit_seq is the admission, not the move
    } else {
      EXPECT_EQ(job.moves, 0);
      EXPECT_EQ(job.co_events, 2u);  // MD's admission and its departure-by-move
    }
  }
}

TEST(Rack, TelemetryAdmitPredictionIsReplayStable) {
  // AdmitAt (journal replay) must reconstruct the same speedup-at-admit the
  // policy scored during the original Admit, so telemetry survives restarts.
  Rack original(TwoNodeRack());
  const JobRequest job = MakeJob("EP", 4);
  const StatusOr<Assignment> admitted = original.Admit(job, Policy::kBestSpeedup);
  ASSERT_TRUE(admitted.ok());
  ASSERT_TRUE(admitted->placement.has_value());

  Rack replayed(TwoNodeRack());
  ASSERT_TRUE(replayed
                  .AdmitAt("EP", admitted->machine_index,
                           job.descriptions.at("x3-2"), *admitted->placement)
                  .ok());
  const Rack::TelemetrySnapshot before = original.Telemetry();
  const Rack::TelemetrySnapshot after = replayed.Telemetry();
  ASSERT_EQ(before.jobs.size(), 1u);
  ASSERT_EQ(after.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(after.jobs[0].speedup_at_admit,
                   before.jobs[0].speedup_at_admit);
  EXPECT_GT(after.jobs[0].speedup_at_admit, 0.0);
}

TEST(Rack, ResetClearsTelemetry) {
  Rack rack(TwoNodeRack());
  ASSERT_TRUE(rack.Admit(MakeJob("EP", 4), Policy::kFirstFit).ok());
  rack.Reset();
  const Rack::TelemetrySnapshot snapshot = rack.Telemetry();
  EXPECT_EQ(snapshot.mutation_seq, 0u);
  EXPECT_TRUE(snapshot.jobs.empty());
  // Post-reset admissions restart the sequence from 1.
  ASSERT_TRUE(rack.Admit(MakeJob("MD", 2), Policy::kFirstFit).ok());
  EXPECT_EQ(rack.Telemetry().mutation_seq, 1u);
  ASSERT_EQ(rack.Telemetry().jobs.size(), 1u);
  EXPECT_EQ(rack.Telemetry().jobs[0].admit_seq, 1u);
}

TEST(Rack, PredictMachineMatchesResidentOrder) {
  Rack rack(TwoNodeRack());
  ASSERT_TRUE(rack.Admit(MakeJob("EP", 4), Policy::kFirstFit).ok());
  ASSERT_TRUE(rack.Admit(MakeJob("MD", 4), Policy::kFirstFit).ok());
  ASSERT_EQ(rack.JobsOn(0).size(), 2u);
  const std::vector<Prediction> predictions = rack.PredictMachine(0);
  ASSERT_EQ(predictions.size(), 2u);
  for (const Prediction& prediction : predictions) {
    EXPECT_GT(prediction.speedup, 0.0);
  }
  EXPECT_TRUE(rack.PredictMachine(1).empty());
}

TEST(RackScheduler, ResetClearsResidents) {
  RackScheduler scheduler(TwoNodeRack());
  scheduler.Schedule(std::vector<JobRequest>{MakeJob("EP", 8)}, Policy::kFirstFit);
  EXPECT_FALSE(scheduler.ResidentsOf(0).empty());
  scheduler.Reset();
  EXPECT_TRUE(scheduler.ResidentsOf(0).empty());
}

}  // namespace
}  // namespace rack
}  // namespace pandia
