#include <gtest/gtest.h>

#include "src/counters/counters.h"
#include "src/machine_desc/generator.h"
#include "src/machine_desc/machine_description.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/stress/stress.h"

namespace pandia {
namespace {

const sim::Machine& X3() {
  static const sim::Machine machine{sim::MakeX3_2()};
  return machine;
}

// --- CounterView ---

TEST(Counters, AggregatesMatchPerResourceSums) {
  const sim::Machine& machine = X3();
  const sim::WorkloadSpec spec = stress::L3Stressor();
  const sim::RunResult result =
      machine.RunOne(spec, Placement::OnePerCore(machine.topology(), 2));
  const CounterView view(machine, result, 0);
  double l3 = 0.0;
  for (int c = 0; c < machine.topology().NumCores(); ++c) {
    l3 += view.ResourceConsumption(machine.index().L3Port(c));
  }
  EXPECT_DOUBLE_EQ(view.L3Bytes(), l3);
  EXPECT_GT(view.Instructions(), 0.0);
  EXPECT_DOUBLE_EQ(view.WallTime(), result.wall_time);
}

TEST(Counters, DramPerNodeSumsToTotal) {
  const sim::Machine& machine = X3();
  sim::WorkloadSpec spec = stress::DramStressor();
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  const sim::RunResult result =
      machine.RunOne(spec, Placement::OnePerCore(machine.topology(), 4));
  const CounterView view(machine, result, 0);
  double per_node = 0.0;
  for (int s = 0; s < machine.topology().num_sockets; ++s) {
    per_node += view.DramBytesOnNode(s);
  }
  EXPECT_NEAR(view.DramBytes(), per_node, 1e-9);
  // Interleaved across both sockets: equal split.
  EXPECT_NEAR(view.DramBytesOnNode(0), view.DramBytesOnNode(1), 1e-6);
}

TEST(CountersDeath, RejectsBadJobIndex) {
  const sim::Machine& machine = X3();
  const sim::WorkloadSpec spec = stress::CpuStressor();
  const sim::RunResult result =
      machine.RunOne(spec, Placement::OnePerCore(machine.topology(), 1));
  EXPECT_DEATH(CounterView(machine, result, 1), "PANDIA_CHECK");
}

// --- stressors bind the intended resource ---

TEST(Stress, CpuStressorIsComputeBound) {
  const sim::Machine& machine = X3();
  const sim::RunResult result = machine.RunOne(
      stress::CpuStressor(), Placement::OnePerCore(machine.topology(), 1));
  const CounterView view(machine, result, 0);
  // Instruction traffic dominates byte traffic.
  EXPECT_GT(view.Instructions(), view.DramBytes() * 100.0);
  EXPECT_DOUBLE_EQ(view.DramBytes(), 0.0);
}

TEST(Stress, DramStressorMovesDramBytes) {
  const sim::Machine& machine = X3();
  const sim::RunResult result = machine.RunOne(
      stress::DramStressor(), Placement::OnePerCore(machine.topology(), 1));
  const CounterView view(machine, result, 0);
  EXPECT_GT(view.DramBytes(), 0.0);
  // Local policy: no interconnect traffic.
  EXPECT_DOUBLE_EQ(view.InterconnectBytes(), 0.0);
}

TEST(Stress, RemoteStressorCrossesTheLink) {
  const sim::Machine& machine = X3();
  const MachineTopology& topo = machine.topology();
  std::vector<SocketLoad> loads{{0, 0}, {2, 0}};
  const sim::RunResult result = machine.RunOne(
      stress::RemoteDramStressor(0), Placement::FromSocketLoads(topo, loads));
  const CounterView view(machine, result, 0);
  // All DRAM traffic lands on node 0 and crosses the link.
  EXPECT_NEAR(view.DramBytesOnNode(0), view.DramBytes(), 1e-9);
  EXPECT_NEAR(view.InterconnectBytes(), view.DramBytes(), 1e-9);
}

TEST(Stress, FillerPlacementCoversComplement) {
  const MachineTopology topo = X3().topology();
  const Placement used = Placement::OnePerCore(topo, 5);
  const std::optional<Placement> filler =
      stress::FillerPlacement(topo, std::span(&used, 1));
  ASSERT_TRUE(filler.has_value());
  for (int c = 0; c < topo.NumCores(); ++c) {
    const bool occupied = used.ThreadsOnCore(c) > 0;
    EXPECT_EQ(filler->ThreadsOnCore(c), occupied ? 0 : 1);
  }
}

TEST(Stress, FillerPlacementEmptyWhenMachineFull) {
  const MachineTopology topo = X3().topology();
  const Placement used = Placement::OnePerCore(topo, topo.NumCores());
  EXPECT_FALSE(stress::FillerPlacement(topo, std::span(&used, 1)).has_value());
}

// --- machine description generation ---

class MachineDescTest : public ::testing::Test {
 protected:
  static const MachineDescription& Desc() {
    static const MachineDescription desc = GenerateMachineDescription(X3());
    return desc;
  }
};

TEST_F(MachineDescTest, TopologyCopiedFromOs) {
  EXPECT_EQ(Desc().topo.num_sockets, 2);
  EXPECT_EQ(Desc().topo.cores_per_socket, 8);
  EXPECT_EQ(Desc().topo.threads_per_core, 2);
}

TEST_F(MachineDescTest, CoreRateReflectsAllCoreTurboAndIlp) {
  const sim::MachineSpec truth = sim::MakeX3_2();
  // Background-filled: all-core turbo bin; single thread capped by the
  // stressor's ILP (0.75 of the core).
  const double all_core = truth.turbo.Multiplier(truth.topo.cores_per_socket,
                                                 truth.topo.cores_per_socket, true);
  EXPECT_NEAR(Desc().core_ops, truth.core_ops * all_core * 0.75,
              Desc().core_ops * 0.03);
}

TEST_F(MachineDescTest, SmtCombinedExceedsSingleThread) {
  EXPECT_GT(Desc().smt_combined_ops, Desc().core_ops);
  const sim::MachineSpec truth = sim::MakeX3_2();
  const double all_core = truth.turbo.Multiplier(truth.topo.cores_per_socket,
                                                 truth.topo.cores_per_socket, true);
  EXPECT_NEAR(Desc().smt_combined_ops,
              truth.core_ops * all_core * truth.smt_combined_factor,
              Desc().smt_combined_ops * 0.03);
}

TEST_F(MachineDescTest, BandwidthsMatchGroundTruth) {
  const sim::MachineSpec truth = sim::MakeX3_2();
  const double all_core = truth.turbo.Multiplier(truth.topo.cores_per_socket,
                                                 truth.topo.cores_per_socket, true);
  EXPECT_NEAR(Desc().l1_bw, truth.l1_bw * all_core, Desc().l1_bw * 0.03);
  EXPECT_NEAR(Desc().l2_bw, truth.l2_bw * all_core, Desc().l2_bw * 0.03);
  EXPECT_NEAR(Desc().l3_port_bw, truth.l3_port_bw, Desc().l3_port_bw * 0.03);
  // The DRAM and link stress runs use one thread per core of a socket, so
  // the channel runs at the bank-parallelism utilization of that census.
  const double requesters = truth.topo.cores_per_socket;
  const double mlp = requesters / (requesters + truth.dram_mlp_k);
  EXPECT_NEAR(Desc().dram_bw, truth.dram_bw * mlp, Desc().dram_bw * 0.03);
  EXPECT_NEAR(Desc().link_bw, truth.link_bw, Desc().link_bw * 0.03);
}

TEST_F(MachineDescTest, AggregateL3BelowSumOfPorts) {
  EXPECT_LT(Desc().l3_agg_bw,
            Desc().l3_port_bw * Desc().topo.cores_per_socket);
  EXPECT_GT(Desc().l3_agg_bw, Desc().l3_port_bw);
}

TEST_F(MachineDescTest, CapacitiesRespectSmtOccupancy) {
  const MachineDescription& desc = Desc();
  std::vector<uint8_t> per_core(static_cast<size_t>(desc.topo.NumCores()), 0);
  per_core[0] = 1;
  per_core[1] = 2;
  const std::vector<double> caps = desc.Capacities(per_core);
  const ResourceIndex index(desc.topo);
  EXPECT_DOUBLE_EQ(caps[index.Core(0)], desc.core_ops);
  EXPECT_DOUBLE_EQ(caps[index.Core(1)], desc.smt_combined_ops);
  EXPECT_DOUBLE_EQ(caps[index.Dram(1)], desc.dram_bw);
  EXPECT_DOUBLE_EQ(caps[index.Link(0, 1)], desc.link_bw);
}

TEST_F(MachineDescTest, ToStringIncludesName) {
  EXPECT_NE(Desc().ToString().find("x3-2"), std::string::npos);
}

TEST(MachineDescFourSocket, GeneratesForX2_4) {
  const sim::Machine machine{sim::MakeX2_4()};
  const MachineDescription desc = GenerateMachineDescription(machine);
  EXPECT_GT(desc.link_bw, 0.0);
  EXPECT_GT(desc.dram_bw, 0.0);
  EXPECT_EQ(desc.topo.num_sockets, 4);
}

}  // namespace
}  // namespace pandia
