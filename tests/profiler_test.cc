// Parameter-recovery tests for the six-run workload profiler (§4): craft
// ground-truth specs whose behaviour pins one model property, profile them
// through the full measurement stack, and check the description recovers
// the property. These close the loop between the simulator and the model.
#include <gtest/gtest.h>

#include "src/machine_desc/generator.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/workload_desc/profiler.h"

namespace pandia {
namespace {

// Noise-free machine so recovery tolerances stay tight.
const sim::Machine& Quiet() {
  static const sim::Machine machine{[] {
    sim::MachineSpec spec = sim::MakeX3_2();
    spec.noise_magnitude = 0.0;
    return spec;
  }()};
  return machine;
}

const MachineDescription& QuietDesc() {
  static const MachineDescription desc = GenerateMachineDescription(Quiet());
  return desc;
}

WorkloadDescription ProfileSpec(const sim::WorkloadSpec& spec) {
  const WorkloadProfiler profiler(Quiet(), QuietDesc());
  return profiler.Profile(spec);
}

// Contention-free base workload: compute-light, private data.
sim::WorkloadSpec BaseSpec(const char* name) {
  sim::WorkloadSpec spec;
  spec.name = name;
  spec.total_work = 500.0;
  spec.parallel_fraction = 1.0;
  spec.balance = sim::BalanceMode::kStatic;
  spec.single_thread_ipc = 0.6;
  spec.ops_per_work = 1.0;
  spec.l1_bpw = 8.0;
  spec.l2_bpw = 1.0;
  spec.l3_bpw = 0.3;
  spec.dram_bpw = 0.05;
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

TEST(Profiler, SingleThreadDemandsMatchSpec) {
  const sim::WorkloadSpec spec = BaseSpec("demands");
  const WorkloadDescription desc = ProfileSpec(spec);
  // Solo rate: ipc-capped core at the all-core turbo bin.
  const double rate = desc.demands.instr_rate;  // work/s since ops_per_work=1
  EXPECT_NEAR(desc.demands.l1_bw / rate, spec.l1_bpw, 0.01 * spec.l1_bpw);
  EXPECT_NEAR(desc.demands.l2_bw / rate, spec.l2_bpw, 0.01 * spec.l2_bpw);
  EXPECT_NEAR(desc.t1 * rate, spec.total_work, spec.total_work * 0.01);
  // Local policy: no remote traffic in run 1.
  EXPECT_DOUBLE_EQ(desc.demands.dram_remote_bw, 0.0);
}

class ParallelFractionRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ParallelFractionRecovery, RecoversP) {
  sim::WorkloadSpec spec = BaseSpec("amdahl");
  spec.parallel_fraction = GetParam();
  const WorkloadDescription desc = ProfileSpec(spec);
  EXPECT_NEAR(desc.parallel_fraction, GetParam(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ParallelFractionRecovery,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99, 0.999, 1.0));

TEST(Profiler, RecoversZeroParallelFraction) {
  sim::WorkloadSpec spec = BaseSpec("serial");
  spec.parallel_fraction = 0.0;
  const WorkloadDescription desc = ProfileSpec(spec);
  EXPECT_NEAR(desc.parallel_fraction, 0.0, 0.02);
}

TEST(Profiler, CommIntensityYieldsPositiveOs) {
  sim::WorkloadSpec with_comm = BaseSpec("comm");
  with_comm.comm_intensity = 0.002;
  sim::WorkloadSpec no_comm = BaseSpec("no-comm");
  const WorkloadDescription a = ProfileSpec(with_comm);
  const WorkloadDescription b = ProfileSpec(no_comm);
  EXPECT_GT(a.inter_socket_overhead, 0.005);
  EXPECT_LT(b.inter_socket_overhead, a.inter_socket_overhead * 0.2);
}

TEST(Profiler, OsScalesWithCommIntensity) {
  sim::WorkloadSpec light = BaseSpec("light-comm");
  light.comm_intensity = 0.001;
  sim::WorkloadSpec heavy = BaseSpec("heavy-comm");
  heavy.comm_intensity = 0.004;
  const double os_light = ProfileSpec(light).inter_socket_overhead;
  const double os_heavy = ProfileSpec(heavy).inter_socket_overhead;
  EXPECT_NEAR(os_heavy / os_light, 4.0, 1.0);
}

TEST(Profiler, RemoteMemoryCostAppearsInOs) {
  sim::WorkloadSpec spec = BaseSpec("numa");
  spec.dram_bpw = 0.5;
  spec.memory_policy = MemoryPolicy::kInterleaveActive;
  spec.remote_access_cost = 0.05;
  const WorkloadDescription desc = ProfileSpec(spec);
  EXPECT_GT(desc.inter_socket_overhead, 0.002);
}

TEST(Profiler, StaticWorkloadHasLowL) {
  sim::WorkloadSpec spec = BaseSpec("static");
  spec.parallel_fraction = 0.99;
  spec.balance = sim::BalanceMode::kStatic;
  const WorkloadDescription desc = ProfileSpec(spec);
  EXPECT_LT(desc.load_balance, 0.15);
}

TEST(Profiler, DynamicWorkloadHasHighL) {
  sim::WorkloadSpec spec = BaseSpec("dynamic");
  spec.parallel_fraction = 0.99;
  spec.balance = sim::BalanceMode::kDynamic;
  spec.chunk_fraction = 0.001;
  const WorkloadDescription desc = ProfileSpec(spec);
  EXPECT_GT(desc.load_balance, 0.85);
}

TEST(Profiler, SmoothWorkloadHasModestB) {
  sim::WorkloadSpec spec = BaseSpec("smooth");
  const WorkloadDescription desc = ProfileSpec(spec);
  // b still captures the generic SMT pressure, but stays moderate.
  EXPECT_GE(desc.burstiness, 0.0);
  EXPECT_LT(desc.burstiness, 1.0);
}

TEST(Profiler, BurstyWorkloadHasLargerB) {
  sim::WorkloadSpec smooth = BaseSpec("smooth2");
  smooth.ops_per_work = 2.0;  // make the core matter
  sim::WorkloadSpec bursty = smooth;
  bursty.name = "bursty";
  bursty.duty_cycle = 0.5;
  const double b_smooth = ProfileSpec(smooth).burstiness;
  const double b_bursty = ProfileSpec(bursty).burstiness;
  EXPECT_GT(b_bursty, b_smooth + 0.05);
}

TEST(Profiler, ChoosesLargestContentionFreeEvenThreadCount) {
  // Light workload: the whole socket fits.
  const WorkloadDescription light = ProfileSpec(BaseSpec("light"));
  EXPECT_EQ(light.profile_threads, 8);
  // DRAM-heavy: few threads before the channel saturates.
  sim::WorkloadSpec heavy = BaseSpec("heavy");
  heavy.single_thread_ipc = 1.0;
  heavy.dram_bpw = 3.0;
  heavy.l3_bpw = 3.0;
  const WorkloadDescription desc = ProfileSpec(heavy);
  EXPECT_LT(desc.profile_threads, 8);
  EXPECT_GE(desc.profile_threads, 2);
  EXPECT_EQ(desc.profile_threads % 2, 0);
}

TEST(Profiler, RecordsRunConfiguration) {
  sim::WorkloadSpec spec = BaseSpec("config");
  spec.memory_policy = MemoryPolicy::kInterleaveAll;
  const WorkloadDescription desc = ProfileSpec(spec);
  EXPECT_EQ(desc.memory_policy, MemoryPolicy::kInterleaveAll);
  EXPECT_EQ(desc.workload, "config");
  EXPECT_EQ(desc.machine, "x3-2");
  EXPECT_GT(desc.r2, 0.0);
  EXPECT_GT(desc.r6, 0.0);
}

TEST(Profiler, RelativeRunTimesAreOrderedSanely) {
  const WorkloadDescription desc = ProfileSpec(BaseSpec("sanity"));
  // Parallel runs are faster than the single-thread run...
  EXPECT_LT(desc.r2, 1.0);
  EXPECT_LT(desc.r3, 1.0);
  // ...run 4 (all threads slowed) is slower than run 2, and run 5 (one
  // thread slowed) sits between.
  EXPECT_GT(desc.r4, desc.r2);
  EXPECT_GE(desc.r5, desc.r2 * 0.999);
  EXPECT_LE(desc.r5, desc.r4 * 1.001);
}

}  // namespace
}  // namespace pandia
