// Tests for the co-scheduling extension (§8 future work): the joint model
// must reduce exactly to the single-workload model, capture interference
// between jobs, and roughly agree with simulated co-runs.
#include <gtest/gtest.h>

#include <map>

#include "src/eval/pipeline.h"
#include "src/predictor/co_schedule.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

const eval::Pipeline& X3() {
  static const eval::Pipeline pipeline("x3-2");
  return pipeline;
}

const WorkloadDescription& Desc(const char* name) {
  static std::map<std::string, WorkloadDescription> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, X3().Profile(workloads::ByName(name))).first;
  }
  return it->second;
}

TEST(CoSchedule, SingleJobMatchesPredictorExactly) {
  const WorkloadDescription& desc = Desc("CG");
  const Predictor predictor = X3().MakePredictor(desc);
  const CoSchedulePredictor engine(X3().description());
  const MachineTopology& topo = X3().machine().topology();
  for (const Placement& placement :
       {Placement::OnePerCore(topo, 6), Placement::TwoPerCore(topo, 20)}) {
    const Prediction single = predictor.Predict(placement);
    const CoScheduleRequest request{&desc, placement};
    const CoSchedulePrediction joint =
        engine.Predict(std::span<const CoScheduleRequest>(&request, 1));
    EXPECT_DOUBLE_EQ(single.speedup, joint.jobs[0].speedup);
    EXPECT_DOUBLE_EQ(single.time, joint.jobs[0].time);
    EXPECT_EQ(single.iterations, joint.jobs[0].iterations);
  }
}

TEST(CoSchedule, DisjointComputeJobsDoNotInterfere) {
  const WorkloadDescription& desc = Desc("EP");
  const MachineTopology& topo = X3().machine().topology();
  // EP on socket 0 and EP on socket 1, no shared resources to saturate.
  std::vector<SocketLoad> s0{{4, 0}, {0, 0}};
  std::vector<SocketLoad> s1{{0, 0}, {4, 0}};
  const std::vector<CoScheduleRequest> requests{
      {&desc, Placement::FromSocketLoads(topo, s0)},
      {&desc, Placement::FromSocketLoads(topo, s1)},
  };
  const CoSchedulePredictor engine(X3().description());
  const CoSchedulePrediction joint = engine.Predict(requests);
  const Predictor solo = X3().MakePredictor(desc);
  const Prediction alone = solo.Predict(Placement::FromSocketLoads(topo, s0));
  EXPECT_NEAR(joint.jobs[0].speedup, alone.speedup, alone.speedup * 0.02);
  EXPECT_NEAR(joint.jobs[1].speedup, alone.speedup, alone.speedup * 0.02);
}

TEST(CoSchedule, MemoryJobsOnOneSocketInterfere) {
  const WorkloadDescription& desc = Desc("Swim");
  const MachineTopology& topo = X3().machine().topology();
  // Two bandwidth-bound jobs packed onto the same socket must slow each
  // other; the same jobs on separate sockets must not.
  std::vector<SocketLoad> first_half{{4, 0}, {0, 0}};
  Placement second_half(topo, {0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0});
  const std::vector<CoScheduleRequest> same_socket{
      {&desc, Placement::FromSocketLoads(topo, first_half)},
      {&desc, second_half},
  };
  std::vector<SocketLoad> other_socket{{0, 0}, {4, 0}};
  const std::vector<CoScheduleRequest> split{
      {&desc, Placement::FromSocketLoads(topo, first_half)},
      {&desc, Placement::FromSocketLoads(topo, other_socket)},
  };
  const CoSchedulePredictor engine(X3().description());
  const double same = engine.Predict(same_socket).jobs[0].speedup;
  const double apart = engine.Predict(split).jobs[0].speedup;
  EXPECT_LT(same, apart * 0.92);
}

TEST(CoSchedule, InterferencePredictionTracksSimulatedCoRun) {
  // Simulate CG (foreground) sharing socket 0 with a continuously running
  // Swim (background); the joint prediction of CG's time must land within
  // a factor of ~1.5 of the simulated co-run.
  const WorkloadDescription& cg = Desc("CG");
  const WorkloadDescription& swim = Desc("Swim");
  const MachineTopology& topo = X3().machine().topology();
  const Placement cg_placement(topo, {1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  const Placement swim_placement(topo, {0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0});

  const std::vector<CoScheduleRequest> requests{
      {&cg, cg_placement},
      {&swim, swim_placement},
  };
  const CoSchedulePredictor engine(X3().description());
  const double predicted = engine.Predict(requests).jobs[0].time;

  const sim::WorkloadSpec cg_spec = workloads::ByName("CG");
  const sim::WorkloadSpec swim_spec = workloads::ByName("Swim");
  const std::vector<sim::JobRequest> jobs{
      {&cg_spec, cg_placement, /*background=*/false},
      {&swim_spec, swim_placement, /*background=*/true},
  };
  const double measured = X3().machine().Run(jobs).jobs[0].completion_time;
  EXPECT_LT(predicted, measured * 1.5);
  EXPECT_GT(predicted, measured / 1.5);

  // And the co-run must be slower than CG alone on those cores.
  const double alone =
      X3().machine().RunOne(cg_spec, cg_placement).jobs[0].completion_time;
  EXPECT_GT(measured, alone * 1.02);
  const Predictor solo = X3().MakePredictor(cg);
  EXPECT_GT(predicted, solo.Predict(cg_placement).time * 1.02);
}

TEST(CoSchedule, CombinedResourceLoadIsSumOfJobs) {
  const WorkloadDescription& cg = Desc("CG");
  const MachineTopology& topo = X3().machine().topology();
  std::vector<SocketLoad> s0{{2, 0}, {0, 0}};
  std::vector<SocketLoad> s1{{0, 0}, {2, 0}};
  const std::vector<CoScheduleRequest> requests{
      {&cg, Placement::FromSocketLoads(topo, s0)},
      {&cg, Placement::FromSocketLoads(topo, s1)},
  };
  const CoSchedulePredictor engine(X3().description());
  const CoSchedulePrediction joint = engine.Predict(requests);
  const ResourceIndex index(topo);
  // Both jobs are symmetric, so both DRAM nodes see the same load.
  EXPECT_NEAR(joint.resource_load[index.Dram(0)], joint.resource_load[index.Dram(1)],
              1e-9);
  EXPECT_GT(joint.resource_load[index.Dram(0)], 0.0);
}

TEST(CoScheduleDeath, RejectsEmptyRequests) {
  const CoSchedulePredictor engine(X3().description());
  EXPECT_DEATH(engine.Predict({}), "PANDIA_CHECK");
}

}  // namespace
}  // namespace pandia
