// Tests for the observability layer (src/obs): metrics registry thread
// safety, histogram bucket edges, span nesting and Chrome-JSON
// well-formedness, the JSON linter itself, and the predictor's convergence
// trace hook.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/machine_desc/generator.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json_lint.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/prediction_trace.h"
#include "src/obs/trace.h"
#include "src/predictor/predictor.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"

namespace pandia {
namespace {

// --- MetricsRegistry ---

TEST(ObsMetrics, CountersFromManyThreadsAreExact) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&registry, i] {
      // Every thread hammers a shared counter and its own private one;
      // registration itself races too (all threads resolve "shared").
      obs::Counter& shared = registry.counter("shared");  // pandia-lint: allow(metric-name)
      obs::Counter& own =
          registry.counter("own." + std::to_string(i));
      for (int k = 0; k < kIncrements; ++k) {
        shared.Increment();
        own.Increment(2);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.counter("shared").value(),  // pandia-lint: allow(metric-name)
            static_cast<uint64_t>(kThreads) * kIncrements);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(registry.counter("own." + std::to_string(i)).value(),
              static_cast<uint64_t>(kIncrements) * 2);
  }
}

TEST(ObsMetrics, HistogramConcurrentObserveKeepsTotalCount) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram =
      registry.histogram("h", {1.0, 10.0, 100.0});  // pandia-lint: allow(metric-name)
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&histogram] {
      for (int k = 0; k < kObservations; ++k) {
        histogram.Observe(static_cast<double>(k % 200));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(kThreads) * kObservations);
  uint64_t bucket_total = 0;
  for (uint64_t c : histogram.bucket_counts()) {
    bucket_total += c;
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(ObsMetrics, HistogramBucketEdges) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram =
      registry.histogram("edges", {1.0, 2.0, 5.0});  // pandia-lint: allow(metric-name)
  // Upper bounds are inclusive (Prometheus "le" semantics).
  histogram.Observe(0.5);   // -> le=1
  histogram.Observe(1.0);   // -> le=1 (on the edge)
  histogram.Observe(1.001); // -> le=2
  histogram.Observe(2.0);   // -> le=2
  histogram.Observe(5.0);   // -> le=5
  histogram.Observe(5.001); // -> +inf
  histogram.Observe(1e9);   // -> +inf
  const std::vector<uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(histogram.count(), 7u);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 + 1e9, 1e-3);
}

TEST(ObsMetrics, SnapshotResetAndRender) {
  obs::MetricsRegistry registry;
  registry.counter("c").Increment(3);           // pandia-lint: allow(metric-name)
  registry.gauge("g").Set(2.5);                 // pandia-lint: allow(metric-name)
  registry.histogram("h", {1.0}).Observe(0.5);  // pandia-lint: allow(metric-name)
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "c");
  EXPECT_EQ(snapshot.counters[0].value, 3u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 2.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);

  // Rendering: counter + gauge + (2 buckets + count/sum/mean) rows.
  EXPECT_EQ(obs::RenderTable(snapshot).num_rows(), 1u + 1u + 2u + 3u);

  // Reset zeroes values but keeps instrument identity.
  obs::Counter& c = registry.counter("c");  // pandia-lint: allow(metric-name)
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &registry.counter("c"));  // pandia-lint: allow(metric-name)
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);       // pandia-lint: allow(metric-name)
  EXPECT_EQ(registry.histogram("h", {1.0}).count(), 0u);  // pandia-lint: allow(metric-name)
}

// --- Histogram percentiles ---

TEST(ObsPercentile, EmptyHistogramYieldsZero) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("lat.us", {1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(1.0), 0.0);
}

TEST(ObsPercentile, SingleBucketInterpolatesFromZero) {
  // One observation in the first bucket: any quantile asks for rank 1,
  // which interpolates across the full [0, 10] bucket width.
  const std::vector<double> bounds = {10.0};
  const std::vector<uint64_t> buckets = {1, 0};
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 1.0), 10.0);
}

TEST(ObsPercentile, LinearInterpolationWithinBucket) {
  // 10 observations <= 10, 10 more in (10, 20].
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<uint64_t> buckets = {10, 10, 0};
  // Rank 10 is the last observation of the first bucket: its upper edge.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 0.5), 10.0);
  // Rank 15 sits halfway through the second bucket.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 0.75), 15.0);
  // Rank 1 sits a tenth of the way through the first bucket.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 1.0), 20.0);
}

TEST(ObsPercentile, OverflowBucketReturnsLastFiniteBound) {
  // The +inf bucket has no upper edge to interpolate toward; the best
  // defensible answer is the largest finite bound.
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<uint64_t> buckets = {0, 0, 5};
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 0.99), 20.0);
}

TEST(ObsPercentile, QuantileIsClampedToUnitInterval) {
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<uint64_t> buckets = {10, 10, 0};
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, -3.0),
                   obs::HistogramPercentile(bounds, buckets, 0.0));
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(bounds, buckets, 7.0),
                   obs::HistogramPercentile(bounds, buckets, 1.0));
}

TEST(ObsPercentile, MemberPercentileMatchesObservations) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram =
      registry.histogram("lat.us", obs::ExponentialBounds(1.0, 2.0, 10));
  for (int i = 0; i < 100; ++i) {
    histogram.Observe(static_cast<double>(i % 50));
  }
  const double p50 = histogram.Percentile(0.5);
  const double p99 = histogram.Percentile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 512.0);  // largest bound of ExponentialBounds(1, 2, 10)
}

TEST(ObsPercentile, ExponentialBoundsAreGeometric) {
  const std::vector<double> bounds = obs::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

// --- EventLog ---

TEST(ObsLog, FormatLogLineEscapesFieldValues) {
  const std::string line = obs::FormatLogLine(
      obs::LogLevel::kWarn, "serve.journal", "append failed",
      {{"path", "/tmp/a b"}, {"errno", 28}});
  EXPECT_EQ(line, "W serve.journal append failed path=/tmp/a\\sb errno=28");
}

TEST(ObsLog, LevelTagsAndThreshold) {
  EXPECT_EQ(obs::LogLevelTag(obs::LogLevel::kDebug), 'D');
  EXPECT_EQ(obs::LogLevelTag(obs::LogLevel::kInfo), 'I');
  EXPECT_EQ(obs::LogLevelTag(obs::LogLevel::kWarn), 'W');
  EXPECT_EQ(obs::LogLevelTag(obs::LogLevel::kError), 'E');

  obs::EventLog log;
  EXPECT_FALSE(log.Enabled(obs::LogLevel::kDebug));  // default min: Info
  EXPECT_TRUE(log.Enabled(obs::LogLevel::kInfo));
  log.SetMinLevel(obs::LogLevel::kError);
  EXPECT_FALSE(log.Enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(log.Enabled(obs::LogLevel::kError));
  log.SetMinLevel(obs::LogLevel::kDebug);
  EXPECT_TRUE(log.Enabled(obs::LogLevel::kDebug));
}

// Reads everything written to `file` so far.
std::string DrainFile(std::FILE* file) {
  std::fflush(file);
  const long size = std::ftell(file);
  std::rewind(file);
  std::string content(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(content.data(), 1, content.size(), file);
  content.resize(read);
  return content;
}

TEST(ObsLog, PerSiteRateLimitSuppressesFloods) {
  obs::EventLog log;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  log.SetStream(sink);
  // A window far longer than the test: the burst is all that gets through.
  log.SetRateLimit(3, int64_t{1} << 60);
  for (int i = 0; i < 10; ++i) {
    log.Log(obs::LogLevel::kWarn, "hot.site", "boom", {{"i", i}});
  }
  // A different site has its own budget.
  log.Log(obs::LogLevel::kWarn, "calm.site", "fine");
  EXPECT_EQ(log.suppressed(), 7u);
  const std::string content = DrainFile(sink);
  size_t events = 0;
  for (size_t at = content.find("hot.site"); at != std::string::npos;
       at = content.find("hot.site", at + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 3u);
  EXPECT_NE(content.find("calm.site"), std::string::npos);
  log.SetStream(nullptr);
  std::fclose(sink);
}

TEST(ObsLog, DisabledLevelsWriteNothing) {
  obs::EventLog log;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  log.SetStream(sink);
  log.Log(obs::LogLevel::kDebug, "quiet.site", "below threshold");
  EXPECT_TRUE(DrainFile(sink).empty());
  log.SetStream(nullptr);
  std::fclose(sink);
}

// --- FlightRecorder ---

TEST(ObsFlightRecorder, AssignsSequentialSeqAndDumpsOldestFirst) {
  obs::FlightRecorder recorder(4);
  recorder.Record("request", "ADMIT name=a");
  recorder.Record("journal", "ADMITTED name=a");
  recorder.Record("request", "DEPART name=ghost", /*ok=*/false);
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const std::vector<obs::FlightEvent> events = recorder.Dump();
  ASSERT_EQ(events.size(), 3u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
    if (i > 0) {
      EXPECT_GE(events[i].timestamp_ns, events[i - 1].timestamp_ns);
    }
  }
  EXPECT_EQ(events[0].kind, "request");
  EXPECT_EQ(events[1].kind, "journal");
  EXPECT_TRUE(events[1].ok);
  EXPECT_FALSE(events[2].ok);
}

TEST(ObsFlightRecorder, WrapsAndCountsDropped) {
  obs::FlightRecorder recorder(4);
  for (int i = 0; i < 6; ++i) {
    recorder.Record("request", "r" + std::to_string(i));
  }
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const std::vector<obs::FlightEvent> events = recorder.Dump();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 3);  // seqs 1 and 2 were overwritten
    EXPECT_EQ(events[i].detail, "r" + std::to_string(i + 2));
  }
}

TEST(ObsFlightRecorder, ClearForgetsEverything) {
  obs::FlightRecorder recorder(2);
  recorder.Record("request", "x");
  recorder.Clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_TRUE(recorder.Dump().empty());
  recorder.Record("request", "y");
  ASSERT_EQ(recorder.Dump().size(), 1u);
  EXPECT_EQ(recorder.Dump()[0].seq, 1u);
}

TEST(ObsFlightRecorder, FormatRendersRelativeTimestampAndOutcome) {
  obs::FlightEvent event;
  event.seq = 2;
  event.timestamp_ns = 1500000000;
  event.kind = "journal";
  event.detail = "ADMITTED name=a";
  event.ok = false;
  EXPECT_EQ(obs::FormatFlightEvent(event, 0),
            "seq=2 t=1.500000 journal ADMITTED name=a err");
  event.ok = true;
  EXPECT_EQ(obs::FormatFlightEvent(event, 500000000),
            "seq=2 t=1.000000 journal ADMITTED name=a ok");
}

// --- Tracer ---

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  {
    obs::TraceSpan span(tracer, "ignored");
  }
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(ObsTrace, SpanNestingDepthsAndDurations) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  {
    obs::TraceSpan outer(tracer, "outer");
    {
      obs::TraceSpan inner(tracer, "inner", 7);
    }
    {
      obs::TraceSpan inner2(tracer, "inner2");
    }
  }
  const std::vector<obs::TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded at close time: inner, inner2, outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[0].arg, 7);
  EXPECT_EQ(events[1].name, "inner2");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_EQ(events[2].arg, obs::kNoArg);
  // The outer span contains both inner spans in time.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].start_ns + events[2].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  for (const obs::TraceEvent& event : events) {
    EXPECT_GE(event.dur_ns, 0);
    EXPECT_EQ(event.tid, 1u);
  }
}

TEST(ObsTrace, ChromeJsonIsWellFormed) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  {
    obs::TraceSpan outer(tracer, "outer \"quoted\"\n", 42);
    obs::TraceSpan inner(tracer, "inner");
  }
  const std::string json = tracer.ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(obs::LintJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":42}"), std::string::npos);

  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
  EXPECT_TRUE(obs::LintJson(tracer.ChromeTraceJson(), &error)) << error;
}

TEST(ObsTrace, SpansFromManyThreads) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&tracer] {
      for (int k = 0; k < kSpans; ++k) {
        obs::TraceSpan span(tracer, "work", k);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const std::vector<obs::TraceEvent> events = tracer.Events();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * kSpans);
  std::string error;
  EXPECT_TRUE(obs::LintJson(tracer.ChromeTraceJson(), &error)) << error;
}

// --- JSON linter ---

TEST(ObsJsonLint, AcceptsValidAndRejectsInvalid) {
  EXPECT_TRUE(obs::LintJson("{}"));
  EXPECT_TRUE(obs::LintJson("[1, -2.5e3, \"a\\nb\", true, false, null, {\"k\":[]}]"));
  EXPECT_TRUE(obs::LintJson("  42  "));
  std::string error;
  EXPECT_FALSE(obs::LintJson("", &error));
  EXPECT_FALSE(obs::LintJson("{", &error));
  EXPECT_FALSE(obs::LintJson("[1,]", &error));
  EXPECT_FALSE(obs::LintJson("{\"a\":1,}", &error));
  EXPECT_FALSE(obs::LintJson("{'a':1}", &error));
  EXPECT_FALSE(obs::LintJson("\"unterminated", &error));
  EXPECT_FALSE(obs::LintJson("01", &error));
  EXPECT_FALSE(obs::LintJson("1 2", &error));
  EXPECT_FALSE(obs::LintJson("\"bad\\x\"", &error));
}

// --- PredictionTrace ---

const MachineDescription& X3Desc() {
  static const MachineDescription desc = [] {
    const sim::Machine machine{sim::MakeX3_2()};
    return GenerateMachineDescription(machine);
  }();
  return desc;
}

WorkloadDescription ContendedWorkload() {
  WorkloadDescription desc;
  desc.workload = "synthetic";
  desc.machine = "x3-2";
  desc.t1 = 100.0;
  desc.demands.instr_rate = 4.0;
  desc.demands.l1_bw = 40.0;
  desc.demands.l2_bw = 10.0;
  desc.demands.l3_bw = 6.0;
  desc.demands.dram_local_bw = 8.0;
  desc.memory_policy = MemoryPolicy::kInterleaveActive;
  desc.parallel_fraction = 0.99;
  desc.inter_socket_overhead = 0.01;
  desc.load_balance = 0.5;
  desc.burstiness = 0.3;
  return desc;
}

TEST(ObsPredictionTrace, IterationCountMatchesPrediction) {
  obs::PredictionTrace trace;
  PredictionOptions options;
  options.common.trace = &trace;
  const Predictor predictor(X3Desc(), ContendedWorkload(), options);
  const Placement placement = Placement::TwoPerCore(X3Desc().topo, 20);
  const Prediction prediction = predictor.Predict(placement);

  ASSERT_EQ(trace.iterations.size(), static_cast<size_t>(prediction.iterations));
  EXPECT_EQ(trace.converged, prediction.converged);
  EXPECT_DOUBLE_EQ(trace.final_delta, prediction.final_delta);
  for (const obs::PredictionIterationTrace& iteration : trace.iterations) {
    EXPECT_EQ(iteration.thread_slowdowns.size(), prediction.threads.size());
    EXPECT_EQ(iteration.thread_bottlenecks.size(), prediction.threads.size());
  }
  // 1-based iteration numbering, contiguous.
  for (size_t i = 0; i < trace.iterations.size(); ++i) {
    EXPECT_EQ(trace.iterations[i].iteration, static_cast<int>(i) + 1);
  }
  // The final iteration's slowdowns are the prediction's.
  const obs::PredictionIterationTrace& last = trace.iterations.back();
  for (size_t t = 0; t < prediction.threads.size(); ++t) {
    EXPECT_DOUBLE_EQ(last.thread_slowdowns[t],
                     prediction.threads[t].overall_slowdown);
    EXPECT_EQ(last.thread_bottlenecks[t], prediction.threads[t].bottleneck);
  }
  // A converged run's final delta is under the threshold.
  ASSERT_TRUE(prediction.converged);
  EXPECT_LT(prediction.final_delta, options.convergence_eps);
  EXPECT_FALSE(trace.Summary().empty());
}

TEST(ObsPredictionTrace, DampeningEngagesAfterDampenAfter) {
  obs::PredictionTrace trace;
  PredictionOptions options;
  options.common.trace = &trace;
  options.dampen_after = 3;
  options.max_iterations = 10;
  options.convergence_eps = 0.0;  // never converge: run all 10 iterations
  const Predictor predictor(X3Desc(), ContendedWorkload(), options);
  const Prediction prediction =
      predictor.Predict(Placement::TwoPerCore(X3Desc().topo, 20));

  EXPECT_FALSE(prediction.converged);
  EXPECT_EQ(prediction.iterations, 10);
  ASSERT_EQ(trace.iterations.size(), 10u);
  for (const obs::PredictionIterationTrace& iteration : trace.iterations) {
    EXPECT_EQ(iteration.dampened, iteration.iteration >= options.dampen_after)
        << "iteration " << iteration.iteration;
  }
}

TEST(ObsPredictionTrace, TraceIsClearedBetweenPredicts) {
  obs::PredictionTrace trace;
  PredictionOptions options;
  options.common.trace = &trace;
  const Predictor predictor(X3Desc(), ContendedWorkload(), options);
  const Prediction first = predictor.Predict(Placement::TwoPerCore(X3Desc().topo, 20));
  ASSERT_EQ(trace.iterations.size(), static_cast<size_t>(first.iterations));
  const Prediction second = predictor.Predict(Placement::OnePerCore(X3Desc().topo, 1));
  EXPECT_EQ(trace.iterations.size(), static_cast<size_t>(second.iterations));
}

}  // namespace
}  // namespace pandia
