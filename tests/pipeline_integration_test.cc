// End-to-end accuracy gates: the full Pandia pipeline on the simulated
// machines must land in the ballpark the paper reports (§6.1) — small
// best-placement gaps and modest errors — for the development workloads.
#include <gtest/gtest.h>

#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

const eval::Pipeline& X3Pipeline() {
  static const eval::Pipeline pipeline("x3-2");
  return pipeline;
}

eval::SweepResult SweepFor(const std::string& workload_name) {
  const sim::WorkloadSpec workload = workloads::ByName(workload_name);
  const WorkloadDescription desc = X3Pipeline().Profile(workload);
  const Predictor predictor = X3Pipeline().MakePredictor(desc);
  eval::SweepOptions options;  // exhaustive 1034 placements on the x3-2
  return eval::RunSweep(X3Pipeline().machine(), predictor, workload, options);
}

class DevelopmentWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(DevelopmentWorkload, ErrorsAreWithinPaperBallpark) {
  const eval::SweepResult result = SweepFor(GetParam());
  // Paper (X3-2): median error 3.8%, median offset error 1.5% across all
  // workloads, with individual workloads up to tens of percent. Gate each
  // development workload loosely enough to be robust, tightly enough to
  // catch regressions.
  EXPECT_LT(result.error_median, 20.0) << GetParam();
  EXPECT_LT(result.offset_error_median, 12.0) << GetParam();
}

TEST_P(DevelopmentWorkload, PredictedBestPlacementIsNearlyOptimal) {
  const eval::SweepResult result = SweepFor(GetParam());
  // Paper: mean 0.77%, median 0% lost on the X3-2. Allow a few percent.
  EXPECT_LT(result.best_placement_gap_pct, 6.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(DevSet, DevelopmentWorkload,
                         ::testing::Values("BT", "CG", "IS", "MD"));

TEST(PipelineIntegration, PredictionsAreDeterministic) {
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  const WorkloadDescription a = X3Pipeline().Profile(workload);
  const WorkloadDescription b = X3Pipeline().Profile(workload);
  EXPECT_DOUBLE_EQ(a.t1, b.t1);
  EXPECT_DOUBLE_EQ(a.parallel_fraction, b.parallel_fraction);
  EXPECT_DOUBLE_EQ(a.burstiness, b.burstiness);
}

TEST(PipelineIntegration, DescriptionsDifferAcrossMachines) {
  const eval::Pipeline x5("x5-2");
  const sim::WorkloadSpec workload = workloads::ByName("CG");
  const WorkloadDescription on_x3 = X3Pipeline().Profile(workload);
  const WorkloadDescription on_x5 = x5.Profile(workload);
  EXPECT_NE(on_x3.t1, on_x5.t1);
  EXPECT_EQ(on_x3.machine, "x3-2");
  EXPECT_EQ(on_x5.machine, "x5-2");
}

TEST(PipelineIntegration, PortabilityPredictorIsUsable) {
  // §6.1 Figure 11c/d: X3-2 workload description driven by the X5-2
  // machine description (and vice versa) still yields usable predictions.
  const eval::Pipeline x5("x5-2");
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  const WorkloadDescription from_x3 = X3Pipeline().Profile(workload);
  const Predictor cross = x5.MakePredictor(from_x3);
  const Prediction p =
      cross.Predict(Placement::OnePerCore(x5.machine().topology(), 16));
  EXPECT_GT(p.speedup, 1.0);
  EXPECT_TRUE(p.converged);
}

TEST(PipelineIntegration, NonScalingWorkloadIsDetected) {
  // §6.3 Figure 13a: Pandia detects the absence of scaling for NPO-1T.
  const sim::WorkloadSpec workload = workloads::NpoSingleThreaded();
  const WorkloadDescription desc = X3Pipeline().Profile(workload);
  EXPECT_LT(desc.parallel_fraction, 0.2);
  const Predictor predictor = X3Pipeline().MakePredictor(desc);
  const Prediction p = predictor.Predict(
      Placement::OnePerCore(X3Pipeline().machine().topology(), 8));
  EXPECT_LT(p.speedup, 1.3);
}

}  // namespace
}  // namespace pandia
