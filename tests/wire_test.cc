// src/serialize/wire: escape round-trips, strict request parsing, response
// framing, and the placement CSV form — the grammar every byte of the
// placement service's transports and journal flows through.
#include "src/serialize/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/machine_spec.h"

namespace pandia {
namespace wire {
namespace {

TEST(Escape, RoundTripsEveryEscapedByte) {
  const std::string raw = "a b\tc\nd\re\\f  g\n\n";
  const std::string escaped = EscapeValue(raw);
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  const StatusOr<std::string> back = UnescapeValue(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(Escape, EmptyAndPlainValuesPassThrough) {
  EXPECT_EQ(EscapeValue(""), "");
  EXPECT_EQ(EscapeValue("plain-text_0.9"), "plain-text_0.9");
  const StatusOr<std::string> back = UnescapeValue("plain-text_0.9");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "plain-text_0.9");
}

TEST(Escape, RejectsDanglingAndUnknownEscapes) {
  EXPECT_FALSE(UnescapeValue("trailing\\").ok());
  EXPECT_FALSE(UnescapeValue("bad\\q").ok());
}

TEST(RequestGrammar, FormatParseRoundTrip) {
  Request request;
  request.verb = "ADMIT";
  request.params = {{"name", "web frontend"},
                    {"threads", "8"},
                    {"desc.x3-2", "line1\nline2 with spaces\n"}};
  const std::string line = FormatRequest(request);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const StatusOr<Request> parsed = ParseRequest(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, "ADMIT");
  ASSERT_EQ(parsed->params.size(), 3u);
  EXPECT_EQ(parsed->params[0].first, "name");
  EXPECT_EQ(parsed->params[0].second, "web frontend");
  ASSERT_NE(parsed->Find("desc.x3-2"), nullptr);
  EXPECT_EQ(*parsed->Find("desc.x3-2"), "line1\nline2 with spaces\n");
  EXPECT_EQ(parsed->Find("absent"), nullptr);
}

TEST(RequestGrammar, ParsesBareVerbAndEmptyValues) {
  const StatusOr<Request> bare = ParseRequest("STATUS");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->verb, "STATUS");
  EXPECT_TRUE(bare->params.empty());

  const StatusOr<Request> empty_value = ParseRequest("ADMIT name=");
  ASSERT_TRUE(empty_value.ok());
  ASSERT_NE(empty_value->Find("name"), nullptr);
  EXPECT_EQ(*empty_value->Find("name"), "");
}

TEST(RequestGrammar, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("lowercase").ok());              // bad verb charset
  EXPECT_FALSE(ParseRequest("STATUS junk").ok());            // param without '='
  EXPECT_FALSE(ParseRequest("STATUS KEY=v").ok());           // bad key charset
  EXPECT_FALSE(ParseRequest("STATUS =v").ok());              // empty key
  EXPECT_FALSE(ParseRequest("ADMIT a=1 a=2").ok());          // duplicate key
  EXPECT_FALSE(ParseRequest("ADMIT a=bad\\q").ok());         // bad escape
  EXPECT_FALSE(ParseRequest("ADMIT  a=1").ok());             // empty token
}

TEST(ResponseFraming, SuccessBlockRoundTrips) {
  Response response = Response::Success("STATUS");
  response.payload = {"jobs = 2", "machine = 0 free=12"};
  const std::string block = FormatResponse(response);
  EXPECT_EQ(block, "ok STATUS\njobs = 2\nmachine = 0 free=12\n.\n");

  std::vector<std::string> lines{"ok STATUS", "jobs = 2", "machine = 0 free=12",
                                 "."};
  const StatusOr<Response> parsed = ParseResponse(lines);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->verb, "STATUS");
  EXPECT_EQ(parsed->payload, response.payload);
}

TEST(ResponseFraming, ErrorBlockCarriesCodeAndMessage) {
  const std::string block = FormatResponse(
      Response::Failure(Status::NotFound("job 'web' not resident")));
  EXPECT_EQ(block.rfind("err not-found ", 0), 0u) << block;

  std::vector<std::string> lines{"err not-found job\\s'web'\\snot\\sresident",
                                 "."};
  const StatusOr<Response> parsed = ParseResponse(lines);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->code, StatusCode::kNotFound);
  EXPECT_EQ(parsed->error, "job 'web' not resident");
}

TEST(ResponseFraming, RejectsUnterminatedAndUnknownBlocks) {
  EXPECT_FALSE(ParseResponse({}).ok());
  EXPECT_FALSE(ParseResponse({"ok STATUS"}).ok());        // missing "."
  EXPECT_FALSE(ParseResponse({"maybe STATUS", "."}).ok());
  EXPECT_FALSE(ParseResponse({"err bogus-code msg", "."}).ok());
}

TEST(WireCodes, RoundTripEveryErrorCode) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kDataLoss,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    const StatusOr<StatusCode> back = WireCodeFromName(WireCodeName(code));
    ASSERT_TRUE(back.ok()) << WireCodeName(code);
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(WireCodeFromName("no-such-code").ok());
}

TEST(PlacementCsv, RoundTripsAndValidates) {
  const MachineTopology topo = sim::MachineByName("x3-2").topo;
  Placement placement = Placement::OnePerCore(topo, 4);
  const std::string csv = PlacementToCsv(placement);
  const StatusOr<Placement> back = PlacementFromCsv(topo, csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == placement);

  EXPECT_FALSE(PlacementFromCsv(topo, "").ok());
  EXPECT_FALSE(PlacementFromCsv(topo, "1,2").ok());  // wrong core count
  EXPECT_FALSE(PlacementFromCsv(topo, csv + ",0").ok());
  std::string overloaded = csv;
  overloaded[0] = '9';  // > threads_per_core
  EXPECT_FALSE(PlacementFromCsv(topo, overloaded).ok());
}

}  // namespace
}  // namespace wire
}  // namespace pandia
