// src/serve/journal: the durable checksummed journal v2 — the recovery
// matrix (round-trip, torn tail vs mid-file corruption, torn snapshot,
// sequence gaps), compaction atomicity (snapshot rewrite, stale tmp
// cleanup, sequence continuity), sync policies, v1 read-only compatibility
// with upgrade-on-first-mutation, and the service-level degraded mode that
// injected append failures drive.
#include "src/serve/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/eval/pipeline.h"
#include "src/serialize/serialize.h"
#include "src/serve/service.h"
#include "src/util/crc32c.h"
#include "src/util/strings.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace serve {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

wire::Request Note(const std::string& value) {
  wire::Request request;
  request.verb = "NOTE";
  request.params.emplace_back("kind", value);
  return request;
}

// Frames a payload exactly as the journal does — the handcrafted-corpus
// counterpart of the implementation's framing.
std::string Framed(uint64_t seq, const std::string& payload) {
  return StrFormat("%llu %08x %zu %s\n", static_cast<unsigned long long>(seq),
                   Crc32c(payload), payload.size(), payload.c_str());
}

Journal MustOpen(const std::string& path, JournalOptions options = {}) {
  StatusOr<Journal> journal = Journal::Open(path, options);
  EXPECT_TRUE(journal.ok()) << journal.status().ToString();
  return std::move(*journal);
}

TEST(Journal, FreshJournalRoundTripsRecords) {
  const std::string path = TempPath("journal_roundtrip.wire");
  {
    Journal journal = MustOpen(path);
    EXPECT_EQ(journal.next_seq(), 1u);
    EXPECT_EQ(journal.record_count(), 0u);
    ASSERT_TRUE(journal.Append(Note("one")).ok());
    ASSERT_TRUE(journal.Append(Note("two")).ok());
    ASSERT_TRUE(journal.Append(Note("three")).ok());
    EXPECT_EQ(journal.next_seq(), 4u);
  }
  Journal replayed = MustOpen(path);
  EXPECT_FALSE(replayed.recovery().truncated_torn_tail);
  EXPECT_EQ(replayed.recovery().version, 2);
  ASSERT_EQ(replayed.recovery().records.size(), 3u);
  // Line numbers are exact: the magic is line 1, records start at line 2.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replayed.recovery().records[i].request.verb, "NOTE");
    EXPECT_EQ(replayed.recovery().records[i].line, i + 2);
  }
  EXPECT_EQ(*replayed.recovery().records[0].request.Find("kind"), "one");
  EXPECT_EQ(*replayed.recovery().records[2].request.Find("kind"), "three");
  EXPECT_EQ(replayed.next_seq(), 4u);
  std::remove(path.c_str());
}

TEST(Journal, TornFinalRecordIsTruncatedAndAppendingContinues) {
  const std::string path = TempPath("journal_torn_tail.wire");
  {
    Journal journal = MustOpen(path);
    ASSERT_TRUE(journal.Append(Note("kept")).ok());
  }
  // Simulate a crash mid-append: half of a framed record, no newline.
  const std::string torn = Framed(2, wire::FormatRequest(Note("torn")));
  {
    const StatusOr<std::string> text = ReadTextFile(path);
    ASSERT_TRUE(text.ok());
    ASSERT_TRUE(
        WriteTextFile(path, *text + torn.substr(0, torn.size() / 2)).ok());
  }
  Journal recovered = MustOpen(path);
  EXPECT_TRUE(recovered.recovery().truncated_torn_tail);
  EXPECT_EQ(recovered.recovery().truncated_bytes, torn.size() / 2);
  ASSERT_EQ(recovered.recovery().records.size(), 1u);
  EXPECT_EQ(*recovered.recovery().records[0].request.Find("kind"), "kept");
  // The torn record was never acknowledged; its sequence number is reused.
  EXPECT_EQ(recovered.next_seq(), 2u);
  ASSERT_TRUE(recovered.Append(Note("after")).ok());

  Journal clean = MustOpen(path);
  EXPECT_FALSE(clean.recovery().truncated_torn_tail);
  ASSERT_EQ(clean.recovery().records.size(), 2u);
  EXPECT_EQ(*clean.recovery().records[1].request.Find("kind"), "after");
  std::remove(path.c_str());
}

TEST(Journal, CompleteButUnterminatedFinalRecordIsAlsoATear) {
  const std::string path = TempPath("journal_no_newline.wire");
  {
    Journal journal = MustOpen(path);
    ASSERT_TRUE(journal.Append(Note("kept")).ok());
    ASSERT_TRUE(journal.Append(Note("unterminated")).ok());
  }
  {
    const StatusOr<std::string> text = ReadTextFile(path);
    ASSERT_TRUE(text.ok());
    ASSERT_TRUE(WriteTextFile(path, text->substr(0, text->size() - 1)).ok());
  }
  // Keeping the record would glue the next append onto its line; recovery
  // treats the missing separator as part of the tear.
  Journal recovered = MustOpen(path);
  EXPECT_TRUE(recovered.recovery().truncated_torn_tail);
  ASSERT_EQ(recovered.recovery().records.size(), 1u);
  EXPECT_EQ(*recovered.recovery().records[0].request.Find("kind"), "kept");
  std::remove(path.c_str());
}

TEST(Journal, MidFileCorruptionIsRefusedWithTheExactLine) {
  const std::string path = TempPath("journal_midfile.wire");
  {
    Journal journal = MustOpen(path);
    ASSERT_TRUE(journal.Append(Note("first")).ok());
    ASSERT_TRUE(journal.Append(Note("second")).ok());
    ASSERT_TRUE(journal.Append(Note("third")).ok());
  }
  StatusOr<std::string> text = ReadTextFile(path);
  ASSERT_TRUE(text.ok());
  // Flip one payload byte of the SECOND record (file line 3): the CRC now
  // mismatches before the final record, which is corruption, not a tear.
  const size_t at = text->find("second");
  ASSERT_NE(at, std::string::npos);
  (*text)[at] = 'X';
  ASSERT_TRUE(WriteTextFile(path, *text).ok());

  StatusOr<Journal> refused = Journal::Open(path, JournalOptions{});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(refused.status().message().find("journal line 3"),
            std::string::npos)
      << refused.status().ToString();
  EXPECT_NE(refused.status().message().find("checksum mismatch"),
            std::string::npos)
      << refused.status().ToString();
  std::remove(path.c_str());
}

TEST(Journal, BadLengthAndBadSequenceAreCorruption) {
  const std::string path = TempPath("journal_frame_defects.wire");
  const std::string payload = wire::FormatRequest(Note("x"));
  // Length field disagrees with the payload, mid-file.
  ASSERT_TRUE(WriteTextFile(path, "pandia-journal v2\n" +
                                      StrFormat("1 %08x 999 %s\n",
                                                Crc32c(payload),
                                                payload.c_str()) +
                                      Framed(2, payload))
                  .ok());
  StatusOr<Journal> bad_length = Journal::Open(path, JournalOptions{});
  ASSERT_FALSE(bad_length.ok());
  EXPECT_EQ(bad_length.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad_length.status().message().find("journal line 2"),
            std::string::npos);

  // A sequence gap mid-file: record 2 claims seq 7.
  ASSERT_TRUE(WriteTextFile(path, "pandia-journal v2\n" + Framed(1, payload) +
                                      Framed(7, payload) + Framed(3, payload))
                  .ok());
  StatusOr<Journal> bad_seq = Journal::Open(path, JournalOptions{});
  ASSERT_FALSE(bad_seq.ok());
  EXPECT_EQ(bad_seq.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad_seq.status().message().find("journal line 3"),
            std::string::npos)
      << bad_seq.status().ToString();
  std::remove(path.c_str());
}

TEST(Journal, TornSnapshotIsRefusedEvenAtTheTail) {
  const std::string path = TempPath("journal_torn_snapshot.wire");
  const std::string line = Framed(1, "SNAPSHOT mutation-seq=9");
  // Final record, torn mid-payload — but it is a SNAPSHOT, which only
  // reaches disk via fsync-then-rename. Truncating it would drop the whole
  // compacted history, so recovery must refuse.
  ASSERT_TRUE(WriteTextFile(path, "pandia-journal v2\n" +
                                      line.substr(0, line.size() - 4))
                  .ok());
  StatusOr<Journal> refused = Journal::Open(path, JournalOptions{});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(refused.status().message().find("snapshot record is truncated"),
            std::string::npos)
      << refused.status().ToString();
  std::remove(path.c_str());
}

TEST(Journal, CompactionRewritesToOneSnapshotAndKeepsSequencing) {
  const std::string path = TempPath("journal_compact.wire");
  // A stale tmp from a crashed compaction must be swept on Open.
  ASSERT_TRUE(WriteTextFile(path + ".tmp", "leftover").ok());
  Journal journal = MustOpen(path);
  ASSERT_EQ(ReadTextFile(path + ".tmp").ok(), false);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(journal.Append(Note(StrFormat("r%d", i))).ok());
  }
  const uint64_t seq_before = journal.next_seq();
  ASSERT_TRUE(journal.Compact(Note("snapshot-stand-in")).ok());
  EXPECT_EQ(journal.record_count(), 1u);
  EXPECT_EQ(journal.records_since_snapshot(), 0u);
  // The snapshot took seq_before; appends continue monotonically after it.
  EXPECT_EQ(journal.next_seq(), seq_before + 1);
  ASSERT_TRUE(journal.Append(Note("post")).ok());

  Journal replayed = MustOpen(path);
  ASSERT_EQ(replayed.recovery().records.size(), 2u);
  EXPECT_EQ(*replayed.recovery().records[0].request.Find("kind"),
            "snapshot-stand-in");
  EXPECT_EQ(*replayed.recovery().records[1].request.Find("kind"), "post");
  EXPECT_EQ(replayed.next_seq(), seq_before + 2);
  std::remove(path.c_str());
}

TEST(Journal, SyncPolicyNamesRoundTrip) {
  for (const SyncPolicy policy :
       {SyncPolicy::kNone, SyncPolicy::kInterval, SyncPolicy::kEveryRecord}) {
    const StatusOr<SyncPolicy> parsed = SyncPolicyFromName(SyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(SyncPolicyFromName("sometimes").ok());
}

TEST(Journal, EveryRecordSyncPolicyAppendsFine) {
  const std::string path = TempPath("journal_every_record.wire");
  JournalOptions options;
  options.sync = SyncPolicy::kEveryRecord;
  Journal journal = MustOpen(path, options);
  ASSERT_TRUE(journal.Append(Note("durable")).ok());
  ASSERT_TRUE(journal.Sync().ok());
  std::remove(path.c_str());
}

TEST(Journal, FailedAppendsRestoreTheTailByteForByte) {
  const std::string path = TempPath("journal_injected.wire");
  Journal journal = MustOpen(path);
  ASSERT_TRUE(journal.Append(Note("before")).ok());
  const uint64_t size_before = journal.size_bytes();
  const StatusOr<std::string> bytes_before = ReadTextFile(path);
  ASSERT_TRUE(bytes_before.ok());
  // Each injected failure spills half a record into the file before
  // failing; the tail repair must erase exactly those bytes, or the next
  // append would glue onto a mid-line fragment.
  journal.InjectAppendFailures(2);
  for (int i = 0; i < 2; ++i) {
    const Status failed = journal.Append(Note("lost"));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(journal.size_bytes(), size_before);
  EXPECT_EQ(journal.record_count(), 1u);
  const StatusOr<std::string> bytes_after = ReadTextFile(path);
  ASSERT_TRUE(bytes_after.ok());
  EXPECT_EQ(*bytes_after, *bytes_before);
  ASSERT_TRUE(journal.Append(Note("after")).ok());
  Journal replayed = MustOpen(path);
  EXPECT_FALSE(replayed.recovery().truncated_torn_tail);
  ASSERT_EQ(replayed.recovery().records.size(), 2u);
  EXPECT_EQ(*replayed.recovery().records[1].request.Find("kind"), "after");
  std::remove(path.c_str());
}

TEST(Journal, InjectedFailuresCanSkipLeadingAppends) {
  const std::string path = TempPath("journal_injected_after.wire");
  Journal journal = MustOpen(path);
  journal.InjectAppendFailures(1, /*after=*/1);
  ASSERT_TRUE(journal.Append(Note("first-lands")).ok());
  const Status failed = journal.Append(Note("second-fails"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(journal.Append(Note("third-lands")).ok());
  Journal replayed = MustOpen(path);
  ASSERT_EQ(replayed.recovery().records.size(), 2u);
  EXPECT_EQ(*replayed.recovery().records[0].request.Find("kind"),
            "first-lands");
  EXPECT_EQ(*replayed.recovery().records[1].request.Find("kind"),
            "third-lands");
  std::remove(path.c_str());
}

TEST(Journal, TailDefectsATearCannotProduceAreRefused) {
  const std::string path = TempPath("journal_tail_corruption.wire");
  const std::string first = Framed(1, wire::FormatRequest(Note("alpha")));
  const std::string second = Framed(2, wire::FormatRequest(Note("beta")));

  // A terminated final record with a flipped payload byte: the newline
  // proves the whole line landed, so this is bit-rot, not a tear.
  std::string flipped = second;
  flipped[flipped.size() - 2] ^= 0x01;
  ASSERT_TRUE(
      WriteTextFile(path, "pandia-journal v2\n" + first + flipped).ok());
  StatusOr<Journal> terminated_bad_crc = Journal::Open(path, JournalOptions{});
  ASSERT_FALSE(terminated_bad_crc.ok());
  EXPECT_EQ(terminated_bad_crc.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(terminated_bad_crc.status().message().find("checksum mismatch"),
            std::string::npos)
      << terminated_bad_crc.status().ToString();

  // Unterminated, but the payload is full length and the CRC mismatches: a
  // tear only removes a suffix, it cannot alter bytes — refuse.
  std::string unterminated = flipped;
  unterminated.pop_back();
  ASSERT_TRUE(
      WriteTextFile(path, "pandia-journal v2\n" + first + unterminated).ok());
  StatusOr<Journal> full_length_bad_crc = Journal::Open(path, JournalOptions{});
  ASSERT_FALSE(full_length_bad_crc.ok());
  EXPECT_EQ(full_length_bad_crc.status().code(), StatusCode::kDataLoss)
      << full_length_bad_crc.status().ToString();

  // A checksum-valid final record with the wrong sequence number (even
  // unterminated): the payload bytes all landed, so the bad sequence is a
  // writer bug on a possibly-acknowledged record — refuse.
  std::string wrong_seq = Framed(7, wire::FormatRequest(Note("beta")));
  wrong_seq.pop_back();
  ASSERT_TRUE(
      WriteTextFile(path, "pandia-journal v2\n" + first + wrong_seq).ok());
  StatusOr<Journal> bad_seq = Journal::Open(path, JournalOptions{});
  ASSERT_FALSE(bad_seq.ok());
  EXPECT_EQ(bad_seq.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad_seq.status().message().find("sequence 7 where 2 was expected"),
            std::string::npos)
      << bad_seq.status().ToString();
  std::remove(path.c_str());
}

TEST(Journal, V1JournalsRecoverReadOnly) {
  const std::string path = TempPath("journal_v1.wire");
  ASSERT_TRUE(WriteTextFile(path,
                            "pandia-journal v1\n"
                            "NOTE kind=legacy\n")
                  .ok());
  Journal journal = MustOpen(path);
  EXPECT_TRUE(journal.needs_upgrade());
  EXPECT_EQ(journal.recovery().version, 1);
  ASSERT_EQ(journal.recovery().records.size(), 1u);
  const Status append = journal.Append(Note("new"));
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition);
  // Compact upgrades in place; appending then works and the file is v2.
  ASSERT_TRUE(journal.Compact(Note("upgraded-state")).ok());
  EXPECT_FALSE(journal.needs_upgrade());
  ASSERT_TRUE(journal.Append(Note("new")).ok());
  const StatusOr<std::string> text = ReadTextFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->rfind("pandia-journal v2\n", 0), 0u) << *text;
  std::remove(path.c_str());
}

// --- service-level: degraded mode, COMPACT, v1 upgrade ------------------

const eval::Pipeline& X3() {
  static const eval::Pipeline* pipeline = new eval::Pipeline("x3-2");
  return *pipeline;
}

const std::string& DescriptionText(const std::string& workload) {
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  auto it = cache->find(workload);
  if (it == cache->end()) {
    it = cache
             ->emplace(workload, WorkloadDescriptionToText(
                                     X3().Profile(workloads::ByName(workload))))
             .first;
  }
  return it->second;
}

std::vector<rack::RackMachine> TwoNodeRack() {
  std::vector<rack::RackMachine> machines;
  for (int i = 0; i < 2; ++i) {
    machines.push_back({StrFormat("node%d", i), X3().description()});
  }
  return machines;
}

std::string AdmitLine(const std::string& name, const std::string& workload,
                      int threads) {
  wire::Request request;
  request.verb = "ADMIT";
  request.params.emplace_back("name", name);
  request.params.emplace_back("threads", StrFormat("%d", threads));
  request.params.emplace_back("desc.x3-2", DescriptionText(workload));
  return wire::FormatRequest(request);
}

PlacementService MustCreate(std::vector<rack::RackMachine> machines,
                            ServiceOptions options) {
  StatusOr<PlacementService> service =
      PlacementService::Create(std::move(machines), std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

bool IsOkBlock(const std::string& block) { return block.rfind("ok ", 0) == 0; }
bool IsErrBlock(const std::string& block) { return block.rfind("err ", 0) == 0; }

TEST(ServiceDegraded, PersistentAppendFailureEntersReadOnlyModeAndRecovers) {
  const std::string journal = TempPath("service_degraded.wire");
  ServiceOptions options;
  options.journal_path = journal;
  // Appends 1-5 fail, everything after succeeds. With the default threshold
  // of 3 consecutive failures the service degrades on the third admit.
  options.journal.fail_next_appends = 5;
  PlacementService service = MustCreate(TwoNodeRack(), options);

  const std::string telemetry_before = service.HandleLine("TELEMETRY");
  for (int i = 0; i < 3; ++i) {
    const std::string response =
        service.HandleLine(AdmitLine(StrFormat("job%d", i), "EP", 2));
    ASSERT_TRUE(IsErrBlock(response)) << response;
    EXPECT_NE(response.find("unavailable"), std::string::npos) << response;
  }
  EXPECT_TRUE(service.degraded());
  // Failed appends rolled every mutation back: TELEMETRY is byte-identical
  // to never having tried (the DEPART-rollback telemetry fix rides on the
  // same SaveState/RestoreState path).
  EXPECT_EQ(service.HandleLine("TELEMETRY"), telemetry_before);

  // Read verbs keep serving; mutating verbs are refused with a read-only
  // hint and the gauge reports the mode.
  EXPECT_TRUE(IsOkBlock(service.HandleLine("STATUS")));
  const std::string metrics = service.HandleLine("METRICS format=expo");
  EXPECT_NE(metrics.find("serve.degraded 1"), std::string::npos) << metrics;
  const std::string refused = service.HandleLine(AdmitLine("jobx", "EP", 2));
  ASSERT_TRUE(IsErrBlock(refused)) << refused;
  EXPECT_NE(refused.find("read-only"), std::string::npos) << refused;

  // That refusal burned injected failure #4 as a probe; #5 fails the next
  // probe too; the probe after that succeeds and service resumes.
  ASSERT_TRUE(IsErrBlock(service.HandleLine(AdmitLine("joby", "EP", 2))));
  const std::string recovered = service.HandleLine(AdmitLine("jobz", "EP", 2));
  ASSERT_TRUE(IsOkBlock(recovered)) << recovered;
  EXPECT_FALSE(service.degraded());
  EXPECT_NE(service.HandleLine("METRICS format=expo").find("serve.degraded 0"),
            std::string::npos);
  std::remove(journal.c_str());
}

TEST(ServiceDegraded, DepartStaysAcknowledgedWhenReplacementJournalFails) {
  const std::string journal = TempPath("service_depart_warning.wire");
  ServiceOptions options;
  options.journal_path = journal;
  // Any re-placement candidate beats a negative margin, so departing one of
  // the two hogs deterministically makes the service try to re-place the
  // survivor (a journaled MOVED).
  options.replace_margin = -1.0;
  std::vector<rack::RackMachine> machines{{"node0", X3().description()}};
  std::optional<PlacementService> service(
      MustCreate(std::move(machines), options));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("hog-a", "Swim", 16))));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("hog-b", "Swim", 16))));
  // The DEPARTED append lands; the MOVED append of the follow-up
  // re-placement fails. The departure is durable and applied, so the
  // response must stay ok — converting it to an error would tell the
  // client a committed mutation failed (and a retry would get 'not
  // resident'). The failed move itself is rolled back and reported as a
  // warning row.
  ASSERT_NE(service->journal_for_test(), nullptr);
  service->journal_for_test()->InjectAppendFailures(1, /*after=*/1);
  const std::string departed = service->HandleLine("DEPART name=hog-a");
  ASSERT_TRUE(IsOkBlock(departed)) << departed;
  EXPECT_EQ(service->rack().JobCount(), 1);
  ASSERT_NE(departed.find("warning = "), std::string::npos) << departed;
  EXPECT_NE(departed.find("re-placement skipped"), std::string::npos)
      << departed;
  // The rolled-back move must not be reported as having happened.
  EXPECT_EQ(departed.find("moved = "), std::string::npos) << departed;
  // The acknowledged state matches the journal: a restart replays to the
  // same bytes.
  const std::string status = service->HandleLine("STATUS");
  const std::string telemetry = service->HandleLine("TELEMETRY");
  service.reset();
  std::vector<rack::RackMachine> machines_again{{"node0", X3().description()}};
  std::optional<PlacementService> replayed(
      MustCreate(std::move(machines_again), options));
  EXPECT_EQ(replayed->HandleLine("STATUS"), status);
  EXPECT_EQ(replayed->HandleLine("TELEMETRY"), telemetry);
  std::remove(journal.c_str());
}

TEST(ServiceCompact, CompactVerbSnapshotsAndRestartIsByteIdentical) {
  const std::string journal = TempPath("service_compact.wire");
  ServiceOptions options;
  options.journal_path = journal;
  std::optional<PlacementService> service(MustCreate(TwoNodeRack(), options));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("web", "EP", 2))));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("db", "MD", 2))));
  ASSERT_TRUE(IsOkBlock(service->HandleLine(AdmitLine("cache", "CG", 1))));
  (void)service->HandleLine("REBALANCE max-migrations=2");
  ASSERT_TRUE(IsOkBlock(service->HandleLine("DEPART name=db")));

  const std::string status_before = service->HandleLine("STATUS");
  const std::string telemetry_before = service->HandleLine("TELEMETRY");

  const std::string compacted = service->HandleLine("COMPACT");
  ASSERT_TRUE(IsOkBlock(compacted)) << compacted;
  EXPECT_NE(compacted.find("records-before = "), std::string::npos);
  EXPECT_NE(compacted.find("records-after = 1"), std::string::npos);
  EXPECT_NE(compacted.find("reclaimed-bytes = "), std::string::npos);
  // Compaction itself mutates no rack state.
  EXPECT_EQ(service->HandleLine("STATUS"), status_before);
  EXPECT_EQ(service->HandleLine("TELEMETRY"), telemetry_before);
  EXPECT_TRUE(IsErrBlock(service->HandleLine("COMPACT now=1")));

  service.reset();  // the "kill"
  std::optional<PlacementService> replayed(MustCreate(TwoNodeRack(), options));
  // Restart replays exactly one SNAPSHOT record (the post-snapshot suffix
  // is empty) and reproduces the full state byte for byte.
  ASSERT_NE(replayed->journal_for_test(), nullptr);
  EXPECT_EQ(replayed->journal_for_test()->record_count(), 1u);
  EXPECT_EQ(replayed->HandleLine("STATUS"), status_before);
  EXPECT_EQ(replayed->HandleLine("TELEMETRY"), telemetry_before);

  // The revived journal keeps accepting post-snapshot mutations.
  ASSERT_TRUE(IsOkBlock(replayed->HandleLine(AdmitLine("more", "EP", 1))));
  std::remove(journal.c_str());
}

TEST(ServiceCompact, CompactWithoutAJournalIsAFailedPrecondition) {
  PlacementService service = MustCreate(TwoNodeRack(), ServiceOptions{});
  const std::string response = service.HandleLine("COMPACT");
  ASSERT_TRUE(IsErrBlock(response)) << response;
  EXPECT_NE(response.find("failed-precondition"), std::string::npos);
}

TEST(ServiceCompact, AutomaticCompactionFiresWhenTheLiveRatioDrops) {
  const std::string journal = TempPath("service_autocompact.wire");
  ServiceOptions options;
  options.journal_path = journal;
  options.compact_min_records = 8;  // tiny threshold so the test is fast
  options.compact_live_ratio = 0.5;
  PlacementService service = MustCreate(TwoNodeRack(), options);
  // Admit+depart churn: every pair adds two records but zero live jobs, so
  // the live ratio decays toward 0 and crosses 0.5 past 8 records.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        IsOkBlock(service.HandleLine(AdmitLine(StrFormat("t%d", i), "EP", 1))));
    ASSERT_TRUE(
        IsOkBlock(service.HandleLine(StrFormat("DEPART name=t%d", i))));
  }
  ASSERT_NE(service.journal_for_test(), nullptr);
  // Compaction folded the churn into one snapshot; the journal did not keep
  // all 16 records.
  EXPECT_LE(service.journal_for_test()->record_count(), 8u);
  const std::string metrics = service.HandleLine("METRICS format=expo");
  EXPECT_NE(metrics.find("serve.journal.live_ratio"), std::string::npos);
  std::remove(journal.c_str());
}

TEST(ServiceV1, LegacyJournalReplaysAndUpgradesOnFirstMutation) {
  const std::string journal = TempPath("service_v1_upgrade.wire");
  ServiceOptions options;
  options.journal_path = journal;
  // Produce genuine journal payloads by running a v2 service, then rewrite
  // them as a legacy v1 file (raw request lines, no framing).
  {
    PlacementService seeder = MustCreate(TwoNodeRack(), options);
    ASSERT_TRUE(IsOkBlock(seeder.HandleLine(AdmitLine("web", "EP", 2))));
    ASSERT_TRUE(IsOkBlock(seeder.HandleLine(AdmitLine("db", "MD", 1))));
  }
  const StatusOr<std::string> v2_text = ReadTextFile(journal);
  ASSERT_TRUE(v2_text.ok());
  std::string v1_text = "pandia-journal v1\n";
  bool header = true;
  for (const std::string& line : StrSplit(*v2_text, '\n')) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    // Strip the "seq crc len " frame, keeping the raw payload.
    size_t at = 0;
    for (int spaces = 0; spaces < 3; ++spaces) {
      at = line.find(' ', at) + 1;
    }
    v1_text += line.substr(at) + "\n";
  }
  ASSERT_TRUE(WriteTextFile(journal, v1_text).ok());

  std::optional<PlacementService> service(MustCreate(TwoNodeRack(), options));
  EXPECT_EQ(service->rack().JobCount(), 2);
  ASSERT_NE(service->journal_for_test(), nullptr);
  EXPECT_TRUE(service->journal_for_test()->needs_upgrade());
  const std::string status_before = service->HandleLine("STATUS");

  // The first mutation upgrades the journal (snapshot of the pre-mutation
  // state) and then applies normally.
  ASSERT_TRUE(IsOkBlock(service->HandleLine("DEPART name=db")));
  EXPECT_FALSE(service->journal_for_test()->needs_upgrade());
  const StatusOr<std::string> upgraded = ReadTextFile(journal);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded->rfind("pandia-journal v2\n", 0), 0u);

  const std::string status_after_depart = service->HandleLine("STATUS");
  service.reset();
  std::optional<PlacementService> replayed(MustCreate(TwoNodeRack(), options));
  EXPECT_EQ(replayed->HandleLine("STATUS"), status_after_depart);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace pandia
