// src/lint: the pandia_lint rule engine — every rule fires on a minimal
// fixture with the right file:line, every rule is suppressible with
// `pandia-lint: allow(<rule>)`, path scoping and exemptions hold, and the
// code/comment/string separation keeps rules from firing on prose or on
// fixture strings (this file itself is linted by the pandia_lint ctest, so
// every forbidden token below lives inside a string literal).
#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pandia {
namespace lint {
namespace {

std::vector<std::string> RuleNames(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  for (const Finding& finding : findings) names.push_back(finding.rule);
  return names;
}

TEST(LintRules, RegistryListsEveryRule) {
  const std::vector<RuleInfo>& rules = Rules();
  ASSERT_EQ(rules.size(), 8u);
  EXPECT_EQ(rules[0].name, "naked-mutex");
  EXPECT_EQ(rules[1].name, "no-abort");
  EXPECT_EQ(rules[2].name, "unseeded-rand");
  EXPECT_EQ(rules[3].name, "unordered-wire");
  EXPECT_EQ(rules[4].name, "no-raw-journal-io");
  EXPECT_EQ(rules[5].name, "no-raw-poll-io");
  EXPECT_EQ(rules[6].name, "todo-owner");
  EXPECT_EQ(rules[7].name, "metric-name");
  for (const RuleInfo& rule : rules) EXPECT_FALSE(rule.summary.empty());
}

TEST(LintFormat, PathLineRuleMessage) {
  const Finding finding{"src/a.cc", 7, "no-abort", "boom"};
  EXPECT_EQ(FormatFinding(finding), "src/a.cc:7: no-abort: boom");
}

// --- naked-mutex ---------------------------------------------------------

TEST(NakedMutex, FiresOnStdMutexWithExactLine) {
  const std::vector<Finding> findings = LintFile(
      "src/foo/foo.cc", "#include \"src/foo/foo.h\"\n\nstd::mutex mu_;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/foo/foo.cc");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].rule, "naked-mutex");
}

TEST(NakedMutex, FiresOnIncludeAndOnEveryLockType) {
  const std::vector<Finding> findings =
      LintFile("src/foo/foo.cc",
               "#include <mutex>\n"
               "std::lock_guard<std::mutex> l(mu);\n"
               "std::condition_variable cv;\n");
  // Line 1: the include. Line 2: lock_guard and mutex. Line 3: the condvar.
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 2);
  EXPECT_EQ(findings[3].line, 3);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "naked-mutex");
  }
}

TEST(NakedMutex, MutexHeaderItselfIsExempt) {
  EXPECT_TRUE(LintFile("src/util/mutex.h",
                       "#include <mutex>\nstd::mutex mu_;\n")
                  .empty());
}

TEST(NakedMutex, OnlyStdSpellingsCount) {
  // The wrapper's own types reuse the words; only std:: qualification fires.
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "util::Mutex mu_;\nutil::MutexLock lock(mu_);\n")
                  .empty());
}

TEST(NakedMutex, CommentsAndStringsDoNotFire) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "// prefer util::Mutex over std::mutex\n"
                       "const char* kDoc = \"std::mutex is banned\";\n"
                       "/* std::lock_guard, std::condition_variable */\n")
                  .empty());
}

TEST(NakedMutex, RawStringsDoNotFire) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "const char* kFixture = R\"(std::mutex mu;)\";\n")
                  .empty());
}

// --- no-abort ------------------------------------------------------------

TEST(NoAbort, FiresOnAbortExitAndThrowInLibraryCode) {
  const std::vector<Finding> findings =
      LintFile("src/foo/foo.cc",
               "void f() { std::abort(); }\n"
               "void g() { exit(1); }\n"
               "void h() { throw 42; }\n");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 3);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "no-abort");
  }
}

TEST(NoAbort, ScopedToSrcOnly) {
  const std::string body = "int main() { exit(1); }\n";
  EXPECT_TRUE(LintFile("tools/pandia_foo.cc", body).empty());
  EXPECT_TRUE(LintFile("tests/foo_test.cc", body).empty());
  EXPECT_EQ(LintFile("src/foo/foo.cc", body).size(), 1u);
}

TEST(NoAbort, IdentifierBoundariesHold) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "void do_exit(int);\n"
                       "bool aborted(const Run& run);\n"
                       "int quick_exit_count = 0;\n")
                  .empty());
}

// --- unseeded-rand -------------------------------------------------------

TEST(UnseededRand, FiresOnEveryNondeterminismSource) {
  const std::vector<Finding> findings =
      LintFile("src/foo/foo.cc",
               "int a = rand();\n"
               "srand(42);\n"
               "std::random_device rd;\n"
               "unsigned seed = time(nullptr);\n"
               "unsigned old_seed = time(NULL);\n");
  ASSERT_EQ(RuleNames(findings),
            (std::vector<std::string>{"unseeded-rand", "unseeded-rand",
                                      "unseeded-rand", "unseeded-rand",
                                      "unseeded-rand"}));
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].line, static_cast<int>(i) + 1);
  }
}

TEST(UnseededRand, RngImplementationIsExempt) {
  EXPECT_TRUE(
      LintFile("src/util/rng.cc", "std::random_device entropy;\n").empty());
  EXPECT_TRUE(LintFile("src/util/rng.h", "int x = rand();\n").empty());
}

TEST(UnseededRand, BoundariesAndNonNullTimeAreFine) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "int operand(int);\n"
                       "double strand(double);\n"
                       "std::time_t t = time(&out);\n")
                  .empty());
}

// --- unordered-wire ------------------------------------------------------

TEST(UnorderedWire, FiresOnlyInSerializationPaths) {
  const std::string body = "std::unordered_map<int, int> by_id;\n";
  const std::vector<Finding> serialize =
      LintFile("src/serialize/serialize.cc", body);
  ASSERT_EQ(serialize.size(), 1u);
  EXPECT_EQ(serialize[0].rule, "unordered-wire");
  EXPECT_EQ(serialize[0].line, 1);
  EXPECT_EQ(LintFile("src/serve/service.cc", body).size(), 1u);
  // The prediction cache legitimately hashes; it is not a wire path.
  EXPECT_TRUE(LintFile("src/predictor/prediction_cache.h", body).empty());
  EXPECT_TRUE(LintFile("tests/foo_test.cc", body).empty());
}

TEST(UnorderedWire, CatchesSetsAndIncludes) {
  const std::vector<Finding> findings =
      LintFile("src/serve/service.cc",
               "#include <unordered_set>\n"
               "std::unordered_set<std::string> names;\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
}

// --- no-raw-journal-io ---------------------------------------------------

TEST(NoRawJournalIo, FiresOnDirectFileIoInServe) {
  const std::vector<Finding> findings =
      LintFile("src/serve/service.cc",
               "std::FILE* f = std::fopen(path.c_str(), \"ab\");\n"
               "std::fwrite(line.data(), 1, line.size(), f);\n"
               "std::fflush(f);\n"
               "::fsync(::fileno(f));\n"
               "std::rename(tmp.c_str(), path.c_str());\n");
  ASSERT_EQ(findings.size(), 5u);
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].rule, "no-raw-journal-io");
    EXPECT_EQ(findings[i].line, static_cast<int>(i) + 1);
  }
}

TEST(NoRawJournalIo, JournalImplementationAndOtherPathsAreExempt) {
  const std::string body = "std::fwrite(line.data(), 1, line.size(), f);\n";
  EXPECT_TRUE(LintFile("src/serve/journal.cc", body).empty());
  EXPECT_TRUE(LintFile("src/eval/pipeline.cc", body).empty());
  EXPECT_TRUE(LintFile("tools/pandia_serve.cc", body).empty());
  EXPECT_TRUE(LintFile("tests/serve_test.cc", body).empty());
}

TEST(NoRawJournalIo, IdentifierBoundariesAndAllowsHold) {
  EXPECT_TRUE(LintFile("src/serve/socket.cc",
                       "int buffered_fwrite_count = 0;\n"
                       "void renamed(const std::string& s);\n")
                  .empty());
  EXPECT_TRUE(
      LintFile("src/serve/socket.cc",
               "std::fflush(stdout_stream);  "
               "// pandia-lint: allow(no-raw-journal-io)\n")
          .empty());
}

// --- no-raw-poll-io ------------------------------------------------------

TEST(NoRawPollIo, FiresOnEventLoopAndSocketSyscalls) {
  const std::vector<Finding> findings =
      LintFile("src/serve/client.cc",
               "int ep = epoll_create1(EPOLL_CLOEXEC);\n"
               "epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);\n"
               "int n = epoll_wait(ep, events, 64, -1);\n"
               "::poll(nullptr, 0, backoff_ms);\n"
               "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
               "int conn = ::accept(listen_fd, nullptr, nullptr);\n");
  ASSERT_EQ(findings.size(), 6u);
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].rule, "no-raw-poll-io");
    EXPECT_EQ(findings[i].line, static_cast<int>(i) + 1);
  }
}

TEST(NoRawPollIo, SocketOwnersAndNonSrcPathsAreExempt) {
  const std::string body = "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n";
  EXPECT_TRUE(LintFile("src/serve/socket.cc", body).empty());
  EXPECT_TRUE(LintFile("src/serve/socket_internal.h", body).empty());
  EXPECT_TRUE(LintFile("tools/pandia_top.cc", body).empty());
  EXPECT_TRUE(LintFile("tests/client_test.cc", body).empty());
}

TEST(NoRawPollIo, IdentifierBoundariesAndProseAreFine) {
  // Substrings of longer identifiers, member accesses without a call, and
  // mentions in comments or strings must not fire.
  EXPECT_TRUE(LintFile("src/serve/service.cc",
                       "int poll_interval_ms = 5;\n"
                       "options.select_policy = kRoundRobin;\n"
                       "Unsocket(fd);\n"
                       "// the Poller wraps epoll_wait for the loop\n"
                       "const char* s = \"socket(AF_UNIX)\";\n")
                  .empty());
}

// --- todo-owner ----------------------------------------------------------

TEST(TodoOwner, FiresOnOwnerlessTodo) {
  const std::vector<Finding> findings =
      LintFile("src/foo/foo.cc",
               "int x = 0;\n"
               "// TODO: tighten this bound\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "todo-owner");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(TodoOwner, OwnedTodoAndEmptyOwnerAndCodeIdentifiers) {
  EXPECT_TRUE(
      LintFile("src/foo/foo.cc", "// TODO(ana): tighten this bound\n").empty());
  // An empty owner is no owner.
  EXPECT_EQ(LintFile("src/foo/foo.cc", "// TODO(): tighten\n").size(), 1u);
  // The rule reads comments, not code or strings.
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "int TODO = 1;\nconst char* s = \"TODO: x\";\n")
                  .empty());
}

TEST(TodoOwner, AppliesToTestsAndToolsToo) {
  EXPECT_EQ(LintFile("tests/foo_test.cc", "// TODO update\n").size(), 1u);
  EXPECT_EQ(LintFile("tools/pandia_foo.cc", "// TODO update\n").size(), 1u);
}

// --- allow() suppression -------------------------------------------------

// --- metric-name ---------------------------------------------------------

TEST(MetricName, AcceptsDottedLowercaseNames) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "registry.counter(\"serve.admit.requests\");\n"
                       "registry.gauge(\"serve.jobs\");\n"
                       "registry.histogram(\"serve.latency_us\", bounds);\n")
                  .empty());
}

TEST(MetricName, RejectsUndottedUppercaseAndMalformedSegments) {
  const std::vector<Finding> findings =
      LintFile("src/foo/foo.cc",
               "registry.counter(\"requests\");\n"     // no dot
               "registry.gauge(\"Serve.jobs\");\n"     // uppercase
               "registry.counter(\"serve..x\");\n"     // empty segment
               "registry.histogram(\"serve.9ths\", bounds);\n");  // digit lead
  ASSERT_EQ(findings.size(), 4u);
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].rule, "metric-name");
    EXPECT_EQ(findings[i].line, static_cast<int>(i) + 1);
  }
}

TEST(MetricName, SkipsComputedAndConcatenatedNames) {
  // Only a complete single-literal first argument is checkable; computed
  // names are the caller's responsibility.
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "registry.counter(prefix + \".requests\");\n"
                       "registry.counter(MakeName());\n"
                       "registry.counter(\"serve.\" + verb);\n")
                  .empty());
}

TEST(MetricName, IgnoresNonInstrumentIdentifiers) {
  // Other functions that happen to contain the words, and member accesses
  // without a call, must not fire.
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "int counter = 3;\n"
                       "program_counter(\"NotAMetric\");\n"
                       "recount.histogram_bins = 4;\n")
                  .empty());
}

TEST(MetricName, AppliesToTestsAndToolsToo) {
  const std::vector<Finding> findings = LintFile(
      "tools/pandia_top.cc", "registry.counter(\"BadName\");\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-name");
}

TEST(Allow, SuppressesTheNamedRuleOnItsLine) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "std::mutex raw_;  "
                       "// pandia-lint: allow(naked-mutex) libfoo interop\n")
                  .empty());
}

TEST(Allow, DoesNotSuppressOtherRulesOrOtherLines) {
  // Allowing one rule leaves a second violation on the same line standing.
  const std::vector<Finding> same_line =
      LintFile("src/foo/foo.cc",
               "std::mutex raw_; abort();  "
               "// pandia-lint: allow(naked-mutex)\n");
  ASSERT_EQ(same_line.size(), 1u);
  EXPECT_EQ(same_line[0].rule, "no-abort");

  // A directive on the previous line suppresses nothing.
  const std::vector<Finding> prev_line =
      LintFile("src/foo/foo.cc",
               "// pandia-lint: allow(naked-mutex)\n"
               "std::mutex raw_;\n");
  ASSERT_EQ(prev_line.size(), 1u);
  EXPECT_EQ(prev_line[0].line, 2);
}

TEST(Allow, AcceptsACommaSeparatedRuleList) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "std::mutex raw_; abort();  "
                       "// pandia-lint: allow(naked-mutex, no-abort)\n")
                  .empty());
}

TEST(Allow, EveryRegisteredRuleIsSuppressible) {
  struct Fixture {
    std::string path;
    std::string line;
  };
  const std::vector<Fixture> fixtures = {
      {"src/foo/foo.cc",
       "std::mutex raw_;  // pandia-lint: allow(naked-mutex)\n"},
      {"src/foo/foo.cc", "abort();  // pandia-lint: allow(no-abort)\n"},
      {"src/foo/foo.cc", "int a = rand();  // pandia-lint: allow(unseeded-rand)\n"},
      {"src/serve/x.cc",
       "std::unordered_map<int, int> m;  // pandia-lint: allow(unordered-wire)\n"},
      {"src/serve/x.cc",
       "std::fflush(f);  // pandia-lint: allow(no-raw-journal-io)\n"},
      {"src/serve/x.cc",
       "::poll(fds, 1, -1);  // pandia-lint: allow(no-raw-poll-io)\n"},
      {"src/foo/foo.cc", "// TODO revisit  pandia-lint: allow(todo-owner)\n"},
      {"src/foo/foo.cc",
       "registry.counter(\"Bad\");  // pandia-lint: allow(metric-name)\n"},
  };
  for (const Fixture& fixture : fixtures) {
    EXPECT_TRUE(LintFile(fixture.path, fixture.line).empty())
        << fixture.path << ": " << fixture.line;
  }
}

// --- lexer behaviour -----------------------------------------------------

TEST(Lexer, BlockCommentsKeepLineNumbersStraight) {
  const std::vector<Finding> findings =
      LintFile("src/foo/foo.cc",
               "/* a std::mutex mention\n"
               "   spanning lines */ std::mutex mu_;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(Lexer, DigitSeparatorsAreNotCharLiterals) {
  // A bad char-literal lexer would treat 1'000'000 as opening a literal and
  // swallow the violation that follows.
  const std::vector<Finding> findings = LintFile(
      "src/foo/foo.cc", "int big = 1'000'000; std::mutex mu_;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "naked-mutex");
}

TEST(Lexer, EscapedQuotesStayInsideStrings) {
  EXPECT_TRUE(LintFile("src/foo/foo.cc",
                       "const char* s = \"quoted \\\" std::mutex\";\n")
                  .empty());
}

TEST(Lexer, FindingsComeBackInLineOrder) {
  const std::vector<Finding> findings =
      LintFile("src/foo/foo.cc",
               "// TODO sort me\n"
               "std::mutex mu_;\n"
               "abort();\n");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_LT(findings[0].line, findings[1].line);
  EXPECT_LT(findings[1].line, findings[2].line);
}

}  // namespace
}  // namespace lint
}  // namespace pandia
