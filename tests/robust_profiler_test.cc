// Noise-resilience tests for the robust profiler (ISSUE: robustness PR).
//
// The acceptance property: under the documented fault mix (3% time jitter,
// 5% counter dropout, 1-in-20 run failure), five-trial profiling reproduces
// every model parameter within 10% of the noise-free description, while
// single-trial profiling demonstrably does not. Faults are seeded and
// deterministic, so these tests are exact repeats — no flakiness budget.
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/machine_desc/generator.h"
#include "src/sim/fault_plan.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/workload_desc/profiler.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

// Seed for the single-trial miss demonstration, found by scanning: with one
// trial this seed's fault draws push at least one parameter past the 10%
// bound. Deterministic, so the demonstration is an exact repeat.
constexpr uint64_t kSingleTrialMissSeed = 6;

// Noise-free machine: all measurement noise comes from the fault plan, so
// the noise-free baseline is exact and tolerances are attributable.
sim::Machine QuietMachine() {
  sim::MachineSpec spec = sim::MakeX3_2();
  spec.noise_magnitude = 0.0;
  return sim::Machine{spec};
}

const MachineDescription& QuietDesc() {
  static const MachineDescription desc = GenerateMachineDescription(QuietMachine());
  return desc;
}

// A workload exercising every counter and all four derived parameters.
sim::WorkloadSpec RichSpec() {
  sim::WorkloadSpec spec;
  spec.name = "robust-probe";
  spec.total_work = 500.0;
  spec.parallel_fraction = 0.97;
  spec.balance = sim::BalanceMode::kStatic;
  spec.single_thread_ipc = 0.8;
  spec.ops_per_work = 1.0;
  spec.l1_bpw = 8.0;
  spec.l2_bpw = 2.0;
  spec.l3_bpw = 0.5;
  spec.dram_bpw = 0.1;
  spec.memory_policy = MemoryPolicy::kLocal;
  return spec;
}

// Every scalar the profiler derives, labelled for failure messages.
std::vector<std::pair<std::string, double>> Parameters(const WorkloadDescription& d) {
  return {{"t1", d.t1},
          {"instr_rate", d.demands.instr_rate},
          {"l1_bw", d.demands.l1_bw},
          {"l2_bw", d.demands.l2_bw},
          {"l3_bw", d.demands.l3_bw},
          {"dram_local_bw", d.demands.dram_local_bw},
          {"dram_remote_bw", d.demands.dram_remote_bw},
          {"parallel_fraction", d.parallel_fraction},
          {"inter_socket_overhead", d.inter_socket_overhead},
          {"load_balance", d.load_balance},
          {"burstiness", d.burstiness}};
}

// Relative error with a small absolute floor so parameters that are
// legitimately ~0 (remote bandwidth on a local-policy workload) don't turn
// a tiny absolute wobble into a huge relative one.
double RelativeError(double baseline, double value) {
  return std::fabs(value - baseline) / std::max(std::fabs(baseline), 0.05);
}

WorkloadDescription NoiseFreeBaseline() {
  // The profiler keeps a pointer to the machine: it must outlive the call.
  const sim::Machine machine = QuietMachine();
  const WorkloadProfiler profiler(machine, QuietDesc());
  return profiler.Profile(RichSpec());
}

StatusOr<WorkloadDescription> ProfileFaulted(uint64_t fault_seed, int trials) {
  sim::Machine machine = QuietMachine();
  machine.set_fault_plan(sim::FaultPlan::Defaults(fault_seed));
  const WorkloadProfiler profiler(machine, QuietDesc());
  ProfileOptions options;
  options.trials = trials;
  return profiler.ProfileRobust(RichSpec(), options);
}

TEST(RobustProfiler, FiveTrialsWithinTenPercentUnderFaults) {
  const WorkloadDescription baseline = NoiseFreeBaseline();
  for (const uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const StatusOr<WorkloadDescription> robust = ProfileFaulted(seed, /*trials=*/5);
    ASSERT_TRUE(robust.ok()) << robust.status().ToString();
    const auto base = Parameters(baseline);
    const auto got = Parameters(*robust);
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_LE(RelativeError(base[i].second, got[i].second), 0.10)
          << base[i].first << ": baseline " << base[i].second << " vs "
          << got[i].second;
    }
  }
}

TEST(RobustProfiler, FiveTrialsWithinTenPercentOnStockWorkload) {
  // The acceptance property on a stock evaluation workload and the stock
  // (intrinsically noisy) x3-2: five-trial profiling under the default fault
  // mix stays within 10% of the fault-free description on every parameter.
  const sim::Machine clean{sim::MakeX3_2()};
  const MachineDescription desc = GenerateMachineDescription(clean);
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  const WorkloadProfiler baseline_profiler(clean, desc);
  const WorkloadDescription baseline = baseline_profiler.Profile(workload);

  sim::Machine faulted{sim::MakeX3_2()};
  faulted.set_fault_plan(sim::FaultPlan::Defaults(1));
  const WorkloadProfiler profiler(faulted, desc);
  ProfileOptions options;
  options.trials = 5;
  const StatusOr<WorkloadDescription> robust = profiler.ProfileRobust(workload, options);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  const auto base = Parameters(baseline);
  const auto got = Parameters(*robust);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_LE(RelativeError(base[i].second, got[i].second), 0.10)
        << base[i].first << ": baseline " << base[i].second << " vs "
        << got[i].second;
  }
}

TEST(RobustProfiler, SingleTrialMissesUnderFaults) {
  // With one trial there is no aggregation: a single 3% jitter draw lands
  // directly in t1, and a single dropped counter zeroes a demand entirely.
  // At least one parameter must exceed the 10% bound for this seed (found
  // by scanning; deterministic thereafter).
  const WorkloadDescription baseline = NoiseFreeBaseline();
  const StatusOr<WorkloadDescription> single =
      ProfileFaulted(kSingleTrialMissSeed, /*trials=*/1);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  const auto base = Parameters(baseline);
  const auto got = Parameters(*single);
  double worst = 0.0;
  for (size_t i = 0; i < base.size(); ++i) {
    worst = std::max(worst, RelativeError(base[i].second, got[i].second));
  }
  EXPECT_GT(worst, 0.10);
}

TEST(RobustProfiler, RepeatedFaultedProfileIsDeterministic) {
  const StatusOr<WorkloadDescription> a = ProfileFaulted(7, /*trials=*/3);
  const StatusOr<WorkloadDescription> b = ProfileFaulted(7, /*trials=*/3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto pa = Parameters(*a);
  const auto pb = Parameters(*b);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].second, pb[i].second) << pa[i].first;
  }
  EXPECT_EQ(a->quality.total_retries(), b->quality.total_retries());
  EXPECT_EQ(a->quality.counters_imputed, b->quality.counters_imputed);
}

TEST(RobustProfiler, SingleTrialNoFaultsMatchesProfileExactly) {
  // The historic single-observation path must be byte-identical when no
  // fault plan is armed and trials = 1.
  const sim::Machine machine = QuietMachine();
  const WorkloadProfiler profiler(machine, QuietDesc());
  const WorkloadDescription direct = profiler.Profile(RichSpec());
  const StatusOr<WorkloadDescription> robust =
      profiler.ProfileRobust(RichSpec(), ProfileOptions{});
  ASSERT_TRUE(robust.ok());
  const auto pd = Parameters(direct);
  const auto pr = Parameters(*robust);
  for (size_t i = 0; i < pd.size(); ++i) {
    EXPECT_EQ(pd[i].second, pr[i].second) << pd[i].first;
  }
  EXPECT_FALSE(robust->quality.degraded());
  EXPECT_EQ(robust->quality.total_retries(), 0);
}

TEST(RobustProfiler, RunFailuresAreRetriedAndCounted) {
  sim::Machine machine = QuietMachine();
  sim::FaultPlan plan;
  plan.enabled = true;
  plan.run_failure = 0.5;  // no jitter/dropout: surviving runs are exact
  plan.seed = 11;
  machine.set_fault_plan(plan);
  const WorkloadProfiler profiler(machine, QuietDesc());
  ProfileOptions options;
  options.trials = 3;
  options.max_attempts = 20;
  const StatusOr<WorkloadDescription> robust =
      profiler.ProfileRobust(RichSpec(), options);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_GT(robust->quality.total_retries(), 0);
  // Run failures perturb nothing once retried: parameters are exact.
  const WorkloadDescription baseline = NoiseFreeBaseline();
  const auto base = Parameters(baseline);
  const auto got = Parameters(*robust);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].second, got[i].second) << base[i].first;
  }
}

TEST(RobustProfiler, CounterDropoutIsImputedAndRecorded) {
  sim::Machine machine = QuietMachine();
  sim::FaultPlan plan;
  plan.enabled = true;
  plan.counter_dropout = 0.4;  // aggressive: some run-1 counter will drop
  plan.seed = 5;
  machine.set_fault_plan(plan);
  const WorkloadProfiler profiler(machine, QuietDesc());
  ProfileOptions options;
  options.trials = 7;
  const StatusOr<WorkloadDescription> robust =
      profiler.ProfileRobust(RichSpec(), options);
  ASSERT_TRUE(robust.ok()) << robust.status().ToString();
  EXPECT_GT(robust->quality.counters_imputed, 0);
  EXPECT_FALSE(robust->quality.diagnostics.empty());
  EXPECT_TRUE(robust->quality.degraded());
  // Imputation from surviving trials recovers the exact (noise-free) rates.
  const WorkloadDescription baseline = NoiseFreeBaseline();
  EXPECT_EQ(robust->demands.instr_rate, baseline.demands.instr_rate);
  EXPECT_EQ(robust->demands.l1_bw, baseline.demands.l1_bw);
}

TEST(RobustProfiler, AllTrialsFailedReturnsUnavailable) {
  sim::Machine machine = QuietMachine();
  sim::FaultPlan plan;
  plan.enabled = true;
  plan.run_failure = 1.0;
  machine.set_fault_plan(plan);
  const WorkloadProfiler profiler(machine, QuietDesc());
  ProfileOptions options;
  options.trials = 2;
  options.max_attempts = 3;
  const StatusOr<WorkloadDescription> robust =
      profiler.ProfileRobust(RichSpec(), options);
  ASSERT_FALSE(robust.ok());
  EXPECT_EQ(robust.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(robust.status().message().find("trials failed"), std::string::npos);
}

TEST(RobustProfiler, RejectsBadOptions) {
  const sim::Machine machine = QuietMachine();
  const WorkloadProfiler profiler(machine, QuietDesc());
  ProfileOptions zero_trials;
  zero_trials.trials = 0;
  EXPECT_EQ(profiler.ProfileRobust(RichSpec(), zero_trials).status().code(),
            StatusCode::kInvalidArgument);
  ProfileOptions zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_EQ(profiler.ProfileRobust(RichSpec(), zero_attempts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RobustProfiler, NoSmtMachineIsFailedPrecondition) {
  MachineDescription desc = QuietDesc();
  desc.topo.threads_per_core = 1;
  const sim::Machine machine = QuietMachine();
  const WorkloadProfiler profiler(machine, desc);
  const StatusOr<WorkloadDescription> robust =
      profiler.ProfileRobust(RichSpec(), ProfileOptions{});
  ASSERT_FALSE(robust.ok());
  EXPECT_EQ(robust.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(robust.status().message().find("threads_per_core"), std::string::npos);
}

// Fault draws are a pure function of (seed, nonce, run config): the same
// nonce reproduces the same result, and nonce 0 with an inactive plan is
// byte-identical to a plan-free machine.
TEST(RobustProfiler, FaultDrawsAreDeterministicPerNonce) {
  const sim::WorkloadSpec spec = RichSpec();
  sim::Machine faulted = QuietMachine();
  faulted.set_fault_plan(sim::FaultPlan::Defaults(9));

  std::vector<sim::JobRequest> jobs;
  jobs.push_back(sim::JobRequest{
      .spec = &spec,
      .placement = Placement::OnePerCore(QuietDesc().topo, 4)});

  const sim::RunResult a = faulted.Run(jobs, /*fault_nonce=*/42);
  const sim::RunResult b = faulted.Run(jobs, /*fault_nonce=*/42);
  EXPECT_EQ(a.failed, b.failed);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].completion_time, b.jobs[i].completion_time);
  }

  sim::Machine clean = QuietMachine();
  const sim::RunResult c = clean.Run(jobs);
  sim::Machine inactive = QuietMachine();
  inactive.set_fault_plan(sim::FaultPlan{});  // default: every fault off
  const sim::RunResult d = inactive.Run(jobs);
  EXPECT_FALSE(c.failed);
  EXPECT_FALSE(d.failed);
  EXPECT_EQ(c.jobs[0].completion_time, d.jobs[0].completion_time);
}

}  // namespace
}  // namespace pandia
