#include <gtest/gtest.h>

#include "src/machine_desc/generator.h"
#include "src/predictor/optimizer.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"

namespace pandia {
namespace {

const MachineDescription& X3Desc() {
  static const MachineDescription desc = [] {
    const sim::Machine machine{sim::MakeX3_2()};
    return GenerateMachineDescription(machine);
  }();
  return desc;
}

WorkloadDescription ScalableWorkload() {
  WorkloadDescription desc;
  desc.workload = "scalable";
  desc.machine = "x3-2";
  desc.t1 = 100.0;
  desc.demands = ResourceDemandVector{3.0, 30.0, 6.0, 2.0, 0.5, 0.0};
  desc.memory_policy = MemoryPolicy::kLocal;
  desc.parallel_fraction = 0.999;
  desc.inter_socket_overhead = 0.001;
  desc.load_balance = 0.9;
  desc.burstiness = 0.1;
  return desc;
}

TEST(OptimizerConstraints, NoSmtExcludesDoubledCores) {
  const Predictor predictor(X3Desc(), ScalableWorkload());
  OptimizerOptions options;
  options.constraint = NoSmtConstraint();
  const RankedPlacement best = FindBestPlacement(predictor, options);
  for (const SocketLoad& load : best.placement.SocketLoads()) {
    EXPECT_EQ(load.doubles, 0);
  }
  // A scalable workload still uses every core.
  EXPECT_EQ(best.placement.TotalThreads(), X3Desc().topo.NumCores());
}

TEST(OptimizerConstraints, MaxSocketsKeepsPlacementLocal) {
  const Predictor predictor(X3Desc(), ScalableWorkload());
  OptimizerOptions options;
  options.constraint = MaxSocketsConstraint(1);
  const RankedPlacement best = FindBestPlacement(predictor, options);
  EXPECT_EQ(best.placement.NumActiveSockets(), 1);
  // Unconstrained search must do at least as well.
  const RankedPlacement unconstrained = FindBestPlacement(predictor);
  EXPECT_GE(unconstrained.prediction.speedup, best.prediction.speedup - 1e-9);
}

TEST(OptimizerConstraints, MaxThreadsIsRespected) {
  const Predictor predictor(X3Desc(), ScalableWorkload());
  OptimizerOptions options;
  options.constraint = MaxThreadsConstraint(6);
  const RankedPlacement best = FindBestPlacement(predictor, options);
  EXPECT_LE(best.placement.TotalThreads(), 6);
  EXPECT_GE(best.placement.TotalThreads(), 5);  // scalable: uses what it may
}

TEST(OptimizerConstraints, ConstraintsCompose) {
  const Predictor predictor(X3Desc(), ScalableWorkload());
  OptimizerOptions options;
  options.constraint = [](const Placement& p) {
    return NoSmtConstraint()(p) && MaxSocketsConstraint(1)(p);
  };
  const RankedPlacement best = FindBestPlacement(predictor, options);
  EXPECT_EQ(best.placement.NumActiveSockets(), 1);
  EXPECT_LE(best.placement.TotalThreads(), X3Desc().topo.cores_per_socket);
}

TEST(OptimizerConstraintsDeath, UnsatisfiableConstraintAborts) {
  const Predictor predictor(X3Desc(), ScalableWorkload());
  OptimizerOptions options;
  options.constraint = [](const Placement&) { return false; };
  EXPECT_DEATH(FindBestPlacement(predictor, options), "constraint");
}

TEST(OptimizerConstraintsDeath, InvalidBoundsAbort) {
  EXPECT_DEATH(MaxSocketsConstraint(0), "PANDIA_CHECK");
  EXPECT_DEATH(MaxThreadsConstraint(-1), "PANDIA_CHECK");
}

}  // namespace
}  // namespace pandia
