// Reproduces the paper's worked example end to end (§4 Figure 4, §5
// Figures 7 and 9): a two-socket, two-core-per-socket machine with DRAM
// bandwidth 100 per socket, interconnect 50, core rate 10 (Figure 3), and a
// workload with d = (instr 7, dram 40 to each socket), p = 0.9, o_s = 0.1,
// l = 0.5, b = 0.5. Three threads are placed with U and V sharing a core on
// socket 0 and W alone on socket 1.
#include <gtest/gtest.h>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/predictor.h"

namespace pandia {
namespace {

MachineDescription PaperMachine() {
  MachineDescription desc;
  desc.topo = MachineTopology{.name = "figure3",
                              .num_sockets = 2,
                              .cores_per_socket = 2,
                              .threads_per_core = 2,
                              .l1_size = 1.0,
                              .l2_size = 1.0,
                              .l3_size = 1.0};
  desc.core_ops = 10.0;
  desc.smt_combined_ops = 10.0;
  // The example machine has no caches; make those links unconstraining.
  desc.l1_bw = 1e9;
  desc.l2_bw = 1e9;
  desc.l3_port_bw = 1e9;
  desc.l3_agg_bw = 1e9;
  desc.dram_bw = 100.0;
  desc.link_bw = 50.0;
  return desc;
}

WorkloadDescription PaperWorkload() {
  WorkloadDescription desc;
  desc.workload = "example";
  desc.machine = "figure3";
  desc.t1 = 1000.0;
  desc.demands.instr_rate = 7.0;
  // "memory transfer bandwidth of 40 to each socket" (Figure 6, run 1):
  // with one thread on socket 0, 40 is local and 40 remote, interleaved
  // over all sockets.
  desc.demands.dram_local_bw = 40.0;
  desc.demands.dram_remote_bw = 40.0;
  desc.memory_policy = MemoryPolicy::kInterleaveAll;
  desc.parallel_fraction = 0.9;
  desc.inter_socket_overhead = 0.1;
  desc.load_balance = 0.5;
  desc.burstiness = 0.5;
  return desc;
}

// U and V share core 0 (socket 0); W runs alone on core 2 (socket 1).
Placement PaperPlacement(const MachineTopology& topo) {
  return Placement(topo, {2, 0, 1, 0});
}

TEST(WorkedExample, AmdahlSpeedupAndInitialUtilization) {
  const MachineDescription machine = PaperMachine();
  const Predictor predictor(machine, PaperWorkload());
  const Prediction p = predictor.Predict(PaperPlacement(machine.topo));
  // n = 3, p = 0.9: speedup 1 / (0.1 + 0.3) = 2.5; f_initial = 2.5/3 = 0.83.
  EXPECT_NEAR(p.amdahl_speedup, 2.5, 1e-12);
}

TEST(WorkedExample, FirstIterationMatchesFigure7) {
  const MachineDescription machine = PaperMachine();
  PredictionOptions options;
  options.iterate = false;  // stop after iteration 1 = Figure 7 (c)-(e)
  const Predictor predictor(machine, PaperWorkload(), options);
  const Prediction p = predictor.Predict(PaperPlacement(machine.topo));
  ASSERT_EQ(p.threads.size(), 3u);
  const ThreadPrediction& u = p.threads[0];
  const ThreadPrediction& v = p.threads[1];
  const ThreadPrediction& w = p.threads[2];

  // Figure 7(c): resource slowdowns 2.83 / 2.83 / 2.00. The interconnect is
  // oversubscribed 100/50 = 2.00; U and V add the burstiness term
  // 2.00 * (1 + 0.5 * 0.83) = 2.83.
  EXPECT_NEAR(u.resource_slowdown, 2.83, 0.01);
  EXPECT_NEAR(v.resource_slowdown, 2.83, 0.01);
  EXPECT_NEAR(w.resource_slowdown, 2.00, 0.01);

  // Figure 7(d): communication penalties 0.03 / 0.03 / 0.08.
  EXPECT_NEAR(u.comm_penalty, 0.03, 0.005);
  EXPECT_NEAR(v.comm_penalty, 0.03, 0.005);
  EXPECT_NEAR(w.comm_penalty, 0.08, 0.005);

  // Figure 7(e): the load-balance step pulls W halfway toward the slowest
  // thread: overall slowdowns 2.87 / 2.87 / 2.48, utilizations .29/.29/.34.
  EXPECT_NEAR(u.overall_slowdown, 2.87, 0.01);
  EXPECT_NEAR(w.balance_penalty, 0.40, 0.01);
  EXPECT_NEAR(w.overall_slowdown, 2.48, 0.01);
  EXPECT_NEAR(u.utilization, 0.29, 0.005);
  EXPECT_NEAR(w.utilization, 0.34, 0.005);
}

TEST(WorkedExample, BottleneckIsTheInterconnect) {
  const MachineDescription machine = PaperMachine();
  PredictionOptions options;
  options.iterate = false;
  const Predictor predictor(machine, PaperWorkload(), options);
  const Prediction p = predictor.Predict(PaperPlacement(machine.topo));
  const ResourceIndex index(machine.topo);
  for (const ThreadPrediction& thread : p.threads) {
    EXPECT_EQ(thread.bottleneck, index.Link(0, 1));
  }
}

TEST(WorkedExample, NaiveDemandsMatchFigure7b) {
  // At f = 0.83 the aggregate DRAM demand on each node is 100 and the
  // interconnect carries 100 (Figure 7b).
  const MachineDescription machine = PaperMachine();
  PredictionOptions options;
  options.iterate = false;
  const Predictor predictor(machine, PaperWorkload(), options);
  const Prediction p = predictor.Predict(PaperPlacement(machine.topo));
  const ResourceIndex index(machine.topo);
  // resource_load is evaluated at the *final* utilizations of the last
  // iteration's step 1, which for a single iteration is f_initial = 0.83.
  EXPECT_NEAR(p.resource_load[index.Dram(0)], 100.0, 0.5);
  EXPECT_NEAR(p.resource_load[index.Dram(1)], 100.0, 0.5);
  EXPECT_NEAR(p.resource_load[index.Link(0, 1)], 100.0, 0.5);
  // Core with U and V: 2 * 7 * 0.83 = 11.7; W's core: 5.8 (Figure 7b).
  EXPECT_NEAR(p.resource_load[index.Core(0)], 11.7, 0.1);
  EXPECT_NEAR(p.resource_load[index.Core(2)], 5.8, 0.1);
}

TEST(WorkedExample, SecondIterationStartsFromFigure9) {
  // Figure 9(b): with utilizations 0.82/0.82/0.67 the naive DRAM demands
  // drop to 92.8 per node. Run two iterations and inspect the load.
  const MachineDescription machine = PaperMachine();
  PredictionOptions options;
  options.max_iterations = 2;
  options.convergence_eps = 0.0;  // force exactly two iterations
  const Predictor predictor(machine, PaperWorkload(), options);
  const Prediction p = predictor.Predict(PaperPlacement(machine.topo));
  const ResourceIndex index(machine.topo);
  EXPECT_NEAR(p.resource_load[index.Dram(0)], 92.8, 0.5);
  EXPECT_NEAR(p.resource_load[index.Link(0, 1)], 92.8, 0.5);
}

TEST(WorkedExample, ConvergedSpeedupMatchesSection55) {
  // §5.5: "a predicted speedup of 1.005 after 4 iterations" — the
  // interconnect is almost saturated by a single thread's demand.
  const MachineDescription machine = PaperMachine();
  const Predictor predictor(machine, PaperWorkload());
  const Prediction p = predictor.Predict(PaperPlacement(machine.topo));
  EXPECT_TRUE(p.converged);
  EXPECT_NEAR(p.speedup, 1.005, 0.08);
}

TEST(WorkedExample, PredictionIsFastAndIterationsFew) {
  const MachineDescription machine = PaperMachine();
  const Predictor predictor(machine, PaperWorkload());
  const Prediction p = predictor.Predict(PaperPlacement(machine.topo));
  // §5.4: "in practice only a few iteration steps are needed".
  EXPECT_LE(p.iterations, 50);
}

}  // namespace
}  // namespace pandia
