#include <gtest/gtest.h>

#include <algorithm>

#include "src/topology/enumerate.h"
#include "src/topology/placement.h"

namespace pandia {
namespace {

MachineTopology SmallTopo() {
  return MachineTopology{.name = "small",
                         .num_sockets = 2,
                         .cores_per_socket = 4,
                         .threads_per_core = 2,
                         .l1_size = 0.032,
                         .l2_size = 0.25,
                         .l3_size = 8.0};
}

TEST(Placement, FromPerCoreVector) {
  const MachineTopology topo = SmallTopo();
  const Placement p(topo, {2, 1, 0, 0, 1, 0, 0, 0});
  EXPECT_EQ(p.TotalThreads(), 4);
  EXPECT_EQ(p.ThreadsOnSocket(0), 3);
  EXPECT_EQ(p.ThreadsOnSocket(1), 1);
  EXPECT_EQ(p.CoresUsedOnSocket(0), 2);
  EXPECT_EQ(p.NumActiveSockets(), 2);
  EXPECT_EQ(p.ThreadsOnCore(0), 2);
}

TEST(Placement, FromSocketLoadsCanonicalLayout) {
  const MachineTopology topo = SmallTopo();
  const std::vector<SocketLoad> loads{{2, 1}, {0, 0}};
  const Placement p = Placement::FromSocketLoads(topo, loads);
  // Doubles occupy the lowest cores, then singles.
  EXPECT_EQ(p.ThreadsOnCore(0), 2);
  EXPECT_EQ(p.ThreadsOnCore(1), 1);
  EXPECT_EQ(p.ThreadsOnCore(2), 1);
  EXPECT_EQ(p.ThreadsOnCore(3), 0);
  EXPECT_EQ(p.TotalThreads(), 4);
}

TEST(Placement, SocketLoadsRoundTrip) {
  const MachineTopology topo = SmallTopo();
  const std::vector<SocketLoad> loads{{1, 2}, {3, 0}};
  const Placement p = Placement::FromSocketLoads(topo, loads);
  const std::vector<SocketLoad> round = p.SocketLoads();
  EXPECT_EQ(round[0], (SocketLoad{1, 2}));
  EXPECT_EQ(round[1], (SocketLoad{3, 0}));
}

TEST(Placement, OnePerCoreSpansSockets) {
  const MachineTopology topo = SmallTopo();
  const Placement p = Placement::OnePerCore(topo, 6);
  EXPECT_EQ(p.ThreadsOnSocket(0), 4);
  EXPECT_EQ(p.ThreadsOnSocket(1), 2);
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(p.ThreadsOnCore(c), 1);
  }
}

TEST(Placement, TwoPerCorePacksTightly) {
  const MachineTopology topo = SmallTopo();
  const Placement p = Placement::TwoPerCore(topo, 5);
  EXPECT_EQ(p.ThreadsOnCore(0), 2);
  EXPECT_EQ(p.ThreadsOnCore(1), 2);
  EXPECT_EQ(p.ThreadsOnCore(2), 1);
  EXPECT_EQ(p.TotalThreads(), 5);
}

TEST(Placement, ThreadLocationsAreDeterministicAndOrdered) {
  const MachineTopology topo = SmallTopo();
  const Placement p(topo, {2, 0, 1, 0, 0, 0, 1, 0});
  const std::vector<ThreadLocation> locations = p.ThreadLocations();
  ASSERT_EQ(locations.size(), 4u);
  EXPECT_EQ(locations[0], (ThreadLocation{0, 0, 0}));
  EXPECT_EQ(locations[1], (ThreadLocation{0, 0, 1}));
  EXPECT_EQ(locations[2], (ThreadLocation{0, 2, 0}));
  EXPECT_EQ(locations[3], (ThreadLocation{1, 6, 0}));
}

TEST(Placement, PaperOrderSortsByTotalThenPerCore) {
  const MachineTopology topo = SmallTopo();
  const Placement one = Placement::OnePerCore(topo, 1);
  const Placement two_spread = Placement::OnePerCore(topo, 2);
  const Placement two_packed = Placement::TwoPerCore(topo, 2);
  EXPECT_TRUE(Placement::PaperOrderLess(one, two_packed));
  // {1,1,0,...} < {2,0,0,...} lexicographically.
  EXPECT_TRUE(Placement::PaperOrderLess(two_spread, two_packed));
  EXPECT_FALSE(Placement::PaperOrderLess(two_packed, two_spread));
}

TEST(Placement, EqualityIsStructural) {
  const MachineTopology topo = SmallTopo();
  EXPECT_TRUE(Placement::OnePerCore(topo, 3) ==
              Placement::FromSocketLoads(topo, std::vector<SocketLoad>{{3, 0}, {0, 0}}));
}

TEST(Placement, ToStringMentionsLoads) {
  const MachineTopology topo = SmallTopo();
  const Placement p = Placement::FromSocketLoads(topo, std::vector<SocketLoad>{{2, 1}, {0, 0}});
  EXPECT_EQ(p.ToString(), "4 threads [s0: 2x1+1x2, s1: 0x1+0x2]");
}

TEST(PlacementDeath, RejectsOversubscribedCore) {
  const MachineTopology topo = SmallTopo();
  EXPECT_DEATH(Placement(topo, {3, 0, 0, 0, 0, 0, 0, 0}), "over-subscribed");
}

TEST(PlacementDeath, RejectsWrongVectorSize) {
  const MachineTopology topo = SmallTopo();
  EXPECT_DEATH(Placement(topo, {1, 1}), "size");
}

TEST(PlacementDeath, RejectsOversubscribedSocket) {
  const MachineTopology topo = SmallTopo();
  EXPECT_DEATH(
      Placement::FromSocketLoads(topo, std::vector<SocketLoad>{{3, 2}, {0, 0}}),
      "over-subscribed");
}

// --- enumeration ---

TEST(Enumerate, SocketLoadCountMatchesFormula) {
  MachineTopology topo = SmallTopo();
  // (a, b) with a + b <= 4: C(6, 2) = 15.
  EXPECT_EQ(EnumerateSocketLoads(topo).size(), 15u);
  topo.cores_per_socket = 8;
  EXPECT_EQ(EnumerateSocketLoads(topo).size(), 45u);
}

TEST(Enumerate, CanonicalCountsMatchPaperScaleMachines) {
  MachineTopology x3 = SmallTopo();
  x3.cores_per_socket = 8;
  // 45 * 46 / 2 - 1 = 1034 canonical placements on the 8-core 2-socket parts.
  EXPECT_EQ(CountCanonicalPlacements(x3), 1034u);
  MachineTopology x5 = x3;
  x5.cores_per_socket = 18;
  EXPECT_EQ(CountCanonicalPlacements(x5), 18144u);
}

TEST(Enumerate, EnumerationMatchesCountAndIsDistinct) {
  const MachineTopology topo = SmallTopo();
  const std::vector<Placement> all = EnumerateCanonicalPlacements(topo);
  EXPECT_EQ(all.size(), CountCanonicalPlacements(topo));
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i - 1] == all[i]);
  }
}

TEST(Enumerate, EnumerationIsPaperSorted) {
  const MachineTopology topo = SmallTopo();
  const std::vector<Placement> all = EnumerateCanonicalPlacements(topo);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), Placement::PaperOrderLess));
}

TEST(Enumerate, EnumerationExcludesEmptyAndIncludesFullMachine) {
  const MachineTopology topo = SmallTopo();
  const std::vector<Placement> all = EnumerateCanonicalPlacements(topo);
  EXPECT_EQ(all.front().TotalThreads(), 1);
  EXPECT_EQ(all.back().TotalThreads(), topo.NumHwThreads());
}

TEST(Enumerate, SampleIsDeterministicAndDeduplicated) {
  MachineTopology topo = SmallTopo();
  topo.cores_per_socket = 8;
  const std::vector<Placement> a = SampleCanonicalPlacements(topo, 50, 7);
  const std::vector<Placement> b = SampleCanonicalPlacements(topo, 50, 7);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]);
  }
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_FALSE(a[i] == a[j]);
    }
  }
}

TEST(Enumerate, SampleHonorsFilter) {
  MachineTopology topo = SmallTopo();
  const std::vector<Placement> sample = SampleCanonicalPlacements(
      topo, 20, 3, [](const Placement& p) { return p.NumActiveSockets() == 1; });
  ASSERT_FALSE(sample.empty());
  for (const Placement& p : sample) {
    EXPECT_EQ(p.NumActiveSockets(), 1);
  }
}

TEST(Enumerate, CompactSweepCoversAllThreadCounts) {
  const MachineTopology topo = SmallTopo();
  const std::vector<Placement> sweep = CompactSweep(topo);
  ASSERT_EQ(sweep.size(), static_cast<size_t>(topo.NumHwThreads()));
  for (int n = 1; n <= topo.NumHwThreads(); ++n) {
    EXPECT_EQ(sweep[n - 1].TotalThreads(), n);
  }
  // Compact: 3 threads sit on 2 cores of socket 0.
  EXPECT_EQ(sweep[2].CoresUsedOnSocket(0), 2);
  EXPECT_EQ(sweep[2].ThreadsOnSocket(1), 0);
}

TEST(Enumerate, SpreadSweepBalancesSockets) {
  const MachineTopology topo = SmallTopo();
  const std::vector<Placement> sweep = SpreadSweep(topo);
  for (int n = 1; n <= topo.NumHwThreads(); ++n) {
    const Placement& p = sweep[n - 1];
    EXPECT_EQ(p.TotalThreads(), n);
    EXPECT_LE(std::abs(p.ThreadsOnSocket(0) - p.ThreadsOnSocket(1)), 1) << n;
  }
  // Spread prefers one thread per core before SMT slots.
  EXPECT_EQ(sweep[7].CoresUsedOnSocket(0), 4);
  EXPECT_EQ(sweep[7].CoresUsedOnSocket(1), 4);
}

}  // namespace
}  // namespace pandia
