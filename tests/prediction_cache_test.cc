// src/predictor/prediction_cache: fingerprint stability, hit/miss/eviction
// accounting, concurrent-insert semantics, and the headline guarantee that
// serial and parallel placement searches produce identical rankings.
#include "src/predictor/prediction_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/eval/pipeline.h"
#include "src/obs/metrics.h"
#include "src/obs/prediction_trace.h"
#include "src/predictor/optimizer.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name).value();
}

const eval::Pipeline& X3Pipeline() {
  static const eval::Pipeline* pipeline = new eval::Pipeline("x3-2");
  return *pipeline;
}

const Predictor& MdPredictor() {
  static const Predictor* predictor = new Predictor(
      X3Pipeline().MakePredictor(X3Pipeline().Profile(workloads::ByName("MD"))));
  return *predictor;
}

TEST(Fingerprint, SensitiveToEveryContextInput) {
  const MachineDescription& machine = X3Pipeline().description();
  const WorkloadDescription workload =
      X3Pipeline().Profile(workloads::ByName("MD"));
  const PredictionOptions options;
  const uint64_t base = ContextFingerprint(machine, workload, options);
  EXPECT_EQ(base, ContextFingerprint(machine, workload, options));

  WorkloadDescription tweaked = workload;
  tweaked.t1 *= 1.0000001;
  EXPECT_NE(base, ContextFingerprint(machine, tweaked, options));

  PredictionOptions ablated = options;
  ablated.model_burstiness = false;
  EXPECT_NE(base, ContextFingerprint(machine, workload, ablated));

  MachineDescription other_machine = machine;
  other_machine.dram_bw *= 2.0;
  EXPECT_NE(base, ContextFingerprint(other_machine, workload, options));
}

TEST(Fingerprint, PlacementDependsOnlyOnPerCoreCounts) {
  const MachineTopology& topo = X3Pipeline().machine().topology();
  const Placement a = Placement::OnePerCore(topo, 4);
  const Placement b = Placement::OnePerCore(topo, 4);
  const Placement c = Placement::OnePerCore(topo, 5);
  EXPECT_EQ(PlacementFingerprint(a), PlacementFingerprint(b));
  EXPECT_NE(PlacementFingerprint(a), PlacementFingerprint(c));
}

TEST(PredictionCache, HitAndMissCounting) {
  PredictionCache cache(1024);
  const PredictionCacheKey key{1, 2};
  const uint64_t hits0 = CounterValue("prediction_cache.hits");
  const uint64_t misses0 = CounterValue("prediction_cache.misses");

  EXPECT_FALSE(cache.Lookup(key).has_value());
  Prediction prediction;
  prediction.speedup = 3.5;
  cache.Insert(key, prediction);
  const std::optional<Prediction> hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->speedup, 3.5);
  EXPECT_EQ(cache.size(), 1u);

  EXPECT_EQ(CounterValue("prediction_cache.hits") - hits0, 1u);
  EXPECT_EQ(CounterValue("prediction_cache.misses") - misses0, 1u);
}

TEST(PredictionCache, ConcurrentInsertOfSameKeyYieldsOneEntry) {
  PredictionCache cache(1024);
  const PredictionCacheKey key{42, 77};
  const uint64_t insertions0 = CounterValue("prediction_cache.insertions");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &key] {
      Prediction prediction;
      prediction.speedup = 2.0;  // all writers agree, as real callers do
      for (int i = 0; i < 100; ++i) {
        cache.Insert(key, prediction);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(CounterValue("prediction_cache.insertions") - insertions0, 1u);
  ASSERT_TRUE(cache.Lookup(key).has_value());
}

TEST(PredictionCache, EvictsOldestWhenOverCapacity) {
  // Capacity 16 across 16 shards = 1 entry per shard: any two keys landing
  // in one shard evict the older.
  PredictionCache cache(16);
  const uint64_t evictions0 = CounterValue("prediction_cache.evictions");
  for (uint64_t i = 0; i < 256; ++i) {
    cache.Insert(PredictionCacheKey{i, i * 31}, Prediction{});
  }
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(CounterValue("prediction_cache.evictions") - evictions0, 0u);
}

// Regression test for the invalidation hook the placement service relies
// on: insert → hit, BumpGeneration → logical miss (counted), re-insert
// under the new generation → hit again.
TEST(PredictionCache, BumpGenerationInvalidatesEarlierInserts) {
  PredictionCache cache(1024);
  const PredictionCacheKey key{7, 9};
  Prediction prediction;
  prediction.speedup = 1.25;
  cache.Insert(key, prediction);
  ASSERT_TRUE(cache.Lookup(key).has_value());

  const uint64_t generation0 = cache.generation();
  const uint64_t invalidations0 =
      CounterValue("prediction_cache.generation_invalidations");
  cache.BumpGeneration();
  EXPECT_EQ(cache.generation(), generation0 + 1);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(CounterValue("prediction_cache.generation_invalidations") -
                invalidations0,
            1u);
  // The stale entry was reclaimed on lookup, not merely hidden.
  EXPECT_EQ(cache.size(), 0u);

  prediction.speedup = 1.5;
  cache.Insert(key, prediction);
  const std::optional<Prediction> fresh = cache.Lookup(key);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->speedup, 1.5);
}

TEST(PredictionCache, BumpGenerationInvalidatesEveryShard) {
  PredictionCache cache(1024);
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert(PredictionCacheKey{i, i * 131}, Prediction{});
  }
  EXPECT_EQ(cache.size(), 64u);
  cache.BumpGeneration();
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(cache.Lookup(PredictionCacheKey{i, i * 131}).has_value()) << i;
  }
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PredictionCache, ClearEmptiesEveryShard) {
  PredictionCache cache(1024);
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert(PredictionCacheKey{i, i}, Prediction{});
  }
  EXPECT_EQ(cache.size(), 64u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(PredictionCacheKey{1, 1}).has_value());
}

TEST(PredictCached, MatchesDirectPredictionAndHitsOnRepeat) {
  PredictionCache cache(1024);
  const MachineTopology& topo = X3Pipeline().machine().topology();
  const Placement placement = Placement::OnePerCore(topo, 6);
  const Prediction direct = MdPredictor().Predict(placement);
  const uint64_t hits0 = CounterValue("prediction_cache.hits");

  const Prediction first = PredictCached(MdPredictor(), placement, &cache);
  const Prediction second = PredictCached(MdPredictor(), placement, &cache);
  EXPECT_EQ(first.speedup, direct.speedup);
  EXPECT_EQ(first.time, direct.time);
  EXPECT_EQ(first.iterations, direct.iterations);
  EXPECT_EQ(second.speedup, direct.speedup);
  EXPECT_EQ(CounterValue("prediction_cache.hits") - hits0, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PredictCached, BypassesCacheWhenTracing) {
  PredictionCache cache(1024);
  obs::PredictionTrace trace;
  PredictionOptions options;
  options.common.trace = &trace;
  const Predictor traced = X3Pipeline().MakePredictor(
      X3Pipeline().Profile(workloads::ByName("MD")), options);
  const MachineTopology& topo = X3Pipeline().machine().topology();
  const Placement placement = Placement::OnePerCore(topo, 4);
  PredictCached(traced, placement, &cache);
  PredictCached(traced, placement, &cache);
  EXPECT_EQ(cache.size(), 0u);  // never cached: every solve must record
}

// The acceptance-criterion test: serial and parallel RankPlacements agree
// exactly — same placements, same order, bit-identical speedups — on a
// stock simulated machine, with and without the memoization cache.
TEST(ParallelSearch, SerialAndParallelRankingsAreIdentical) {
  OptimizerOptions serial_options;
  serial_options.common.jobs = 1;
  serial_options.common.use_cache = false;
  const std::vector<RankedPlacement> serial =
      RankPlacements(MdPredictor(), 1u << 20, serial_options);
  ASSERT_GT(serial.size(), 100u);

  for (int jobs : {2, 4}) {
    for (bool use_cache : {false, true}) {
      if (use_cache) {
        PredictionCache::Global().Clear();
      }
      OptimizerOptions options;
      options.common.jobs = jobs;
      options.common.use_cache = use_cache;
      const std::vector<RankedPlacement> parallel =
          RankPlacements(MdPredictor(), 1u << 20, options);
      ASSERT_EQ(parallel.size(), serial.size())
          << "jobs " << jobs << " cache " << use_cache;
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].placement == parallel[i].placement)
            << "position " << i << " jobs " << jobs << " cache " << use_cache;
        ASSERT_EQ(serial[i].prediction.speedup, parallel[i].prediction.speedup)
            << "position " << i << " jobs " << jobs << " cache " << use_cache;
      }
    }
  }
}

TEST(ParallelSearch, FindBestAndCheapestAgreeAcrossJobCounts) {
  OptimizerOptions serial_options;
  serial_options.common.jobs = 1;
  const RankedPlacement serial_best = FindBestPlacement(MdPredictor(), serial_options);
  const std::optional<RankedPlacement> serial_cheap =
      FindCheapestPlacement(MdPredictor(), 0.95, serial_options);
  ASSERT_TRUE(serial_cheap.has_value());

  OptimizerOptions parallel_options;
  parallel_options.common.jobs = 4;
  const RankedPlacement parallel_best =
      FindBestPlacement(MdPredictor(), parallel_options);
  const std::optional<RankedPlacement> parallel_cheap =
      FindCheapestPlacement(MdPredictor(), 0.95, parallel_options);
  ASSERT_TRUE(parallel_cheap.has_value());

  EXPECT_TRUE(serial_best.placement == parallel_best.placement);
  EXPECT_EQ(serial_best.prediction.speedup, parallel_best.prediction.speedup);
  EXPECT_TRUE(serial_cheap->placement == parallel_cheap->placement);
  EXPECT_EQ(serial_cheap->prediction.speedup, parallel_cheap->prediction.speedup);
}

}  // namespace
}  // namespace pandia
