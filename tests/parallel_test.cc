// src/util/parallel: pool lifecycle, ParallelFor coverage/determinism, and
// exception propagation — the guarantees the placement search leans on.
#include "src/util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace pandia {
namespace util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains and joins
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  // More tasks than workers, each slow enough that most are still queued
  // when the destructor runs: every one must still execute.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        volatile double sink = 0.0;
        for (int j = 0; j < 10000; ++j) {
          sink = sink + static_cast<double>(j);
        }
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(0);
    EXPECT_EQ(pool.num_threads(), 1);
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, OnWorkerThreadDistinguishesPools) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.OnWorkerThread());
  std::atomic<bool> seen_inside{false};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    seen_inside.store(pool.OnWorkerThread());
    done.store(true);
  });
  while (!done.load()) {
  }
  EXPECT_TRUE(seen_inside.load());
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 3, 8}) {
    std::vector<std::atomic<int>> visits(257);
    ParallelFor(visits.size(), jobs,
                [&](size_t i) { visits[i].fetch_add(1, std::memory_order_relaxed); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, ResultsMatchSerialForEveryJobCount) {
  // Results written by index must be identical to the serial loop — the
  // determinism contract the optimizer's byte-identical-ranking guarantee
  // is built on.
  const size_t n = 1000;
  std::vector<double> serial(n);
  for (size_t i = 0; i < n; ++i) {
    serial[i] = static_cast<double>(i * i) / 3.0;
  }
  for (int jobs : {2, 4, 7}) {
    std::vector<double> parallel(n);
    ParallelFor(n, jobs,
                [&](size_t i) { parallel[i] = static_cast<double>(i * i) / 3.0; });
    EXPECT_EQ(parallel, serial) << "jobs " << jobs;
  }
}

TEST(ParallelFor, HandlesEmptyAndSingleItemRanges) {
  int calls = 0;
  ParallelFor(0, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(100, 4,
                  [](size_t i) {
                    if (i == 57) {
                      throw std::runtime_error("boom at 57");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelFor, LowestChunkExceptionWinsDeterministically) {
  // Two chunks throw; the rethrown exception must always come from the
  // lower-index chunk regardless of which worker finishes first.
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      ParallelFor(100, 4, [](size_t i) {
        if (i == 10 || i == 90) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 10");
    }
  }
}

TEST(ParallelFor, ExceptionStillRunsRemainingChunks) {
  // A throwing chunk must not abandon the others: all work outside the
  // throwing chunk completes before the rethrow.
  std::vector<std::atomic<int>> visits(64);
  try {
    ParallelFor(visits.size(), 4, [&](size_t i) {
      if (i == 0) {
        throw std::runtime_error("first chunk dies");
      }
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  // Chunk 0 covers [0, 16) with 4 chunks of 64; indexes outside it ran.
  for (size_t i = 16; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NestedCallsSerializeInsteadOfDeadlocking) {
  std::atomic<int> inner_total{0};
  ParallelFor(8, 4, [&](size_t) {
    // From a worker thread this must degrade to a serial loop.
    ParallelFor(8, 4, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ResolveJobs, ExplicitValueWins) {
  EXPECT_EQ(ResolveJobs(3), 3);
  EXPECT_EQ(ResolveJobs(-5), 1);
}

TEST(ResolveJobs, ZeroDefersToEnvironment) {
  ASSERT_EQ(setenv("PANDIA_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveJobs(0), 5);
  ASSERT_EQ(setenv("PANDIA_JOBS", "garbage", 1), 0);
  EXPECT_EQ(ResolveJobs(0), 1);
  ASSERT_EQ(unsetenv("PANDIA_JOBS"), 0);
  EXPECT_EQ(ResolveJobs(0), 1);
}

TEST(ParallelObserverHook, ReceivesFanoutAndTaskCallbacks) {
  struct CountingObserver : ParallelObserver {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> items{0};
    void OnTaskSubmitted(size_t) override { submitted.fetch_add(1); }
    void OnTaskCompleted() override { completed.fetch_add(1); }
    void OnParallelFor(size_t n, int) override { items.fetch_add(n); }
  };
  CountingObserver observer;
  SetParallelObserver(&observer);
  ParallelFor(100, 4, [](size_t) {});
  // OnTaskCompleted fires after the task's completion handshake, so the
  // last callback can still be in flight when ParallelFor returns; wait for
  // it before uninstalling the stack-local observer.
  while (observer.completed.load() < observer.submitted.load()) {
  }
  SetParallelObserver(nullptr);
  EXPECT_EQ(observer.items.load(), 100u);
  EXPECT_GT(observer.submitted.load(), 0u);
  // >= rather than ==: a completion callback from an earlier test's task
  // may straggle in while this observer is installed.
  EXPECT_GE(observer.completed.load(), observer.submitted.load());
}

}  // namespace
}  // namespace util
}  // namespace pandia
