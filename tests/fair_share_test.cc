#include <gtest/gtest.h>

#include <limits>

#include "src/sim/fair_share.h"
#include "src/util/rng.h"

namespace pandia {
namespace sim {
namespace {

constexpr double kTol = 1e-9;

TEST(FairShare, EmptyProblem) {
  const FairShareResult result = SolveMaxMinFairShare(FairShareProblem{});
  EXPECT_TRUE(result.rates.empty());
}

TEST(FairShare, SingleThreadHitsItsBottleneck) {
  FairShareProblem problem;
  problem.capacities = {10.0, 4.0};
  problem.demands = {{{0, 1.0}, {1, 2.0}}};
  problem.rate_caps = {100.0};
  const FairShareResult result = SolveMaxMinFairShare(problem);
  // Resource 1 binds: rate = 4 / 2 = 2.
  EXPECT_NEAR(result.rates[0], 2.0, kTol);
  EXPECT_NEAR(result.resource_usage[1], 4.0, kTol);
}

TEST(FairShare, CapBindsBeforeResources) {
  FairShareProblem problem;
  problem.capacities = {10.0};
  problem.demands = {{{0, 1.0}}};
  problem.rate_caps = {3.0};
  const FairShareResult result = SolveMaxMinFairShare(problem);
  EXPECT_NEAR(result.rates[0], 3.0, kTol);
}

TEST(FairShare, EqualSplitOnSharedResource) {
  FairShareProblem problem;
  problem.capacities = {12.0};
  problem.demands = {{{0, 1.0}}, {{0, 1.0}}, {{0, 1.0}}};
  problem.rate_caps = {100.0, 100.0, 100.0};
  const FairShareResult result = SolveMaxMinFairShare(problem);
  for (double rate : result.rates) {
    EXPECT_NEAR(rate, 4.0, kTol);
  }
}

TEST(FairShare, CappedThreadReleasesShareToOthers) {
  FairShareProblem problem;
  problem.capacities = {12.0};
  problem.demands = {{{0, 1.0}}, {{0, 1.0}}};
  problem.rate_caps = {2.0, 100.0};
  const FairShareResult result = SolveMaxMinFairShare(problem);
  EXPECT_NEAR(result.rates[0], 2.0, kTol);
  EXPECT_NEAR(result.rates[1], 10.0, kTol);
}

TEST(FairShare, HeterogeneousDemandsShareProportionally) {
  // Thread 0 needs 2 units per rate, thread 1 needs 1: max-min equalizes
  // the *rates*, not the consumption.
  FairShareProblem problem;
  problem.capacities = {9.0};
  problem.demands = {{{0, 2.0}}, {{0, 1.0}}};
  problem.rate_caps = {100.0, 100.0};
  const FairShareResult result = SolveMaxMinFairShare(problem);
  EXPECT_NEAR(result.rates[0], 3.0, kTol);
  EXPECT_NEAR(result.rates[1], 3.0, kTol);
}

TEST(FairShare, TwoBottlenecksFreezeInOrder)
{
  // Threads 0,1 share resource 0 (tight); thread 2 uses resource 1 (loose).
  FairShareProblem problem;
  problem.capacities = {4.0, 10.0};
  problem.demands = {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}};
  problem.rate_caps = {100.0, 100.0, 8.0};
  const FairShareResult result = SolveMaxMinFairShare(problem);
  EXPECT_NEAR(result.rates[0], 2.0, kTol);
  EXPECT_NEAR(result.rates[1], 2.0, kTol);
  EXPECT_NEAR(result.rates[2], 8.0, kTol);
}

TEST(FairShare, ZeroDemandThreadOnlyBoundByCap) {
  FairShareProblem problem;
  problem.capacities = {1.0};
  problem.demands = {{}, {{0, 1.0}}};
  problem.rate_caps = {5.0, 100.0};
  const FairShareResult result = SolveMaxMinFairShare(problem);
  EXPECT_NEAR(result.rates[0], 5.0, kTol);
  EXPECT_NEAR(result.rates[1], 1.0, kTol);
}

TEST(FairShareDeath, RejectsNonPositiveCapacity) {
  FairShareProblem problem;
  problem.capacities = {0.0};
  problem.demands = {{{0, 1.0}}};
  problem.rate_caps = {1.0};
  EXPECT_DEATH(SolveMaxMinFairShare(problem), "positive");
}

TEST(FairShareDeath, RejectsNonPositiveCap) {
  FairShareProblem problem;
  problem.capacities = {1.0};
  problem.demands = {{{0, 1.0}}};
  problem.rate_caps = {0.0};
  EXPECT_DEATH(SolveMaxMinFairShare(problem), "positive");
}

// Property sweep: random problems must satisfy the max-min invariants.
class FairShareProperty : public ::testing::TestWithParam<int> {};

FairShareProblem RandomProblem(uint64_t seed) {
  Rng rng(seed);
  FairShareProblem problem;
  const int resources = 2 + static_cast<int>(rng.NextBounded(6));
  const int threads = 1 + static_cast<int>(rng.NextBounded(8));
  for (int r = 0; r < resources; ++r) {
    problem.capacities.push_back(1.0 + rng.NextDouble() * 20.0);
  }
  problem.demands.resize(threads);
  problem.rate_caps.resize(threads);
  for (int t = 0; t < threads; ++t) {
    const int touches = 1 + static_cast<int>(rng.NextBounded(resources));
    for (int k = 0; k < touches; ++k) {
      problem.demands[t].push_back(
          {static_cast<int>(rng.NextBounded(resources)), 0.1 + rng.NextDouble() * 3.0});
    }
    problem.rate_caps[t] = 0.5 + rng.NextDouble() * 10.0;
  }
  return problem;
}

TEST_P(FairShareProperty, InvariantsHold) {
  const FairShareProblem problem = RandomProblem(1000 + GetParam());
  const FairShareResult result = SolveMaxMinFairShare(problem);
  const size_t threads = problem.demands.size();
  const size_t resources = problem.capacities.size();

  // Feasibility: no resource over capacity, no cap exceeded, rates > 0.
  std::vector<double> usage(resources, 0.0);
  for (size_t t = 0; t < threads; ++t) {
    EXPECT_GT(result.rates[t], 0.0);
    EXPECT_LE(result.rates[t], problem.rate_caps[t] * (1.0 + 1e-9));
    for (const ResourceDemand& d : problem.demands[t]) {
      usage[d.resource] += d.amount * result.rates[t];
    }
  }
  for (size_t r = 0; r < resources; ++r) {
    EXPECT_LE(usage[r], problem.capacities[r] * (1.0 + 1e-9));
    EXPECT_NEAR(usage[r], result.resource_usage[r], 1e-6);
  }

  // Max-min optimality: every thread is either at its cap or touches a
  // saturated resource (cannot be raised without lowering someone else).
  for (size_t t = 0; t < threads; ++t) {
    bool bound = result.rates[t] >= problem.rate_caps[t] * (1.0 - 1e-6);
    for (const ResourceDemand& d : problem.demands[t]) {
      if (d.amount > 0.0 &&
          usage[d.resource] >= problem.capacities[d.resource] * (1.0 - 1e-6)) {
        bound = true;
      }
    }
    EXPECT_TRUE(bound) << "thread " << t << " could still grow";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, FairShareProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sim
}  // namespace pandia
