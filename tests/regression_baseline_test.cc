#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/pipeline.h"
#include "src/eval/regression_baseline.h"
#include "src/sim/machine_spec.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace eval {
namespace {

const sim::Machine& Quiet() {
  static const sim::Machine machine{[] {
    sim::MachineSpec spec = sim::MakeX3_2();
    spec.noise_magnitude = 0.0;
    return spec;
  }()};
  return machine;
}

TEST(RegressionBaseline, RecoversAmdahlForCleanWorkload) {
  // EP has p ~ 1 and no contention at low counts. Turbo Boost contaminates
  // naive low-count training runs (the 1-thread run boosts higher), so the
  // fitted p lands a little low — a real weakness of this predictor class.
  const RegressionBaseline baseline(Quiet(), workloads::ByName("EP"));
  EXPECT_GT(baseline.parallel_fraction(), 0.85);
  EXPECT_LT(baseline.contention_per_thread(), 0.01);
  EXPECT_GT(baseline.t1(), 0.0);
  EXPECT_GT(baseline.training_cost(), baseline.t1());
}

TEST(RegressionBaseline, PredictsTrainingPointsClosely) {
  const sim::WorkloadSpec workload = workloads::ByName("CG");
  const RegressionBaseline baseline(Quiet(), workload);
  const MachineTopology& topo = Quiet().topology();
  for (int n : {1, 2, 4}) {
    const double measured =
        Quiet().RunOne(workload, Placement::OnePerCore(topo, n)).jobs[0].completion_time;
    EXPECT_NEAR(baseline.PredictTime(n), measured, measured * 0.2) << n;
  }
}

TEST(RegressionBaseline, IsPlacementBlind) {
  // The defining limitation (§7): identical predictions for any placement
  // with the same thread count.
  const RegressionBaseline baseline(Quiet(), workloads::ByName("CG"));
  const MachineTopology& topo = Quiet().topology();
  std::vector<SocketLoad> split{{4, 0}, {4, 0}};
  const double spread = baseline.PredictTime(Placement::FromSocketLoads(topo, split));
  const double packed = baseline.PredictTime(Placement::TwoPerCore(topo, 8));
  EXPECT_DOUBLE_EQ(spread, packed);
}

TEST(RegressionBaseline, ExtrapolationDegradesForSaturatingWorkloads) {
  // Swim starts saturating the memory channel within the training counts;
  // the linear contention term then extrapolates a slope that reality does
  // not follow (saturation flattens). Either way, the count-only model is
  // far off at full scale where Pandia's bottleneck model is not.
  const sim::WorkloadSpec workload = workloads::ByName("Swim");
  const RegressionBaseline baseline(Quiet(), workload);
  const MachineTopology& topo = Quiet().topology();
  const Placement full = Placement::OnePerCore(topo, topo.NumCores());
  const double measured = Quiet().RunOne(workload, full).jobs[0].completion_time;
  const double predicted = baseline.PredictTime(full);
  EXPECT_GT(std::fabs(predicted - measured) / measured, 0.15);
}

TEST(RegressionBaselineDeath, RequiresSingleThreadSample) {
  EXPECT_DEATH(RegressionBaseline(Quiet(), workloads::ByName("EP"), {2, 4}),
               "n = 1");
}

}  // namespace
}  // namespace eval
}  // namespace pandia
