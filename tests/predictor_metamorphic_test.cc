// Metamorphic properties of the predictor.
//
// The paper claims the model is unit-free (§3, Figure 3: "so long as
// consistent units are used ... the exact scale is not significant") and
// structurally symmetric (homogeneous machines, §2.2). These tests pin
// those invariances, plus robustness over randomized descriptions.
#include <gtest/gtest.h>

#include <cmath>

#include "src/machine_desc/generator.h"
#include "src/predictor/predictor.h"
#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/util/rng.h"

namespace pandia {
namespace {

const MachineDescription& BaseMachine() {
  static const MachineDescription desc = [] {
    const sim::Machine machine{sim::MakeX3_2()};
    return GenerateMachineDescription(machine);
  }();
  return desc;
}

WorkloadDescription BaseWorkload() {
  WorkloadDescription desc;
  desc.workload = "meta";
  desc.machine = "x3-2";
  desc.t1 = 120.0;
  desc.demands = ResourceDemandVector{4.0, 45.0, 12.0, 8.0, 6.0, 2.0};
  desc.memory_policy = MemoryPolicy::kInterleaveAll;
  desc.parallel_fraction = 0.98;
  desc.inter_socket_overhead = 0.02;
  desc.load_balance = 0.4;
  desc.burstiness = 0.25;
  return desc;
}

MachineDescription ScaleMachine(const MachineDescription& base, double bw_scale,
                                double ops_scale) {
  MachineDescription scaled = base;
  scaled.core_ops *= ops_scale;
  scaled.smt_combined_ops *= ops_scale;
  scaled.l1_bw *= bw_scale;
  scaled.l2_bw *= bw_scale;
  scaled.l3_port_bw *= bw_scale;
  scaled.l3_agg_bw *= bw_scale;
  scaled.dram_bw *= bw_scale;
  scaled.link_bw *= bw_scale;
  return scaled;
}

WorkloadDescription ScaleWorkload(const WorkloadDescription& base, double bw_scale,
                                  double ops_scale) {
  WorkloadDescription scaled = base;
  scaled.demands.instr_rate *= ops_scale;
  scaled.demands.l1_bw *= bw_scale;
  scaled.demands.l2_bw *= bw_scale;
  scaled.demands.l3_bw *= bw_scale;
  scaled.demands.dram_local_bw *= bw_scale;
  scaled.demands.dram_remote_bw *= bw_scale;
  return scaled;
}

class UnitScale : public ::testing::TestWithParam<double> {};

TEST_P(UnitScale, ConsistentRescalingLeavesSpeedupsUnchanged) {
  const double scale = GetParam();
  const Predictor original(BaseMachine(), BaseWorkload());
  const Predictor rescaled(ScaleMachine(BaseMachine(), scale, scale),
                           ScaleWorkload(BaseWorkload(), scale, scale));
  const MachineTopology& topo = BaseMachine().topo;
  for (const Placement& placement :
       {Placement::OnePerCore(topo, 5), Placement::TwoPerCore(topo, 14),
        Placement::TwoPerCore(topo, topo.NumHwThreads())}) {
    const Prediction a = original.Predict(placement);
    const Prediction b = rescaled.Predict(placement);
    EXPECT_NEAR(a.speedup, b.speedup, a.speedup * 1e-9) << placement.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, UnitScale,
                         ::testing::Values(0.001, 0.1, 3.0, 1000.0, 1e6));

TEST(UnitScaleMixed, IndependentOpsAndByteUnitsAlsoCancel) {
  // Instructions and bytes are separate unit systems; rescaling them by
  // different factors must also cancel.
  const Predictor original(BaseMachine(), BaseWorkload());
  const Predictor rescaled(ScaleMachine(BaseMachine(), 512.0, 0.01),
                           ScaleWorkload(BaseWorkload(), 512.0, 0.01));
  const Placement placement = Placement::TwoPerCore(BaseMachine().topo, 20);
  EXPECT_NEAR(original.Predict(placement).speedup, rescaled.Predict(placement).speedup,
              1e-9);
}

TEST(Symmetry, MirroredPlacementPredictsIdentically) {
  // Sockets are homogeneous: swapping the socket loads cannot change the
  // prediction.
  const Predictor predictor(BaseMachine(), BaseWorkload());
  const MachineTopology& topo = BaseMachine().topo;
  std::vector<SocketLoad> ab{{5, 2}, {1, 0}};
  std::vector<SocketLoad> ba{{1, 0}, {5, 2}};
  const Prediction a = predictor.Predict(Placement::FromSocketLoads(topo, ab));
  const Prediction b = predictor.Predict(Placement::FromSocketLoads(topo, ba));
  EXPECT_NEAR(a.speedup, b.speedup, a.speedup * 1e-9);
}

TEST(Symmetry, CoreIndexWithinSocketIsIrrelevant) {
  const Predictor predictor(BaseMachine(), BaseWorkload());
  const MachineTopology& topo = BaseMachine().topo;
  const Prediction low(predictor.Predict(Placement(topo, {1, 1, 0, 0, 0, 0, 0, 0,
                                                          0, 0, 0, 0, 0, 0, 0, 0})));
  const Prediction high(predictor.Predict(Placement(topo, {0, 0, 0, 0, 0, 0, 1, 1,
                                                           0, 0, 0, 0, 0, 0, 0, 0})));
  EXPECT_NEAR(low.speedup, high.speedup, low.speedup * 1e-9);
}

// --- fuzz: random-but-valid descriptions never break the iteration ---

class PredictorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PredictorFuzz, RandomDescriptionsStayFiniteAndBounded) {
  Rng rng(7000 + GetParam());
  WorkloadDescription desc = BaseWorkload();
  desc.t1 = 1.0 + rng.NextDouble() * 1000.0;
  desc.demands.instr_rate = rng.NextDouble() * BaseMachine().core_ops * 1.2;
  desc.demands.l1_bw = rng.NextDouble() * BaseMachine().l1_bw * 1.2;
  desc.demands.l2_bw = rng.NextDouble() * BaseMachine().l2_bw * 1.2;
  desc.demands.l3_bw = rng.NextDouble() * BaseMachine().l3_port_bw * 1.2;
  desc.demands.dram_local_bw = rng.NextDouble() * BaseMachine().dram_bw;
  desc.demands.dram_remote_bw = rng.NextDouble() * BaseMachine().link_bw;
  desc.parallel_fraction = rng.NextDouble();
  desc.inter_socket_overhead = rng.NextDouble() * 0.3;
  desc.load_balance = rng.NextDouble();
  desc.burstiness = rng.NextDouble() * 2.0;
  const MemoryPolicy policies[] = {MemoryPolicy::kLocal, MemoryPolicy::kInterleaveAll,
                                   MemoryPolicy::kInterleaveActive};
  desc.memory_policy = policies[rng.NextBounded(3)];

  const Predictor predictor(BaseMachine(), desc);
  const MachineTopology& topo = BaseMachine().topo;
  const int threads = 1 + static_cast<int>(rng.NextBounded(topo.NumHwThreads()));
  const Placement placement = Placement::TwoPerCore(topo, threads);
  const Prediction p = predictor.Predict(placement);
  EXPECT_TRUE(std::isfinite(p.speedup));
  EXPECT_GT(p.speedup, 0.0);
  EXPECT_LE(p.speedup, p.amdahl_speedup * (1.0 + 1e-9));
  EXPECT_LE(p.iterations, 1000);
  for (const ThreadPrediction& thread : p.threads) {
    EXPECT_TRUE(std::isfinite(thread.overall_slowdown));
    EXPECT_GE(thread.overall_slowdown, 1.0 - 1e-9);
    EXPECT_GT(thread.utilization, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorFuzz, ::testing::Range(0, 50));

}  // namespace
}  // namespace pandia
