// Equivalence proof for the SoA solver rewrite: in exact mode (the
// default, PredictionOptions::warm_start off) the production
// CoSchedulePredictor must produce *byte-identical* predictions to the
// retained reference solver (src/predictor/reference_solver.h) — same
// slowdowns, bottlenecks, final_delta, iteration count, and per-iteration
// trace contents — across all four paper machines, multi-job co-schedules,
// ablation options, and edge placements. Doubles are compared through
// std::bit_cast so "identical" means identical bits, not within-epsilon.
//
// The warm-start mode is opt-in and *not* byte-identical by design (a
// seeded fixed-point iteration follows a different trajectory); its
// contract — within convergence_eps of the cold fixed point, deterministic
// for a fixed call sequence, byte-exact fallback when the flag is off —
// is pinned down here too.
#include <bit>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/eval/pipeline.h"
#include "src/obs/prediction_trace.h"
#include "src/predictor/co_schedule.h"
#include "src/predictor/reference_solver.h"
#include "src/sim/machine_spec.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

const eval::Pipeline& PipelineFor(const std::string& machine) {
  static std::map<std::string, eval::Pipeline>* pipelines =
      new std::map<std::string, eval::Pipeline>;
  auto it = pipelines->find(machine);
  if (it == pipelines->end()) {
    it = pipelines->emplace(machine, eval::Pipeline(machine)).first;
  }
  return it->second;
}

const WorkloadDescription& Desc(const std::string& machine, const char* workload) {
  static std::map<std::string, WorkloadDescription>* cache =
      new std::map<std::string, WorkloadDescription>;
  const std::string key = machine + "/" + workload;
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, PipelineFor(machine).Profile(workloads::ByName(workload)))
             .first;
  }
  return it->second;
}

void ExpectBitIdentical(const Prediction& got, const Prediction& want,
                        const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(Bits(got.amdahl_speedup), Bits(want.amdahl_speedup));
  EXPECT_EQ(Bits(got.speedup), Bits(want.speedup));
  EXPECT_EQ(Bits(got.time), Bits(want.time));
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(Bits(got.final_delta), Bits(want.final_delta));
  ASSERT_EQ(got.threads.size(), want.threads.size());
  for (size_t t = 0; t < got.threads.size(); ++t) {
    const ThreadPrediction& a = got.threads[t];
    const ThreadPrediction& b = want.threads[t];
    EXPECT_EQ(a.location.core, b.location.core) << "thread " << t;
    EXPECT_EQ(a.location.socket, b.location.socket) << "thread " << t;
    EXPECT_EQ(a.location.slot, b.location.slot) << "thread " << t;
    EXPECT_EQ(Bits(a.resource_slowdown), Bits(b.resource_slowdown)) << "thread " << t;
    EXPECT_EQ(Bits(a.comm_penalty), Bits(b.comm_penalty)) << "thread " << t;
    EXPECT_EQ(Bits(a.balance_penalty), Bits(b.balance_penalty)) << "thread " << t;
    EXPECT_EQ(Bits(a.overall_slowdown), Bits(b.overall_slowdown)) << "thread " << t;
    EXPECT_EQ(Bits(a.utilization), Bits(b.utilization)) << "thread " << t;
    EXPECT_EQ(a.bottleneck, b.bottleneck) << "thread " << t;
  }
  ASSERT_EQ(got.resource_load.size(), want.resource_load.size());
  for (size_t r = 0; r < got.resource_load.size(); ++r) {
    EXPECT_EQ(Bits(got.resource_load[r]), Bits(want.resource_load[r]))
        << "resource " << r;
  }
}

void ExpectJointBitIdentical(const CoSchedulePrediction& got,
                             const CoSchedulePrediction& want,
                             const std::string& context) {
  ASSERT_EQ(got.jobs.size(), want.jobs.size()) << context;
  for (size_t j = 0; j < got.jobs.size(); ++j) {
    ExpectBitIdentical(got.jobs[j], want.jobs[j],
                       context + " job " + std::to_string(j));
  }
  ASSERT_EQ(got.resource_load.size(), want.resource_load.size()) << context;
  for (size_t r = 0; r < got.resource_load.size(); ++r) {
    EXPECT_EQ(Bits(got.resource_load[r]), Bits(want.resource_load[r]))
        << context << " resource " << r;
  }
}

void ExpectTraceBitIdentical(const obs::PredictionTrace& got,
                             const obs::PredictionTrace& want,
                             const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(Bits(got.final_delta), Bits(want.final_delta));
  ASSERT_EQ(got.iterations.size(), want.iterations.size());
  for (size_t i = 0; i < got.iterations.size(); ++i) {
    const obs::PredictionIterationTrace& a = got.iterations[i];
    const obs::PredictionIterationTrace& b = want.iterations[i];
    EXPECT_EQ(a.iteration, b.iteration) << "iteration " << i;
    EXPECT_EQ(Bits(a.max_delta), Bits(b.max_delta)) << "iteration " << i;
    EXPECT_EQ(a.converged, b.converged) << "iteration " << i;
    EXPECT_EQ(a.dampened, b.dampened) << "iteration " << i;
    ASSERT_EQ(a.thread_slowdowns.size(), b.thread_slowdowns.size());
    for (size_t t = 0; t < a.thread_slowdowns.size(); ++t) {
      EXPECT_EQ(Bits(a.thread_slowdowns[t]), Bits(b.thread_slowdowns[t]))
          << "iteration " << i << " thread " << t;
    }
    ASSERT_EQ(a.thread_bottlenecks.size(), b.thread_bottlenecks.size());
    for (size_t t = 0; t < a.thread_bottlenecks.size(); ++t) {
      EXPECT_EQ(a.thread_bottlenecks[t], b.thread_bottlenecks[t])
          << "iteration " << i << " thread " << t;
    }
  }
}

// Placement corpus for one machine: singleton, spread, SMT-packed, full
// machine, and an asymmetric two-socket split — the shapes that exercise
// every solver term (burstiness, communication, balancing, DRAM routing).
std::vector<Placement> PlacementCorpus(const MachineTopology& topo) {
  std::vector<Placement> corpus;
  corpus.push_back(Placement::OnePerCore(topo, 1));
  corpus.push_back(Placement::OnePerCore(topo, topo.cores_per_socket));
  corpus.push_back(Placement::OnePerCore(topo, topo.NumCores()));
  corpus.push_back(Placement::TwoPerCore(topo, 2 * topo.NumCores()));
  if (topo.num_sockets >= 2) {
    std::vector<SocketLoad> lopsided(static_cast<size_t>(topo.num_sockets));
    lopsided[0] = SocketLoad{topo.cores_per_socket, 0};
    lopsided[1] = SocketLoad{1, 0};
    corpus.push_back(Placement::FromSocketLoads(topo, lopsided));
  }
  return corpus;
}

TEST(SolverEquivalence, SingleJobBitIdenticalOnAllPaperMachines) {
  for (const std::string& machine : sim::KnownMachineNames()) {
    const eval::Pipeline& pipeline = PipelineFor(machine);
    const MachineTopology& topo = pipeline.machine().topology();
    for (const char* workload : {"CG", "Swim"}) {
      const WorkloadDescription& desc = Desc(machine, workload);
      const PredictionOptions options;
      const CoSchedulePredictor engine(pipeline.description(), options);
      for (const Placement& placement : PlacementCorpus(topo)) {
        const CoScheduleRequest request{&desc, placement};
        const std::span<const CoScheduleRequest> span(&request, 1);
        ExpectJointBitIdentical(
            engine.Predict(span),
            ReferenceCoSchedulePredict(pipeline.description(), options, span),
            machine + "/" + workload + "/" +
                std::to_string(placement.TotalThreads()) + "t");
      }
    }
  }
}

TEST(SolverEquivalence, MultiJobCoScheduleBitIdentical) {
  for (const std::string& machine : {std::string("x3-2"), std::string("x2-4")}) {
    const eval::Pipeline& pipeline = PipelineFor(machine);
    const MachineTopology& topo = pipeline.machine().topology();
    const WorkloadDescription& cg = Desc(machine, "CG");
    const WorkloadDescription& swim = Desc(machine, "Swim");
    const WorkloadDescription& ep = Desc(machine, "EP");
    // Three jobs: CG spread over every socket, Swim packed on socket 0
    // (overlapping CG's cores there via SMT), EP on one core.
    std::vector<SocketLoad> swim_loads(static_cast<size_t>(topo.num_sockets));
    swim_loads[0] = SocketLoad{topo.cores_per_socket / 2, 0};
    const std::vector<CoScheduleRequest> requests{
        {&cg, Placement::OnePerCore(topo, topo.NumCores())},
        {&swim, Placement::FromSocketLoads(topo, swim_loads)},
        {&ep, Placement::OnePerCore(topo, 1)},
    };
    const PredictionOptions options;
    const CoSchedulePredictor engine(pipeline.description(), options);
    ExpectJointBitIdentical(
        engine.Predict(requests),
        ReferenceCoSchedulePredict(pipeline.description(), options, requests),
        machine + "/three-jobs");
  }
}

TEST(SolverEquivalence, AblationOptionsBitIdentical) {
  const eval::Pipeline& pipeline = PipelineFor("x3-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const WorkloadDescription& desc = Desc("x3-2", "Swim");
  std::vector<PredictionOptions> variants(5);
  variants[1].model_burstiness = false;
  variants[2].model_communication = false;
  variants[3].model_load_balance = false;
  variants[4].iterate = false;
  // A tiny dampen_after forces the dampened-update path early.
  PredictionOptions dampened;
  dampened.dampen_after = 2;
  variants.push_back(dampened);
  const Placement placement = Placement::TwoPerCore(topo, 2 * topo.NumCores());
  for (size_t v = 0; v < variants.size(); ++v) {
    const CoSchedulePredictor engine(pipeline.description(), variants[v]);
    const CoScheduleRequest request{&desc, placement};
    const std::span<const CoScheduleRequest> span(&request, 1);
    ExpectJointBitIdentical(
        engine.Predict(span),
        ReferenceCoSchedulePredict(pipeline.description(), variants[v], span),
        "variant " + std::to_string(v));
  }
}

TEST(SolverEquivalence, IterationTraceBitIdentical) {
  const eval::Pipeline& pipeline = PipelineFor("x5-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const WorkloadDescription& desc = Desc("x5-2", "Swim");
  obs::PredictionTrace got_trace;
  obs::PredictionTrace want_trace;
  PredictionOptions got_options;
  got_options.common.trace = &got_trace;
  PredictionOptions want_options;
  want_options.common.trace = &want_trace;
  const CoSchedulePredictor engine(pipeline.description(), got_options);
  const Placement placement = Placement::TwoPerCore(topo, 2 * topo.NumCores());
  const CoScheduleRequest request{&desc, placement};
  const std::span<const CoScheduleRequest> span(&request, 1);
  const CoSchedulePrediction got = engine.Predict(span);
  const CoSchedulePrediction want =
      ReferenceCoSchedulePredict(pipeline.description(), want_options, span);
  ExpectJointBitIdentical(got, want, "traced solve");
  ASSERT_GT(got_trace.iterations.size(), 1u);
  ExpectTraceBitIdentical(got_trace, want_trace, "trace");
}

TEST(SolverEquivalence, ScratchArenaStopsGrowingAfterFirstSolve) {
  const eval::Pipeline& pipeline = PipelineFor("x3-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const WorkloadDescription& desc = Desc("x3-2", "CG");
  const CoSchedulePredictor engine(pipeline.description());
  SolverScratch scratch;
  std::vector<Placement> corpus = PlacementCorpus(topo);
  // Warm the arena up to the largest shape in the corpus, then re-solving
  // every shape must not grow any buffer: the zero-allocation property.
  for (const Placement& placement : corpus) {
    const CoScheduleRequest request{&desc, placement};
    engine.PredictWithScratch(std::span<const CoScheduleRequest>(&request, 1), scratch,
                              nullptr);
  }
  const uint64_t grown = scratch.grow_events;
  EXPECT_GT(grown, 0u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const Placement& placement : corpus) {
      const CoScheduleRequest request{&desc, placement};
      engine.PredictWithScratch(std::span<const CoScheduleRequest>(&request, 1),
                                scratch, nullptr);
    }
  }
  EXPECT_EQ(scratch.grow_events, grown);
}

TEST(SolverEquivalence, WarmStartFlagOffNeverReadsSeed) {
  const eval::Pipeline& pipeline = PipelineFor("x3-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const WorkloadDescription& desc = Desc("x3-2", "Swim");
  const PredictionOptions options;  // warm_start off
  const CoSchedulePredictor engine(pipeline.description(), options);
  const Placement placement = Placement::OnePerCore(topo, topo.NumCores());
  const CoScheduleRequest request{&desc, placement};
  const std::span<const CoScheduleRequest> span(&request, 1);
  // Poison the seed: with the flag off it must be ignored and the result
  // must stay byte-identical to the reference.
  SolverWarmStart warm;
  warm.f_start.assign(static_cast<size_t>(placement.TotalThreads()), 123.0);
  ExpectJointBitIdentical(
      engine.Predict(span, &warm),
      ReferenceCoSchedulePredict(pipeline.description(), options, span),
      "flag off, poisoned seed");
  EXPECT_EQ(warm.seeded, 0u);
}

TEST(SolverEquivalence, WarmStartConvergesWithinEpsAndIsDeterministic) {
  const eval::Pipeline& pipeline = PipelineFor("x3-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const WorkloadDescription& desc = Desc("x3-2", "Swim");
  PredictionOptions warm_options;
  warm_options.warm_start = true;
  const CoSchedulePredictor warm_engine(pipeline.description(), warm_options);
  const CoSchedulePredictor cold_engine(pipeline.description());

  // A run of same-thread-count sibling placements, the shape optimizer
  // rankings and rack candidate scans produce. A cross-socket placement
  // leads: its communication penalty moves the utilization state, so it
  // hands a genuine (non-initial) seed to the siblings after it.
  const int threads = topo.cores_per_socket;
  std::vector<Placement> siblings;
  std::vector<SocketLoad> split(static_cast<size_t>(topo.num_sockets));
  split[0] = SocketLoad{threads / 2, 0};
  split[1] = SocketLoad{threads - threads / 2, 0};
  siblings.push_back(Placement::FromSocketLoads(topo, split));
  std::vector<SocketLoad> lopsided(static_cast<size_t>(topo.num_sockets));
  lopsided[0] = SocketLoad{threads - 1, 0};
  lopsided[1] = SocketLoad{1, 0};
  siblings.push_back(Placement::FromSocketLoads(topo, lopsided));
  siblings.push_back(Placement::OnePerCore(topo, threads));
  siblings.push_back(Placement::TwoPerCore(topo, threads));

  auto run_chain = [&](SolverWarmStart& warm) {
    std::vector<CoSchedulePrediction> results;
    for (const Placement& placement : siblings) {
      const CoScheduleRequest request{&desc, placement};
      results.push_back(
          warm_engine.Predict(std::span<const CoScheduleRequest>(&request, 1), &warm));
    }
    return results;
  };
  SolverWarmStart warm_a;
  const std::vector<CoSchedulePrediction> first = run_chain(warm_a);
  // The first solve is necessarily cold; contended same-count siblings
  // after it are seeded (an uncontended neighbour hands the Amdahl initial
  // state back, which counts as cold — see SolverWarmStart).
  EXPECT_GE(warm_a.cold, 1u);
  EXPECT_GE(warm_a.seeded, 1u);
  EXPECT_EQ(warm_a.cold + warm_a.seeded, siblings.size());

  for (size_t i = 0; i < siblings.size(); ++i) {
    const CoScheduleRequest request{&desc, siblings[i]};
    const CoSchedulePrediction cold =
        cold_engine.Predict(std::span<const CoScheduleRequest>(&request, 1));
    ASSERT_TRUE(first[i].jobs[0].converged);
    ASSERT_TRUE(cold.jobs[0].converged);
    // Warm and cold stop in the same convergence plateau: both halt when
    // successive iterates move < eps, which on slowly contracting
    // problems leaves either up to ~1% from the mathematical fixed point.
    // The bound here is the documented 2% agreement, not eps.
    EXPECT_NEAR(first[i].jobs[0].speedup, cold.jobs[0].speedup,
                0.02 * cold.jobs[0].speedup)
        << "sibling " << i;
  }

  // Determinism: replaying the identical chain with a fresh seed gives
  // byte-identical results.
  SolverWarmStart warm_b;
  const std::vector<CoSchedulePrediction> second = run_chain(warm_b);
  for (size_t i = 0; i < siblings.size(); ++i) {
    ExpectJointBitIdentical(second[i], first[i], "replay sibling " + std::to_string(i));
  }
  EXPECT_EQ(warm_b.seeded, warm_a.seeded);
}

TEST(SolverEquivalence, PredictorExactModeBitIdenticalToReference) {
  const eval::Pipeline& pipeline = PipelineFor("x4-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const WorkloadDescription& desc = Desc("x4-2", "CG");
  const Predictor predictor = pipeline.MakePredictor(desc);
  for (const Placement& placement : PlacementCorpus(topo)) {
    const CoScheduleRequest request{&desc, placement};
    const CoSchedulePrediction want = ReferenceCoSchedulePredict(
        pipeline.description(), predictor.options(),
        std::span<const CoScheduleRequest>(&request, 1));
    ExpectBitIdentical(predictor.Predict(placement), want.jobs[0],
                       "predictor " + std::to_string(placement.TotalThreads()) + "t");
  }
}

}  // namespace
}  // namespace pandia
