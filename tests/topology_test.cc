#include <gtest/gtest.h>

#include <set>

#include "src/topology/memory_policy.h"
#include "src/topology/resource_index.h"
#include "src/topology/topology.h"

namespace pandia {
namespace {

MachineTopology TwoByFour() {
  return MachineTopology{.name = "t2x4",
                         .num_sockets = 2,
                         .cores_per_socket = 4,
                         .threads_per_core = 2,
                         .l1_size = 0.032,
                         .l2_size = 0.25,
                         .l3_size = 8.0};
}

MachineTopology FourByTen() {
  return MachineTopology{.name = "t4x10",
                         .num_sockets = 4,
                         .cores_per_socket = 10,
                         .threads_per_core = 2,
                         .l1_size = 0.032,
                         .l2_size = 0.25,
                         .l3_size = 24.0};
}

TEST(Topology, Counts) {
  const MachineTopology topo = TwoByFour();
  EXPECT_EQ(topo.NumCores(), 8);
  EXPECT_EQ(topo.NumHwThreads(), 16);
  EXPECT_EQ(topo.NumInterconnectLinks(), 1);
  EXPECT_EQ(FourByTen().NumInterconnectLinks(), 6);
}

TEST(Topology, SocketOfCore) {
  const MachineTopology topo = TwoByFour();
  EXPECT_EQ(topo.SocketOfCore(0), 0);
  EXPECT_EQ(topo.SocketOfCore(3), 0);
  EXPECT_EQ(topo.SocketOfCore(4), 1);
  EXPECT_EQ(topo.FirstCoreOfSocket(1), 4);
}

TEST(Topology, LinkIndexSymmetricAndDense) {
  const MachineTopology topo = FourByTen();
  std::set<int> seen;
  for (int a = 0; a < topo.num_sockets; ++a) {
    for (int b = a + 1; b < topo.num_sockets; ++b) {
      const int index = topo.LinkIndex(a, b);
      EXPECT_EQ(index, topo.LinkIndex(b, a));
      EXPECT_GE(index, 0);
      EXPECT_LT(index, topo.NumInterconnectLinks());
      seen.insert(index);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), topo.NumInterconnectLinks());
}

TEST(TopologyDeath, LinkIndexRejectsSelfLink) {
  const MachineTopology topo = TwoByFour();
  EXPECT_DEATH(topo.LinkIndex(0, 0), "PANDIA_CHECK");
}

// --- ResourceIndex ---

TEST(ResourceIndex, CountMatchesLayout) {
  const MachineTopology topo = TwoByFour();
  const ResourceIndex index(topo);
  // 4 per-core classes + l3agg/dram per socket + 1 link.
  EXPECT_EQ(index.Count(), 4 * 8 + 2 * 2 + 1);
}

TEST(ResourceIndex, AllIndicesDistinct) {
  const MachineTopology topo = FourByTen();
  const ResourceIndex index(topo);
  std::set<int> seen;
  for (int c = 0; c < topo.NumCores(); ++c) {
    seen.insert(index.Core(c));
    seen.insert(index.L1(c));
    seen.insert(index.L2(c));
    seen.insert(index.L3Port(c));
  }
  for (int s = 0; s < topo.num_sockets; ++s) {
    seen.insert(index.L3Agg(s));
    seen.insert(index.Dram(s));
  }
  for (int a = 0; a < topo.num_sockets; ++a) {
    for (int b = a + 1; b < topo.num_sockets; ++b) {
      seen.insert(index.Link(a, b));
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), index.Count());
}

TEST(ResourceIndex, KindsRoundTrip) {
  const MachineTopology topo = TwoByFour();
  const ResourceIndex index(topo);
  EXPECT_EQ(index.KindOf(index.Core(3)), ResourceKind::kCore);
  EXPECT_EQ(index.KindOf(index.L1(0)), ResourceKind::kL1);
  EXPECT_EQ(index.KindOf(index.L2(7)), ResourceKind::kL2);
  EXPECT_EQ(index.KindOf(index.L3Port(5)), ResourceKind::kL3Port);
  EXPECT_EQ(index.KindOf(index.L3Agg(1)), ResourceKind::kL3Agg);
  EXPECT_EQ(index.KindOf(index.Dram(0)), ResourceKind::kDram);
  EXPECT_EQ(index.KindOf(index.Link(0, 1)), ResourceKind::kLink);
}

TEST(ResourceIndex, NamesAreDescriptive) {
  const MachineTopology topo = FourByTen();
  const ResourceIndex index(topo);
  EXPECT_EQ(index.Name(index.Core(0)), "core0");
  EXPECT_EQ(index.Name(index.Dram(2)), "dram2");
  EXPECT_EQ(index.Name(index.Link(1, 3)), "link1-3");
}

// --- MemoryPolicy ---

TEST(MemoryPolicy, LocalPutsEverythingOnOwnSocket) {
  const std::vector<double> w =
      MemoryNodeWeights(MemoryPolicy::kLocal, 4, {true, true, false, false}, 1, 0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_DOUBLE_EQ(w[0] + w[2] + w[3], 0.0);
}

TEST(MemoryPolicy, InterleaveAllIsUniform) {
  const std::vector<double> w =
      MemoryNodeWeights(MemoryPolicy::kInterleaveAll, 4, {true, false, false, false}, 0, 0);
  for (double x : w) {
    EXPECT_DOUBLE_EQ(x, 0.25);
  }
}

TEST(MemoryPolicy, InterleaveActiveUsesOnlyActiveSockets) {
  const std::vector<double> w = MemoryNodeWeights(MemoryPolicy::kInterleaveActive, 4,
                                                  {true, false, true, false}, 0, 0);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[2], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[3], 0.0);
}

TEST(MemoryPolicy, HomeSocketIgnoresThreadLocation) {
  const std::vector<double> w =
      MemoryNodeWeights(MemoryPolicy::kHomeSocket, 2, {false, true}, 1, 0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(MemoryPolicy, WeightsAlwaysSumToOne) {
  for (MemoryPolicy policy :
       {MemoryPolicy::kLocal, MemoryPolicy::kInterleaveAll,
        MemoryPolicy::kInterleaveActive, MemoryPolicy::kHomeSocket}) {
    const std::vector<double> w =
        MemoryNodeWeights(policy, 3, {true, true, false}, 1, 0);
    double sum = 0.0;
    for (double x : w) {
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << MemoryPolicyName(policy);
  }
}

TEST(MemoryPolicy, NamesAreStable) {
  EXPECT_EQ(MemoryPolicyName(MemoryPolicy::kLocal), "local");
  EXPECT_EQ(MemoryPolicyName(MemoryPolicy::kInterleaveAll), "interleave-all");
}

}  // namespace
}  // namespace pandia
