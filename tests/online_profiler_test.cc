// Tests for the online profiler (§8 runtime-integration extension): a
// runtime feeding loop epochs must converge to a description close to what
// the dedicated six-run profiler produces.
#include <gtest/gtest.h>

#include "src/eval/pipeline.h"
#include "src/workload_desc/online_profiler.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

const eval::Pipeline& X3() {
  static const eval::Pipeline pipeline("x3-2");
  return pipeline;
}

OnlineProfiler MakeProfiler(const sim::WorkloadSpec& workload) {
  return OnlineProfiler(X3().description(), workload.name, workload.memory_policy);
}

TEST(OnlineProfiler, StartsEmpty) {
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  const OnlineProfiler profiler = MakeProfiler(workload);
  EXPECT_FALSE(profiler.demands_known());
  EXPECT_FALSE(profiler.Complete());
}

TEST(OnlineProfiler, OrderingIsEnforced) {
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  OnlineProfiler profiler = MakeProfiler(workload);
  const MachineTopology& topo = X3().machine().topology();
  // A parallel epoch before any single-thread epoch cannot be used (§4's
  // step dependencies).
  EXPECT_FALSE(
      profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 4)));
  EXPECT_TRUE(
      profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 1)));
  EXPECT_TRUE(
      profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 4)));
  EXPECT_TRUE(profiler.parallel_fraction_known());
}

TEST(OnlineProfiler, ConvergesToOfflineDescription) {
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  OnlineProfiler profiler = MakeProfiler(workload);
  const MachineTopology& topo = X3().machine().topology();
  EXPECT_TRUE(
      profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 1)));
  EXPECT_TRUE(
      profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 6)));
  std::vector<SocketLoad> split{{3, 0}, {3, 0}};
  EXPECT_TRUE(profiler.ObserveRun(X3().machine(), workload,
                                  Placement::FromSocketLoads(topo, split)));
  std::vector<SocketLoad> packed{{0, 3}, {0, 0}};
  EXPECT_TRUE(profiler.ObserveRun(X3().machine(), workload,
                                  Placement::FromSocketLoads(topo, packed)));
  EXPECT_TRUE(profiler.Complete());

  const WorkloadDescription offline = X3().Profile(workload);
  const WorkloadDescription& online = profiler.description();
  // Online epochs run without the background filler, so tolerances are
  // loose — but every parameter must land in the right region.
  EXPECT_NEAR(online.parallel_fraction, offline.parallel_fraction, 0.04);  // turbo skews unfixed online epochs
  EXPECT_NEAR(online.demands.instr_rate, offline.demands.instr_rate,
              offline.demands.instr_rate * 0.25);
  EXPECT_NEAR(online.inter_socket_overhead, offline.inter_socket_overhead, 0.02);
  EXPECT_NEAR(online.burstiness, offline.burstiness, 0.3);
}

TEST(OnlineProfiler, OnlineDescriptionPredictsUsefully) {
  const sim::WorkloadSpec workload = workloads::ByName("CG");
  OnlineProfiler profiler = MakeProfiler(workload);
  const MachineTopology& topo = X3().machine().topology();
  profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 1));
  profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 4));
  std::vector<SocketLoad> split{{2, 0}, {2, 0}};
  profiler.ObserveRun(X3().machine(), workload,
                      Placement::FromSocketLoads(topo, split));
  std::vector<SocketLoad> packed{{0, 2}, {0, 0}};
  profiler.ObserveRun(X3().machine(), workload,
                      Placement::FromSocketLoads(topo, packed));
  ASSERT_TRUE(profiler.Complete());

  const Predictor predictor(X3().description(), profiler.description());
  for (int n : {8, 16}) {
    const Placement placement = Placement::OnePerCore(topo, n);
    const double predicted = predictor.Predict(placement).time;
    const double measured =
        X3().machine().RunOne(workload, placement).jobs[0].completion_time;
    EXPECT_LT(predicted, measured * 1.6) << n;
    EXPECT_GT(predicted, measured / 1.6) << n;
  }
}

TEST(OnlineProfiler, RepeatedEpochsRefineByAveraging) {
  const sim::WorkloadSpec workload = workloads::ByName("EP");
  OnlineProfiler profiler = MakeProfiler(workload);
  const MachineTopology& topo = X3().machine().topology();
  profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 1));
  const double t1_first = profiler.description().t1;
  profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 1));
  // Deterministic sim: identical epochs, identical average.
  EXPECT_NEAR(profiler.description().t1, t1_first, t1_first * 1e-9);
}

TEST(OnlineProfiler, ContaminatedParallelEpochIsRejected) {
  // Swim saturates shared resources with a full socket of threads: such an
  // epoch must not contaminate the Amdahl estimate.
  const sim::WorkloadSpec workload = workloads::ByName("Swim");
  OnlineProfiler profiler = MakeProfiler(workload);
  const MachineTopology& topo = X3().machine().topology();
  profiler.ObserveRun(X3().machine(), workload, Placement::OnePerCore(topo, 1));
  EXPECT_FALSE(profiler.ObserveRun(X3().machine(), workload,
                                   Placement::OnePerCore(topo, 8)));
  EXPECT_TRUE(profiler.ObserveRun(X3().machine(), workload,
                                  Placement::OnePerCore(topo, 2)));
}

TEST(OnlineProfiler, SuggestedProbesCompleteTheDescription) {
  const sim::WorkloadSpec workload = workloads::ByName("Swim");
  OnlineProfiler profiler = MakeProfiler(workload);
  int probes = 0;
  while (!profiler.Complete()) {
    const std::optional<Placement> probe = profiler.SuggestNextProbe();
    ASSERT_TRUE(probe.has_value()) << "stuck after " << probes << " probes";
    EXPECT_TRUE(profiler.ObserveRun(X3().machine(), workload, *probe))
        << probe->ToString();
    ASSERT_LT(++probes, 10);
  }
  // Exactly the paper's measurement structure: one probe per §4 step that a
  // runtime can observe (t1, p, o_s, b).
  EXPECT_EQ(probes, 4);
  EXPECT_FALSE(profiler.SuggestNextProbe().has_value());
}

TEST(OnlineProfiler, SuggestedParallelProbeIsContentionFree) {
  // Swim saturates shared resources quickly: the suggested parallel probe
  // must use fewer threads than a full socket.
  const sim::WorkloadSpec workload = workloads::ByName("Swim");
  OnlineProfiler profiler = MakeProfiler(workload);
  profiler.ObserveRun(X3().machine(), workload, *profiler.SuggestNextProbe());
  const std::optional<Placement> parallel_probe = profiler.SuggestNextProbe();
  ASSERT_TRUE(parallel_probe.has_value());
  EXPECT_LT(parallel_probe->TotalThreads(),
            X3().machine().topology().cores_per_socket);
  EXPECT_EQ(parallel_probe->TotalThreads() % 2, 0);
}

TEST(OnlineProfilerDeath, RejectsNonPositiveTime) {
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  OnlineProfiler profiler = MakeProfiler(workload);
  EpochObservation epoch{Placement::OnePerCore(X3().machine().topology(), 1)};
  epoch.time = 0.0;
  EXPECT_DEATH(profiler.Observe(epoch), "PANDIA_CHECK");
}

}  // namespace
}  // namespace pandia
