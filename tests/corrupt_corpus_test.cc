// Malformed-input corpus: every .txt file under tests/data/corrupt is a
// deliberately broken description. Feeding one to either parser must yield a
// clean non-OK Status with an actionable message — never an abort or a crash.
// The suite runs under ASan/TSan/UBSan in CI, so memory errors on the error
// paths are caught here too.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/serialize/serialize.h"
#include "src/serve/journal.h"

#ifndef PANDIA_TEST_DATA_DIR
#error "PANDIA_TEST_DATA_DIR must be defined by the build"
#endif

namespace pandia {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  const std::filesystem::path dir =
      std::filesystem::path(PANDIA_TEST_DATA_DIR) / "corrupt";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".txt") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorruptCorpus, DirectoryIsPopulated) {
  // Guard against a build that points PANDIA_TEST_DATA_DIR somewhere stale:
  // an empty corpus would make the sweep below pass vacuously.
  EXPECT_GE(CorpusFiles().size(), 10u);
}

TEST(CorruptCorpus, EveryFileYieldsCleanErrorFromBothParsers) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const StatusOr<std::string> text = ReadTextFile(path.string());
    ASSERT_TRUE(text.ok()) << text.status().ToString();

    const StatusOr<MachineDescription> machine = MachineDescriptionFromText(*text);
    EXPECT_FALSE(machine.ok());
    EXPECT_FALSE(machine.status().message().empty());

    const StatusOr<WorkloadDescription> workload =
        WorkloadDescriptionFromText(*text);
    EXPECT_FALSE(workload.ok());
    EXPECT_FALSE(workload.status().message().empty());
  }
}

// The corpus defects are distinguishable: spot-check that representative
// files produce the right code and name the offending key, so a user can fix
// the file from the message alone.
TEST(CorruptCorpus, MessagesNameTheDefect) {
  const std::filesystem::path dir =
      std::filesystem::path(PANDIA_TEST_DATA_DIR) / "corrupt";
  struct Case {
    const char* file;
    bool machine_parser;
    StatusCode code;
    const char* needle;
  };
  const Case cases[] = {
      {"empty.txt", true, StatusCode::kDataLoss, "magic"},
      {"machine_non_numeric.txt", true, StatusCode::kInvalidArgument, "core_ops"},
      {"machine_nan_capacity.txt", true, StatusCode::kInvalidArgument, "dram_bw"},
      {"machine_huge_topology.txt", true, StatusCode::kInvalidArgument, "sockets"},
      {"workload_duplicate_key.txt", false, StatusCode::kInvalidArgument, "t1"},
      {"workload_bad_policy.txt", false, StatusCode::kInvalidArgument, "quantum"},
      {"workload_out_of_range.txt", false, StatusCode::kInvalidArgument,
       "parallel_fraction"},
      {"workload_missing_key.txt", false, StatusCode::kDataLoss, "burstiness"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.file);
    const StatusOr<std::string> text = ReadTextFile((dir / c.file).string());
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    const Status status = c.machine_parser
                              ? MachineDescriptionFromText(*text).status()
                              : WorkloadDescriptionFromText(*text).status();
    EXPECT_EQ(status.code(), c.code) << status.ToString();
    EXPECT_NE(status.message().find(c.needle), std::string::npos)
        << status.ToString();
  }
}

// --- journal corpus -----------------------------------------------------
//
// The journal/ subdirectory holds broken journal-v2 files. Recovery may
// truncate a torn tail in place, so every file is copied to a scratch path
// before Journal::Open sees it — the checked-in corpus is never modified.

std::string ScratchCopy(const std::filesystem::path& source) {
  const std::filesystem::path dest =
      std::filesystem::path(::testing::TempDir()) /
      ("corpus_" + source.filename().string());
  std::filesystem::copy_file(source, dest,
                             std::filesystem::copy_options::overwrite_existing);
  return dest.string();
}

TEST(CorruptCorpus, TornJournalTailRecoversByTruncation) {
  const std::filesystem::path dir =
      std::filesystem::path(PANDIA_TEST_DATA_DIR) / "corrupt" / "journal";
  StatusOr<serve::Journal> journal =
      serve::Journal::Open(ScratchCopy(dir / "torn_tail.journal"), {});
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_TRUE(journal->recovery().truncated_torn_tail);
  EXPECT_GT(journal->recovery().truncated_bytes, 0u);
  ASSERT_EQ(journal->recovery().records.size(), 1u);
  EXPECT_EQ(journal->recovery().records[0].request.verb, "NOTE");
  // The torn record's sequence number was never acknowledged; it is reused.
  EXPECT_EQ(journal->next_seq(), 2u);
}

TEST(CorruptCorpus, BrokenJournalsAreRefusedWithTheDefectNamed) {
  const std::filesystem::path dir =
      std::filesystem::path(PANDIA_TEST_DATA_DIR) / "corrupt" / "journal";
  struct Case {
    const char* file;
    const char* needle;
  };
  const Case cases[] = {
      {"bad_crc.journal", "journal line 2: checksum mismatch"},
      // Tail defects a tear cannot produce are refused like mid-file
      // corruption: a terminated final record with a CRC mismatch (the
      // newline proves the line landed whole) and a checksum-valid but
      // wrong-sequence final record (a writer bug, not a torn write).
      {"bad_crc_tail.journal", "journal line 3: checksum mismatch"},
      {"bad_length.journal", "the frame declares 999"},
      {"bad_seq.journal", "sequence 5 where 2 was expected"},
      {"bad_seq_tail.journal", "sequence 5 where 2 was expected"},
      {"interleaved_v1_v2.journal", "journal line 3: bad sequence number"},
      {"truncated_snapshot.journal", "snapshot record is truncated"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.file);
    const std::string scratch = ScratchCopy(dir / c.file);
    const StatusOr<std::string> before = ReadTextFile(scratch);
    ASSERT_TRUE(before.ok());
    const StatusOr<serve::Journal> journal = serve::Journal::Open(scratch, {});
    ASSERT_FALSE(journal.ok());
    EXPECT_EQ(journal.status().code(), StatusCode::kDataLoss)
        << journal.status().ToString();
    EXPECT_NE(journal.status().message().find(c.needle), std::string::npos)
        << journal.status().ToString();
    // A refused journal is left byte-for-byte as found: corruption is for
    // the operator to inspect, not for recovery to paper over.
    const StatusOr<std::string> after = ReadTextFile(scratch);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, *before);
  }
}

}  // namespace
}  // namespace pandia
