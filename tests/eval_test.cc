#include <gtest/gtest.h>

#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/sim/machine_spec.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace eval {
namespace {

MachineTopology X3Topo() { return sim::MakeX3_2().topo; }

SweepResult MakeSyntheticSweep(double predicted_scale) {
  // Three placements with measured times 10, 5, 2 and predictions scaled by
  // `predicted_scale` (1.0 = perfect).
  const MachineTopology topo = X3Topo();
  static const MachineTopology static_topo = X3Topo();
  SweepResult result;
  result.workload = "synthetic";
  result.machine = "x3-2";
  const double measured[] = {10.0, 5.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    PlacementResult pr{Placement::OnePerCore(static_topo, i + 1)};
    pr.measured_time = measured[i];
    pr.predicted_time = measured[i] * predicted_scale;
    result.placements.push_back(std::move(pr));
  }
  ComputeMetrics(result);
  return result;
}

TEST(EvalMetrics, PerfectPredictionsHaveZeroError) {
  const SweepResult result = MakeSyntheticSweep(1.0);
  EXPECT_NEAR(result.error_mean, 0.0, 1e-9);
  EXPECT_NEAR(result.error_median, 0.0, 1e-9);
  EXPECT_NEAR(result.offset_error_mean, 0.0, 1e-9);
  EXPECT_EQ(result.best_measured_index, 2u);
  EXPECT_EQ(result.best_predicted_index, 2u);
  EXPECT_NEAR(result.best_placement_gap_pct, 0.0, 1e-9);
}

TEST(EvalMetrics, ConstantFactorErrorVanishesUnderNormalization) {
  // A uniform 2x misprediction normalizes away entirely: both error metrics
  // are zero because the series are normalized to their own bests (§6.1).
  const SweepResult result = MakeSyntheticSweep(2.0);
  EXPECT_NEAR(result.error_mean, 0.0, 1e-9);
  EXPECT_NEAR(result.offset_error_mean, 0.0, 1e-9);
}

TEST(EvalMetrics, ShapeErrorSurvivesOffsetCorrection) {
  const MachineTopology topo = X3Topo();
  static const MachineTopology static_topo = X3Topo();
  SweepResult result;
  result.workload = "shape";
  result.machine = "x3-2";
  const double measured[] = {10.0, 5.0, 2.0};
  const double predicted[] = {10.0, 8.0, 2.0};  // middle placement mispredicted
  for (int i = 0; i < 3; ++i) {
    PlacementResult pr{Placement::OnePerCore(static_topo, i + 1)};
    pr.measured_time = measured[i];
    pr.predicted_time = predicted[i];
    result.placements.push_back(std::move(pr));
  }
  ComputeMetrics(result);
  // A shape error cannot be repaired by a constant shift: both metrics stay
  // positive (the offset metric may redistribute, not erase, the error).
  EXPECT_GT(result.error_mean, 5.0);
  EXPECT_GT(result.offset_error_mean, 1.0);
}

TEST(EvalSweep, PlacementsAreExhaustiveOnSmallMachines) {
  SweepOptions options;
  const std::vector<Placement> placements = SweepPlacements(X3Topo(), options);
  EXPECT_EQ(placements.size(), 1034u);
}

TEST(EvalSweep, SamplingKicksInAboveLimit) {
  SweepOptions options;
  options.exhaustive_limit = 100;
  options.sample_count = 250;
  const std::vector<Placement> placements = SweepPlacements(X3Topo(), options);
  EXPECT_EQ(placements.size(), 251u);  // 250 sampled + anchored full machine
}

TEST(EvalSweep, FilterRestrictsClasses) {
  const MachineTopology topo = sim::MakeX2_4().topo;
  SweepOptions options;
  options.exhaustive_limit = 1;  // force sampling
  options.sample_count = 120;
  options.filter = AtMostTwoSockets;
  for (const Placement& p : SweepPlacements(topo, options)) {
    EXPECT_LE(p.NumActiveSockets(), 2);
  }
  options.filter = AtMostTwentyCores;
  for (const Placement& p : SweepPlacements(topo, options)) {
    int cores = 0;
    for (int s = 0; s < topo.num_sockets; ++s) {
      cores += p.CoresUsedOnSocket(s);
    }
    EXPECT_LE(cores, 20);
  }
}

TEST(EvalSweep, EndToEndSweepProducesFiniteMetrics) {
  const Pipeline pipeline("x3-2");
  const sim::WorkloadSpec workload = workloads::ByName("EP");
  const WorkloadDescription desc = pipeline.Profile(workload);
  const Predictor predictor = pipeline.MakePredictor(desc);
  SweepOptions options;
  options.exhaustive_limit = 100;  // sample to keep the test fast
  options.sample_count = 60;
  const SweepResult result = RunSweep(pipeline.machine(), predictor, workload, options);
  EXPECT_EQ(result.placements.size(), 61u);  // 60 sampled + anchored full machine
  EXPECT_GE(result.error_mean, 0.0);
  EXPECT_GE(result.offset_error_median, 0.0);
  EXPECT_LE(result.offset_error_median, result.error_mean + 50.0);
  EXPECT_LT(result.best_placement_gap_pct, 50.0);
}

TEST(EvalSweep, BaselineComparesCosts) {
  const Pipeline pipeline("x3-2");
  const sim::WorkloadSpec workload = workloads::ByName("EP");
  const WorkloadDescription desc = pipeline.Profile(workload);
  const Predictor predictor = pipeline.MakePredictor(desc);
  SweepOptions options;
  options.exhaustive_limit = 100;
  options.sample_count = 80;
  const SweepResult sweep = RunSweep(pipeline.machine(), predictor, workload, options);
  const SweepBaselineResult baseline =
      RunSweepBaseline(pipeline.machine(), workload, desc, sweep);
  EXPECT_GT(baseline.cost_ratio, 0.5);  // exploring 64 placements costs more
  // The reference sweep here is a small sample, so the compact/spread sweep
  // may legitimately beat it (negative gap).
  EXPECT_LT(baseline.sweep_best_gap_pct, 100.0);
  if (baseline.sweep_best_gap_pct <= 0.0) {
    EXPECT_TRUE(baseline.found_best);
  }
}

}  // namespace
}  // namespace eval
}  // namespace pandia
