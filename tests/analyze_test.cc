// src/lint/analyze.h: the whole-program analyzer's engine on synthetic
// multi-file trees — lock-order cycles come back with exact witness paths,
// every drift rule fires in both directions, discarded-status sees through
// qualifier chains, and allow() suppresses on the anchor line — plus the
// runtime half of the deadlock defense (src/util/lock_rank.h): a conforming
// ascending acquisition order passes, an inversion dies naming both locks.
// The final test analyzes the real repo and requires zero findings, so the
// in-tree ctest and this unit suite can never drift apart.
//
// Fixture sources live in string literals, which the shared lexer blanks
// out of the code buffer — so this file being indexed by the real
// pandia_analyze run cannot leak fixture facts into the repo's own graph.
#include "src/lint/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/lock_rank.h"
#include "src/util/mutex.h"

namespace pandia {
namespace lint {
namespace {

std::vector<Finding> RunAnalyzer(const std::vector<SourceFile>& files) {
  return AnalyzeFiles(files).findings;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(AnalyzerRegistry, ListsEveryCrossFileRule) {
  const std::vector<RuleInfo>& rules = AnalyzerRules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "lock-order");
  EXPECT_EQ(rules[1].name, "discarded-status");
  EXPECT_EQ(rules[2].name, "wire-verb-drift");
  EXPECT_EQ(rules[3].name, "metric-drift");
  for (const RuleInfo& rule : rules) EXPECT_FALSE(rule.summary.empty());
}

// --- lock-order ----------------------------------------------------------

// Three locks, three functions, one a -> b -> c -> a cycle.
std::vector<SourceFile> CycleTree() {
  return {{"src/x/x.cc",
           "#include \"src/util/mutex.h\"\n"       // 1
           "util::Mutex a_mu{\"x.a\"};\n"          // 2
           "util::Mutex b_mu{\"x.b\"};\n"          // 3
           "util::Mutex c_mu{\"x.c\"};\n"          // 4
           "void F1() {\n"                         // 5
           "  util::MutexLock g1(a_mu);\n"         // 6
           "  util::MutexLock g2(b_mu);\n"         // 7
           "}\n"                                   // 8
           "void F2() {\n"                         // 9
           "  util::MutexLock g1(b_mu);\n"         // 10
           "  util::MutexLock g2(c_mu);\n"         // 11
           "}\n"                                   // 12
           "void F3() {\n"                         // 13
           "  util::MutexLock g1(c_mu);\n"         // 14
           "  util::MutexLock g2(a_mu);\n"         // 15
           "}\n"}};                                // 16
}

TEST(LockOrder, ThreeLockCycleReportsCanonicalIdsAndWitnessPath) {
  const std::vector<Finding> findings = RunAnalyzer(CycleTree());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/x/x.cc");
  EXPECT_EQ(findings[0].line, 7);  // the cycle's anchor acquisition
  EXPECT_EQ(findings[0].rule, "lock-order");
  // Canonicalized cycle: the smallest id leads.
  EXPECT_TRUE(Contains(findings[0].message,
                       "cycle \"x.a\" -> \"x.b\" -> \"x.c\" -> \"x.a\""))
      << findings[0].message;
  // Each edge carries its witness acquisition site.
  EXPECT_TRUE(Contains(findings[0].message,
                       "\"x.b\" acquired at src/x/x.cc:7 while \"x.a\" held "
                       "(since src/x/x.cc:6)"))
      << findings[0].message;
  EXPECT_TRUE(Contains(findings[0].message,
                       "\"x.c\" acquired at src/x/x.cc:11 while \"x.b\" held "
                       "(since src/x/x.cc:10)"))
      << findings[0].message;
  EXPECT_TRUE(Contains(findings[0].message,
                       "\"x.a\" acquired at src/x/x.cc:15 while \"x.c\" held "
                       "(since src/x/x.cc:14)"))
      << findings[0].message;
}

TEST(LockOrder, AcyclicNestingIsClean) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/x/x.cc",
        "util::Mutex a_mu{\"x.a\"};\n"
        "util::Mutex b_mu{\"x.b\"};\n"
        "void F() {\n"
        "  util::MutexLock g1(a_mu);\n"
        "  util::MutexLock g2(b_mu);\n"
        "}\n"}});
  EXPECT_TRUE(findings.empty());
}

TEST(LockOrder, RankContradictionNamesBothLocksAndRanks) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/y/y.cc",
        "util::Mutex hi_mu{\"y.hi\", 20};\n"  // 1
        "util::Mutex lo_mu{\"y.lo\", 10};\n"  // 2
        "void F() {\n"                        // 3
        "  util::MutexLock g1(hi_mu);\n"      // 4
        "  util::MutexLock g2(lo_mu);\n"      // 5
        "}\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/y/y.cc");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_TRUE(Contains(findings[0].message, "contradicts declared lock ranks"))
      << findings[0].message;
  EXPECT_TRUE(Contains(findings[0].message, "\"y.lo\" (rank 10)"));
  EXPECT_TRUE(Contains(findings[0].message, "\"y.hi\" (rank 20)"));
}

TEST(LockOrder, RanksResolveThroughKLockRankConstants) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/util/mutex.h",
        "inline constexpr int kLockRankYHi = 20;\n"
        "inline constexpr int kLockRankYLo = 10;\n"},
       {"src/y/y.cc",
        "util::Mutex hi_mu{\"y.hi\", util::kLockRankYHi};\n"
        "util::Mutex lo_mu{\"y.lo\", util::kLockRankYLo};\n"
        "void F() {\n"
        "  util::MutexLock g1(hi_mu);\n"
        "  util::MutexLock g2(lo_mu);\n"
        "}\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(Contains(findings[0].message, "\"y.lo\" (rank 10)"));
}

TEST(LockOrder, HeaderAnnotationAppliesToSameStemDefinition) {
  // The REQUIRES annotation lives on the header declaration; the .cc
  // definition inherits the held lock, so its nested acquisition is an edge.
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/z/z.h",
        "class Z {\n"
        "  void Drain() PANDIA_REQUIRES(hi_mu);\n"
        "  util::Mutex hi_mu{\"z.hi\", 20};\n"
        "  util::Mutex lo_mu{\"z.lo\", 10};\n"
        "};\n"},
       {"src/z/z.cc",
        "void Z::Drain() {\n"             // 1: inherits hi_mu held
        "  util::MutexLock g(lo_mu);\n"   // 2: lower rank while hi held
        "}\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/z/z.cc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_TRUE(Contains(findings[0].message, "contradicts declared lock ranks"));
}

TEST(LockOrder, AllowSuppressesOnTheAnchorLine) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/y/y.cc",
        "util::Mutex hi_mu{\"y.hi\", 20};\n"
        "util::Mutex lo_mu{\"y.lo\", 10};\n"
        "void F() {\n"
        "  util::MutexLock g1(hi_mu);\n"
        "  util::MutexLock g2(lo_mu);  "
        "// pandia-lint: allow(lock-order) teardown-only path\n"
        "}\n"}});
  EXPECT_TRUE(findings.empty());
}

TEST(LockGraph, DotExportLabelsRanksAndHighlightsBadEdges) {
  const RepoFacts facts = IndexFiles(
      {{"src/y/y.cc",
        "util::Mutex hi_mu{\"y.hi\", 20};\n"
        "util::Mutex lo_mu{\"y.lo\", 10};\n"
        "void F() {\n"
        "  util::MutexLock g1(hi_mu);\n"
        "  util::MutexLock g2(lo_mu);\n"
        "}\n"}});
  const std::string dot = LockGraphDot(facts);
  EXPECT_TRUE(Contains(dot, "digraph lock_order"));
  EXPECT_TRUE(Contains(dot, "\"y.hi\" [label=\"y.hi\\nrank 20\"]"));
  EXPECT_TRUE(Contains(dot, "\"y.hi\" -> \"y.lo\""));
  EXPECT_TRUE(Contains(dot, "color=red"));  // the contradicting edge
}

TEST(LockGraph, TopologicalOrderFollowsAcquisitionChain) {
  const RepoFacts facts = IndexFiles(
      {{"src/x/x.cc",
        "util::Mutex a_mu{\"x.a\"};\n"
        "util::Mutex b_mu{\"x.b\"};\n"
        "util::Mutex c_mu{\"x.c\"};\n"
        "void F() {\n"
        "  util::MutexLock g1(a_mu);\n"
        "  util::MutexLock g2(b_mu);\n"
        "  util::MutexLock g3(c_mu);\n"
        "}\n"}});
  const std::vector<std::string> order = TopologicalLockOrder(facts);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "x.a");
  EXPECT_EQ(order[1], "x.b");
  EXPECT_EQ(order[2], "x.c");
}

// --- discarded-status ----------------------------------------------------

TEST(DiscardedStatus, FiresOnBareCallsIncludingQualifierChains) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/x/x.h",
        "Status Save(const std::string& path);\n"
        "StatusOr<int> Load();\n"
        "void Touch();\n"},
       {"src/x/x.cc",
        "#include \"src/x/x.h\"\n"        // 1
        "void F(Store* store) {\n"        // 2
        "  Save(\"f\");\n"                // 3: discarded
        "  Status s = Save(\"f\");\n"     // 4: assigned
        "  if (!Save(\"f\").ok()) {\n"    // 5: value used
        "  }\n"                           // 6
        "  store->Save(\"g\");\n"         // 7: discarded through ->
        "  Load();\n"                     // 8: discarded StatusOr
        "  (void)Save(\"h\");\n"          // 9: explicit void cast
        "  Touch();\n"                    // 10: not a status function
        "}\n"}});
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "discarded-status");
    EXPECT_EQ(finding.path, "src/x/x.cc");
  }
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_TRUE(Contains(findings[0].message, "'Save'"));
  EXPECT_EQ(findings[1].line, 7);
  EXPECT_EQ(findings[2].line, 8);
  EXPECT_TRUE(Contains(findings[2].message, "'Load'"));
}

TEST(DiscardedStatus, WrapperCallChainsBackThroughTheCall) {
  // `Wrap().Save();` — the chain walks back over the call's parens to the
  // statement boundary, so the discarded wrapper result still fires.
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/x/x.h", "Status Save();\n"},
       {"src/x/x.cc",
        "void F() {\n"
        "  Wrap(1, 2).Save();\n"
        "}\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(DiscardedStatus, AmbiguousReturnTypeNamesDropOut) {
  // `Validate` returns Status in one class and void in another: the voting
  // rule withdraws the name entirely rather than flag the void one.
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/a/a.h", "Status Validate();\n"},
       {"src/b/b.h", "void Validate();\n"},
       {"src/b/b.cc", "void G() { Validate(); }\n"}});
  EXPECT_TRUE(findings.empty());
}

TEST(DiscardedStatus, AllowSuppresses) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/x/x.h", "Status Save();\n"},
       {"src/x/x.cc",
        "void F() {\n"
        "  Save();  // pandia-lint: allow(discarded-status) fire and forget\n"
        "}\n"}});
  EXPECT_TRUE(findings.empty());
}

// --- wire-verb-drift -----------------------------------------------------

SourceFile WireHeader() {
  return {"src/serialize/wire.h",
          "inline constexpr std::string_view kVerbs[] = {\n"    // 1
          "    \"PING\", \"STATS\",\n"                          // 2
          "};\n"                                                // 3
          "inline constexpr std::string_view kJournalRecordVerbs[] = {\n"  // 4
          "    \"NOTED\",\n"                                    // 5
          "};\n"};                                              // 6
}

SourceFile ServiceDispatchingAll() {
  return {"src/serve/service.cc",
          "void Dispatch(const Request& request) {\n"
          "  if (request.verb == \"PING\") { return; }\n"
          "  if (request.verb == \"STATS\") { return; }\n"
          "}\n"
          "void Replay(const Record& record) {\n"
          "  if (record.verb == \"NOTED\") { return; }\n"
          "}\n"};
}

SourceFile FleetDispatching(const std::string& body) {
  return {"src/serve/fleet_service.cc",
          "void Dispatch(const Request& request) {\n" + body + "}\n"};
}

SourceFile DesignDocumenting(const std::string& text) {
  return {"DESIGN.md", text};
}

TEST(WireVerbDrift, DeclaredVerbMissingFromOneDispatcher) {
  const std::vector<Finding> findings = RunAnalyzer(
      {WireHeader(), ServiceDispatchingAll(),
       FleetDispatching("  if (request.verb == \"PING\") { return; }\n"),
       DesignDocumenting("Verbs: PING, STATS; journal records: NOTED.\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/serialize/wire.h");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "wire-verb-drift");
  EXPECT_TRUE(Contains(findings[0].message,
                       "verb STATS declared in the wire inventory but never "
                       "dispatched by src/serve/fleet_service.cc"))
      << findings[0].message;
}

TEST(WireVerbDrift, DispatchedVerbMissingFromTheInventory) {
  const std::vector<Finding> findings = RunAnalyzer(
      {WireHeader(), ServiceDispatchingAll(),
       FleetDispatching("  if (request.verb == \"PING\") { return; }\n"
                        "  if (request.verb == \"STATS\") { return; }\n"
                        "  if (request.verb == \"BOGUS\") { return; }\n"),
       DesignDocumenting("Verbs: PING, STATS; journal records: NOTED.\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/serve/fleet_service.cc");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_TRUE(Contains(findings[0].message,
                       "verb BOGUS dispatched by src/serve/fleet_service.cc "
                       "but missing from the wire.h verb inventory"))
      << findings[0].message;
}

TEST(WireVerbDrift, JournalVerbMustBeReplayedByTheService) {
  const std::vector<Finding> findings = RunAnalyzer(
      {WireHeader(),
       {"src/serve/service.cc",
        "void Dispatch(const Request& request) {\n"
        "  if (request.verb == \"PING\") { return; }\n"
        "  if (request.verb == \"STATS\") { return; }\n"
        "}\n"},  // no NOTED replay
       FleetDispatching("  if (request.verb == \"PING\") { return; }\n"
                        "  if (request.verb == \"STATS\") { return; }\n"),
       DesignDocumenting("Verbs: PING, STATS; journal records: NOTED.\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);  // NOTED's inventory line
  EXPECT_TRUE(Contains(findings[0].message,
                       "journal record verb NOTED declared in the wire "
                       "inventory but never replayed by src/serve/service.cc"))
      << findings[0].message;
}

TEST(WireVerbDrift, UndocumentedVerbOnlyWhenDesignPresent) {
  const std::vector<SourceFile> tree = {
      WireHeader(), ServiceDispatchingAll(),
      FleetDispatching("  if (request.verb == \"PING\") { return; }\n"
                       "  if (request.verb == \"STATS\") { return; }\n")};

  // Without DESIGN.md, no documentation findings.
  EXPECT_TRUE(RunAnalyzer(tree).empty());

  // With DESIGN.md missing STATS, exactly the documentation finding fires.
  std::vector<SourceFile> documented = tree;
  documented.push_back(DesignDocumenting("Verbs: PING; records: NOTED.\n"));
  const std::vector<Finding> findings = RunAnalyzer(documented);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/serialize/wire.h");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_TRUE(
      Contains(findings[0].message, "verb STATS is not documented in DESIGN.md"))
      << findings[0].message;
}

// --- metric-drift --------------------------------------------------------

TEST(MetricDrift, OneNameTwoInstrumentTypes) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/a/a.cc",
        "void A(Registry& r) { r.counter(\"dup.name\").Increment(); }\n"},
       {"src/b/b.cc",
        "void B(Registry& r) { r.gauge(\"dup.name\").Set(1.0); }\n"},
       DesignDocumenting("| `dup.name` | a metric |\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/b/b.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[0].rule, "metric-drift");
  EXPECT_TRUE(Contains(findings[0].message,
                       "metric 'dup.name' registered as gauge here but as "
                       "counter at src/a/a.cc:1"))
      << findings[0].message;
}

TEST(MetricDrift, UndocumentedMetricFiresOnlyForSrcSites) {
  const std::vector<Finding> findings = RunAnalyzer(
      {{"src/a/a.cc",
        "void A(Registry& r) { r.counter(\"only.here\").Increment(); }\n"},
       {"tests/t.cc",
        "void T(Registry& r) { r.counter(\"test.only\").Increment(); }\n"},
       DesignDocumenting("no inventory\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/a/a.cc");
  EXPECT_TRUE(Contains(findings[0].message,
                       "metric 'only.here' is registered but missing from "
                       "DESIGN.md's metric inventory"))
      << findings[0].message;
}

TEST(MetricDrift, NoDesignMeansNoDocumentationFindings) {
  EXPECT_TRUE(
      RunAnalyzer({{"src/a/a.cc",
            "void A(Registry& r) { r.counter(\"only.here\").Increment(); }\n"}})
          .empty());
}

// --- runtime lock-rank checker -------------------------------------------

TEST(LockRankRuntime, ConformingAscendingOrderPasses) {
  util::SetLockRankChecking(true);
  util::Mutex low{"analyze_test.low", 1};
  util::Mutex high{"analyze_test.high", 2};
  {
    util::MutexLock outer(low);
    util::MutexLock inner(high);
    EXPECT_EQ(util::lock_rank_internal::HeldCountForTest(), 2u);
  }
  EXPECT_EQ(util::lock_rank_internal::HeldCountForTest(), 0u);
  util::SetLockRankChecking(false);
}

TEST(LockRankRuntime, UnrankedMutexesAreExempt) {
  util::SetLockRankChecking(true);
  util::Mutex ranked{"analyze_test.ranked", 5};
  util::Mutex plain;  // unranked: neither checked nor recorded
  ranked.Lock();
  plain.Lock();  // lower "rank" conceptually, but exempt — no death
  EXPECT_EQ(util::lock_rank_internal::HeldCountForTest(), 1u);
  plain.Unlock();
  ranked.Unlock();
  util::SetLockRankChecking(false);
}

TEST(LockRankRuntime, TryLockRecordsWithoutChecking) {
  util::SetLockRankChecking(true);
  util::Mutex low{"analyze_test.try_low", 1};
  util::Mutex high{"analyze_test.try_high", 2};
  high.Lock();
  // A try-acquisition cannot deadlock, so the inversion is tolerated — but
  // the hold is recorded so later blocking acquisitions see it.
  ASSERT_TRUE(low.TryLock());
  EXPECT_EQ(util::lock_rank_internal::HeldCountForTest(), 2u);
  low.Unlock();
  high.Unlock();
  EXPECT_EQ(util::lock_rank_internal::HeldCountForTest(), 0u);
  util::SetLockRankChecking(false);
}

TEST(LockRankDeathTest, InversionDiesNamingBothLocks) {
  util::SetLockRankChecking(true);
  util::Mutex low{"analyze_test.death_low", 1};
  util::Mutex high{"analyze_test.death_high", 2};
  high.Lock();
  EXPECT_DEATH(low.Lock(),
               "lock rank inversion.*analyze_test\\.death_low.*rank 1.*"
               "analyze_test\\.death_high.*rank 2");
  high.Unlock();
  util::SetLockRankChecking(false);
}

TEST(LockRankDeathTest, EqualRanksAlsoDie) {
  util::SetLockRankChecking(true);
  util::Mutex first{"analyze_test.eq_first", 7};
  util::Mutex second{"analyze_test.eq_second", 7};
  first.Lock();
  EXPECT_DEATH(second.Lock(), "lock rank inversion");
  first.Unlock();
  util::SetLockRankChecking(false);
}

// --- the real repo -------------------------------------------------------

#ifdef PANDIA_SOURCE_DIR

// The tree must analyze clean — the same invariant the pandia_analyze ctest
// enforces, exercised here through the library API so the engine tests and
// the in-tree gate cannot drift apart.
TEST(WholeRepo, AnalyzesCleanWithSaneFacts) {
  namespace fs = std::filesystem;
  const fs::path root(PANDIA_SOURCE_DIR);
  std::vector<SourceFile> files;
  for (const char* dir : {"src", "tests", "tools"}) {
    for (fs::recursive_directory_iterator it(root / dir), end; it != end;
         ++it) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      files.push_back(
          SourceFile{fs::relative(it->path(), root).generic_string(),
                     buffer.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  {
    std::ifstream in(root / "DESIGN.md", std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back(SourceFile{"DESIGN.md", buffer.str()});
  }

  const AnalyzeResult result = AnalyzeFiles(files);
  for (const Finding& finding : result.findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }

  // Sanity on the fact index: the repo's protocol is 10 verbs, every ranked
  // lock from the kLockRank* table is seen, and the acquisition digraph is
  // non-trivial and acyclic (the topological order covers every node).
  EXPECT_EQ(result.facts.declared_verbs.size(), 10u);
  EXPECT_FALSE(result.facts.journal_verbs.empty());
  EXPECT_FALSE(result.facts.status_functions.empty());
  EXPECT_FALSE(result.facts.lock_edges.empty());
  std::vector<std::string> named;
  for (const LockDecl& decl : result.facts.locks) {
    if (decl.has_rank) named.push_back(decl.id);
  }
  for (const char* id : {"serve.fleet", "serve.service", "parallel.pool",
                         "parallel.done", "predictor.cache_shard",
                         "obs.metrics", "obs.trace", "obs.trace_buffer",
                         "obs.log", "obs.flight_recorder"}) {
    EXPECT_TRUE(std::find(named.begin(), named.end(), id) != named.end())
        << "missing ranked lock " << id;
  }
  const std::string dot = LockGraphDot(result.facts);
  EXPECT_TRUE(Contains(dot, "digraph lock_order"));
  EXPECT_FALSE(Contains(dot, "color=red")) << dot;
}

#endif  // PANDIA_SOURCE_DIR

}  // namespace
}  // namespace lint
}  // namespace pandia
