// Tests for heterogeneous thread groups (§6.4 limitation, addressed via
// explicit groupings as the paper suggests).
#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/pipeline.h"
#include "src/predictor/grouped.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

const eval::Pipeline& X3() {
  static const eval::Pipeline pipeline("x3-2");
  return pipeline;
}

ThreadGroup MakeGroup(const char* workload, double weight = 1.0) {
  return ThreadGroup{workload, X3().Profile(workloads::ByName(workload)), weight};
}

TEST(Grouped, PipelineRateIsTheSlowestGroup) {
  GroupedWorkloadPredictor predictor(X3().description(),
                                     {MakeGroup("EP"), MakeGroup("Swim")});
  const MachineTopology& topo = X3().machine().topology();
  // EP gets 12 cores, Swim only 4: Swim limits the pipeline.
  Placement ep_cores(topo, {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0});
  Placement swim_cores(topo, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1});
  const std::vector<Placement> placements{ep_cores, swim_cores};
  const GroupedPrediction prediction = predictor.Predict(placements);
  ASSERT_EQ(prediction.groups.size(), 2u);
  EXPECT_EQ(prediction.bottleneck_group, 1);
  EXPECT_NEAR(prediction.pipeline_rate, prediction.groups[1].speedup, 1e-9);
  EXPECT_GT(prediction.groups[0].speedup, prediction.groups[1].speedup);
}

TEST(Grouped, WeightsShiftTheBottleneck) {
  // Same placements, but the EP group must do 10x the work per unit of
  // progress: now EP limits the pipeline.
  GroupedWorkloadPredictor predictor(X3().description(),
                                     {MakeGroup("EP", 10.0), MakeGroup("Swim")});
  const MachineTopology& topo = X3().machine().topology();
  Placement ep_cores(topo, {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0});
  Placement swim_cores(topo, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1});
  const GroupedPrediction prediction =
      predictor.Predict(std::vector<Placement>{ep_cores, swim_cores});
  EXPECT_EQ(prediction.bottleneck_group, 0);
}

TEST(Grouped, OptimizeSplitBalancesTheGroups) {
  GroupedWorkloadPredictor predictor(X3().description(),
                                     {MakeGroup("EP"), MakeGroup("Swim")});
  const std::vector<Placement> split = predictor.OptimizeSplit();
  ASSERT_EQ(split.size(), 2u);
  // Disjoint cores covering at most the machine.
  const MachineTopology& topo = X3().machine().topology();
  for (int c = 0; c < topo.NumCores(); ++c) {
    EXPECT_FALSE(split[0].ThreadsOnCore(c) > 0 && split[1].ThreadsOnCore(c) > 0);
  }
  const GroupedPrediction balanced = predictor.Predict(split);
  // The optimized split beats a naive half/half split.
  Placement half_a(topo, {1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0});
  Placement half_b(topo, {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1});
  const GroupedPrediction naive =
      predictor.Predict(std::vector<Placement>{half_a, half_b});
  EXPECT_GE(balanced.pipeline_rate, naive.pipeline_rate * 0.999);
  // Swim saturates early while EP scales with few cores packed, so
  // bottleneck balancing hands the struggling group (Swim) the larger
  // share of cores.
  int ep_cores = 0;
  int swim_cores = 0;
  for (int c = 0; c < topo.NumCores(); ++c) {
    ep_cores += split[0].ThreadsOnCore(c) > 0 ? 1 : 0;
    swim_cores += split[1].ThreadsOnCore(c) > 0 ? 1 : 0;
  }
  EXPECT_GE(swim_cores, ep_cores);
  // And the groups' rates are closer together than in the naive split.
  const double balanced_gap = std::fabs(balanced.groups[0].speedup -
                                        balanced.groups[1].speedup);
  const double naive_gap =
      std::fabs(naive.groups[0].speedup - naive.groups[1].speedup);
  EXPECT_LE(balanced_gap, naive_gap + 1e-9);
}

TEST(Grouped, SingleGroupMatchesPlainPredictor) {
  GroupedWorkloadPredictor predictor(X3().description(), {MakeGroup("CG")});
  const MachineTopology& topo = X3().machine().topology();
  const Placement placement = Placement::OnePerCore(topo, 8);
  const GroupedPrediction grouped =
      predictor.Predict(std::vector<Placement>{placement});
  const Predictor plain = X3().MakePredictor(predictor.groups()[0].description);
  EXPECT_DOUBLE_EQ(grouped.groups[0].speedup, plain.Predict(placement).speedup);
  EXPECT_DOUBLE_EQ(grouped.pipeline_rate, grouped.groups[0].speedup);
}

TEST(GroupedDeath, RejectsInvalidConfiguration) {
  EXPECT_DEATH(GroupedWorkloadPredictor(X3().description(), {}), "PANDIA_CHECK");
  ThreadGroup bad = MakeGroup("EP");
  bad.weight = 0.0;
  EXPECT_DEATH(GroupedWorkloadPredictor(X3().description(), {bad}), "weight");
}

}  // namespace
}  // namespace pandia
