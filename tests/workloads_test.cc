#include <gtest/gtest.h>

#include <set>

#include "src/sim/machine.h"
#include "src/sim/machine_spec.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace {

TEST(Workloads, SuiteHasTwentyTwoWorkloads) {
  EXPECT_EQ(workloads::EvaluationSuite().size(), 22u);
}

TEST(Workloads, NamesAreUnique) {
  std::set<std::string> names;
  for (const sim::WorkloadSpec& spec : workloads::EvaluationSuite()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
}

TEST(Workloads, DevelopmentSetIsSubsetOfSuite) {
  std::set<std::string> names;
  for (const sim::WorkloadSpec& spec : workloads::EvaluationSuite()) {
    names.insert(spec.name);
  }
  const std::vector<std::string> dev = workloads::DevelopmentSet();
  EXPECT_EQ(dev.size(), 4u);
  for (const std::string& name : dev) {
    EXPECT_TRUE(names.contains(name)) << name;
  }
}

TEST(Workloads, ByNameRoundTrips) {
  for (const sim::WorkloadSpec& spec : workloads::EvaluationSuite()) {
    EXPECT_EQ(workloads::ByName(spec.name).name, spec.name);
  }
  EXPECT_EQ(workloads::ByName("NPO-1T").max_active_threads, 1);
  EXPECT_GT(workloads::ByName("Equake").work_growth, 0.0);
}

TEST(WorkloadsDeath, ByNameRejectsUnknown) {
  EXPECT_DEATH(workloads::ByName("doom"), "unknown workload");
}

TEST(Workloads, ParametersAreWithinModelAssumptions) {
  for (const sim::WorkloadSpec& spec : workloads::EvaluationSuite()) {
    EXPECT_GT(spec.total_work, 0.0) << spec.name;
    EXPECT_GE(spec.parallel_fraction, 0.9) << spec.name;  // parallel workloads
    EXPECT_LE(spec.parallel_fraction, 1.0) << spec.name;
    EXPECT_GT(spec.duty_cycle, 0.0) << spec.name;
    EXPECT_LE(spec.duty_cycle, 1.0) << spec.name;
    EXPECT_GT(spec.single_thread_ipc, 0.0) << spec.name;
    EXPECT_LE(spec.single_thread_ipc, 1.0) << spec.name;
    EXPECT_EQ(spec.work_growth, 0.0) << spec.name;  // constant total work
    EXPECT_EQ(spec.max_active_threads, 0) << spec.name;
    if (spec.balance == sim::BalanceMode::kDynamic) {
      EXPECT_GT(spec.chunk_fraction, 0.0) << spec.name;
    }
  }
}

TEST(Workloads, SuiteSpansTheDemandSpace) {
  // The suite must include compute-bound, bandwidth-bound,
  // communication-heavy, bursty, and cache-hungry members.
  bool compute = false, bandwidth = false, comm = false, bursty = false,
       cache_hungry = false, dynamic = false, static_ = false;
  for (const sim::WorkloadSpec& spec : workloads::EvaluationSuite()) {
    compute |= spec.dram_bpw <= 0.1;
    bandwidth |= spec.dram_bpw >= 0.75;
    comm |= spec.comm_intensity >= 0.0008;
    bursty |= spec.duty_cycle <= 0.6;
    cache_hungry |= spec.working_set >= 3.0;
    dynamic |= spec.balance == sim::BalanceMode::kDynamic;
    static_ |= spec.balance == sim::BalanceMode::kStatic;
  }
  EXPECT_TRUE(compute);
  EXPECT_TRUE(bandwidth);
  EXPECT_TRUE(comm);
  EXPECT_TRUE(bursty);
  EXPECT_TRUE(cache_hungry);
  EXPECT_TRUE(dynamic);
  EXPECT_TRUE(static_);
}

TEST(Workloads, EveryWorkloadRunsOnEveryMachine) {
  for (const char* name : {"x5-2", "x4-2", "x3-2", "x2-4"}) {
    const sim::Machine machine{sim::MachineByName(name)};
    for (const sim::WorkloadSpec& spec : workloads::EvaluationSuite()) {
      const sim::RunResult result =
          machine.RunOne(spec, Placement::OnePerCore(machine.topology(), 2));
      EXPECT_GT(result.wall_time, 0.0) << name << "/" << spec.name;
    }
  }
}

TEST(Workloads, SortJoinPrefersOneThreadPerCore) {
  // §6.1: Sort-Join peaks well below the full SMT thread count. Its ground
  // truth must make two-per-core placements unattractive.
  const sim::Machine machine{sim::MachineByName("x5-2")};
  const sim::WorkloadSpec spec = workloads::ByName("Sort-Join");
  const MachineTopology& topo = machine.topology();
  std::vector<SocketLoad> one_per_core{{18, 0}, {18, 0}};
  std::vector<SocketLoad> two_per_core{{0, 18}, {0, 18}};
  const double t36 =
      machine.RunOne(spec, Placement::FromSocketLoads(topo, one_per_core))
          .jobs[0].completion_time;
  const double t72 =
      machine.RunOne(spec, Placement::FromSocketLoads(topo, two_per_core))
          .jobs[0].completion_time;
  EXPECT_LT(t36, t72);
}

TEST(Workloads, EquakeGetsWorseWithManyThreadsOnX5) {
  const sim::Machine machine{sim::MachineByName("x5-2")};
  const sim::WorkloadSpec spec = workloads::Equake();
  const MachineTopology& topo = machine.topology();
  const double t8 = machine.RunOne(spec, Placement::OnePerCore(topo, 8))
                        .jobs[0].completion_time;
  std::vector<SocketLoad> full{{0, 18}, {0, 18}};
  const double t72 = machine.RunOne(spec, Placement::FromSocketLoads(topo, full))
                         .jobs[0].completion_time;
  // The reduction step's extra work erodes scaling at high thread counts.
  EXPECT_GT(t72, t8 * 0.5);
}

TEST(Workloads, Npo1tDoesNotScale) {
  const sim::Machine machine{sim::MachineByName("x3-2")};
  const sim::WorkloadSpec spec = workloads::NpoSingleThreaded();
  const MachineTopology& topo = machine.topology();
  const double t1 = machine.RunOne(spec, Placement::OnePerCore(topo, 1))
                        .jobs[0].completion_time;
  const double t8 = machine.RunOne(spec, Placement::OnePerCore(topo, 8))
                        .jobs[0].completion_time;
  EXPECT_GT(t8, t1 * 0.8);  // no speedup from extra threads
}

}  // namespace
}  // namespace pandia
