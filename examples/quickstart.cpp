// Quickstart: the full Pandia pipeline on one workload.
//
//   1. Build the (simulated) machine and measure its machine description.
//   2. Profile the workload with the six Pandia runs.
//   3. Predict a few placements and compare with measured times.
//   4. Ask the optimizer for the best placement.
//
// Run: build/examples/quickstart [machine] [workload]
#include <cstdio>
#include <string>

#include "src/eval/pipeline.h"
#include "src/predictor/optimizer.h"
#include "src/topology/enumerate.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace pandia;
  const std::string machine_name = argc > 1 ? argv[1] : "x3-2";
  const std::string workload_name = argc > 2 ? argv[2] : "MD";

  std::printf("== Pandia quickstart: %s on %s ==\n\n", workload_name.c_str(),
              machine_name.c_str());

  // 1. Machine description (one-time per machine, from stress runs).
  const eval::Pipeline pipeline(machine_name);
  std::printf("machine description (measured):\n  %s\n\n",
              pipeline.description().ToString().c_str());

  // 2. Workload description (six profiling runs).
  const sim::WorkloadSpec workload = workloads::ByName(workload_name);
  const WorkloadDescription desc = pipeline.Profile(workload);
  std::printf("workload description:\n");
  std::printf("  t1 = %.2f   instr rate = %.2f\n", desc.t1, desc.demands.instr_rate);
  std::printf("  bandwidth: l1 %.1f  l2 %.1f  l3 %.1f  dram %.1f (%.1f local, %.1f remote)\n",
              desc.demands.l1_bw, desc.demands.l2_bw, desc.demands.l3_bw,
              desc.demands.dram_total_bw(), desc.demands.dram_local_bw,
              desc.demands.dram_remote_bw);
  std::printf("  p = %.4f   o_s = %.5f   l = %.2f   b = %.3f   (run2 threads: %d)\n\n",
              desc.parallel_fraction, desc.inter_socket_overhead, desc.load_balance,
              desc.burstiness, desc.profile_threads);

  // 3. Predictions vs measurements on a few interesting placements.
  const Predictor predictor = pipeline.MakePredictor(desc);
  const MachineTopology& topo = pipeline.machine().topology();
  Table table({"placement", "predicted", "measured", "pred speedup"});
  auto probe = [&](const Placement& placement) {
    const Prediction prediction = predictor.Predict(placement);
    const double measured =
        pipeline.machine().RunOne(workload, placement).jobs[0].completion_time;
    table.AddRow({placement.ToString(), StrFormat("%8.2f", prediction.time),
                  StrFormat("%8.2f", measured),
                  StrFormat("%6.2f", prediction.speedup)});
  };
  probe(Placement::OnePerCore(topo, 1));
  probe(Placement::OnePerCore(topo, topo.cores_per_socket));
  {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{topo.cores_per_socket, 0};
    loads[1] = SocketLoad{topo.cores_per_socket, 0};
    probe(Placement::FromSocketLoads(topo, loads));
  }
  {
    std::vector<SocketLoad> loads(static_cast<size_t>(topo.num_sockets));
    loads[0] = SocketLoad{0, topo.cores_per_socket};
    loads[1] = SocketLoad{0, topo.cores_per_socket};
    probe(Placement::FromSocketLoads(topo, loads));
  }
  table.Print();

  // 4. Best placement according to Pandia.
  const RankedPlacement best = FindBestPlacement(predictor);
  const double measured_best =
      pipeline.machine().RunOne(workload, best.placement).jobs[0].completion_time;
  std::printf("\npredicted-best placement: %s\n", best.placement.ToString().c_str());
  std::printf("  predicted %.2f, measured %.2f (speedup %.2fx over t1=%.2f)\n",
              best.prediction.time, measured_best, best.prediction.speedup, desc.t1);
  return 0;
}
