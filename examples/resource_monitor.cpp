// Resource monitor: Pandia predicts resource *demands*, not just run time
// (§1, §6.3: "Pandia provides predictions of resource consumption as well
// as predictions of performance; we believe this will help make predictions
// when co-scheduling workloads").
//
// This example predicts the per-resource load of a workload under a chosen
// placement, prints the utilization of every resource class, names the
// bottleneck, and cross-checks against the simulated machine's counters.
//
// Run: build/examples/resource_monitor [machine] [workload] [threads]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/counters/counters.h"
#include "src/eval/pipeline.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace pandia;
  const std::string machine_name = argc > 1 ? argv[1] : "x3-2";
  const std::string workload_name = argc > 2 ? argv[2] : "CG";
  const eval::Pipeline pipeline(machine_name);
  const MachineTopology& topo = pipeline.machine().topology();
  const int threads = argc > 3 ? std::atoi(argv[3]) : topo.NumCores();

  std::printf("== Resource demands of %s with %d threads on %s ==\n\n",
              workload_name.c_str(), threads, machine_name.c_str());
  const sim::WorkloadSpec workload = workloads::ByName(workload_name);
  const WorkloadDescription desc = pipeline.Profile(workload);
  const Predictor predictor = pipeline.MakePredictor(desc);
  const Placement placement = Placement::OnePerCore(topo, threads);
  const Prediction prediction = predictor.Predict(placement);

  // Aggregate the predicted load by resource kind, with capacities.
  const ResourceIndex index(topo);
  const std::vector<double> caps =
      pipeline.description().Capacities(placement.PerCore());
  struct KindRow {
    const char* label;
    ResourceKind kind;
  };
  const KindRow kinds[] = {
      {"core issue slots", ResourceKind::kCore},
      {"L1 links", ResourceKind::kL1},
      {"L2 links", ResourceKind::kL2},
      {"L3 ports", ResourceKind::kL3Port},
      {"L3 aggregate", ResourceKind::kL3Agg},
      {"memory channels", ResourceKind::kDram},
      {"interconnect", ResourceKind::kLink},
  };
  Table table({"resource", "predicted load", "capacity", "utilization"});
  for (const KindRow& row : kinds) {
    double load = 0.0;
    double cap = 0.0;
    for (int r = 0; r < index.Count(); ++r) {
      if (index.KindOf(r) == row.kind) {
        load += prediction.resource_load[r];
        cap += caps[r];
      }
    }
    table.AddRow({row.label, StrFormat("%.1f", load), StrFormat("%.1f", cap),
                  StrFormat("%.0f%%", cap > 0.0 ? 100.0 * load / cap : 0.0)});
  }
  table.Print();

  // Bottleneck resource of the median thread.
  const ThreadPrediction& thread = prediction.threads.front();
  std::printf("\npredicted bottleneck: %s (slowdown %.2f, speedup %.2fx, "
              "utilization %.0f%%)\n",
              thread.bottleneck >= 0 ? index.Name(thread.bottleneck).c_str()
                                     : "none (scales freely)",
              thread.overall_slowdown, prediction.speedup,
              100.0 * thread.utilization);

  // Cross-check with the simulated machine's counters.
  const sim::RunResult run = pipeline.machine().RunOne(workload, placement);
  const CounterView view(pipeline.machine(), run, 0);
  std::printf("\nmeasured cross-check: dram %.1f B/s predicted vs %.1f observed; "
              "time %.2f predicted vs %.2f observed\n",
              [&] {
                double load = 0.0;
                for (int s = 0; s < topo.num_sockets; ++s) {
                  load += prediction.resource_load[index.Dram(s)];
                }
                return load;
              }(),
              view.DramBytes() / view.CompletionTime(), prediction.time,
              view.CompletionTime());
  return 0;
}
