// Heterogeneous server: the §6.4 "multiple thread types" scenario, handled
// with explicit thread groups as the paper suggests.
//
// An analytics server pipelines two stages: a scan group streaming a
// column (Swim-like behaviour) feeding an aggregation group (EP-like
// compute). The end-to-end rate is the slower stage's rate. The grouped
// predictor profiles each stage separately, then searches machine splits
// for the best balanced rate — against giving each stage half the machine.
//
// Run: build/examples/heterogeneous_server [machine]
#include <cstdio>
#include <string>

#include "src/eval/pipeline.h"
#include "src/predictor/grouped.h"
#include "src/util/table.h"
#include "src/util/strings.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace pandia;
  const std::string machine_name = argc > 1 ? argv[1] : "x3-2";
  std::printf("== Heterogeneous server (scan stage + aggregate stage) on %s ==\n\n",
              machine_name.c_str());
  const eval::Pipeline pipeline(machine_name);
  const MachineTopology& topo = pipeline.machine().topology();

  // Profile each stage as its own workload (the paper's suggestion: expose
  // groupings explicitly instead of inferring them).
  std::vector<ThreadGroup> groups{
      {"scan", pipeline.Profile(workloads::ByName("Swim")), /*weight=*/1.0},
      {"aggregate", pipeline.Profile(workloads::ByName("EP")), /*weight=*/1.0},
  };
  const GroupedWorkloadPredictor predictor(pipeline.description(), groups);

  // Naive: half the machine each.
  std::vector<uint8_t> half_a(static_cast<size_t>(topo.NumCores()), 0);
  std::vector<uint8_t> half_b(static_cast<size_t>(topo.NumCores()), 0);
  for (int c = 0; c < topo.NumCores(); ++c) {
    (c < topo.NumCores() / 2 ? half_a : half_b)[c] = 1;
  }
  const std::vector<Placement> naive{Placement(topo, half_a), Placement(topo, half_b)};
  const GroupedPrediction naive_prediction = predictor.Predict(naive);

  // Pandia: balanced split.
  const std::vector<Placement> tuned = predictor.OptimizeSplit();
  const GroupedPrediction tuned_prediction = predictor.Predict(tuned);

  Table table({"split", "scan placement", "aggregate placement", "scan rate",
               "agg rate", "pipeline rate"});
  auto add_row = [&](const char* name, const std::vector<Placement>& placements,
                     const GroupedPrediction& prediction) {
    table.AddRow({name, placements[0].ToString(), placements[1].ToString(),
                  StrFormat("%.1f", prediction.groups[0].speedup),
                  StrFormat("%.1f", prediction.groups[1].speedup),
                  StrFormat("%.1f", prediction.pipeline_rate)});
  };
  add_row("half/half", naive, naive_prediction);
  add_row("balanced", tuned, tuned_prediction);
  table.Print();

  std::printf("\nbottleneck stage: %s; balanced split improves the pipeline rate "
              "by %.0f%% over half/half.\n",
              groups[tuned_prediction.bottleneck_group].name.c_str(),
              (tuned_prediction.pipeline_rate / naive_prediction.pipeline_rate - 1.0) *
                  100.0);
  return 0;
}
