// Capacity planner: Pandia's second headline use case (§1) — find where
// additional resources stop buying performance, and hand the freed cores to
// other tenants.
//
// For each workload the planner reports the smallest placement predicted to
// reach 95% of the achievable performance, the resources it frees compared
// with grabbing the whole machine, and a verification run. Poorly scaling
// workloads (the single-threaded NPO join, serial-heavy Apsi) shrink to a
// handful of cores; embarrassingly parallel EP keeps the machine.
//
// Run: build/examples/capacity_planner [machine] [target-fraction]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/eval/pipeline.h"
#include "src/predictor/optimizer.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace pandia;
  const std::string machine_name = argc > 1 ? argv[1] : "x3-2";
  const double target = argc > 2 ? std::atof(argv[2]) : 0.95;
  std::printf("== Capacity planning on %s: smallest placement reaching %.0f%% of "
              "peak ==\n\n",
              machine_name.c_str(), target * 100.0);
  const eval::Pipeline pipeline(machine_name);
  const int machine_threads = pipeline.machine().topology().NumHwThreads();

  Table table({"workload", "threads", "sockets", "freed hw threads", "pred speedup",
               "measured speedup"});
  for (const char* name : {"EP", "MD", "CG", "Swim", "Apsi", "NPO-1T"}) {
    const sim::WorkloadSpec workload = workloads::ByName(name);
    const WorkloadDescription desc = pipeline.Profile(workload);
    const Predictor predictor = pipeline.MakePredictor(desc);
    const std::optional<RankedPlacement> cheapest =
        FindCheapestPlacement(predictor, target);
    if (!cheapest.has_value()) {
      table.AddRow({name, "-", "-", "-", "-", "-"});
      continue;
    }
    const double measured = pipeline.machine()
                                .RunOne(workload, cheapest->placement)
                                .jobs[0]
                                .completion_time;
    table.AddRow({name, StrFormat("%d", cheapest->placement.TotalThreads()),
                  StrFormat("%d", cheapest->placement.NumActiveSockets()),
                  StrFormat("%d", machine_threads - cheapest->placement.TotalThreads()),
                  StrFormat("%.1fx", cheapest->prediction.speedup),
                  StrFormat("%.1fx", desc.t1 / measured)});
  }
  table.Print();

  std::printf("\nWorkloads with poor scaling keep almost all of their performance "
              "on a fraction of the machine — Pandia quantifies how much can be "
              "reclaimed (§1: \"limiting a workload to a small number of cores "
              "when its scaling is poor\").\n");
  return 0;
}
