// Placement advisor: the paper's motivating database scenario (§1, §6).
//
// A main-memory database wants to run a join operator but must decide how
// many threads to use, whether to span both sockets, and whether to use SMT
// siblings. This example profiles each join operator once (six runs) and
// then lets Pandia answer those questions from the model alone — no
// placement search on the real machine.
//
// Run: build/examples/placement_advisor [machine]
#include <cstdio>
#include <string>

#include "src/eval/pipeline.h"
#include "src/predictor/optimizer.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

namespace {

using namespace pandia;

// Classifies what the chosen placement says about the three §1 decisions.
std::string SocketAdvice(const Placement& placement) {
  return placement.NumActiveSockets() > 1 ? "use both sockets" : "stay on one socket";
}

std::string SmtAdvice(const Placement& placement) {
  const std::vector<SocketLoad> loads = placement.SocketLoads();
  int doubles = 0;
  for (const SocketLoad& load : loads) {
    doubles += load.doubles;
  }
  return doubles > 0 ? "use SMT siblings" : "one thread per core";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string machine_name = argc > 1 ? argv[1] : "x5-2";
  std::printf("== Placement advisor for the join operators on %s ==\n\n",
              machine_name.c_str());
  const eval::Pipeline pipeline(machine_name);

  Table table({"operator", "threads", "sockets", "smt", "pred speedup", "measured"});
  for (const char* name : {"NPO", "PRH", "PRHO", "PRO", "Sort-Join"}) {
    const sim::WorkloadSpec workload = workloads::ByName(name);
    const WorkloadDescription desc = pipeline.Profile(workload);
    const Predictor predictor = pipeline.MakePredictor(desc);
    const RankedPlacement best = FindBestPlacement(predictor);
    const double measured =
        pipeline.machine().RunOne(workload, best.placement).jobs[0].completion_time;
    table.AddRow({name, StrFormat("%d", best.placement.TotalThreads()),
                  SocketAdvice(best.placement), SmtAdvice(best.placement),
                  StrFormat("%.1fx", best.prediction.speedup),
                  StrFormat("%.1fx over t1", desc.t1 / measured)});
  }
  table.Print();

  std::printf("\nEach recommendation comes from six profiling runs plus model "
              "evaluation; an exhaustive search would need thousands of timed "
              "runs per operator (the paper spent 153 machine-days on the "
              "X5-2's placement space).\n");
  return 0;
}
