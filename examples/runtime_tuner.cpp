// Runtime tuner: the §8 integration scenario — a parallel-loop runtime
// that generates the workload description *during* execution and then
// switches to Pandia's recommended placement.
//
// The loop runs in epochs. The first epochs double as profiling probes
// (1 thread, a few threads, a cross-socket split, an SMT-packed epoch);
// from then on the runtime asks Pandia for the best placement and runs the
// remaining epochs there. Total loop time is compared against running
// every epoch at the OS-default placement (all threads, packed).
//
// Run: build/examples/runtime_tuner [machine] [workload] [epochs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/eval/pipeline.h"
#include "src/predictor/optimizer.h"
#include "src/workload_desc/online_profiler.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace pandia;
  const std::string machine_name = argc > 1 ? argv[1] : "x3-2";
  const std::string workload_name = argc > 2 ? argv[2] : "Art";
  const int total_epochs = argc > 3 ? std::atoi(argv[3]) : 300;

  std::printf("== Runtime tuner: %s on %s, %d loop epochs ==\n\n",
              workload_name.c_str(), machine_name.c_str(), total_epochs);
  const eval::Pipeline pipeline(machine_name);
  const sim::Machine& machine = pipeline.machine();
  const MachineTopology& topo = machine.topology();
  const sim::WorkloadSpec workload = workloads::ByName(workload_name);

  auto epoch_time = [&](const Placement& placement) {
    return machine.RunOne(workload, placement).jobs[0].completion_time;
  };
  const Placement os_default = Placement::TwoPerCore(topo, topo.NumHwThreads());

  // --- tuned runtime: probe epochs feed the online profiler ---
  OnlineProfiler profiler(pipeline.description(), workload.name,
                          workload.memory_policy);
  // The profiler suggests each probe (§4 step order, contention-free rules).
  double tuned_total = 0.0;
  int epoch = 0;
  while (!profiler.Complete() && epoch < 8) {
    const std::optional<Placement> probe = profiler.SuggestNextProbe();
    if (!probe.has_value()) {
      break;
    }
    tuned_total += epoch_time(*probe);
    profiler.ObserveRun(machine, workload, *probe);
    ++epoch;
  }
  std::printf("after %d probe epochs: description %s (p=%.4f o_s=%.4f b=%.2f)\n",
              epoch, profiler.Complete() ? "complete" : "partial",
              profiler.description().parallel_fraction,
              profiler.description().inter_socket_overhead,
              profiler.description().burstiness);

  const Predictor predictor(pipeline.description(), profiler.description());
  const RankedPlacement best = FindBestPlacement(predictor);
  std::printf("switching to %s (predicted speedup %.1fx)\n\n",
              best.placement.ToString().c_str(), best.prediction.speedup);
  const double steady = epoch_time(best.placement);
  tuned_total += steady * (total_epochs - epoch);

  // --- baseline: every epoch at the OS default placement ---
  const double default_total = epoch_time(os_default) * total_epochs;
  // --- oracle: every epoch at the measured-best placement (for reference) ---
  double oracle_epoch = default_total / total_epochs;
  for (int n = 2; n <= topo.NumHwThreads(); n += 2) {
    oracle_epoch = std::min(oracle_epoch, epoch_time(Placement::OnePerCore(
                                              topo, std::min(n, topo.NumCores()))));
    oracle_epoch = std::min(oracle_epoch, epoch_time(Placement::TwoPerCore(topo, n)));
  }

  std::printf("loop time, %d epochs:\n", total_epochs);
  std::printf("  OS default (pack all threads): %8.1f\n", default_total);
  std::printf("  runtime-tuned (probe + switch): %7.1f  (%.0f%% of default)\n",
              tuned_total, 100.0 * tuned_total / default_total);
  std::printf("  sweep oracle (per-epoch best):  %7.1f\n",
              oracle_epoch * total_epochs);

  // Probe epochs are an investment; report when it pays off.
  const double default_epoch = default_total / total_epochs;
  const double probe_cost = tuned_total - steady * (total_epochs - epoch);
  if (default_epoch > steady + 1e-9) {
    const double break_even = (probe_cost - epoch * default_epoch) /
                              (default_epoch - steady);
    std::printf("  break-even after ~%.0f epochs (loop iterations keep paying "
                "back after that)\n", break_even + epoch);
  } else {
    std::printf("  the OS default is already optimal for this workload; tuning "
                "cannot pay back its probes\n");
  }
  return 0;
}
