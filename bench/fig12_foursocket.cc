// Figure 12: mean prediction errors on the 4-socket Westmere X2-4, split
// into three placement classes: at most two active sockets, at most 20
// cores (over any sockets), and the whole machine. Sort-Join is omitted
// (its AVX kernels do not run on Westmere, §6.2). Paper: errors in the
// 2-socket class exceed the newer machines' (no adaptive caches), but
// spreading over more sockets adds little extra error.
#include "bench/common.h"

#include "src/util/stats.h"

int main() {
  using namespace pandia;
  std::printf("=== Figure 12: mean errors on the 4-socket X2-4 ===\n\n");
  const eval::Pipeline pipeline("x2-4");
  struct Class {
    const char* name;
    std::function<bool(const Placement&)> filter;
  };
  const Class classes[] = {
      {"2 socket", eval::AtMostTwoSockets},
      {"20 core", eval::AtMostTwentyCores},
      {"whole machine", nullptr},
  };
  Table table({"workload", "2 socket", "20 core", "whole machine"});
  std::vector<std::vector<double>> class_means(3);
  for (const sim::WorkloadSpec& workload : workloads::EvaluationSuite()) {
    if (workload.name == "Sort-Join") {
      continue;  // AVX workload: not runnable on Westmere (§6.2)
    }
    const WorkloadDescription desc = pipeline.Profile(workload);
    const Predictor predictor = pipeline.MakePredictor(desc);
    std::vector<std::string> row{workload.name};
    for (int c = 0; c < 3; ++c) {
      eval::SweepOptions options =
          bench::PaperSweepOptions(pipeline.machine().topology());
      options.filter = classes[c].filter;
      options.seed = 42 + c;
      const eval::SweepResult result =
          eval::RunSweep(pipeline.machine(), predictor, workload, options);
      row.push_back(StrFormat("%.1f", result.error_mean));
      class_means[c].push_back(result.error_mean);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nmean across workloads: 2-socket %.1f%%, 20-core %.1f%%, whole "
              "machine %.1f%%\n",
              Mean(class_means[0]), Mean(class_means[1]), Mean(class_means[2]));
  std::printf("paper reference: larger errors than the adaptive-cache 2-socket "
              "machines in the 2-socket class, but generally no additional error "
              "from spreading over more sockets.\n");
  return 0;
}
