// Figure 11c/d: portability of workload descriptions between machines.
// (c) X3-2 workload descriptions driving predictions on the X5-2;
// (d) X5-2 workload descriptions driving predictions on the X3-2.
// Paper: relative errors increase (individual workloads blow up to ~100%),
// but the results remain useful.
#include "bench/common.h"

#include "src/util/stats.h"

namespace {

void RunDirection(const char* desc_machine, const char* run_machine,
                  const char* label) {
  using namespace pandia;
  std::printf("=== Figure 11%s: %s workload descriptions on the %s ===\n", label,
              desc_machine, run_machine);
  const eval::Pipeline source(desc_machine);
  const eval::Pipeline target(run_machine);
  const eval::SweepOptions options =
      bench::PaperSweepOptions(target.machine().topology());
  Table table({"workload", "mean%", "median%", "offset mean%", "offset median%"});
  std::vector<double> medians;
  for (const sim::WorkloadSpec& workload : workloads::EvaluationSuite()) {
    // Profiled on the source machine, predicted and measured on the target.
    const WorkloadDescription desc = source.Profile(workload);
    const Predictor predictor = target.MakePredictor(desc);
    const eval::SweepResult result =
        eval::RunSweep(target.machine(), predictor, workload, options);
    table.AddRow({workload.name, StrFormat("%.1f", result.error_mean),
                  StrFormat("%.1f", result.error_median),
                  StrFormat("%.1f", result.offset_error_mean),
                  StrFormat("%.1f", result.offset_error_median)});
    medians.push_back(result.error_median);
  }
  table.Print();
  std::printf("across workloads: median error %.1f%%\n\n", Median(medians));
}

}  // namespace

int main() {
  RunDirection("x3-2", "x5-2", "c");
  RunDirection("x5-2", "x3-2", "d");
  std::printf("paper reference: errors grow (worst cases ~80-110%% on single "
              "workloads) but predictions remain usable, especially from the "
              "larger to the smaller machine.\n");
  return 0;
}
