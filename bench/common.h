// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports;
// sampling density can be adjusted via environment variables:
//
//   PANDIA_SAMPLES      placements per workload on machines too large to
//                       enumerate (default 3600 on the X5-2, ~20% of the
//                       canonical space — the paper's coverage)
//   PANDIA_CSV          when set to 1, figure benches also emit CSV series
#ifndef PANDIA_BENCH_COMMON_H_
#define PANDIA_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

namespace pandia {
namespace bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline bool CsvRequested() { return EnvInt("PANDIA_CSV", 0) != 0; }

// Sweep options mirroring the paper's coverage for a machine: exhaustive on
// the 2-socket 8-core parts (1034 placements), sampled at ~20% on the X5-2,
// sampled per class on the X2-4.
inline eval::SweepOptions PaperSweepOptions(const MachineTopology& topo) {
  eval::SweepOptions options;
  options.exhaustive_limit = 2000;
  options.sample_count =
      static_cast<size_t>(EnvInt("PANDIA_SAMPLES", topo.num_sockets > 2 ? 2000 : 3600));
  return options;
}

// Prints a Figure-1-style series: placement index (paper order) against
// normalized measured and predicted performance.
inline void PrintSeries(const eval::SweepResult& result, size_t max_rows = 12) {
  std::printf("# %s on %s: %zu placements, error mean %.1f%% median %.1f%%, "
              "offset %.1f%%/%.1f%%, best-placement gap %.2f%%\n",
              result.workload.c_str(), result.machine.c_str(),
              result.placements.size(), result.error_mean, result.error_median,
              result.offset_error_mean, result.offset_error_median,
              result.best_placement_gap_pct);
  if (CsvRequested()) {
    std::printf("placement,measured_norm,predicted_norm\n");
    for (size_t i = 0; i < result.placements.size(); ++i) {
      std::printf("%zu,%.4f,%.4f\n", i, result.placements[i].measured_norm,
                  result.placements[i].predicted_norm);
    }
    return;
  }
  // Condensed preview: evenly spaced rows across the series.
  Table table({"idx", "placement", "measured", "predicted"});
  const size_t step = std::max<size_t>(1, result.placements.size() / max_rows);
  for (size_t i = 0; i < result.placements.size(); i += step) {
    const eval::PlacementResult& pr = result.placements[i];
    table.AddRow({StrFormat("%zu", i), pr.placement.ToString(),
                  StrFormat("%.3f", pr.measured_norm),
                  StrFormat("%.3f", pr.predicted_norm)});
  }
  table.Print();
}

}  // namespace bench
}  // namespace pandia

#endif  // PANDIA_BENCH_COMMON_H_
