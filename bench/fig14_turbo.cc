// Figure 14: the effect of Turbo Boost on the instruction rate of a simple
// CPU-bound loop on the 2-socket X5-2, for 1..72 threads (1-36: one thread
// per core; 37-72: two threads per core), in three configurations:
//   * Turbo Boost enabled, no background load,
//   * Turbo Boost enabled, CPU-bound background load on idle cores,
//   * Turbo Boost disabled.
// Paper: turbo-enabled starts higher and converges toward the background-
// loaded line as cores fill; turbo-disabled is strictly lower even when all
// threads are active.
#include "bench/common.h"

#include "src/counters/counters.h"
#include "src/sim/machine_spec.h"
#include "src/stress/stress.h"

namespace {

// Total instruction rate of n CPU-stressor threads (compact SMT-last
// placement, as in the figure's x-axis).
double InstructionRate(const pandia::sim::Machine& machine, int n, bool background) {
  using namespace pandia;
  const MachineTopology& topo = machine.topology();
  // 1..cores: one per core; beyond: second SMT slots.
  Placement placement = [&] {
    if (n <= topo.NumCores()) {
      return Placement::OnePerCore(topo, n);
    }
    std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 1);
    for (int i = 0; i < n - topo.NumCores(); ++i) {
      per_core[i] = 2;
    }
    return Placement(topo, std::move(per_core));
  }();
  const sim::WorkloadSpec loop = stress::CpuStressor();
  const sim::WorkloadSpec filler = stress::BackgroundFiller();
  std::vector<sim::JobRequest> jobs{{&loop, placement, false}};
  std::optional<Placement> filler_placement;
  if (background) {
    filler_placement = stress::FillerPlacement(topo, std::span(&placement, 1));
    if (filler_placement.has_value()) {
      jobs.push_back(sim::JobRequest{&filler, *filler_placement, true});
    }
  }
  const sim::RunResult result = machine.Run(jobs);
  const CounterView view(machine, result, 0);
  return view.Instructions() / view.CompletionTime();
}

}  // namespace

int main() {
  using namespace pandia;
  std::printf("=== Figure 14: Turbo Boost and a CPU-bound loop on the X5-2 ===\n\n");
  const sim::Machine turbo_on{sim::MakeX5_2()};
  sim::MachineSpec disabled_spec = sim::MakeX5_2();
  disabled_spec.turbo_enabled = false;
  const sim::Machine turbo_off{disabled_spec};

  Table table({"threads", "turbo, idle", "turbo, background", "turbo disabled"});
  const int total = turbo_on.topology().NumHwThreads();
  for (int n = 1; n <= total; n += (n < 8 ? 1 : 4)) {
    table.AddRow({StrFormat("%d", n),
                  StrFormat("%.1f", InstructionRate(turbo_on, n, false)),
                  StrFormat("%.1f", InstructionRate(turbo_on, n, true)),
                  StrFormat("%.1f", InstructionRate(turbo_off, n, false))});
  }
  table.Print();
  std::printf("\npaper reference: with turbo and idle cores the rate per thread "
              "starts high and falls toward the all-core bin; filling idle cores "
              "with background load removes the effect; disabling turbo is "
              "strictly slower (nominal 2.3GHz vs 2.8-3.6GHz boost bins).\n");
  return 0;
}
