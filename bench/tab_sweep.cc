// §6.3 "Simple pattern exploration": compare Pandia's six profiling runs
// against a simple sweep that times 1..N threads packed as close together
// as possible and spread as far apart as possible, then picks the best.
// Paper: the sweep costs 8.0x (X5-2) / 4.2x (X4-2) / 4.0x (X3-2) as much
// machine time as Pandia's profiling, finds the best placement for 21/22
// workloads on the X3-2 and 20/22 on the X4-2, but only 8/22 on the X5-2.
#include "bench/common.h"

#include "src/util/stats.h"

int main() {
  using namespace pandia;
  std::printf("=== Simple sweep baseline vs Pandia profiling (paper §6.3) ===\n\n");
  for (const char* machine_name : {"x5-2", "x4-2", "x3-2"}) {
    const eval::Pipeline pipeline(machine_name);
    const eval::SweepOptions options =
        bench::PaperSweepOptions(pipeline.machine().topology());
    Table table({"workload", "cost ratio", "sweep gap%", "pandia gap%", "sweep found best"});
    std::vector<double> ratios;
    int sweep_hits = 0;
    int pandia_hits = 0;
    const std::vector<sim::WorkloadSpec> suite = workloads::EvaluationSuite();
    // Profile the whole suite up front (fans out under PANDIA_JOBS); the
    // table loop below then consumes the descriptions in paper order.
    const std::vector<WorkloadDescription> descs = pipeline.ProfileAll(suite);
    for (size_t w = 0; w < suite.size(); ++w) {
      const sim::WorkloadSpec& workload = suite[w];
      const WorkloadDescription& desc = descs[w];
      const Predictor predictor = pipeline.MakePredictor(desc);
      const eval::SweepResult full =
          eval::RunSweep(pipeline.machine(), predictor, workload, options);
      const eval::SweepBaselineResult baseline =
          eval::RunSweepBaseline(pipeline.machine(), workload, desc, full);
      ratios.push_back(baseline.cost_ratio);
      sweep_hits += baseline.found_best ? 1 : 0;
      pandia_hits += baseline.pandia_best_gap_pct <= 1.0 ? 1 : 0;
      table.AddRow({workload.name, StrFormat("%.1fx", baseline.cost_ratio),
                    StrFormat("%.2f", baseline.sweep_best_gap_pct),
                    StrFormat("%.2f", baseline.pandia_best_gap_pct),
                    baseline.found_best ? "yes" : "no"});
    }
    std::printf("--- %s ---\n", machine_name);
    table.Print();
    std::printf("mean cost ratio %.1fx; sweep found the best placement for %d of "
                "%zu workloads; Pandia within 1%% for %d of %zu\n\n",
                Mean(ratios), sweep_hits, ratios.size(), pandia_hits, ratios.size());
  }
  std::printf("paper reference: cost ratios 8.0x / 4.2x / 4.0x; sweep hits "
              "8/22 on the X5-2, 20/22 on the X4-2, 21/22 on the X3-2.\n");
  return 0;
}
