// Figure 13: Pandia at the edges of its assumptions (§6.3).
//   (a) a single-threaded version of the NPO join — Pandia detects the
//       absence of scaling and the cost of spreading the data;
//   (b) equake on the X3-2 — the reduction step grows total work with the
//       thread count, but predictions stay close at small scale;
//   (c) equake on the X5-2 — at 36 cores the broken constant-work
//       assumption clearly separates prediction from measurement.
#include "bench/common.h"

#include "src/util/stats.h"

namespace {

void RunCase(const char* title, const char* machine_name,
             const pandia::sim::WorkloadSpec& workload, const char* note) {
  using namespace pandia;
  std::printf("--- %s ---\n", title);
  const eval::Pipeline pipeline(machine_name);
  const WorkloadDescription desc = pipeline.Profile(workload);
  const Predictor predictor = pipeline.MakePredictor(desc);
  const eval::SweepResult result =
      eval::RunSweep(pipeline.machine(), predictor, workload,
                     bench::PaperSweepOptions(pipeline.machine().topology()));
  bench::PrintSeries(result, 10);
  std::printf("profiled: p=%.3f o_s=%.4f l=%.2f b=%.2f\n", desc.parallel_fraction,
              desc.inter_socket_overhead, desc.load_balance, desc.burstiness);
  std::printf("%s\n\n", note);
}

}  // namespace

int main() {
  using namespace pandia;
  std::printf("=== Figure 13: workloads outside Pandia's assumptions ===\n\n");
  RunCase("(a) single-threaded NPO on the X3-2", "x3-2",
          workloads::NpoSingleThreaded(),
          "paper: Pandia detects the absence of scaling and the impact of "
          "memory placement when multi-socket placements spread the data.");
  RunCase("(b) Equake on the X3-2", "x3-2", workloads::Equake(),
          "paper: predictions remain good while the thread count stays small.");
  RunCase("(c) Equake on the X5-2", "x5-2", workloads::Equake(),
          "paper: with 36 cores the violated constant-work assumption makes "
          "the model visibly optimistic.");
  RunCase("(d) BT with a 64-iteration parallel loop on the X5-2 (§6.4)", "x5-2",
          workloads::BtSmall(),
          "paper (§6.4): with only 64 indivisible iterations, performance "
          "plateaus between 32 and 64 threads; the model's assumption of "
          "fine-grained parallelism cannot see the plateau.");
  return 0;
}
