// §6.1 headline numbers: the performance difference between the fastest
// predicted placement and the fastest measured placement, per machine —
// paper: mean 2.8% / 0.29% / 0.77% and median 1.05% / 0.00% / 0.00% for the
// X5-2 / X4-2 / X3-2. Also reports how often the fastest placement uses
// fewer than the maximum number of threads (paper: 81% of workloads on the
// X5-2, 9% on the X4-2; Sort-Join peaks at 32 of 72 threads).
#include "bench/common.h"

#include "src/util/stats.h"

int main() {
  using namespace pandia;
  std::printf("=== Best-placement accuracy per machine (paper §6.1) ===\n\n");
  for (const char* machine_name : {"x5-2", "x4-2", "x3-2"}) {
    const eval::Pipeline pipeline(machine_name);
    const eval::SweepOptions options =
        bench::PaperSweepOptions(pipeline.machine().topology());
    std::vector<double> gaps;
    int below_max_threads = 0;
    int full_machine_competitive = 0;
    Table table({"workload", "gap%", "best placement (measured)", "threads"});
    const std::vector<sim::WorkloadSpec> suite = workloads::EvaluationSuite();
    // Profile the whole suite up front (fans out under PANDIA_JOBS); the
    // table loop below then consumes the descriptions in paper order.
    const std::vector<WorkloadDescription> descs = pipeline.ProfileAll(suite);
    for (size_t w = 0; w < suite.size(); ++w) {
      const sim::WorkloadSpec& workload = suite[w];
      const WorkloadDescription& desc = descs[w];
      const Predictor predictor = pipeline.MakePredictor(desc);
      const eval::SweepResult result =
          eval::RunSweep(pipeline.machine(), predictor, workload, options);
      gaps.push_back(result.best_placement_gap_pct);
      below_max_threads += result.best_uses_all_threads ? 0 : 1;
      full_machine_competitive += result.full_machine_within_one_pct ? 1 : 0;
      const Placement& best = result.placements[result.best_measured_index].placement;
      table.AddRow({workload.name, StrFormat("%.2f", result.best_placement_gap_pct),
                    best.ToString(), StrFormat("%d", best.TotalThreads())});
    }
    std::printf("--- %s ---\n", machine_name);
    table.Print();
    std::printf("gap between fastest predicted and fastest measured: mean %.2f%%, "
                "median %.2f%%\n",
                Mean(gaps), Median(gaps));
    std::printf("workloads whose best placement uses fewer than the maximum "
                "threads: %d of %zu (%.0f%%); full machine within 1%% of the "
                "best for %d of %zu (%.0f%%)\n\n",
                below_max_threads, gaps.size(),
                100.0 * below_max_threads / gaps.size(), full_machine_competitive,
                gaps.size(), 100.0 * full_machine_competitive / gaps.size());
  }
  std::printf("paper reference: mean 2.8%% / 0.29%% / 0.77%%, median 1.05%% / "
              "0.00%% / 0.00%% (X5-2 / X4-2 / X3-2); 81%% of X5-2 workloads "
              "peak below the maximum thread count vs 9%% on the X4-2.\n");
  return 0;
}
