// Extension experiment (paper §8 future work): rack-scale scheduling of a
// job stream over multiple machines. Three assignment policies are
// compared by predicted and simulator-validated aggregate speedup; the
// validation runs every assigned job on its machine with its co-residents
// executing continuously in the background.
#include <map>

#include "bench/common.h"

#include "src/rack/rack.h"

namespace {

using namespace pandia;

// Measured speedup (t1 / co-run time) of one assigned job, with its
// co-residents running in the background. Jobs on one machine occupy
// disjoint cores, so placements identify residents.
double MeasureAssignment(const std::map<std::string, const eval::Pipeline*>& pipelines,
                         const rack::RackScheduler& scheduler,
                         const rack::Assignment& assignment,
                         const std::string& workload_name,
                         const rack::JobRequest& job) {
  const rack::RackMachine& machine = scheduler.machines()[assignment.machine_index];
  const std::string& type = machine.description.topo.name;
  const eval::Pipeline& pipeline = *pipelines.at(type);
  const sim::WorkloadSpec spec = workloads::ByName(workload_name);
  std::vector<sim::WorkloadSpec> co_specs;
  std::vector<sim::JobRequest> jobs{{&spec, *assignment.placement, false}};
  const auto& residents = scheduler.ResidentsOf(assignment.machine_index);
  co_specs.reserve(residents.size());
  for (const auto& resident : residents) {
    if (resident.placement == *assignment.placement) {
      continue;  // the job itself
    }
    co_specs.push_back(workloads::ByName(resident.description.workload));
  }
  size_t spec_index = 0;
  for (const auto& resident : residents) {
    if (resident.placement == *assignment.placement) {
      continue;
    }
    jobs.push_back(sim::JobRequest{&co_specs[spec_index++], resident.placement,
                                   /*background=*/true});
  }
  const double time = pipeline.machine().Run(jobs).jobs[0].completion_time;
  return job.descriptions.at(type).t1 / time;
}

}  // namespace

int main() {
  using namespace pandia;
  std::printf("=== Extension: rack-scale scheduling (2x X3-2 + 1x X5-2) ===\n\n");
  const eval::Pipeline x3("x3-2");
  const eval::Pipeline x5("x5-2");
  const std::map<std::string, const eval::Pipeline*> pipelines{{"x3-2", &x3},
                                                               {"x5-2", &x5}};

  // The incoming job stream: a mix of compute, bandwidth, and join jobs.
  struct Incoming {
    const char* workload;
    int threads;
  };
  const Incoming stream[] = {{"Swim", 16}, {"EP", 16},    {"CG", 8},  {"MD", 24},
                             {"NPO", 8},   {"Bwaves", 8}, {"IS", 8},  {"Apsi", 8}};
  std::vector<rack::JobRequest> jobs;
  for (const Incoming& incoming : stream) {
    rack::JobRequest job;
    job.name = incoming.workload;
    job.requested_threads = incoming.threads;
    job.descriptions.emplace("x3-2", x3.Profile(workloads::ByName(incoming.workload)));
    job.descriptions.emplace("x5-2", x5.Profile(workloads::ByName(incoming.workload)));
    jobs.push_back(std::move(job));
  }

  Table table({"policy", "placed", "predicted speedup (sum)", "measured speedup (sum)"});
  for (const rack::Policy policy :
       {rack::Policy::kFirstFit, rack::Policy::kBestSpeedup,
        rack::Policy::kLeastInterference}) {
    rack::RackScheduler scheduler({{"node0", x3.description()},
                                   {"node1", x3.description()},
                                   {"node2", x5.description()}});
    const std::vector<rack::Assignment> assignments = scheduler.Schedule(jobs, policy);
    int placed = 0;
    double predicted = 0.0;
    double measured = 0.0;
    for (size_t i = 0; i < assignments.size(); ++i) {
      if (assignments[i].machine_index < 0) {
        continue;
      }
      ++placed;
      predicted += assignments[i].predicted_speedup;
      measured +=
          MeasureAssignment(pipelines, scheduler, assignments[i], jobs[i].name, jobs[i]);
    }
    table.AddRow({rack::PolicyName(policy), StrFormat("%d/%zu", placed, jobs.size()),
                  StrFormat("%.1f", predicted), StrFormat("%.1f", measured)});
  }
  table.Print();
  std::printf("\ninterference-aware policies should place every job and beat "
              "first-fit on aggregate speedup; the measured column validates the "
              "decisions against simulated co-runs.\n");
  return 0;
}
