// Figure 10: measured vs predicted performance series for all 22 evaluation
// workloads on the X5-2 (MD appears separately in Figure 1). One condensed
// series per workload; set PANDIA_CSV=1 for the full plottable series.
#include "bench/common.h"

int main() {
  using namespace pandia;
  std::printf("=== Figure 10: all workloads on the X5-2, measured vs predicted ===\n");
  const eval::Pipeline pipeline("x5-2");
  const eval::SweepOptions options =
      bench::PaperSweepOptions(pipeline.machine().topology());
  for (const sim::WorkloadSpec& workload : workloads::EvaluationSuite()) {
    const WorkloadDescription desc = pipeline.Profile(workload);
    const Predictor predictor = pipeline.MakePredictor(desc);
    const eval::SweepResult result =
        eval::RunSweep(pipeline.machine(), predictor, workload, options);
    std::printf("\n");
    pandia::bench::PrintSeries(result, 8);
  }
  return 0;
}
