// Extension experiment (paper §8 future work): co-scheduling two workloads
// on one machine. For every pair of a small workload set, predict each
// job's slowdown when sharing the X3-2 (one job per socket... and packed
// onto shared sockets), and validate against simulated co-runs.
#include <cmath>
#include <map>

#include "bench/common.h"

#include "src/predictor/co_schedule.h"
#include "src/util/stats.h"

int main() {
  using namespace pandia;
  std::printf("=== Extension: co-scheduling interference prediction (X3-2) ===\n\n");
  const eval::Pipeline pipeline("x3-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const CoSchedulePredictor engine(pipeline.description());

  const std::vector<std::string> names{"EP", "MD", "CG", "Swim", "IS", "NPO"};
  std::map<std::string, WorkloadDescription> descs;
  for (const std::string& name : names) {
    descs.emplace(name, pipeline.Profile(workloads::ByName(name)));
  }

  // Job A packed two-per-core on cores 0-3 of socket 0, job B on cores 4-7
  // — eight threads each, fighting for socket 0's caches and memory channel.
  const Placement a_place(topo, {2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  const Placement b_place(topo, {0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0});

  Table table({"job A", "job B", "pred A slowdown", "meas A slowdown", "error%"});
  std::vector<double> errors;
  for (const std::string& a : names) {
    for (const std::string& b : names) {
      const WorkloadDescription& da = descs.at(a);
      const WorkloadDescription& db = descs.at(b);
      const std::vector<CoScheduleRequest> requests{{&da, a_place}, {&db, b_place}};
      const double predicted_time = engine.Predict(requests).jobs[0].time;
      const Predictor solo = pipeline.MakePredictor(da);
      const double predicted_slowdown = predicted_time / solo.Predict(a_place).time;

      const sim::WorkloadSpec a_spec = workloads::ByName(a);
      const sim::WorkloadSpec b_spec = workloads::ByName(b);
      const std::vector<sim::JobRequest> jobs{
          {&a_spec, a_place, /*background=*/false},
          {&b_spec, b_place, /*background=*/true},
      };
      const double co_time =
          pipeline.machine().Run(jobs).jobs[0].completion_time;
      const double alone =
          pipeline.machine().RunOne(a_spec, a_place).jobs[0].completion_time;
      const double measured_slowdown = co_time / alone;
      const double error =
          std::fabs(predicted_slowdown - measured_slowdown) / measured_slowdown * 100.0;
      errors.push_back(error);
      table.AddRow({a, b, StrFormat("%.2fx", predicted_slowdown),
                    StrFormat("%.2fx", measured_slowdown), StrFormat("%.1f", error)});
    }
  }
  table.Print();
  std::printf("\ninterference-prediction error: mean %.1f%%, median %.1f%%\n",
              Mean(errors), Median(errors));
  std::printf("(no paper reference: §8 sketches this as future work — \"we "
              "believe Pandia's prediction of resource consumption ... will let "
              "us handle cases with multiple workloads sharing a machine\")\n");
  return 0;
}
