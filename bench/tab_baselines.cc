// Baseline comparison (extension; paper §7): how much performance do the
// placement policies mainstream systems actually use leave behind, compared
// with Pandia's model-driven choice?
//
//   * "pack all"   — every hardware thread, SMT first (OS default affinity)
//   * "spread all" — one thread per core over all sockets, no SMT
//   * "half"       — one socket fully packed (naive partitioning)
//   * Pandia       — predicted-best placement from the six-run description
//
// Reported as measured performance lost versus the true best placement in
// the exhaustively measured space (X3-2).
#include "bench/common.h"

#include "src/eval/regression_baseline.h"
#include "src/util/stats.h"

int main() {
  using namespace pandia;
  std::printf("=== Placement policies vs Pandia (X3-2, gap to true best) ===\n\n");
  const eval::Pipeline pipeline("x3-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const eval::SweepOptions options = bench::PaperSweepOptions(topo);

  const Placement pack_all = Placement::TwoPerCore(topo, topo.NumHwThreads());
  const Placement spread_all = Placement::OnePerCore(topo, topo.NumCores());
  std::vector<SocketLoad> half_loads{{0, topo.cores_per_socket}, {0, 0}};
  const Placement half = Placement::FromSocketLoads(topo, half_loads);

  Table table({"workload", "pack all", "spread all", "one socket", "count-only", "pandia"});
  std::vector<double> gaps_pack, gaps_spread, gaps_half, gaps_reg, gaps_pandia;
  for (const sim::WorkloadSpec& workload : workloads::EvaluationSuite()) {
    const WorkloadDescription desc = pipeline.Profile(workload);
    const Predictor predictor = pipeline.MakePredictor(desc);
    const eval::SweepResult sweep =
        eval::RunSweep(pipeline.machine(), predictor, workload, options);
    const double best_perf =
        1.0 / sweep.placements[sweep.best_measured_index].measured_time;
    auto gap = [&](const Placement& placement) {
      const double time =
          pipeline.machine().RunOne(workload, placement).jobs[0].completion_time;
      return (best_perf - 1.0 / time) / best_perf * 100.0;
    };
    const double g_pack = gap(pack_all);
    const double g_spread = gap(spread_all);
    const double g_half = gap(half);
    // Count-only regression baseline (§7, ESTIMA-style): fit scaling from
    // low thread counts, pick the best count, pack it.
    const eval::RegressionBaseline regression(pipeline.machine(), workload);
    int best_n = 1;
    for (int n = 1; n <= topo.NumHwThreads(); ++n) {
      if (regression.PredictTime(n) < regression.PredictTime(best_n)) {
        best_n = n;
      }
    }
    const Placement regression_choice =
        best_n <= topo.NumCores() ? Placement::OnePerCore(topo, best_n)
                                  : Placement::TwoPerCore(topo, best_n);
    const double g_reg = gap(regression_choice);
    const double g_pandia = sweep.best_placement_gap_pct;
    gaps_pack.push_back(g_pack);
    gaps_spread.push_back(g_spread);
    gaps_half.push_back(g_half);
    gaps_reg.push_back(g_reg);
    gaps_pandia.push_back(g_pandia);
    table.AddRow({workload.name, StrFormat("%.1f", g_pack), StrFormat("%.1f", g_spread),
                  StrFormat("%.1f", g_half), StrFormat("%.1f", g_reg),
                  StrFormat("%.1f", g_pandia)});
  }
  table.Print();
  std::printf("\nmean gap: pack-all %.1f%%, spread-all %.1f%%, one-socket %.1f%%, "
              "count-only %.1f%%, pandia %.1f%%\n",
              Mean(gaps_pack), Mean(gaps_spread), Mean(gaps_half), Mean(gaps_reg),
              Mean(gaps_pandia));
  std::printf("median gap: pack-all %.1f%%, spread-all %.1f%%, one-socket %.1f%%, "
              "count-only %.1f%%, pandia %.1f%%\n",
              Median(gaps_pack), Median(gaps_spread), Median(gaps_half),
              Median(gaps_reg), Median(gaps_pandia));
  std::printf("\n(§7: mainstream OS heuristics 'always pack threads together, or "
              "always distribute threads onto different sockets' and never choose "
              "the thread count; Pandia does both.)\n");
  return 0;
}
