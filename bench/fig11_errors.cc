// Figure 11a/b: per-workload mean and median error and offset error of the
// predictions on the X5-2 (a) and X3-2 (b). Paper: median error 8.5% and
// median offset error 3.6% on the X5-2; 3.8% and 1.5% on the X3-2.
#include "bench/common.h"

#include "src/util/stats.h"

int main() {
  using namespace pandia;
  for (const char* machine_name : {"x5-2", "x3-2"}) {
    std::printf("=== Figure 11%s: prediction errors on the %s ===\n",
                std::string(machine_name) == "x5-2" ? "a" : "b", machine_name);
    const eval::Pipeline pipeline(machine_name);
    const eval::SweepOptions options =
        bench::PaperSweepOptions(pipeline.machine().topology());
    Table table({"workload", "mean%", "median%", "offset mean%", "offset median%"});
    std::vector<double> medians;
    std::vector<double> offset_medians;
    for (const sim::WorkloadSpec& workload : workloads::EvaluationSuite()) {
      const WorkloadDescription desc = pipeline.Profile(workload);
      const Predictor predictor = pipeline.MakePredictor(desc);
      const eval::SweepResult result =
          eval::RunSweep(pipeline.machine(), predictor, workload, options);
      table.AddRow({workload.name, StrFormat("%.1f", result.error_mean),
                    StrFormat("%.1f", result.error_median),
                    StrFormat("%.1f", result.offset_error_mean),
                    StrFormat("%.1f", result.offset_error_median)});
      medians.push_back(result.error_median);
      offset_medians.push_back(result.offset_error_median);
    }
    table.Print();
    std::printf("across workloads: median error %.1f%%, median offset error %.1f%%\n",
                Median(medians), Median(offset_medians));
    std::printf("paper reference: %s\n\n",
                std::string(machine_name) == "x5-2"
                    ? "median error 8.5%, median offset error 3.6%"
                    : "median error 3.8%, median offset error 1.5%");
  }
  return 0;
}
