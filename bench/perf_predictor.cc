// Performance of the pipeline itself (google-benchmark). The paper notes
// that "making predictions using Pandia takes a fraction of a second per
// placement" vs 153 machine-days of exhaustive testing on the X5-2; here we
// time single predictions, full placement-space optimization, profiling,
// and simulator runs.
//
// `perf_predictor --convergence-dump` skips the benchmarks and instead
// prints the solver's per-iteration convergence trace (src/obs) for a set of
// representative placements — the tool to reach for when a prediction
// oscillates or crawls toward the 1000-iteration ceiling.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "src/eval/pipeline.h"
#include "src/obs/prediction_trace.h"
#include "src/predictor/optimizer.h"
#include "src/topology/enumerate.h"
#include "src/workloads/workloads.h"

namespace {

using namespace pandia;

const eval::Pipeline& X5Pipeline() {
  static const eval::Pipeline pipeline("x5-2");
  return pipeline;
}

const Predictor& MdPredictor() {
  static const Predictor predictor = [] {
    const sim::WorkloadSpec workload = workloads::ByName("MD");
    return X5Pipeline().MakePredictor(X5Pipeline().Profile(workload));
  }();
  return predictor;
}

void BM_PredictOnePlacement(benchmark::State& state) {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const Placement placement =
      Placement::OnePerCore(topo, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MdPredictor().Predict(placement));
  }
}
BENCHMARK(BM_PredictOnePlacement)->Arg(1)->Arg(18)->Arg(36);

void BM_PredictPackedFullMachine(benchmark::State& state) {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const Placement placement = Placement::TwoPerCore(topo, topo.NumHwThreads());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MdPredictor().Predict(placement));
  }
}
BENCHMARK(BM_PredictPackedFullMachine);

void BM_FindBestPlacementSampled(benchmark::State& state) {
  OptimizerOptions options;
  options.exhaustive_limit = 1;  // force sampling
  options.sample_count = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindBestPlacement(MdPredictor(), options));
  }
}
BENCHMARK(BM_FindBestPlacementSampled)->Arg(100)->Arg(1000);

void BM_SimulatorRun(benchmark::State& state) {
  const sim::WorkloadSpec workload = workloads::ByName("CG");
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const Placement placement =
      Placement::TwoPerCore(topo, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(X5Pipeline().machine().RunOne(workload, placement));
  }
}
BENCHMARK(BM_SimulatorRun)->Arg(4)->Arg(36)->Arg(72);

void BM_ProfileWorkload(benchmark::State& state) {
  const sim::WorkloadSpec workload = workloads::ByName("CG");
  for (auto _ : state) {
    benchmark::DoNotOptimize(X5Pipeline().Profile(workload));
  }
}
BENCHMARK(BM_ProfileWorkload);

void BM_EnumerateCanonicalPlacements(benchmark::State& state) {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateCanonicalPlacements(topo));
  }
}
BENCHMARK(BM_EnumerateCanonicalPlacements);

// Per-iteration convergence dump: slowdown spread, worst delta, modal
// bottleneck, and dampening state for each solver iteration.
int ConvergenceDump() {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const struct {
    const char* workload;
    Placement placement;
  } cases[] = {
      {"MD", Placement::OnePerCore(topo, topo.NumCores())},
      {"MD", Placement::TwoPerCore(topo, topo.NumHwThreads())},
      {"CG", Placement::TwoPerCore(topo, topo.NumHwThreads())},
      {"FT", Placement::OnePerCore(topo, topo.NumCores() / 2)},
  };
  for (const auto& c : cases) {
    obs::PredictionTrace trace;
    PredictionOptions options;
    options.trace = &trace;
    const Predictor predictor = X5Pipeline().MakePredictor(
        X5Pipeline().Profile(workloads::ByName(c.workload)), options);
    const Prediction prediction = predictor.Predict(c.placement);
    std::printf("%s on x5-2, placement %s: speedup %.2f\n", c.workload,
                c.placement.ToString().c_str(), prediction.speedup);
    std::fputs(trace.Summary().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--convergence-dump") == 0) {
      return ConvergenceDump();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
