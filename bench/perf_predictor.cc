// Performance of the pipeline itself (google-benchmark). The paper notes
// that "making predictions using Pandia takes a fraction of a second per
// placement" vs 153 machine-days of exhaustive testing on the X5-2; here we
// time single predictions, full placement-space optimization, profiling,
// and simulator runs.
//
// `perf_predictor --convergence-dump` skips the benchmarks and instead
// prints the solver's per-iteration convergence trace (src/obs) for a set of
// representative placements — the tool to reach for when a prediction
// oscillates or crawls toward the 1000-iteration ceiling.
//
// `perf_predictor --parallel [--jobs=N]` skips the benchmarks and measures
// the parallel placement search: it ranks a fixed sampled candidate set
// serially, then with N workers (default: all hardware threads), verifies
// the rankings are identical, and reports predictions/sec for both plus a
// cache-warm pass. Exits non-zero if the parallel ranking ever diverges
// from the serial one.
//
// `perf_predictor --telemetry-overhead` measures the cost of a suppressed
// obs::EventLog call (the disabled fast path is documented as one relaxed
// atomic load) and exits non-zero if it exceeds a generous noise budget.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

#include "src/eval/pipeline.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/prediction_trace.h"
#include "src/predictor/optimizer.h"
#include "src/predictor/prediction_cache.h"
#include "src/topology/enumerate.h"
#include "src/util/parallel.h"
#include "src/workloads/workloads.h"

namespace {

using namespace pandia;

const eval::Pipeline& X5Pipeline() {
  static const eval::Pipeline pipeline("x5-2");
  return pipeline;
}

const Predictor& MdPredictor() {
  static const Predictor predictor = [] {
    const sim::WorkloadSpec workload = workloads::ByName("MD");
    return X5Pipeline().MakePredictor(X5Pipeline().Profile(workload));
  }();
  return predictor;
}

void BM_PredictOnePlacement(benchmark::State& state) {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const Placement placement =
      Placement::OnePerCore(topo, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MdPredictor().Predict(placement));
  }
}
BENCHMARK(BM_PredictOnePlacement)->Arg(1)->Arg(18)->Arg(36);

void BM_PredictPackedFullMachine(benchmark::State& state) {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const Placement placement = Placement::TwoPerCore(topo, topo.NumHwThreads());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MdPredictor().Predict(placement));
  }
}
BENCHMARK(BM_PredictPackedFullMachine);

void BM_FindBestPlacementSampled(benchmark::State& state) {
  OptimizerOptions options;
  options.exhaustive_limit = 1;  // force sampling
  options.sample_count = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindBestPlacement(MdPredictor(), options));
  }
}
BENCHMARK(BM_FindBestPlacementSampled)->Arg(100)->Arg(1000);

void BM_SimulatorRun(benchmark::State& state) {
  const sim::WorkloadSpec workload = workloads::ByName("CG");
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const Placement placement =
      Placement::TwoPerCore(topo, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(X5Pipeline().machine().RunOne(workload, placement));
  }
}
BENCHMARK(BM_SimulatorRun)->Arg(4)->Arg(36)->Arg(72);

void BM_ProfileWorkload(benchmark::State& state) {
  const sim::WorkloadSpec workload = workloads::ByName("CG");
  for (auto _ : state) {
    benchmark::DoNotOptimize(X5Pipeline().Profile(workload));
  }
}
BENCHMARK(BM_ProfileWorkload);

void BM_EnumerateCanonicalPlacements(benchmark::State& state) {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateCanonicalPlacements(topo));
  }
}
BENCHMARK(BM_EnumerateCanonicalPlacements);

// Sibling-ranking benchmarks: score every canonical 18-thread placement on
// the x5-2, the shape of one optimizer ranking run. The warm variant chains
// a SolverWarmStart seed through the (same-thread-count) siblings — the
// incremental re-prediction path — while the cold variant solves each from
// the Amdahl initial state. One benchmark iteration = one full pass.
const std::vector<Placement>& SiblingPlacements() {
  static const std::vector<Placement> siblings = [] {
    const MachineTopology& topo = X5Pipeline().machine().topology();
    std::vector<Placement> all = EnumerateCanonicalPlacements(topo);
    std::erase_if(all, [&](const Placement& p) {
      return p.TotalThreads() != topo.cores_per_socket;
    });
    return all;
  }();
  return siblings;
}

void BM_PredictSiblingsCold(benchmark::State& state) {
  const std::vector<Placement>& siblings = SiblingPlacements();
  for (auto _ : state) {
    for (const Placement& placement : siblings) {
      benchmark::DoNotOptimize(MdPredictor().Predict(placement));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(siblings.size()));
}
BENCHMARK(BM_PredictSiblingsCold);

void BM_PredictSiblingsWarm(benchmark::State& state) {
  static const Predictor warm_predictor = [] {
    PredictionOptions options;
    options.warm_start = true;
    return X5Pipeline().MakePredictor(MdPredictor().workload(), options);
  }();
  const std::vector<Placement>& siblings = SiblingPlacements();
  SolverWarmStart warm;
  for (auto _ : state) {
    for (const Placement& placement : siblings) {
      benchmark::DoNotOptimize(warm_predictor.PredictWarm(placement, &warm));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(siblings.size()));
  state.counters["seeded"] =
      static_cast<double>(warm.seeded) / static_cast<double>(warm.seeded + warm.cold);
}
BENCHMARK(BM_PredictSiblingsWarm);

// --parallel: serial vs parallel RankPlacements throughput on a fixed
// sampled candidate set, with a ranking-equality check and a cache-warm
// pass. The candidate sample is seeded, so every run ranks the same set.
int ParallelComparison(int jobs) {
  using Clock = std::chrono::steady_clock;
  const size_t kTopK = 1u << 20;  // keep the full ranking for comparison
  OptimizerOptions options;
  options.exhaustive_limit = 1;  // force sampling
  options.sample_count = 2000;
  options.sample_seed = 1;

  auto rank = [&](int run_jobs, bool use_cache, double* seconds) {
    OptimizerOptions run = options;
    run.common.jobs = run_jobs;
    run.common.use_cache = use_cache;
    const Clock::time_point start = Clock::now();
    std::vector<RankedPlacement> ranked = RankPlacements(MdPredictor(), kTopK, run);
    *seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return ranked;
  };

  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    jobs = jobs > 0 ? jobs : 1;
  }
  PredictionCache::Global().Clear();
  double serial_s = 0.0, parallel_s = 0.0, cached_s = 0.0;
  const std::vector<RankedPlacement> serial = rank(1, false, &serial_s);
  const std::vector<RankedPlacement> parallel = rank(jobs, false, &parallel_s);

  if (serial.size() != parallel.size()) {
    std::fprintf(stderr, "FAIL: serial ranked %zu placements, parallel %zu\n",
                 serial.size(), parallel.size());
    return 1;
  }
  for (size_t i = 0; i < serial.size(); ++i) {
    if (!(serial[i].placement == parallel[i].placement) ||
        serial[i].prediction.speedup != parallel[i].prediction.speedup) {
      std::fprintf(stderr, "FAIL: rankings diverge at position %zu (%s vs %s)\n",
                   i, serial[i].placement.ToString().c_str(),
                   parallel[i].placement.ToString().c_str());
      return 1;
    }
  }

  // Cache-warm pass: populate the global cache once, then rank again — all
  // hits, so this bounds the search's best case for repeated queries.
  rank(jobs, true, &cached_s);
  const std::vector<RankedPlacement> cached = rank(jobs, true, &cached_s);
  if (cached.size() != serial.size()) {
    std::fprintf(stderr, "FAIL: cached ranking has %zu placements, serial %zu\n",
                 cached.size(), serial.size());
    return 1;
  }

  const double n = static_cast<double>(serial.size());
  std::printf("parallel placement search, %zu candidates (MD on x5-2):\n",
              serial.size());
  std::printf("  serial  (jobs=1):   %8.0f predictions/sec  (%.3fs)\n",
              n / serial_s, serial_s);
  std::printf("  parallel (jobs=%d): %8.0f predictions/sec  (%.3fs)  speedup %.2fx\n",
              jobs, n / parallel_s, parallel_s, serial_s / parallel_s);
  std::printf("  cache-warm (jobs=%d): %6.0f predictions/sec  (%.3fs)  speedup %.2fx\n",
              jobs, n / cached_s, cached_s, serial_s / cached_s);
  std::printf("  rankings identical: yes\n");
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (const auto& counter : snapshot.counters) {
    if (counter.name.rfind("prediction_cache.", 0) == 0 ||
        counter.name.rfind("parallel.", 0) == 0) {
      std::printf("  %s = %llu\n", counter.name.c_str(),
                  static_cast<unsigned long long>(counter.value));
    }
  }
  return 0;
}

// Per-iteration convergence dump: slowdown spread, worst delta, modal
// bottleneck, and dampening state for each solver iteration.
int ConvergenceDump() {
  const MachineTopology& topo = X5Pipeline().machine().topology();
  const struct {
    const char* workload;
    Placement placement;
  } cases[] = {
      {"MD", Placement::OnePerCore(topo, topo.NumCores())},
      {"MD", Placement::TwoPerCore(topo, topo.NumHwThreads())},
      {"CG", Placement::TwoPerCore(topo, topo.NumHwThreads())},
      {"FT", Placement::OnePerCore(topo, topo.NumCores() / 2)},
  };
  for (const auto& c : cases) {
    obs::PredictionTrace trace;
    PredictionOptions options;
    options.common.trace = &trace;
    const Predictor predictor = X5Pipeline().MakePredictor(
        X5Pipeline().Profile(workloads::ByName(c.workload)), options);
    const Prediction prediction = predictor.Predict(c.placement);
    std::printf("%s on x5-2, placement %s: speedup %.2f\n", c.workload,
                c.placement.ToString().c_str(), prediction.speedup);
    std::fputs(trace.Summary().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}

// --telemetry-overhead: the structured event log promises that an event
// below the minimum level costs one relaxed atomic load — cheap enough to
// leave call sites in hot paths unconditionally. Measure a tight loop with
// and without a suppressed Log() call and fail if the per-call overhead
// exceeds a generous noise budget.
int TelemetryOverhead() {
  using Clock = std::chrono::steady_clock;
  obs::EventLog log;
  log.SetMinLevel(obs::LogLevel::kError);  // Info events take the fast path
  constexpr int kIterations = 2000000;
  constexpr double kBudgetNsPerOp = 100.0;

  // Warm-up plus baseline: the loop body alone.
  uint64_t sink = 0;
  for (int i = 0; i < kIterations; ++i) {
    benchmark::DoNotOptimize(sink += static_cast<uint64_t>(i));
  }
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    benchmark::DoNotOptimize(sink += static_cast<uint64_t>(i));
  }
  const Clock::time_point t1 = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    benchmark::DoNotOptimize(sink += static_cast<uint64_t>(i));
    log.Log(obs::LogLevel::kInfo, "bench.telemetry", "suppressed");
  }
  const Clock::time_point t2 = Clock::now();

  const double baseline_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIterations;
  const double disabled_ns =
      std::chrono::duration<double, std::nano>(t2 - t1).count() / kIterations;
  const double overhead_ns =
      disabled_ns > baseline_ns ? disabled_ns - baseline_ns : 0.0;
  std::printf("disabled-telemetry overhead (%d iterations):\n", kIterations);
  std::printf("  loop baseline:       %7.2f ns/op\n", baseline_ns);
  std::printf("  with suppressed Log: %7.2f ns/op\n", disabled_ns);
  std::printf("  overhead:            %7.2f ns/op  (budget %.0f)\n",
              overhead_ns, kBudgetNsPerOp);
  if (overhead_ns > kBudgetNsPerOp) {
    std::fprintf(stderr,
                 "FAIL: suppressed event log call costs %.2f ns/op, over the "
                 "%.0f ns budget — the disabled path is no longer one "
                 "relaxed load\n",
                 overhead_ns, kBudgetNsPerOp);
    return 1;
  }
  return 0;
}

// Pins the benchmark thread to one CPU so timings do not absorb migrations
// and the recorded context names the core the numbers came from. Returns
// the pinned CPU, or -1 when pinning is unsupported or fails (non-Linux,
// restricted affinity mask).
int PinBenchThread() {
#ifdef __linux__
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
    return -1;
  }
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) {
      continue;
    }
    cpu_set_t pin;
    CPU_ZERO(&pin);
    CPU_SET(cpu, &pin);
    if (sched_setaffinity(0, sizeof(pin), &pin) == 0) {
      return cpu;
    }
  }
#endif
  return -1;
}

}  // namespace

#ifndef PANDIA_BUILD_TYPE
#define PANDIA_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  bool parallel = false;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--convergence-dump") == 0) {
      return ConvergenceDump();
    }
    if (std::strcmp(argv[i], "--telemetry-overhead") == 0) {
      return TelemetryOverhead();
    }
    if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  if (parallel) {
    return ParallelComparison(jobs);
  }
  // google-benchmark's own num_cpus comes from its CPU-info probe, which
  // reads 1 inside minimal containers; record the real hardware thread
  // count, the pinned CPU, and this binary's build type so baseline JSONs
  // are comparable (the regression checker keys on these).
  const int pinned_cpu = PinBenchThread();
  const unsigned hw_threads = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("pandia_hardware_threads",
                              std::to_string(hw_threads > 0 ? hw_threads : 1));
  benchmark::AddCustomContext(
      "pandia_pinned_cpu",
      pinned_cpu >= 0 ? std::to_string(pinned_cpu) : "unpinned");
  benchmark::AddCustomContext("pandia_build_type", PANDIA_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
