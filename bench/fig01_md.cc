// Figure 1: measured vs predicted performance for MD (molecular dynamics)
// over the thread placements of the 2-socket X5-2 (Haswell), normalized to
// the best performance achieved. The paper's headline picture: the
// prediction tracks the measured curve across the whole placement space.
#include "bench/common.h"

int main() {
  using namespace pandia;
  std::printf("=== Figure 1: MD on the X5-2, measured vs predicted ===\n\n");
  const eval::Pipeline pipeline("x5-2");
  const sim::WorkloadSpec workload = workloads::ByName("MD");
  const WorkloadDescription desc = pipeline.Profile(workload);
  const Predictor predictor = pipeline.MakePredictor(desc);
  const eval::SweepResult result =
      eval::RunSweep(pipeline.machine(), predictor, workload,
                     bench::PaperSweepOptions(pipeline.machine().topology()));
  bench::PrintSeries(result, 24);
  std::printf("\npaper reference (X5-2): predictions visually close; median error "
              "8.5%%, median offset error 3.6%% across all workloads.\n");
  return 0;
}
