// Bottleneck census (extension): which resource binds each workload, and
// where the binding resource *shifts* as the placement grows — the
// "comprehensive" claim of the title ("the points of contention for a
// workload can shift between resources as the degree of parallelism and
// thread placement changes", §1).
#include "bench/common.h"

#include "src/topology/resource_index.h"

namespace {

// Human-readable class of the bottleneck resource of the median thread.
std::string BottleneckClass(const pandia::ResourceIndex& index, int resource) {
  using pandia::ResourceKind;
  if (resource < 0) {
    return "-";
  }
  switch (index.KindOf(resource)) {
    case ResourceKind::kCore:
      return "core";
    case ResourceKind::kL1:
      return "L1";
    case ResourceKind::kL2:
      return "L2";
    case ResourceKind::kL3Port:
      return "L3 port";
    case ResourceKind::kL3Agg:
      return "L3 agg";
    case ResourceKind::kDram:
      return "DRAM";
    case ResourceKind::kLink:
      return "link";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace pandia;
  std::printf("=== Bottleneck census on the X5-2: what binds, and where it "
              "shifts ===\n\n");
  const eval::Pipeline pipeline("x5-2");
  const MachineTopology& topo = pipeline.machine().topology();
  const ResourceIndex index(topo);

  Table table({"workload", "18 thr (1 skt)", "36 thr (2 skt)", "72 thr (SMT)",
               "slowdown@72"});
  for (const sim::WorkloadSpec& workload : workloads::EvaluationSuite()) {
    const WorkloadDescription desc = pipeline.Profile(workload);
    const Predictor predictor = pipeline.MakePredictor(desc);
    std::vector<std::string> row{workload.name};
    double final_slowdown = 1.0;
    std::vector<SocketLoad> two_sockets{{18, 0}, {18, 0}};
    for (const Placement& placement :
         {Placement::OnePerCore(topo, 18),
          Placement::FromSocketLoads(topo, two_sockets),
          Placement::TwoPerCore(topo, 72)}) {
      const Prediction prediction = predictor.Predict(placement);
      row.push_back(
          BottleneckClass(index, prediction.threads.front().bottleneck));
      final_slowdown = prediction.threads.front().overall_slowdown;
    }
    row.push_back(StrFormat("%.2f", final_slowdown));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\npaper §1: contention points shift between resources as the "
              "degree of parallelism and placement change; '-' marks placements "
              "where no resource is oversubscribed (Amdahl/communication bound).\n");
  return 0;
}
