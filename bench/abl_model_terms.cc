// Ablation (extension beyond the paper): how much does each term of the
// Pandia model contribute to accuracy? Disable burstiness, communication,
// load balancing, or the iterative refinement one at a time and measure the
// error inflation on the X3-2 across the full suite.
#include "bench/common.h"

#include "src/util/stats.h"

int main() {
  using namespace pandia;
  std::printf("=== Ablation: error contribution of each model term (X3-2) ===\n\n");
  const eval::Pipeline pipeline("x3-2");
  const eval::SweepOptions options =
      bench::PaperSweepOptions(pipeline.machine().topology());

  struct Variant {
    const char* name;
    PredictionOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full model", PredictionOptions{}});
  {
    PredictionOptions o;
    o.model_burstiness = false;
    variants.push_back({"no burstiness (b)", o});
  }
  {
    PredictionOptions o;
    o.model_communication = false;
    variants.push_back({"no communication (o_s)", o});
  }
  {
    PredictionOptions o;
    o.model_load_balance = false;
    variants.push_back({"no load balancing (l)", o});
  }
  {
    PredictionOptions o;
    o.iterate = false;
    variants.push_back({"single iteration", o});
  }

  Table table({"variant", "median error%", "median offset%", "mean best gap%"});
  for (const Variant& variant : variants) {
    std::vector<double> medians, offsets, gaps;
    for (const sim::WorkloadSpec& workload : workloads::EvaluationSuite()) {
      const WorkloadDescription desc = pipeline.Profile(workload);
      const Predictor predictor = pipeline.MakePredictor(desc, variant.options);
      const eval::SweepResult result =
          eval::RunSweep(pipeline.machine(), predictor, workload, options);
      medians.push_back(result.error_median);
      offsets.push_back(result.offset_error_median);
      gaps.push_back(result.best_placement_gap_pct);
    }
    table.AddRow({variant.name, StrFormat("%.1f", Median(medians)),
                  StrFormat("%.1f", Median(offsets)), StrFormat("%.2f", Mean(gaps))});
  }
  table.Print();
  std::printf("\nexpectation: every removed term inflates the error and/or the "
              "best-placement gap; the full model dominates.\n");
  return 0;
}
