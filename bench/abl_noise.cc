// Ablation (extension): how robust are the six-run descriptions and the
// resulting predictions to measurement noise? The paper's profiling runs
// are single timed runs; real machines jitter. We sweep the simulator's
// noise magnitude and report the drift of the description parameters and
// the resulting accuracy on the X3-2.
#include "bench/common.h"

#include "src/machine_desc/generator.h"
#include "src/util/stats.h"
#include "src/workload_desc/profiler.h"

int main() {
  using namespace pandia;
  std::printf("=== Ablation: measurement-noise sensitivity (CG and MD, X3-2) ===\n\n");
  Table table({"noise", "workload", "p", "o_s", "l", "b", "error med%", "best gap%"});
  for (const double noise : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    sim::MachineSpec spec = sim::MachineByName("x3-2");
    spec.noise_magnitude = noise;
    const sim::Machine machine{spec};
    const MachineDescription description = GenerateMachineDescription(machine);
    const WorkloadProfiler profiler(machine, description);
    for (const char* name : {"CG", "MD"}) {
      const sim::WorkloadSpec workload = workloads::ByName(name);
      const WorkloadDescription desc = profiler.Profile(workload);
      const Predictor predictor(description, desc);
      eval::SweepOptions options;
      const eval::SweepResult result =
          eval::RunSweep(machine, predictor, workload, options);
      table.AddRow({StrFormat("%.1f%%", noise * 100.0), name,
                    StrFormat("%.4f", desc.parallel_fraction),
                    StrFormat("%.4f", desc.inter_socket_overhead),
                    StrFormat("%.2f", desc.load_balance),
                    StrFormat("%.2f", desc.burstiness),
                    StrFormat("%.1f", result.error_median),
                    StrFormat("%.2f", result.best_placement_gap_pct)});
    }
  }
  table.Print();
  std::printf("\nexpectation: parameters drift smoothly with noise; the six-run "
              "description stays usable well past realistic (~1%%) run-to-run "
              "variation, degrading gracefully at 5%%.\n");
  return 0;
}
