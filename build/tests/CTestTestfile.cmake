# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/fair_share_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build/tests/stress_and_desc_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_worked_example_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_integration_test[1]_include.cmake")
include("/root/repo/build/tests/suite_properties_test[1]_include.cmake")
include("/root/repo/build/tests/co_schedule_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/limits_test[1]_include.cmake")
include("/root/repo/build/tests/assumptions_test[1]_include.cmake")
include("/root/repo/build/tests/rack_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_metamorphic_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_constraints_test[1]_include.cmake")
include("/root/repo/build/tests/online_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/regression_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/grouped_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/machines_param_test[1]_include.cmake")
include("/root/repo/build/tests/sim_edge_test[1]_include.cmake")
