# Empty compiler generated dependencies file for machines_param_test.
# This may be replaced when dependencies are built.
