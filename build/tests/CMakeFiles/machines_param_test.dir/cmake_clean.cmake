file(REMOVE_RECURSE
  "CMakeFiles/machines_param_test.dir/machines_param_test.cc.o"
  "CMakeFiles/machines_param_test.dir/machines_param_test.cc.o.d"
  "machines_param_test"
  "machines_param_test.pdb"
  "machines_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machines_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
