# Empty dependencies file for grouped_test.
# This may be replaced when dependencies are built.
