file(REMOVE_RECURSE
  "CMakeFiles/fair_share_test.dir/fair_share_test.cc.o"
  "CMakeFiles/fair_share_test.dir/fair_share_test.cc.o.d"
  "fair_share_test"
  "fair_share_test.pdb"
  "fair_share_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_share_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
