file(REMOVE_RECURSE
  "CMakeFiles/regression_baseline_test.dir/regression_baseline_test.cc.o"
  "CMakeFiles/regression_baseline_test.dir/regression_baseline_test.cc.o.d"
  "regression_baseline_test"
  "regression_baseline_test.pdb"
  "regression_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
