# Empty compiler generated dependencies file for regression_baseline_test.
# This may be replaced when dependencies are built.
