file(REMOVE_RECURSE
  "CMakeFiles/predictor_metamorphic_test.dir/predictor_metamorphic_test.cc.o"
  "CMakeFiles/predictor_metamorphic_test.dir/predictor_metamorphic_test.cc.o.d"
  "predictor_metamorphic_test"
  "predictor_metamorphic_test.pdb"
  "predictor_metamorphic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
