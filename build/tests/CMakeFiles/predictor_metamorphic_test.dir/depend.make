# Empty dependencies file for predictor_metamorphic_test.
# This may be replaced when dependencies are built.
