# Empty compiler generated dependencies file for stress_and_desc_test.
# This may be replaced when dependencies are built.
