file(REMOVE_RECURSE
  "CMakeFiles/stress_and_desc_test.dir/stress_and_desc_test.cc.o"
  "CMakeFiles/stress_and_desc_test.dir/stress_and_desc_test.cc.o.d"
  "stress_and_desc_test"
  "stress_and_desc_test.pdb"
  "stress_and_desc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_and_desc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
