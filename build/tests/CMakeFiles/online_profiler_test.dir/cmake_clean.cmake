file(REMOVE_RECURSE
  "CMakeFiles/online_profiler_test.dir/online_profiler_test.cc.o"
  "CMakeFiles/online_profiler_test.dir/online_profiler_test.cc.o.d"
  "online_profiler_test"
  "online_profiler_test.pdb"
  "online_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
