# Empty compiler generated dependencies file for online_profiler_test.
# This may be replaced when dependencies are built.
