# Empty dependencies file for suite_properties_test.
# This may be replaced when dependencies are built.
