file(REMOVE_RECURSE
  "CMakeFiles/suite_properties_test.dir/suite_properties_test.cc.o"
  "CMakeFiles/suite_properties_test.dir/suite_properties_test.cc.o.d"
  "suite_properties_test"
  "suite_properties_test.pdb"
  "suite_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
