# Empty compiler generated dependencies file for co_schedule_test.
# This may be replaced when dependencies are built.
