file(REMOVE_RECURSE
  "CMakeFiles/co_schedule_test.dir/co_schedule_test.cc.o"
  "CMakeFiles/co_schedule_test.dir/co_schedule_test.cc.o.d"
  "co_schedule_test"
  "co_schedule_test.pdb"
  "co_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/co_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
