# Empty dependencies file for rack_test.
# This may be replaced when dependencies are built.
