file(REMOVE_RECURSE
  "CMakeFiles/optimizer_constraints_test.dir/optimizer_constraints_test.cc.o"
  "CMakeFiles/optimizer_constraints_test.dir/optimizer_constraints_test.cc.o.d"
  "optimizer_constraints_test"
  "optimizer_constraints_test.pdb"
  "optimizer_constraints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
