# Empty dependencies file for assumptions_test.
# This may be replaced when dependencies are built.
