file(REMOVE_RECURSE
  "CMakeFiles/assumptions_test.dir/assumptions_test.cc.o"
  "CMakeFiles/assumptions_test.dir/assumptions_test.cc.o.d"
  "assumptions_test"
  "assumptions_test.pdb"
  "assumptions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assumptions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
