# Empty dependencies file for predictor_worked_example_test.
# This may be replaced when dependencies are built.
