file(REMOVE_RECURSE
  "CMakeFiles/predictor_worked_example_test.dir/predictor_worked_example_test.cc.o"
  "CMakeFiles/predictor_worked_example_test.dir/predictor_worked_example_test.cc.o.d"
  "predictor_worked_example_test"
  "predictor_worked_example_test.pdb"
  "predictor_worked_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_worked_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
