file(REMOVE_RECURSE
  "../tools/pandia_sweep"
  "../tools/pandia_sweep.pdb"
  "CMakeFiles/pandia_sweep.dir/pandia_sweep.cc.o"
  "CMakeFiles/pandia_sweep.dir/pandia_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
