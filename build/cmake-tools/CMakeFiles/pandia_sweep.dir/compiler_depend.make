# Empty compiler generated dependencies file for pandia_sweep.
# This may be replaced when dependencies are built.
