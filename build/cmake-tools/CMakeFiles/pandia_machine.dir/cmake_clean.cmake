file(REMOVE_RECURSE
  "../tools/pandia_machine"
  "../tools/pandia_machine.pdb"
  "CMakeFiles/pandia_machine.dir/pandia_machine.cc.o"
  "CMakeFiles/pandia_machine.dir/pandia_machine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
