# Empty dependencies file for pandia_machine.
# This may be replaced when dependencies are built.
