# Empty compiler generated dependencies file for pandia_predict.
# This may be replaced when dependencies are built.
