file(REMOVE_RECURSE
  "../tools/pandia_predict"
  "../tools/pandia_predict.pdb"
  "CMakeFiles/pandia_predict.dir/pandia_predict.cc.o"
  "CMakeFiles/pandia_predict.dir/pandia_predict.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
