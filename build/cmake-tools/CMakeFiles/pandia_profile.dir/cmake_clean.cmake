file(REMOVE_RECURSE
  "../tools/pandia_profile"
  "../tools/pandia_profile.pdb"
  "CMakeFiles/pandia_profile.dir/pandia_profile.cc.o"
  "CMakeFiles/pandia_profile.dir/pandia_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
