
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/pandia_profile.cc" "cmake-tools/CMakeFiles/pandia_profile.dir/pandia_profile.cc.o" "gcc" "cmake-tools/CMakeFiles/pandia_profile.dir/pandia_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pandia_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pandia_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/pandia_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/workload_desc/CMakeFiles/pandia_workload_desc.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/pandia_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/machine_desc/CMakeFiles/pandia_machine_desc.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/pandia_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/stress/CMakeFiles/pandia_stress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pandia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pandia_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pandia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
