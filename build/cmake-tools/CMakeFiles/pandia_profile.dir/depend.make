# Empty dependencies file for pandia_profile.
# This may be replaced when dependencies are built.
