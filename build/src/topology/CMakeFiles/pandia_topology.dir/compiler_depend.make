# Empty compiler generated dependencies file for pandia_topology.
# This may be replaced when dependencies are built.
