file(REMOVE_RECURSE
  "CMakeFiles/pandia_topology.dir/enumerate.cc.o"
  "CMakeFiles/pandia_topology.dir/enumerate.cc.o.d"
  "CMakeFiles/pandia_topology.dir/memory_policy.cc.o"
  "CMakeFiles/pandia_topology.dir/memory_policy.cc.o.d"
  "CMakeFiles/pandia_topology.dir/placement.cc.o"
  "CMakeFiles/pandia_topology.dir/placement.cc.o.d"
  "CMakeFiles/pandia_topology.dir/placement_parse.cc.o"
  "CMakeFiles/pandia_topology.dir/placement_parse.cc.o.d"
  "CMakeFiles/pandia_topology.dir/resource_index.cc.o"
  "CMakeFiles/pandia_topology.dir/resource_index.cc.o.d"
  "CMakeFiles/pandia_topology.dir/topology.cc.o"
  "CMakeFiles/pandia_topology.dir/topology.cc.o.d"
  "libpandia_topology.a"
  "libpandia_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
