
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/enumerate.cc" "src/topology/CMakeFiles/pandia_topology.dir/enumerate.cc.o" "gcc" "src/topology/CMakeFiles/pandia_topology.dir/enumerate.cc.o.d"
  "/root/repo/src/topology/memory_policy.cc" "src/topology/CMakeFiles/pandia_topology.dir/memory_policy.cc.o" "gcc" "src/topology/CMakeFiles/pandia_topology.dir/memory_policy.cc.o.d"
  "/root/repo/src/topology/placement.cc" "src/topology/CMakeFiles/pandia_topology.dir/placement.cc.o" "gcc" "src/topology/CMakeFiles/pandia_topology.dir/placement.cc.o.d"
  "/root/repo/src/topology/placement_parse.cc" "src/topology/CMakeFiles/pandia_topology.dir/placement_parse.cc.o" "gcc" "src/topology/CMakeFiles/pandia_topology.dir/placement_parse.cc.o.d"
  "/root/repo/src/topology/resource_index.cc" "src/topology/CMakeFiles/pandia_topology.dir/resource_index.cc.o" "gcc" "src/topology/CMakeFiles/pandia_topology.dir/resource_index.cc.o.d"
  "/root/repo/src/topology/topology.cc" "src/topology/CMakeFiles/pandia_topology.dir/topology.cc.o" "gcc" "src/topology/CMakeFiles/pandia_topology.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pandia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
