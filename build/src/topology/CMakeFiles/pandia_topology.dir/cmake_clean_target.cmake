file(REMOVE_RECURSE
  "libpandia_topology.a"
)
