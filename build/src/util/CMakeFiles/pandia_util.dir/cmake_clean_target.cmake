file(REMOVE_RECURSE
  "libpandia_util.a"
)
