# Empty dependencies file for pandia_util.
# This may be replaced when dependencies are built.
