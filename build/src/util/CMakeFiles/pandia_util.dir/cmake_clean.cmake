file(REMOVE_RECURSE
  "CMakeFiles/pandia_util.dir/rng.cc.o"
  "CMakeFiles/pandia_util.dir/rng.cc.o.d"
  "CMakeFiles/pandia_util.dir/stats.cc.o"
  "CMakeFiles/pandia_util.dir/stats.cc.o.d"
  "CMakeFiles/pandia_util.dir/strings.cc.o"
  "CMakeFiles/pandia_util.dir/strings.cc.o.d"
  "CMakeFiles/pandia_util.dir/table.cc.o"
  "CMakeFiles/pandia_util.dir/table.cc.o.d"
  "libpandia_util.a"
  "libpandia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
