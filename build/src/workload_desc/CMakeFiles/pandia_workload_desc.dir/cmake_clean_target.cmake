file(REMOVE_RECURSE
  "libpandia_workload_desc.a"
)
