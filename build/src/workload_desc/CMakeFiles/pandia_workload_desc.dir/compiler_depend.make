# Empty compiler generated dependencies file for pandia_workload_desc.
# This may be replaced when dependencies are built.
