file(REMOVE_RECURSE
  "CMakeFiles/pandia_workload_desc.dir/assumptions.cc.o"
  "CMakeFiles/pandia_workload_desc.dir/assumptions.cc.o.d"
  "CMakeFiles/pandia_workload_desc.dir/online_profiler.cc.o"
  "CMakeFiles/pandia_workload_desc.dir/online_profiler.cc.o.d"
  "CMakeFiles/pandia_workload_desc.dir/profiler.cc.o"
  "CMakeFiles/pandia_workload_desc.dir/profiler.cc.o.d"
  "libpandia_workload_desc.a"
  "libpandia_workload_desc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_workload_desc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
