# CMake generated Testfile for 
# Source directory: /root/repo/src/workload_desc
# Build directory: /root/repo/build/src/workload_desc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
