# Empty compiler generated dependencies file for pandia_serialize.
# This may be replaced when dependencies are built.
