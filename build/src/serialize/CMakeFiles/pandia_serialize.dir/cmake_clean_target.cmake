file(REMOVE_RECURSE
  "libpandia_serialize.a"
)
