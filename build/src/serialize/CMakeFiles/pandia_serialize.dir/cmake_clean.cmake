file(REMOVE_RECURSE
  "CMakeFiles/pandia_serialize.dir/serialize.cc.o"
  "CMakeFiles/pandia_serialize.dir/serialize.cc.o.d"
  "libpandia_serialize.a"
  "libpandia_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
