# Empty compiler generated dependencies file for pandia_sim.
# This may be replaced when dependencies are built.
