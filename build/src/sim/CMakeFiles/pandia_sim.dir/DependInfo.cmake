
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fair_share.cc" "src/sim/CMakeFiles/pandia_sim.dir/fair_share.cc.o" "gcc" "src/sim/CMakeFiles/pandia_sim.dir/fair_share.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/pandia_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/pandia_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/machine_spec.cc" "src/sim/CMakeFiles/pandia_sim.dir/machine_spec.cc.o" "gcc" "src/sim/CMakeFiles/pandia_sim.dir/machine_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/pandia_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pandia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
