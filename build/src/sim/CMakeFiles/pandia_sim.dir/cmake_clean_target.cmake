file(REMOVE_RECURSE
  "libpandia_sim.a"
)
