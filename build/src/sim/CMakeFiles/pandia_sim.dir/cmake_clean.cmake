file(REMOVE_RECURSE
  "CMakeFiles/pandia_sim.dir/fair_share.cc.o"
  "CMakeFiles/pandia_sim.dir/fair_share.cc.o.d"
  "CMakeFiles/pandia_sim.dir/machine.cc.o"
  "CMakeFiles/pandia_sim.dir/machine.cc.o.d"
  "CMakeFiles/pandia_sim.dir/machine_spec.cc.o"
  "CMakeFiles/pandia_sim.dir/machine_spec.cc.o.d"
  "libpandia_sim.a"
  "libpandia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
