file(REMOVE_RECURSE
  "CMakeFiles/pandia_workloads.dir/workloads.cc.o"
  "CMakeFiles/pandia_workloads.dir/workloads.cc.o.d"
  "libpandia_workloads.a"
  "libpandia_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
