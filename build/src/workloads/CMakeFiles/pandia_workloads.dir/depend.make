# Empty dependencies file for pandia_workloads.
# This may be replaced when dependencies are built.
