
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/pandia_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/pandia_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pandia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/pandia_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pandia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
