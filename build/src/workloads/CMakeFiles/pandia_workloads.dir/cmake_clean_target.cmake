file(REMOVE_RECURSE
  "libpandia_workloads.a"
)
