file(REMOVE_RECURSE
  "libpandia_predictor.a"
)
