# Empty dependencies file for pandia_predictor.
# This may be replaced when dependencies are built.
