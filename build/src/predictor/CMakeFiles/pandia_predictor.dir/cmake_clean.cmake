file(REMOVE_RECURSE
  "CMakeFiles/pandia_predictor.dir/co_schedule.cc.o"
  "CMakeFiles/pandia_predictor.dir/co_schedule.cc.o.d"
  "CMakeFiles/pandia_predictor.dir/grouped.cc.o"
  "CMakeFiles/pandia_predictor.dir/grouped.cc.o.d"
  "CMakeFiles/pandia_predictor.dir/optimizer.cc.o"
  "CMakeFiles/pandia_predictor.dir/optimizer.cc.o.d"
  "CMakeFiles/pandia_predictor.dir/predictor.cc.o"
  "CMakeFiles/pandia_predictor.dir/predictor.cc.o.d"
  "CMakeFiles/pandia_predictor.dir/report.cc.o"
  "CMakeFiles/pandia_predictor.dir/report.cc.o.d"
  "libpandia_predictor.a"
  "libpandia_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
