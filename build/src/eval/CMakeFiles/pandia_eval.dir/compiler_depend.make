# Empty compiler generated dependencies file for pandia_eval.
# This may be replaced when dependencies are built.
