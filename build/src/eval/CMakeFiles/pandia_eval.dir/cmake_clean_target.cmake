file(REMOVE_RECURSE
  "libpandia_eval.a"
)
