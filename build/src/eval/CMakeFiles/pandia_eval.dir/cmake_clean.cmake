file(REMOVE_RECURSE
  "CMakeFiles/pandia_eval.dir/experiment.cc.o"
  "CMakeFiles/pandia_eval.dir/experiment.cc.o.d"
  "CMakeFiles/pandia_eval.dir/pipeline.cc.o"
  "CMakeFiles/pandia_eval.dir/pipeline.cc.o.d"
  "CMakeFiles/pandia_eval.dir/regression_baseline.cc.o"
  "CMakeFiles/pandia_eval.dir/regression_baseline.cc.o.d"
  "libpandia_eval.a"
  "libpandia_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
