file(REMOVE_RECURSE
  "CMakeFiles/pandia_counters.dir/counters.cc.o"
  "CMakeFiles/pandia_counters.dir/counters.cc.o.d"
  "libpandia_counters.a"
  "libpandia_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
