file(REMOVE_RECURSE
  "libpandia_counters.a"
)
