# Empty dependencies file for pandia_counters.
# This may be replaced when dependencies are built.
