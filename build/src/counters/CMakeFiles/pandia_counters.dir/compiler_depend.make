# Empty compiler generated dependencies file for pandia_counters.
# This may be replaced when dependencies are built.
