file(REMOVE_RECURSE
  "libpandia_stress.a"
)
