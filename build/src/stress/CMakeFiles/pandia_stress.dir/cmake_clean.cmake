file(REMOVE_RECURSE
  "CMakeFiles/pandia_stress.dir/stress.cc.o"
  "CMakeFiles/pandia_stress.dir/stress.cc.o.d"
  "libpandia_stress.a"
  "libpandia_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
