# Empty compiler generated dependencies file for pandia_stress.
# This may be replaced when dependencies are built.
