file(REMOVE_RECURSE
  "libpandia_machine_desc.a"
)
