# Empty dependencies file for pandia_machine_desc.
# This may be replaced when dependencies are built.
