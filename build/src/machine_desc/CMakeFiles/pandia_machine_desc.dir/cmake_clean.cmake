file(REMOVE_RECURSE
  "CMakeFiles/pandia_machine_desc.dir/generator.cc.o"
  "CMakeFiles/pandia_machine_desc.dir/generator.cc.o.d"
  "CMakeFiles/pandia_machine_desc.dir/machine_description.cc.o"
  "CMakeFiles/pandia_machine_desc.dir/machine_description.cc.o.d"
  "libpandia_machine_desc.a"
  "libpandia_machine_desc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_machine_desc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
