# CMake generated Testfile for 
# Source directory: /root/repo/src/machine_desc
# Build directory: /root/repo/build/src/machine_desc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
