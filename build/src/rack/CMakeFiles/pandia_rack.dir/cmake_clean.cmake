file(REMOVE_RECURSE
  "CMakeFiles/pandia_rack.dir/rack.cc.o"
  "CMakeFiles/pandia_rack.dir/rack.cc.o.d"
  "libpandia_rack.a"
  "libpandia_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandia_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
