file(REMOVE_RECURSE
  "libpandia_rack.a"
)
