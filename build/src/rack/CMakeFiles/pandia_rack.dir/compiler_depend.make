# Empty compiler generated dependencies file for pandia_rack.
# This may be replaced when dependencies are built.
