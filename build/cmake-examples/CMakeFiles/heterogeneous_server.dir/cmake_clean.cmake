file(REMOVE_RECURSE
  "../examples/heterogeneous_server"
  "../examples/heterogeneous_server.pdb"
  "CMakeFiles/heterogeneous_server.dir/heterogeneous_server.cpp.o"
  "CMakeFiles/heterogeneous_server.dir/heterogeneous_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
