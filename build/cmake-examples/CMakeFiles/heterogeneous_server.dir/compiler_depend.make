# Empty compiler generated dependencies file for heterogeneous_server.
# This may be replaced when dependencies are built.
