# Empty dependencies file for runtime_tuner.
# This may be replaced when dependencies are built.
