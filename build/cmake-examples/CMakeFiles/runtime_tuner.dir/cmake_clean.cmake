file(REMOVE_RECURSE
  "../examples/runtime_tuner"
  "../examples/runtime_tuner.pdb"
  "CMakeFiles/runtime_tuner.dir/runtime_tuner.cpp.o"
  "CMakeFiles/runtime_tuner.dir/runtime_tuner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
