# Empty dependencies file for resource_monitor.
# This may be replaced when dependencies are built.
