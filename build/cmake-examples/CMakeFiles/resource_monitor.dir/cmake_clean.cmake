file(REMOVE_RECURSE
  "../examples/resource_monitor"
  "../examples/resource_monitor.pdb"
  "CMakeFiles/resource_monitor.dir/resource_monitor.cpp.o"
  "CMakeFiles/resource_monitor.dir/resource_monitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
