file(REMOVE_RECURSE
  "../examples/placement_advisor"
  "../examples/placement_advisor.pdb"
  "CMakeFiles/placement_advisor.dir/placement_advisor.cpp.o"
  "CMakeFiles/placement_advisor.dir/placement_advisor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
