file(REMOVE_RECURSE
  "../bench/tab_best_placement"
  "../bench/tab_best_placement.pdb"
  "CMakeFiles/tab_best_placement.dir/tab_best_placement.cc.o"
  "CMakeFiles/tab_best_placement.dir/tab_best_placement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_best_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
