# Empty dependencies file for tab_best_placement.
# This may be replaced when dependencies are built.
