file(REMOVE_RECURSE
  "../bench/fig10_workloads"
  "../bench/fig10_workloads.pdb"
  "CMakeFiles/fig10_workloads.dir/fig10_workloads.cc.o"
  "CMakeFiles/fig10_workloads.dir/fig10_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
