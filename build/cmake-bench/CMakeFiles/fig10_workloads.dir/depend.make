# Empty dependencies file for fig10_workloads.
# This may be replaced when dependencies are built.
