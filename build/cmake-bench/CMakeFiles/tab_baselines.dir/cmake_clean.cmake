file(REMOVE_RECURSE
  "../bench/tab_baselines"
  "../bench/tab_baselines.pdb"
  "CMakeFiles/tab_baselines.dir/tab_baselines.cc.o"
  "CMakeFiles/tab_baselines.dir/tab_baselines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
