# Empty dependencies file for tab_baselines.
# This may be replaced when dependencies are built.
