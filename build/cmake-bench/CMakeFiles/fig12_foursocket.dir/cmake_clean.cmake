file(REMOVE_RECURSE
  "../bench/fig12_foursocket"
  "../bench/fig12_foursocket.pdb"
  "CMakeFiles/fig12_foursocket.dir/fig12_foursocket.cc.o"
  "CMakeFiles/fig12_foursocket.dir/fig12_foursocket.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_foursocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
