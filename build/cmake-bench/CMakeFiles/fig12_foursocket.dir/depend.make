# Empty dependencies file for fig12_foursocket.
# This may be replaced when dependencies are built.
