file(REMOVE_RECURSE
  "../bench/perf_predictor"
  "../bench/perf_predictor.pdb"
  "CMakeFiles/perf_predictor.dir/perf_predictor.cc.o"
  "CMakeFiles/perf_predictor.dir/perf_predictor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
