# Empty compiler generated dependencies file for perf_predictor.
# This may be replaced when dependencies are built.
