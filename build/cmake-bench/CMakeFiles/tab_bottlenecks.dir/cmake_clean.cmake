file(REMOVE_RECURSE
  "../bench/tab_bottlenecks"
  "../bench/tab_bottlenecks.pdb"
  "CMakeFiles/tab_bottlenecks.dir/tab_bottlenecks.cc.o"
  "CMakeFiles/tab_bottlenecks.dir/tab_bottlenecks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
