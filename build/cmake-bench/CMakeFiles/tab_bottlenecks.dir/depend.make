# Empty dependencies file for tab_bottlenecks.
# This may be replaced when dependencies are built.
