file(REMOVE_RECURSE
  "../bench/tab_sweep"
  "../bench/tab_sweep.pdb"
  "CMakeFiles/tab_sweep.dir/tab_sweep.cc.o"
  "CMakeFiles/tab_sweep.dir/tab_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
