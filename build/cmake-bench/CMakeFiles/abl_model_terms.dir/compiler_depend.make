# Empty compiler generated dependencies file for abl_model_terms.
# This may be replaced when dependencies are built.
