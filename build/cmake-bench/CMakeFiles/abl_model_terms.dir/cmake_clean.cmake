file(REMOVE_RECURSE
  "../bench/abl_model_terms"
  "../bench/abl_model_terms.pdb"
  "CMakeFiles/abl_model_terms.dir/abl_model_terms.cc.o"
  "CMakeFiles/abl_model_terms.dir/abl_model_terms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_model_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
