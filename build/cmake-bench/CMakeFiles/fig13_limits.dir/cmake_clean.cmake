file(REMOVE_RECURSE
  "../bench/fig13_limits"
  "../bench/fig13_limits.pdb"
  "CMakeFiles/fig13_limits.dir/fig13_limits.cc.o"
  "CMakeFiles/fig13_limits.dir/fig13_limits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
