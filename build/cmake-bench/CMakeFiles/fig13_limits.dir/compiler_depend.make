# Empty compiler generated dependencies file for fig13_limits.
# This may be replaced when dependencies are built.
