# Empty compiler generated dependencies file for fig01_md.
# This may be replaced when dependencies are built.
