file(REMOVE_RECURSE
  "../bench/fig01_md"
  "../bench/fig01_md.pdb"
  "CMakeFiles/fig01_md.dir/fig01_md.cc.o"
  "CMakeFiles/fig01_md.dir/fig01_md.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
