file(REMOVE_RECURSE
  "../bench/ext_coschedule"
  "../bench/ext_coschedule.pdb"
  "CMakeFiles/ext_coschedule.dir/ext_coschedule.cc.o"
  "CMakeFiles/ext_coschedule.dir/ext_coschedule.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_coschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
