# Empty dependencies file for fig11_portability.
# This may be replaced when dependencies are built.
