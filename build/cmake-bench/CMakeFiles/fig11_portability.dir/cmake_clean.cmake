file(REMOVE_RECURSE
  "../bench/fig11_portability"
  "../bench/fig11_portability.pdb"
  "CMakeFiles/fig11_portability.dir/fig11_portability.cc.o"
  "CMakeFiles/fig11_portability.dir/fig11_portability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
