# Empty dependencies file for fig14_turbo.
# This may be replaced when dependencies are built.
