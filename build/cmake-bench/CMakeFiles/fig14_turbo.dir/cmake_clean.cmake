file(REMOVE_RECURSE
  "../bench/fig14_turbo"
  "../bench/fig14_turbo.pdb"
  "CMakeFiles/fig14_turbo.dir/fig14_turbo.cc.o"
  "CMakeFiles/fig14_turbo.dir/fig14_turbo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
