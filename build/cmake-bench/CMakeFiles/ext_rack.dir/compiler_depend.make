# Empty compiler generated dependencies file for ext_rack.
# This may be replaced when dependencies are built.
