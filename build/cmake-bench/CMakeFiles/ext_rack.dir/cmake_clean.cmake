file(REMOVE_RECURSE
  "../bench/ext_rack"
  "../bench/ext_rack.pdb"
  "CMakeFiles/ext_rack.dir/ext_rack.cc.o"
  "CMakeFiles/ext_rack.dir/ext_rack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
