file(REMOVE_RECURSE
  "../bench/fig11_errors"
  "../bench/fig11_errors.pdb"
  "CMakeFiles/fig11_errors.dir/fig11_errors.cc.o"
  "CMakeFiles/fig11_errors.dir/fig11_errors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
