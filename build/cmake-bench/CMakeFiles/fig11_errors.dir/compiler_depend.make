# Empty compiler generated dependencies file for fig11_errors.
# This may be replaced when dependencies are built.
