// pandia-loadgen: trace-replaying load generator for a running pandia_serve
// daemon (single-rack or fleet).
//
//   pandia_loadgen --socket=PATH [--mode=closed|open] [--connections=C]
//                  [--requests=N] [--batch=B] [--pattern=steady|poisson|
//                  diurnal|flash] [--rate=R] [--seed=S] [--threads=T]
//                  [--workload=NAME] [--timeout-ms=N] [--json-out=FILE]
//
// Closed loop (default): C connections (one serve::Client each, HELLO
// handshake included) drive the daemon as hard as it will go — each
// connection pipelines batches of B ADMIT requests, reads the B response
// blocks, then pipelines the matching DEPARTs. Offered load tracks service
// capacity, which is the right shape for a throughput benchmark.
//
// Open loop: one connection replays a precomputed arrival schedule drawn
// from the seeded RNG — requests arrive when the trace says so, whether or
// not the daemon kept up (the latency distribution then includes queueing
// delay, which is the right shape for a latency-under-load study):
//
//   steady    fixed 1/R spacing
//   poisson   exponential inter-arrivals at rate R
//   diurnal   Poisson with the rate swept through one sinusoidal
//             day-night wave over the run (peak ~1.9R, trough ~0.1R)
//   flash     steady at R, except a 5xR flash crowd in the middle fifth
//
// Every admitted job uses one profiled workload description (--workload,
// default "EP" on the simulated x3-2 machine), so the daemon's
// prediction cache behaves as it would under a homogeneous job stream;
// admits that the rack cannot place (capacity) count as `rejected`, are
// excluded from latency, and are not departed.
//
// Admit latencies flow through the obs histogram
// loadgen.admit.latency_us (ExponentialBounds(1, 2, 24)); the report gives
// admits/sec plus p50/p90/p99 interpolated from those buckets.
// --json-out writes the result in google-benchmark JSON so
// tools/check_bench_regression.py gates it against
// bench/BENCH_serve_baseline.json: LG_AdmitThroughput carries
// items_per_second, LG_AdmitLatencyP50/P90/P99 carry the percentile as
// real_time (throughput = its inverse, so higher latency = regression).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

namespace {

using namespace pandia;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket=PATH [--mode=closed|open] [--connections=C] "
      "[--requests=N] [--batch=B] [--pattern=steady|poisson|diurnal|flash] "
      "[--rate=R] [--seed=S] [--threads=T] [--workload=NAME] "
      "[--timeout-ms=N] [--json-out=FILE]\n",
      argv0);
  return 2;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Histogram& AdmitLatency() {
  static obs::Histogram& histogram = obs::MetricsRegistry::Global().histogram(
      "loadgen.admit.latency_us", obs::ExponentialBounds(1, 2, 24));
  return histogram;
}

struct LoadgenConfig {
  std::string socket_path;
  std::string mode = "closed";
  std::string pattern = "poisson";
  std::string workload = "EP";
  std::string json_out;
  int connections = 4;
  int requests = 2000;
  int batch = 16;
  double rate = 2000.0;
  uint64_t seed = 1;
  int job_threads = 2;
  int timeout_ms = 30000;
};

// Tallies shared by the connection workers; merged under plain summation
// (each worker owns its slot, no locking).
struct WorkerResult {
  int64_t admits = 0;
  int64_t rejected = 0;
  int64_t errors = 0;  // non-capacity failures: always a loadgen failure
};

serve::ClientOptions ClientOptionsFor(const LoadgenConfig& config) {
  serve::ClientOptions options;
  options.timeout_ms = config.timeout_ms;
  options.retries = 4;  // ride through the daemon still coming up
  return options;
}

// Capacity refusals are expected under closed-loop overdrive; everything
// else is a generator failure.
bool IsCapacityRefusal(const wire::Response& response) {
  return !response.ok && (response.code == StatusCode::kFailedPrecondition ||
                          response.code == StatusCode::kNotFound);
}

// One closed-loop worker: pipelined ADMIT batches, then the DEPARTs for
// whatever was actually admitted.
Status RunClosedWorker(const LoadgenConfig& config, int worker,
                       const std::string& admit_suffix, WorkerResult& result) {
  StatusOr<serve::Client> client =
      serve::Client::Connect(config.socket_path, ClientOptionsFor(config));
  if (!client.ok()) {
    return client.status();
  }
  const int total = config.requests / config.connections +
                    (worker < config.requests % config.connections ? 1 : 0);
  int sent = 0;
  int sequence = 0;
  while (sent < total) {
    const int batch = std::min(config.batch, total - sent);
    std::vector<std::string> names;
    names.reserve(static_cast<size_t>(batch));
    std::string admits;
    for (int i = 0; i < batch; ++i) {
      names.push_back(StrFormat("lg-c%d-%d", worker, sequence++));
      admits += StrFormat("ADMIT name=%s%s", names.back().c_str(),
                          admit_suffix.c_str());
      admits += '\n';
    }
    const int64_t batch_start_ns = NowNs();
    if (Status status = client->Send(admits); !status.ok()) {
      return status;
    }
    std::vector<std::string> departs;
    for (int i = 0; i < batch; ++i) {
      StatusOr<wire::Response> response = client->Receive();
      if (!response.ok()) {
        return response.status();
      }
      if (response->ok) {
        // Pipelined latency: from the batch write to this block's arrival.
        AdmitLatency().Observe(
            static_cast<double>(NowNs() - batch_start_ns) / 1000.0);
        ++result.admits;
        departs.push_back("DEPART name=" + names[static_cast<size_t>(i)]);
      } else if (IsCapacityRefusal(*response)) {
        ++result.rejected;
      } else {
        ++result.errors;
      }
    }
    if (!departs.empty()) {
      StatusOr<std::vector<wire::Response>> departed =
          client->CallMany(departs);
      if (!departed.ok()) {
        return departed.status();
      }
      for (const wire::Response& response : *departed) {
        if (!response.ok) {
          ++result.errors;
        }
      }
    }
    sent += batch;
  }
  return Status::Ok();
}

// Inter-arrival gaps (ns) for the open-loop schedule, drawn up front from
// the seeded RNG so a trace replays identically for a given --seed.
std::vector<int64_t> BuildSchedule(const LoadgenConfig& config) {
  Rng rng(config.seed);
  std::vector<int64_t> gaps;
  gaps.reserve(static_cast<size_t>(config.requests));
  const double base_rate = config.rate > 0.0 ? config.rate : 1.0;
  double elapsed_s = 0.0;
  // Nominal run length at the base rate, for shaping diurnal/flash.
  const double horizon_s = static_cast<double>(config.requests) / base_rate;
  for (int i = 0; i < config.requests; ++i) {
    double rate = base_rate;
    if (config.pattern == "diurnal") {
      // One full day-night wave across the run; never fully dark.
      const double phase = 2.0 * M_PI * (elapsed_s / horizon_s);
      rate = base_rate * (1.0 + 0.9 * std::sin(phase));
      if (rate < 0.1 * base_rate) {
        rate = 0.1 * base_rate;
      }
    } else if (config.pattern == "flash") {
      // Flash crowd: 5x the rate through the middle fifth of the run.
      const bool in_flash = elapsed_s >= 0.4 * horizon_s &&
                            elapsed_s < 0.6 * horizon_s;
      rate = in_flash ? 5.0 * base_rate : base_rate;
    }
    double gap_s = 1.0 / rate;
    if (config.pattern != "steady") {
      // Exponential inter-arrival at the instantaneous rate (Poisson).
      double u = rng.NextDouble();
      if (u >= 1.0) {
        u = 0.999999;
      }
      gap_s = -std::log(1.0 - u) / rate;
    }
    elapsed_s += gap_s;
    gaps.push_back(static_cast<int64_t>(gap_s * 1e9));
  }
  return gaps;
}

// Open loop: one connection replays the schedule; each arrival pipelines
// its ADMIT and (on success) DEPART. Arrivals never wait for the daemon —
// if the previous exchange overran the next slot, the request goes out
// immediately and its latency includes the backlog.
Status RunOpenLoop(const LoadgenConfig& config, const std::string& admit_suffix,
                   WorkerResult& result) {
  StatusOr<serve::Client> client =
      serve::Client::Connect(config.socket_path, ClientOptionsFor(config));
  if (!client.ok()) {
    return client.status();
  }
  const std::vector<int64_t> gaps = BuildSchedule(config);
  int64_t due_ns = NowNs();
  for (size_t i = 0; i < gaps.size(); ++i) {
    due_ns += gaps[i];
    const int64_t now_ns = NowNs();
    if (now_ns < due_ns) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(due_ns - now_ns));
    }
    const std::string name = StrFormat("lg-open-%zu", i);
    const int64_t send_ns = NowNs();
    StatusOr<wire::Response> admitted = client->Call(
        StrFormat("ADMIT name=%s%s", name.c_str(), admit_suffix.c_str()));
    if (!admitted.ok()) {
      return admitted.status();
    }
    if (admitted->ok) {
      AdmitLatency().Observe(static_cast<double>(NowNs() - send_ns) / 1000.0);
      ++result.admits;
      StatusOr<wire::Response> departed =
          client->Call("DEPART name=" + name);
      if (!departed.ok()) {
        return departed.status();
      }
      if (!departed->ok) {
        ++result.errors;
      }
    } else if (IsCapacityRefusal(*admitted)) {
      ++result.rejected;
    } else {
      ++result.errors;
    }
  }
  return Status::Ok();
}

Status WriteJsonReport(const LoadgenConfig& config, double admits_per_second,
                       int64_t admits, double wall_s, double p50_us,
                       double p90_us, double p99_us) {
  std::string json = "{\n  \"context\": {\n";
  json += StrFormat("    \"num_cpus\": %u,\n",
                    std::thread::hardware_concurrency());
  json += StrFormat("    \"pandia_hardware_threads\": %u,\n",
                    std::thread::hardware_concurrency());
#ifdef NDEBUG
  json += "    \"library_build_type\": \"release\",\n";
  json += "    \"pandia_build_type\": \"Release\",\n";
#else
  json += "    \"library_build_type\": \"debug\",\n";
  json += "    \"pandia_build_type\": \"Debug\",\n";
#endif
  json += StrFormat(
      "    \"loadgen_mode\": \"%s\",\n    \"loadgen_pattern\": \"%s\",\n"
      "    \"loadgen_connections\": %d,\n    \"loadgen_requests\": %d,\n"
      "    \"loadgen_batch\": %d,\n    \"loadgen_seed\": %llu\n",
      config.mode.c_str(), config.pattern.c_str(), config.connections,
      config.requests, config.batch,
      static_cast<unsigned long long>(config.seed));
  json += "  },\n  \"benchmarks\": [\n";
  const auto row = [](const char* name, double real_time_ns,
                      const char* extra) {
    return StrFormat(
        "    {\"name\": \"%s\", \"run_name\": \"%s\", \"run_type\": "
        "\"iteration\", \"iterations\": 1, \"real_time\": %.1f, "
        "\"cpu_time\": 0.0, \"time_unit\": \"ns\"%s}",
        name, name, real_time_ns, extra);
  };
  json += row("LG_AdmitThroughput", wall_s * 1e9 /
                                        static_cast<double>(
                                            admits > 0 ? admits : 1),
              StrFormat(", \"items_per_second\": %.1f", admits_per_second)
                  .c_str());
  json += ",\n";
  json += row("LG_AdmitLatencyP50", p50_us * 1000.0, "");
  json += ",\n";
  json += row("LG_AdmitLatencyP90", p90_us * 1000.0, "");
  json += ",\n";
  json += row("LG_AdmitLatencyP99", p99_us * 1000.0, "");
  json += "\n  ]\n}\n";
  return WriteTextFile(config.json_out, json);
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config;
  // Positive-integer flags share one parse; the rest are handled inline.
  const struct {
    const char* prefix;
    int* target;
  } int_flags[] = {
      {"--connections=", &config.connections},
      {"--requests=", &config.requests},
      {"--batch=", &config.batch},
      {"--threads=", &config.job_threads},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    for (const auto& flag : int_flags) {
      const size_t n = std::strlen(flag.prefix);
      if (arg.compare(0, n, flag.prefix) != 0) {
        continue;
      }
      const StatusOr<int> parsed =
          tools::ParseIntFlag(arg.c_str() + n,
                              std::string(flag.prefix, n - 1).c_str());
      if (!parsed.ok() || *parsed < 1) {
        std::fprintf(stderr, "error: %s needs a positive integer\n",
                     std::string(flag.prefix, n - 1).c_str());
        return 2;
      }
      *flag.target = *parsed;
      matched = true;
      break;
    }
    if (matched) {
      continue;
    }
    if (arg.rfind("--socket=", 0) == 0) {
      config.socket_path = arg.substr(9);
    } else if (arg.rfind("--mode=", 0) == 0) {
      config.mode = arg.substr(7);
    } else if (arg.rfind("--pattern=", 0) == 0) {
      config.pattern = arg.substr(10);
    } else if (arg.rfind("--workload=", 0) == 0) {
      config.workload = arg.substr(11);
    } else if (arg.rfind("--json-out=", 0) == 0) {
      config.json_out = arg.substr(11);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      const StatusOr<int> parsed =
          tools::ParseIntFlag(arg.c_str() + 13, "--timeout-ms");
      if (!parsed.ok() || *parsed < 0) {
        std::fprintf(stderr,
                     "error: --timeout-ms needs a non-negative integer\n");
        return 2;
      }
      config.timeout_ms = *parsed;
    } else if (arg.rfind("--rate=", 0) == 0) {
      char* end = nullptr;
      config.rate = std::strtod(arg.c_str() + 7, &end);
      if (end == arg.c_str() + 7 || *end != '\0' || config.rate <= 0.0) {
        std::fprintf(stderr, "error: --rate needs a positive number\n");
        return 2;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      const StatusOr<int> parsed = tools::ParseIntFlag(arg.c_str() + 7, "--seed");
      if (!parsed.ok() || *parsed < 0) {
        std::fprintf(stderr, "error: --seed needs a non-negative integer\n");
        return 2;
      }
      config.seed = static_cast<uint64_t>(*parsed);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (config.socket_path.empty()) {
    return Usage(argv[0]);
  }
  if (config.mode != "closed" && config.mode != "open") {
    std::fprintf(stderr, "error: --mode must be closed or open\n");
    return 2;
  }
  if (config.pattern != "steady" && config.pattern != "poisson" &&
      config.pattern != "diurnal" && config.pattern != "flash") {
    std::fprintf(stderr,
                 "error: --pattern must be steady, poisson, diurnal, or flash\n");
    return 2;
  }

  // One profiled description shared by every job, rendered once into the
  // ADMIT line suffix (the description document dominates the line).
  if (!workloads::Exists(config.workload)) {
    return tools::FailWith(Status::NotFound(
        StrFormat("unknown --workload '%s'", config.workload.c_str())));
  }
  const eval::Pipeline pipeline("x3-2");
  const std::string description_text = WorkloadDescriptionToText(
      pipeline.Profile(workloads::ByName(config.workload)));
  const std::string admit_suffix = StrFormat(
      " threads=%d desc.%s=%s", config.job_threads,
      pipeline.description().topo.name.c_str(),
      wire::EscapeValue(description_text).c_str());

  std::fprintf(stderr,
               "pandia_loadgen: %s loop, pattern=%s, %d request(s), "
               "%d connection(s), batch=%d, seed=%llu\n",
               config.mode.c_str(), config.pattern.c_str(), config.requests,
               config.connections, config.batch,
               static_cast<unsigned long long>(config.seed));

  const int64_t start_ns = NowNs();
  std::vector<WorkerResult> results(
      static_cast<size_t>(config.mode == "closed" ? config.connections : 1));
  std::vector<Status> statuses(results.size(), Status::Ok());
  if (config.mode == "closed") {
    std::vector<std::thread> workers;
    workers.reserve(results.size());
    for (size_t w = 0; w < results.size(); ++w) {
      workers.emplace_back([&, w] {
        statuses[w] = RunClosedWorker(config, static_cast<int>(w),
                                      admit_suffix, results[w]);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  } else {
    statuses[0] = RunOpenLoop(config, admit_suffix, results[0]);
  }
  const double wall_s = static_cast<double>(NowNs() - start_ns) / 1e9;

  for (const Status& status : statuses) {
    if (!status.ok()) {
      return tools::FailWith(status, config.socket_path);
    }
  }
  WorkerResult total;
  for (const WorkerResult& result : results) {
    total.admits += result.admits;
    total.rejected += result.rejected;
    total.errors += result.errors;
  }
  const double admits_per_second =
      wall_s > 0.0 ? static_cast<double>(total.admits) / wall_s : 0.0;
  const double p50_us = AdmitLatency().Percentile(0.50);
  const double p90_us = AdmitLatency().Percentile(0.90);
  const double p99_us = AdmitLatency().Percentile(0.99);
  std::fprintf(stderr,
               "pandia_loadgen: %lld admit(s) in %.3fs = %.1f admits/sec; "
               "latency p50=%.1fus p90=%.1fus p99=%.1fus; "
               "rejected=%lld error(s)=%lld\n",
               static_cast<long long>(total.admits), wall_s, admits_per_second,
               p50_us, p90_us, p99_us, static_cast<long long>(total.rejected),
               static_cast<long long>(total.errors));

  if (!config.json_out.empty()) {
    if (Status written =
            WriteJsonReport(config, admits_per_second, total.admits, wall_s,
                            p50_us, p90_us, p99_us);
        !written.ok()) {
      return tools::FailWith(written, config.json_out);
    }
  }
  if (total.errors > 0 || total.admits == 0) {
    std::fprintf(stderr, "error: load run failed (%lld error(s), %lld admit(s))\n",
                 static_cast<long long>(total.errors),
                 static_cast<long long>(total.admits));
    return 1;
  }
  return 0;
}
