// pandia-serve: the long-running placement service daemon (paper §8 — rack
// scheduling as an online service).
//
//   pandia_serve --machine NAME=SPEC [--machine NAME=SPEC ...] [flags]
//
// Each --machine adds one rack machine: NAME is the instance name ("node0")
// and SPEC is either a stored machine-description file or the name of a
// simulated machine (x5-2, x4-2, x3-2, x2-4 — the description is then
// generated from stress runs). Machines of different types can share one
// rack; jobs are placed only on types they carry a description for.
//
// Requests arrive as wire-v1 lines (src/serialize/wire.h) on stdin and/or
// on a Unix-domain socket; every request gets a structured response block
// and no request ever aborts the daemon. The daemon exits on stdin EOF or
// an acknowledged SHUTDOWN request.
//
// Flags:
//   --machine NAME=SPEC  add a rack machine (repeatable, at least one)
//   --policy=P           default admission policy: first-fit, best-speedup
//                        (default), least-interference
//   --journal=FILE       durable checksummed mutation journal; recovered and
//                        replayed on startup when the file exists (restart
//                        recovery, including torn-tail truncation)
//   --sync=P             journal fsync policy: none, interval (default:
//                        fsync every --sync-interval records), every-record
//   --sync-interval=N    records per fsync under --sync=interval (default 32)
//   --compact-min-records=N  automatic-compaction floor: never snapshot
//                        before N records accumulated past the last one
//   --replace-margin=X   relative speedup margin before DEPART/REBALANCE
//                        re-places a neighbour (default 0.02; raise it to
//                        make departures cheaper under heavy load)
//   --shards=N           fleet mode: shard the machines across N placement
//                        shards, each with its own journal
//                        (<journal>.shard<k>) and telemetry (default 1:
//                        plain single-rack service)
//   --shard-policy=P     fleet admission routing: consistent-hash (default)
//                        or least-loaded
//   --socket=PATH        also listen on a Unix-domain socket at PATH
//   --jobs=N, --trace-out=FILE, --metrics  (tools/tool_common.h; the
//                        observability tables go to stderr — stdout carries
//                        response blocks)
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

namespace {

using namespace pandia;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --machine NAME=SPEC [--machine NAME=SPEC ...] "
               "[--policy=P] [--journal=FILE] [--sync=none|interval|every-record] "
               "[--sync-interval=N] [--compact-min-records=N] "
               "[--replace-margin=X] [--shards=N] "
               "[--shard-policy=consistent-hash|least-loaded] [--socket=PATH] "
               "[--jobs=N] [--trace-out=FILE] [--metrics] [--metrics-out=FILE]\n"
               "  SPEC: a machine-description file or a simulated machine "
               "(x5-2, x4-2, x3-2, x2-4)\n",
               argv0);
  return 2;
}

// NAME=SPEC -> RackMachine, loading or generating the description.
StatusOr<rack::RackMachine> LoadMachine(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
    return Status::InvalidArgument(
        StrFormat("--machine needs NAME=SPEC, got '%s'", spec.c_str()));
  }
  rack::RackMachine machine;
  machine.name = spec.substr(0, eq);
  const std::string source = spec.substr(eq + 1);
  if (const StatusOr<std::string> text = ReadTextFile(source); text.ok()) {
    StatusOr<MachineDescription> parsed = MachineDescriptionFromText(*text);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    source + ": " + std::string(parsed.status().message()));
    }
    machine.description = std::move(*parsed);
    return machine;
  }
  const std::vector<std::string> known = sim::KnownMachineNames();
  if (std::find(known.begin(), known.end(), source) == known.end()) {
    return Status::InvalidArgument(StrFormat(
        "'%s' is neither a readable machine description nor a known machine "
        "(x5-2, x4-2, x3-2, x2-4)",
        source.c_str()));
  }
  machine.description =
      GenerateMachineDescription(sim::Machine{sim::MachineByName(source)});
  return machine;
}

}  // namespace

int main(int argc, char** argv) {
  // A client (or the shell pipeline reading stdout) that vanishes must cost
  // one failed write, never the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  tools::CommonFlags common;
  std::vector<rack::RackMachine> machines;
  serve::ServiceOptions options;
  std::string socket_path;
  int shards = 1;
  rack::ShardPolicy shard_policy = rack::ShardPolicy::kConsistentHash;
  for (int i = 1; i < argc; ++i) {
    const tools::FlagParse parsed = common.Match(argv[i]);
    if (parsed == tools::FlagParse::kError) {
      return 2;
    }
    if (parsed == tools::FlagParse::kOk) {
      continue;
    }
    if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      StatusOr<rack::RackMachine> machine = LoadMachine(argv[++i]);
      if (!machine.ok()) {
        return tools::FailWith(machine.status());
      }
      machines.push_back(std::move(*machine));
    } else if (std::strncmp(argv[i], "--machine=", 10) == 0) {
      StatusOr<rack::RackMachine> machine = LoadMachine(argv[i] + 10);
      if (!machine.ok()) {
        return tools::FailWith(machine.status());
      }
      machines.push_back(std::move(*machine));
    } else if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      const StatusOr<rack::Policy> policy = rack::PolicyFromName(argv[i] + 9);
      if (!policy.ok()) {
        return tools::FailWith(policy.status());
      }
      options.default_policy = *policy;
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      options.journal_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--sync=", 7) == 0) {
      const StatusOr<serve::SyncPolicy> policy =
          serve::SyncPolicyFromName(argv[i] + 7);
      if (!policy.ok()) {
        return tools::FailWith(policy.status());
      }
      options.journal.sync = *policy;
    } else if (std::strncmp(argv[i], "--sync-interval=", 16) == 0) {
      const StatusOr<int> value =
          tools::ParseIntFlag(argv[i] + 16, "--sync-interval");
      if (!value.ok() || *value < 1) {
        std::fprintf(stderr, "error: --sync-interval needs a positive integer\n");
        return 2;
      }
      options.journal.sync_interval_records = *value;
    } else if (std::strncmp(argv[i], "--compact-min-records=", 22) == 0) {
      const StatusOr<int> value =
          tools::ParseIntFlag(argv[i] + 22, "--compact-min-records");
      if (!value.ok() || *value < 1) {
        std::fprintf(stderr,
                     "error: --compact-min-records needs a positive integer\n");
        return 2;
      }
      options.compact_min_records = static_cast<uint64_t>(*value);
    } else if (std::strncmp(argv[i], "--replace-margin=", 17) == 0) {
      char* end = nullptr;
      const double margin = std::strtod(argv[i] + 17, &end);
      if (end == argv[i] + 17 || *end != '\0' || margin < 0.0) {
        std::fprintf(stderr,
                     "error: --replace-margin needs a non-negative number\n");
        return 2;
      }
      options.replace_margin = margin;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const StatusOr<int> value = tools::ParseIntFlag(argv[i] + 9, "--shards");
      if (!value.ok() || *value < 1) {
        std::fprintf(stderr, "error: --shards needs a positive integer\n");
        return 2;
      }
      shards = *value;
    } else if (std::strncmp(argv[i], "--shard-policy=", 15) == 0) {
      const StatusOr<rack::ShardPolicy> policy =
          rack::ShardPolicyFromName(argv[i] + 15);
      if (!policy.ok()) {
        return tools::FailWith(policy.status());
      }
      shard_policy = *policy;
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socket_path = argv[i] + 9;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (machines.empty()) {
    std::fprintf(stderr, "error: at least one --machine is required\n");
    return Usage(argv[0]);
  }
  common.ActivateTracing();
  common.Apply(options.prediction.common);

  const size_t machine_count = machines.size();
  // Fleet mode owns N services; single-rack mode keeps the plain service so
  // a 1-shard daemon is byte-identical to the pre-fleet one.
  std::unique_ptr<serve::FleetService> fleet;
  std::unique_ptr<serve::PlacementService> single;
  serve::RequestHandler* handler = nullptr;
  int replayed = 0;
  if (shards > 1) {
    serve::FleetOptions fleet_options;
    fleet_options.shards = shards;
    fleet_options.shard_policy = shard_policy;
    fleet_options.service = std::move(options);
    StatusOr<std::unique_ptr<serve::FleetService>> created =
        serve::FleetService::Create(std::move(machines), std::move(fleet_options));
    if (!created.ok()) {
      return tools::FailWith(created.status());
    }
    fleet = std::move(created).value();
    for (int k = 0; k < fleet->num_shards(); ++k) {
      replayed += fleet->shard(k).rack().JobCount();
    }
    handler = fleet.get();
  } else {
    StatusOr<serve::PlacementService> service =
        serve::PlacementService::Create(std::move(machines), std::move(options));
    if (!service.ok()) {
      return tools::FailWith(service.status());
    }
    single = std::make_unique<serve::PlacementService>(std::move(service).value());
    replayed = single->rack().JobCount();
    handler = single.get();
  }
  std::fprintf(stderr,
               "pandia_serve: %zu machine(s), %d shard(s), %d job(s) "
               "replayed%s%s\n",
               machine_count, shards, replayed,
               socket_path.empty() ? "" : ", listening on ",
               socket_path.c_str());

  Status served = Status::Ok();
  if (socket_path.empty()) {
    served = serve::RunEventLoop(*handler, /*stdin_fd=*/0, stdout, nullptr);
  } else {
    StatusOr<serve::SocketServer> server = serve::SocketServer::Listen(socket_path);
    if (!server.ok()) {
      return tools::FailWith(server.status());
    }
    served = serve::RunEventLoop(*handler, /*stdin_fd=*/0, stdout, &*server);
  }
  if (!served.ok()) {
    return tools::FailWith(served);
  }
  return common.Finish(stderr);
}
