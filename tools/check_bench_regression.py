#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a freshly produced google-benchmark JSON file against a committed
baseline and fails (exit 1) when any benchmark's throughput — predictions per
second, i.e. the inverse of per-iteration real time — regresses by more than
the allowed percentage.

Aggregation: when benchmarks were run with repetitions, only the "median"
aggregate rows are compared; when the run produced raw repetition rows with
no aggregates, the median of the repetitions is taken here. Medians (never
means) keep the gate robust to one noisy repetition on a shared CI runner.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json [--tolerance N]
      [--require-speedup NAME:FACTOR]... [--json-out FILE] [--fail-on-missing]
  check_bench_regression.py CURRENT.json BASELINE.json --update

--tolerance N (alias --max-regression-pct) is the maximum allowed throughput
drop in percent; it can also come from the PANDIA_BENCH_THRESHOLD environment
variable (the command-line flag wins).

--require-speedup NAME:FACTOR asserts that the current run's throughput for
NAME is at least FACTOR times the baseline's — the gate for "this change must
make benchmark X at least FACTOR x faster". Repeatable. NAME must exist in
both files.

--fail-on-missing makes benchmarks present in the baseline but absent from
the current run an error instead of a note, so a benchmark family silently
falling out of the bench binary cannot pass the gate.

--json-out FILE writes a machine-readable report (per-benchmark baseline /
current / delta plus the overall verdict) for CI artifact upload.

--update rewrites BASELINE.json from CURRENT.json (stripping run-specific
context like date and host, keeping build-type and CPU keys) instead of
checking; use it to refresh the committed baseline after an intentional perf
change.
"""

import argparse
import json
import os
import sys

# Context keys that survive --update: they describe how comparable a
# baseline is (build type, CPU count, pinning), not when/where it ran.
BASELINE_CONTEXT_KEYS = (
    "num_cpus",
    "library_build_type",
    "pandia_build_type",
    "pandia_hardware_threads",
    "pandia_pinned_cpu",
)


def _median(values):
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _throughput(row):
    """Items/sec for one benchmark row, preferring the reported
    items_per_second over the inverse of real_time."""
    if "items_per_second" in row:
        return float(row["items_per_second"])
    real_time = float(row["real_time"])
    scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[row.get("time_unit", "ns")]
    seconds = real_time * scale
    if seconds <= 0:
        return None
    return 1.0 / seconds


def load_rows(path):
    """Returns (doc, {benchmark name: median throughput in items/sec}) from a
    google-benchmark JSON file."""
    with open(path) as f:
        doc = json.load(f)
    benchmarks = doc.get("benchmarks", [])
    aggregates = [b for b in benchmarks if b.get("run_type") == "aggregate"]
    if aggregates:
        benchmarks = [b for b in aggregates if b.get("aggregate_name") == "median"]
    samples = {}
    for b in benchmarks:
        name = b.get("run_name") or b["name"]
        value = _throughput(b)
        if value is not None:
            samples.setdefault(name, []).append(value)
    return doc, {name: _median(values) for name, values in samples.items()}


def update_baseline(current_path, baseline_path):
    with open(current_path) as f:
        doc = json.load(f)
    # Drop run-specific context so baseline diffs only show perf changes.
    context = doc.get("context", {})
    doc["context"] = {k: context[k] for k in BASELINE_CONTEXT_KEYS if k in context}
    with open(baseline_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"baseline updated: {baseline_path}")


def parse_require_speedup(spec):
    name, sep, factor = spec.rpartition(":")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"--require-speedup wants NAME:FACTOR, got {spec!r}"
        )
    try:
        value = float(factor)
    except ValueError as err:
        raise argparse.ArgumentTypeError(
            f"--require-speedup factor must be a number, got {factor!r}"
        ) from err
    if value <= 0:
        raise argparse.ArgumentTypeError("--require-speedup factor must be positive")
    return name, value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark JSON from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        "--max-regression-pct",
        dest="tolerance",
        type=float,
        default=float(os.environ.get("PANDIA_BENCH_THRESHOLD", "20")),
        help="maximum allowed throughput drop, in percent (default 20, "
        "or PANDIA_BENCH_THRESHOLD)",
    )
    parser.add_argument(
        "--require-speedup",
        type=parse_require_speedup,
        action="append",
        default=[],
        metavar="NAME:FACTOR",
        help="require current throughput of NAME to be at least FACTOR x "
        "the baseline's (repeatable)",
    )
    parser.add_argument(
        "--fail-on-missing",
        action="store_true",
        help="benchmarks in the baseline but not in the current run fail "
        "the gate instead of being noted",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        help="write a machine-readable comparison report to FILE",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current results instead of checking",
    )
    args = parser.parse_args()

    if args.update:
        update_baseline(args.current, args.baseline)
        return 0

    _, current = load_rows(args.current)
    _, baseline = load_rows(args.baseline)

    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}", file=sys.stderr)
        return 1
    if not current:
        print(f"error: no benchmarks in current {args.current}", file=sys.stderr)
        return 1

    threshold = args.tolerance
    regressions = []
    missing = []
    report = {
        "tolerance_pct": threshold,
        "benchmarks": [],
        "missing": [],
        "new": [],
        "speedup_requirements": [],
    }
    print(f"{'benchmark':<44} {'baseline/s':>14} {'current/s':>14} {'delta':>8}")
    for name in sorted(baseline):
        if name not in current:
            missing.append(name)
            report["missing"].append(name)
            print(f"{name:<44} {baseline[name]:>14.1f} {'missing':>14} {'--':>8}")
            continue
        delta_pct = (current[name] / baseline[name] - 1.0) * 100.0
        regressed = delta_pct < -threshold
        if regressed:
            regressions.append((name, delta_pct))
        report["benchmarks"].append(
            {
                "name": name,
                "baseline_items_per_second": baseline[name],
                "current_items_per_second": current[name],
                "delta_pct": delta_pct,
                "regressed": regressed,
            }
        )
        marker = "  <-- REGRESSION" if regressed else ""
        print(
            f"{name:<44} {baseline[name]:>14.1f} {current[name]:>14.1f} "
            f"{delta_pct:>+7.1f}%{marker}"
        )
    for name in sorted(set(current) - set(baseline)):
        report["new"].append(name)
        print(f"{name:<44} {'(new)':>14} {current[name]:>14.1f} {'--':>8}")

    unmet = []
    for name, factor in args.require_speedup:
        if name not in baseline or name not in current:
            unmet.append((name, factor, None))
            report["speedup_requirements"].append(
                {"name": name, "required_factor": factor, "actual_factor": None,
                 "met": False}
            )
            continue
        actual = current[name] / baseline[name]
        met = actual >= factor
        if not met:
            unmet.append((name, factor, actual))
        report["speedup_requirements"].append(
            {"name": name, "required_factor": factor, "actual_factor": actual,
             "met": met}
        )
        print(
            f"require-speedup {name}: {actual:.2f}x "
            f"(need >= {factor:.2f}x) {'ok' if met else 'UNMET'}"
        )

    failed = bool(regressions) or bool(unmet) or (args.fail_on_missing and missing)
    report["ok"] = not failed
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0f}% vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, delta_pct in regressions:
            print(f"  {name}: {delta_pct:+.1f}%", file=sys.stderr)
        print(
            "If the regression is intended, refresh the baseline with:\n"
            f"  python3 tools/check_bench_regression.py {args.current} "
            f"{args.baseline} --update",
            file=sys.stderr,
        )
    if args.fail_on_missing and missing:
        print(
            f"\nFAIL: {len(missing)} baseline benchmark(s) missing from the "
            f"current run: {', '.join(missing)}",
            file=sys.stderr,
        )
    for name, factor, actual in unmet:
        if actual is None:
            print(
                f"\nFAIL: --require-speedup {name}:{factor} — benchmark not "
                "present in both files",
                file=sys.stderr,
            )
        else:
            print(
                f"\nFAIL: {name} is {actual:.2f}x the baseline, required "
                f">= {factor:.2f}x",
                file=sys.stderr,
            )
    if failed:
        return 1
    print(f"\nOK: no benchmark regressed more than {threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
