#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a freshly produced google-benchmark JSON file against a committed
baseline and fails (exit 1) when any benchmark's throughput — predictions per
second, i.e. the inverse of per-iteration real time — regresses by more than
the allowed percentage. Benchmarks present in only one of the two files are
reported but never fail the gate, so adding or removing a benchmark does not
require touching the baseline in the same commit.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json [--max-regression-pct N]
  check_bench_regression.py CURRENT.json BASELINE.json --update

--update rewrites BASELINE.json from CURRENT.json (stripping run-specific
context like date and host) instead of checking; use it to refresh the
committed baseline after an intentional perf change.

The threshold can also come from the PANDIA_BENCH_THRESHOLD environment
variable; the command-line flag wins. When benchmarks were run with
repetitions + aggregates, only the "median" aggregate rows are compared,
which makes the gate robust to one noisy repetition on a shared CI runner.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    """Returns {benchmark name: throughput in items/sec} from a google-benchmark
    JSON file. Prefers median aggregates when present, and items_per_second
    over the inverse of real_time when the benchmark reports it."""
    with open(path) as f:
        doc = json.load(f)
    benchmarks = doc.get("benchmarks", [])
    aggregates = [b for b in benchmarks if b.get("run_type") == "aggregate"]
    if aggregates:
        benchmarks = [b for b in aggregates if b.get("aggregate_name") == "median"]
    rows = {}
    for b in benchmarks:
        name = b.get("run_name") or b["name"]
        if "items_per_second" in b:
            rows[name] = float(b["items_per_second"])
            continue
        real_time = float(b["real_time"])
        # Normalize the time unit to seconds, then invert.
        scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[b.get("time_unit", "ns")]
        seconds = real_time * scale
        if seconds <= 0:
            continue
        rows[name] = 1.0 / seconds
    return doc, rows


def update_baseline(current_path, baseline_path):
    with open(current_path) as f:
        doc = json.load(f)
    # Drop run-specific context so baseline diffs only show perf changes.
    context = doc.get("context", {})
    doc["context"] = {
        k: context[k]
        for k in ("num_cpus", "library_build_type")
        if k in context
    }
    with open(baseline_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"baseline updated: {baseline_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark JSON from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--max-regression-pct",
        type=float,
        default=float(os.environ.get("PANDIA_BENCH_THRESHOLD", "20")),
        help="maximum allowed throughput drop, in percent (default 20, "
        "or PANDIA_BENCH_THRESHOLD)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current results instead of checking",
    )
    args = parser.parse_args()

    if args.update:
        update_baseline(args.current, args.baseline)
        return 0

    _, current = load_rows(args.current)
    _, baseline = load_rows(args.baseline)

    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}", file=sys.stderr)
        return 1

    threshold = args.max_regression_pct
    failures = []
    print(f"{'benchmark':<44} {'baseline/s':>14} {'current/s':>14} {'delta':>8}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:<44} {baseline[name]:>14.1f} {'missing':>14} {'--':>8}")
            continue
        delta_pct = (current[name] / baseline[name] - 1.0) * 100.0
        marker = ""
        if delta_pct < -threshold:
            failures.append((name, delta_pct))
            marker = "  <-- REGRESSION"
        print(
            f"{name:<44} {baseline[name]:>14.1f} {current[name]:>14.1f} "
            f"{delta_pct:>+7.1f}%{marker}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<44} {'(new)':>14} {current[name]:>14.1f} {'--':>8}")

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{threshold:.0f}% vs {args.baseline}:",
            file=sys.stderr,
        )
        for name, delta_pct in failures:
            print(f"  {name}: {delta_pct:+.1f}%", file=sys.stderr)
        print(
            "If the regression is intended, refresh the baseline with:\n"
            f"  python3 tools/check_bench_regression.py {args.current} "
            f"{args.baseline} --update",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no benchmark regressed more than {threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
