// pandia-machine: generate a machine description (paper §3).
//
//   pandia_machine <machine> [output-file]
//
// <machine> is one of the simulated machines (x5-2, x4-2, x3-2, x2-4); on
// real hardware this step would run the stress applications under perf.
// Without an output file the description is printed to stdout.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

int main(int argc, char** argv) {
  using namespace pandia;
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <x5-2|x4-2|x3-2|x2-4> [output-file]\n", argv[0]);
    return 2;
  }
  const std::vector<std::string> known = sim::KnownMachineNames();
  if (std::find(known.begin(), known.end(), argv[1]) == known.end()) {
    std::fprintf(stderr, "error: unknown machine '%s' (known: x5-2, x4-2, x3-2, x2-4)\n",
                 argv[1]);
    return 2;
  }
  const sim::Machine machine{sim::MachineByName(argv[1])};
  const MachineDescription desc = GenerateMachineDescription(machine);
  const std::string text = MachineDescriptionToText(desc);
  if (argc == 3) {
    const Status written = WriteTextFile(argv[2], text);
    if (!written.ok()) {
      return tools::FailWith(written);
    }
    std::printf("wrote %s (%s)\n", argv[2], desc.ToString().c_str());
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}
