// pandia_analyze — the whole-repo semantic analyzer (src/lint/analyze.h).
//
//   pandia_analyze [--root=DIR] [PATH...]   analyze PATHs (default: src tests
//                                           tools, plus DESIGN.md when present)
//   pandia_analyze --dot-out=FILE           also write the lock-order digraph
//                                           as Graphviz DOT
//   pandia_analyze --ranks                  print the topological lock order
//                                           and declared ranks, then exit
//   pandia_analyze --list-rules             print the cross-file rules
//
// Two phases: every .h/.cc under the targets is lexed into cross-file facts
// (Status-returning functions, lock declarations and acquisition edges, the
// wire-verb inventory vs. dispatch sites, metric registrations, DESIGN.md's
// documented inventories), then the cross-file rules run over the facts.
// Output is one "file:line: rule: message" diagnostic per finding; exit code
// 0 when clean, 1 when anything fired, 2 on usage or I/O errors. Suppress a
// deliberate violation on its anchor line with
//   // pandia-lint: allow(<rule>) <why>
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/lint/analyze.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool CollectFiles(const fs::path& root, const std::string& target,
                  std::vector<std::string>* files) {
  std::error_code ec;
  const fs::path full = root / target;
  if (fs::is_regular_file(full, ec)) {
    files->push_back(target);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    std::fprintf(stderr, "pandia_analyze: no such file or directory: %s\n",
                 full.string().c_str());
    return false;
  }
  for (fs::recursive_directory_iterator it(full, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::fprintf(stderr, "pandia_analyze: error walking %s: %s\n",
                   full.string().c_str(), ec.message().c_str());
      return false;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      files->push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
  std::sort(files->begin(), files->end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string dot_out;
  bool print_ranks = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const pandia::lint::RuleInfo& rule : pandia::lint::AnalyzerRules()) {
        std::printf("%-17s %s\n", std::string(rule.name).c_str(),
                    std::string(rule.summary).c_str());
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = std::string(arg.substr(7));
      continue;
    }
    if (arg.rfind("--dot-out=", 0) == 0) {
      dot_out = std::string(arg.substr(10));
      continue;
    }
    if (arg == "--ranks") {
      print_ranks = true;
      continue;
    }
    if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: pandia_analyze [--root=DIR] [--dot-out=FILE] "
                   "[--ranks] [PATH...]\n"
                   "       pandia_analyze --list-rules\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
    targets.emplace_back(arg);
  }
  if (targets.empty()) {
    targets = {"src", "tests", "tools"};
  }

  std::vector<std::string> paths;
  for (const std::string& target : targets) {
    if (!CollectFiles(root, target, &paths)) return 2;
  }

  std::vector<pandia::lint::SourceFile> files;
  files.reserve(paths.size() + 1);
  for (const std::string& path : paths) {
    pandia::lint::SourceFile file;
    file.path = path;
    if (!ReadFile(fs::path(root) / path, &file.content)) {
      std::fprintf(stderr, "pandia_analyze: cannot read %s\n", path.c_str());
      return 2;
    }
    files.push_back(std::move(file));
  }
  {
    std::error_code ec;
    const fs::path design = fs::path(root) / "DESIGN.md";
    if (fs::is_regular_file(design, ec)) {
      pandia::lint::SourceFile file;
      file.path = "DESIGN.md";
      if (!ReadFile(design, &file.content)) {
        std::fprintf(stderr, "pandia_analyze: cannot read DESIGN.md\n");
        return 2;
      }
      files.push_back(std::move(file));
    }
  }

  pandia::lint::AnalyzeResult result = pandia::lint::AnalyzeFiles(files);

  if (!dot_out.empty()) {
    std::ofstream out(dot_out, std::ios::binary);
    out << pandia::lint::LockGraphDot(result.facts);
    if (!out) {
      std::fprintf(stderr, "pandia_analyze: cannot write %s\n",
                   dot_out.c_str());
      return 2;
    }
  }

  if (print_ranks) {
    std::printf("%-28s %-8s declared at\n", "lock (topological order)", "rank");
    for (const std::string& id :
         pandia::lint::TopologicalLockOrder(result.facts)) {
      std::string rank = "-";
      std::string where = "-";
      for (const pandia::lint::LockDecl& decl : result.facts.locks) {
        if (decl.id != id) continue;
        if (decl.has_rank) rank = std::to_string(decl.rank);
        where = decl.file + ":" + std::to_string(decl.line);
        break;
      }
      std::printf("%-28s %-8s %s\n", id.c_str(), rank.c_str(), where.c_str());
    }
    return 0;
  }

  for (const pandia::lint::Finding& finding : result.findings) {
    std::printf("%s\n", pandia::lint::FormatFinding(finding).c_str());
  }
  if (!result.findings.empty()) {
    std::fprintf(stderr, "pandia_analyze: %zu finding%s across %zu files\n",
                 result.findings.size(),
                 result.findings.size() == 1 ? "" : "s", files.size());
    return 1;
  }
  return 0;
}
