// pandia-trace-check: validate an emitted Chrome trace_event JSON file.
//
//   pandia_trace_check <trace.json> [required-span-name ...]
//
// Exits 0 when the file is well-formed JSON, has a "traceEvents" array with
// at least one complete ("ph":"X") event, and contains every
// required-span-name among the event names. Used by the ctest smoke test to
// gate the tools' --trace-out output, and handy as a standalone sanity check
// before shipping a trace to chrome://tracing.
#include <cstdio>
#include <string>

#include "src/pandia.h"

int main(int argc, char** argv) {
  using namespace pandia;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [required-span-name ...]\n", argv[0]);
    return 2;
  }
  const StatusOr<std::string> text = ReadTextFile(argv[1]);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
    return 1;
  }
  std::string error;
  if (!obs::LintJson(*text, &error)) {
    std::fprintf(stderr, "error: %s is not valid JSON: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (text->find("\"traceEvents\"") == std::string::npos) {
    std::fprintf(stderr, "error: %s has no \"traceEvents\" array\n", argv[1]);
    return 1;
  }
  if (text->find("\"ph\":\"X\"") == std::string::npos) {
    std::fprintf(stderr, "error: %s contains no complete (\"ph\":\"X\") events\n",
                 argv[1]);
    return 1;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string needle = StrFormat("\"name\":\"%s\"", argv[i]);
    if (text->find(needle) == std::string::npos) {
      std::fprintf(stderr, "error: %s contains no span named '%s'\n", argv[1],
                   argv[i]);
      return 1;
    }
  }
  std::printf("%s: ok (%zu bytes)\n", argv[1], text->size());
  return 0;
}
