// pandia-soak: the kill-injection soak harness for the crash-safe serving
// stack (journal v2 + snapshot/compaction + torn-write recovery).
//
//   pandia_soak [--cycles=N] [--events-per-cycle=N] [--seed=S] [--dir=PATH]
//               [--report=FILE] [--sync=none|interval|every-record]
//               [--max-journal-bytes=N]
//
// Each cycle forks a child that runs an in-process PlacementService against
// a shared on-disk journal and drives it through seeded random traffic
// (ADMIT/DEPART/REBALANCE/COMPACT). The child dies one of two ways:
//
//   - clean kill: after a seeded number of events the child snapshots its
//     acknowledged STATUS + TELEMETRY to a file, then raise(SIGKILL)s
//     itself — uncatchable, no destructors, no extra flushing. The parent
//     recovers from the journal and asserts the recovered STATUS and
//     TELEMETRY are byte-identical to what the dead child had acknowledged.
//   - torn crash: the child sets PANDIA_JOURNAL_CRASH_AT (a test-only hook;
//     see src/serve/journal.h) so the journal itself dies mid-append —
//     half a record flushed — or mid-compaction (after the tmp fsync, or
//     right after the rename). Nothing was acknowledged for the torn
//     record, so the assertion is recovery determinism: two independent
//     replays of the damaged journal must agree byte for byte.
//
// Every cycle additionally asserts the journal stays bounded (compaction is
// doing its job), and the run ends with an explicit COMPACT + restart
// proving the whole state fits one snapshot record whose replay is
// byte-identical.
//
// Defaults (--cycles=100 --events-per-cycle=20000) cover >= 100 kills over
// >= 1,000,000 attempted events (clean kills stop mid-cycle, so the mean
// per-cycle count is about 2/3 of the flag) — the acceptance-criterion
// soak; budget tens of minutes for it. CI runs a reduced --cycles=25; the
// ctest smoke runs 4.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

namespace {

using namespace pandia;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cycles=N] [--events-per-cycle=N] [--seed=S] "
               "[--dir=PATH] [--report=FILE] "
               "[--sync=none|interval|every-record] [--max-journal-bytes=N]\n",
               argv0);
  return 2;
}

const eval::Pipeline& X3() {
  static const eval::Pipeline* pipeline = new eval::Pipeline("x3-2");
  return *pipeline;
}

const std::string& DescriptionText(const std::string& workload) {
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  auto it = cache->find(workload);
  if (it == cache->end()) {
    it = cache
             ->emplace(workload, WorkloadDescriptionToText(
                                     X3().Profile(workloads::ByName(workload))))
             .first;
  }
  return it->second;
}

std::vector<rack::RackMachine> SoakRack() {
  std::vector<rack::RackMachine> machines;
  for (int i = 0; i < 2; ++i) {
    machines.push_back({StrFormat("node%d", i), X3().description()});
  }
  return machines;
}

serve::ServiceOptions SoakOptions(const std::string& journal_path,
                                  serve::SyncPolicy sync) {
  serve::ServiceOptions options;
  options.journal_path = journal_path;
  options.journal.sync = sync;
  // Low floor so compaction fires many times per cycle, not once an hour.
  options.compact_min_records = 128;
  return options;
}

// What a cycle does to the child, decided up front from the seeded RNG so a
// failure reproduces from (--seed, cycle index) alone.
struct CyclePlan {
  std::string crash_at;   // PANDIA_JOURNAL_CRASH_AT value; empty = clean kill
  uint64_t kill_after;    // clean kill: events processed before SIGKILL
  uint64_t events;
};

CyclePlan PlanCycle(Rng& rng, uint64_t events_per_cycle) {
  CyclePlan plan;
  plan.events = events_per_cycle;
  plan.kill_after = 1 + rng.NextBounded(events_per_cycle);
  // Every third cycle (on average) injects a torn write instead of a clean
  // kill, rotating through the three crash stages.
  if (rng.NextBounded(3) == 0) {
    switch (rng.NextBounded(3)) {
      case 0:
        plan.crash_at = StrFormat(
            "append:%llu",
            static_cast<unsigned long long>(1 + rng.NextBounded(
                                                    events_per_cycle / 2 + 1)));
        break;
      case 1:
        plan.crash_at = "compact-tmp";
        break;
      default:
        plan.crash_at = "compact-rename";
        break;
    }
  }
  return plan;
}

std::vector<std::string> ResidentNames(serve::PlacementService& service) {
  std::vector<std::string> names;
  const std::string status = service.HandleLine("STATUS");
  size_t at = 0;
  while ((at = status.find("job = ", at)) != std::string::npos) {
    at += 6;
    const size_t end = status.find(' ', at);
    names.push_back(status.substr(at, end - at));
  }
  return names;
}

// The child half of one cycle: runs the service, applies traffic, dies.
// Never returns. Everything here must be deterministic in `rng`.
[[noreturn]] void RunChildCycle(const CyclePlan& plan, Rng rng,
                                const std::string& journal_path,
                                const std::string& prekill_path,
                                serve::SyncPolicy sync, uint64_t cycle,
                                uint64_t names_minted) {
  if (!plan.crash_at.empty()) {
    ::setenv("PANDIA_JOURNAL_CRASH_AT", plan.crash_at.c_str(), 1);
  }
  StatusOr<serve::PlacementService> service = serve::PlacementService::Create(
      SoakRack(), SoakOptions(journal_path, sync));
  if (!service.ok()) {
    std::fprintf(stderr, "soak child (cycle %llu): %s\n",
                 static_cast<unsigned long long>(cycle),
                 service.status().ToString().c_str());
    std::_Exit(3);
  }
  std::vector<std::string> resident = ResidentNames(*service);
  static const char* const kWorkloads[] = {"EP", "MD", "CG", "BT"};
  uint64_t minted = names_minted;
  for (uint64_t i = 0; i < plan.events; ++i) {
    if (plan.crash_at.empty() && i == plan.kill_after) {
      break;
    }
    std::string line;
    const uint64_t dice = rng.NextBounded(100);
    // Crash-injected cycles force periodic COMPACTs so the compact-tmp and
    // compact-rename hooks actually get a compaction to die inside.
    const bool forced_compact = !plan.crash_at.empty() && i % 40 == 13;
    if (forced_compact || dice >= 96) {
      line = "COMPACT";
    } else if (dice < 55 || resident.empty()) {
      wire::Request request;
      request.verb = "ADMIT";
      const std::string name =
          StrFormat("job%llu", static_cast<unsigned long long>(minted++));
      request.params.emplace_back("name", name);
      request.params.emplace_back(
          "threads", StrFormat("%llu", static_cast<unsigned long long>(
                                           1 + rng.NextBounded(3))));
      request.params.emplace_back("desc.x3-2",
                                  DescriptionText(kWorkloads[rng.NextBounded(4)]));
      line = wire::FormatRequest(request);
      if (service->HandleLine(line).rfind("ok ", 0) == 0) {
        resident.push_back(name);
      }
      continue;
    } else if (dice < 90) {
      const size_t victim = rng.NextBounded(resident.size());
      line = StrFormat("DEPART name=%s", resident[victim].c_str());
      if (service->HandleLine(line).rfind("ok ", 0) == 0) {
        resident.erase(resident.begin() + static_cast<long>(victim));
      }
      continue;
    } else {
      line = StrFormat("REBALANCE max-migrations=%llu",
                       static_cast<unsigned long long>(1 + rng.NextBounded(4)));
    }
    (void)service->HandleLine(line);
  }
  // Snapshot the acknowledged state, then die without any cleanup. For
  // crash-injected cycles this is only reached when the hook never fired
  // (e.g. append:N beyond the cycle's appends) — the parent tells the two
  // apart by the wait status, since the hook exits 137 instead.
  const std::string prekill =
      service->HandleLine("STATUS") + "\n" + service->HandleLine("TELEMETRY");
  if (const Status written = WriteTextFile(prekill_path, prekill);
      !written.ok()) {
    std::fprintf(stderr, "soak child: %s\n", written.ToString().c_str());
    std::_Exit(3);
  }
  ::raise(SIGKILL);
  std::_Exit(3);  // unreachable: SIGKILL cannot be caught or ignored
}

struct SoakStats {
  uint64_t clean_kills = 0;
  uint64_t torn_crashes = 0;
  uint64_t torn_tails_truncated = 0;
  uint64_t events_attempted = 0;
  uint64_t max_journal_bytes = 0;
};

int Fail(const char* stage, uint64_t cycle, const std::string& detail) {
  std::fprintf(stderr, "pandia_soak: FAILED at cycle %llu (%s)\n%s\n",
               static_cast<unsigned long long>(cycle), stage, detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t cycles = 100;
  uint64_t events_per_cycle = 20000;
  uint64_t seed = 42;
  uint64_t max_journal_bytes = 8ull << 20;
  std::string dir = ".";
  std::string report_path;
  serve::SyncPolicy sync = serve::SyncPolicy::kInterval;
  bool flag_error = false;
  for (int i = 1; i < argc; ++i) {
    const auto int_flag = [&](const char* prefix, uint64_t* out) {
      const size_t n = std::strlen(prefix);
      if (std::strncmp(argv[i], prefix, n) != 0) {
        return false;
      }
      const StatusOr<int> value = tools::ParseIntFlag(argv[i] + n, prefix);
      if (!value.ok() || *value < 1) {
        std::fprintf(stderr, "error: %s needs a positive integer\n", prefix);
        flag_error = true;
      } else {
        *out = static_cast<uint64_t>(*value);
      }
      return true;
    };
    if (int_flag("--cycles=", &cycles) ||
        int_flag("--events-per-cycle=", &events_per_cycle) ||
        int_flag("--seed=", &seed) ||
        int_flag("--max-journal-bytes=", &max_journal_bytes)) {
      continue;
    }
    if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
      report_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--sync=", 7) == 0) {
      const StatusOr<serve::SyncPolicy> parsed =
          serve::SyncPolicyFromName(argv[i] + 7);
      if (!parsed.ok()) {
        return tools::FailWith(parsed.status());
      }
      sync = *parsed;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (flag_error) {
    return Usage(argv[0]);
  }

  // Pre-warm the workload profiles and the machine description in the
  // parent: every forked child inherits them, so no cycle pays the
  // profiling cost again.
  for (const char* workload : {"EP", "MD", "CG", "BT"}) {
    (void)DescriptionText(workload);
  }
  (void)SoakRack();

  const std::string journal_path = dir + "/soak_journal.wire";
  const std::string prekill_path = dir + "/soak_prekill.txt";
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".tmp").c_str());

  Rng rng(seed);
  SoakStats stats;
  uint64_t names_minted = 0;
  for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
    const CyclePlan plan = PlanCycle(rng, events_per_cycle);
    // The child consumes its own deterministic stream; keep the parent's
    // planning stream independent of traffic so cycle plans are stable.
    Rng child_rng(HashCombine(seed, cycle + 1));
    std::remove(prekill_path.c_str());
    const pid_t pid = ::fork();
    if (pid < 0) {
      return Fail("fork", cycle, std::strerror(errno));
    }
    if (pid == 0) {
      RunChildCycle(plan, child_rng, journal_path, prekill_path, sync, cycle,
                    names_minted);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
      return Fail("waitpid", cycle, std::strerror(errno));
    }
    const bool torn = WIFEXITED(status) && WEXITSTATUS(status) == 137;
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    if (!torn && !killed) {
      return Fail("child exit", cycle,
                  StrFormat("unexpected wait status %d "
                            "(want SIGKILL or the crash hook's exit 137)",
                            status));
    }
    torn ? ++stats.torn_crashes : ++stats.clean_kills;
    stats.events_attempted +=
        plan.crash_at.empty() ? plan.kill_after : plan.events;

    // First recovery. For a clean kill, it must reproduce exactly what the
    // child acknowledged before dying.
    StatusOr<serve::PlacementService> created = serve::PlacementService::Create(
        SoakRack(), SoakOptions(journal_path, sync));
    if (!created.ok()) {
      return Fail("recovery", cycle, created.status().ToString());
    }
    std::optional<serve::PlacementService> first(std::move(*created));
    if (first->journal_for_test()->recovery().truncated_torn_tail) {
      ++stats.torn_tails_truncated;
    }
    const std::string recovered =
        first->HandleLine("STATUS") + "\n" + first->HandleLine("TELEMETRY");
    if (killed) {
      const StatusOr<std::string> prekill = ReadTextFile(prekill_path);
      if (!prekill.ok()) {
        return Fail("prekill snapshot", cycle, prekill.status().ToString());
      }
      if (recovered != *prekill) {
        return Fail("byte-identity", cycle,
                    StrFormat("recovered state differs from the killed "
                              "child's acknowledged state\n--- acknowledged "
                              "---\n%s\n--- recovered ---\n%s",
                              prekill->c_str(), recovered.c_str()));
      }
    }
    const uint64_t journal_bytes = first->journal_for_test()->size_bytes();
    stats.max_journal_bytes = std::max(stats.max_journal_bytes, journal_bytes);
    if (journal_bytes > max_journal_bytes) {
      return Fail("journal bound", cycle,
                  StrFormat("journal grew to %llu bytes (cap %llu): "
                            "compaction is not keeping up",
                            static_cast<unsigned long long>(journal_bytes),
                            static_cast<unsigned long long>(max_journal_bytes)));
    }
    first.reset();  // close the journal before reopening

    // Second recovery: replay is deterministic — two independent recoveries
    // of the same (possibly torn) journal agree byte for byte.
    StatusOr<serve::PlacementService> second = serve::PlacementService::Create(
        SoakRack(), SoakOptions(journal_path, sync));
    if (!second.ok()) {
      return Fail("second recovery", cycle, second.status().ToString());
    }
    const std::string replayed =
        second->HandleLine("STATUS") + "\n" + second->HandleLine("TELEMETRY");
    if (replayed != recovered) {
      return Fail("replay determinism", cycle,
                  "two recoveries of the same journal disagree");
    }
    // Advance the name counter past anything the child might have admitted
    // so the next cycle never reuses a journaled job name.
    names_minted += plan.events;
    std::fprintf(stderr,
                 "pandia_soak: cycle %llu/%llu ok (%s, journal %llu bytes, "
                 "%d jobs)\n",
                 static_cast<unsigned long long>(cycle + 1),
                 static_cast<unsigned long long>(cycles),
                 torn ? plan.crash_at.c_str() : "clean kill",
                 static_cast<unsigned long long>(journal_bytes),
                 second->rack().JobCount());
  }

  // Finale: one explicit COMPACT must fold the whole surviving state into a
  // single snapshot record, and a restart replaying only that snapshot (the
  // post-snapshot suffix is empty) must be byte-identical.
  {
    StatusOr<serve::PlacementService> created = serve::PlacementService::Create(
        SoakRack(), SoakOptions(journal_path, sync));
    if (!created.ok()) {
      return Fail("final open", cycles, created.status().ToString());
    }
    std::optional<serve::PlacementService> service(std::move(*created));
    const std::string compacted = service->HandleLine("COMPACT");
    if (compacted.rfind("ok ", 0) != 0) {
      return Fail("final COMPACT", cycles, compacted);
    }
    if (service->journal_for_test()->record_count() != 1) {
      return Fail("final COMPACT", cycles, "expected exactly 1 record");
    }
    const std::string before =
        service->HandleLine("STATUS") + "\n" + service->HandleLine("TELEMETRY");
    service.reset();
    StatusOr<serve::PlacementService> reopened =
        serve::PlacementService::Create(SoakRack(),
                                        SoakOptions(journal_path, sync));
    if (!reopened.ok()) {
      return Fail("final replay", cycles, reopened.status().ToString());
    }
    const std::string after = reopened->HandleLine("STATUS") + "\n" +
                              reopened->HandleLine("TELEMETRY");
    if (after != before) {
      return Fail("final replay", cycles,
                  "snapshot-only replay is not byte-identical");
    }
  }

  const std::string report = StrFormat(
      "pandia_soak report\n"
      "cycles = %llu\n"
      "clean-kills = %llu\n"
      "torn-crashes = %llu\n"
      "torn-tails-truncated = %llu\n"
      "events-attempted = %llu\n"
      "max-journal-bytes = %llu\n"
      "result = PASS\n",
      static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(stats.clean_kills),
      static_cast<unsigned long long>(stats.torn_crashes),
      static_cast<unsigned long long>(stats.torn_tails_truncated),
      static_cast<unsigned long long>(stats.events_attempted),
      static_cast<unsigned long long>(stats.max_journal_bytes));
  std::fputs(report.c_str(), stderr);
  if (!report_path.empty()) {
    if (const Status written = WriteTextFile(report_path, report);
        !written.ok()) {
      return tools::FailWith(written);
    }
  }
  return 0;
}
