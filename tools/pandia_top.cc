// pandia-top: live dashboard for a running pandia_serve daemon.
//
//   pandia_top --socket=PATH [--interval=SECONDS] [--once]
//
// Polls the daemon over its Unix-domain socket with `METRICS format=expo`
// and `TELEMETRY`, then renders request latency percentiles (p50/p90/p99
// per verb, interpolated client-side from the exported histogram buckets),
// verb rates (counter deltas between polls), journal health (append and
// fsync p99, compactions, bytes reclaimed, live ratio, torn tails, and a
// DEGRADED banner when the daemon is serving read-only), and the per-job
// rack telemetry (predicted slowdown at admit, current prediction,
// degradation, re-placements, co-runner events).
//
// By default the display refreshes every --interval seconds (ANSI
// clear-screen when stdout is a terminal); --once polls a single time and
// prints one plain report — the headless mode scripts and smoke tests use.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

namespace {

using namespace pandia;

// One poll's METRICS exposition, split into plain samples (counters and
// gauges are indistinguishable on the wire, and need not be distinguished:
// both are just numbers) and histogram bucket series.
struct ExpoSnapshot {
  std::map<std::string, double> samples;
  // name -> (le token, cumulative count) in exposition order.
  std::map<std::string, std::vector<std::pair<std::string, double>>> histograms;
};

void ParseExpoLine(const std::string& line, ExpoSnapshot& snapshot) {
  const size_t space = line.find(' ');
  if (space == std::string::npos || space == 0) {
    return;
  }
  const std::string metric = line.substr(0, space);
  const double value = std::strtod(line.c_str() + space + 1, nullptr);
  const size_t brace = metric.find("{le=");
  if (brace == std::string::npos) {
    snapshot.samples[metric] = value;
    return;
  }
  if (metric.back() != '}') {
    return;
  }
  const std::string name = metric.substr(0, brace);
  const std::string le = metric.substr(brace + 4, metric.size() - brace - 5);
  snapshot.histograms[name].emplace_back(le, value);
}

// q-quantile from an exposition bucket series (cumulative counts, +inf
// last), via the shared obs interpolation.
double ExpoPercentile(const std::vector<std::pair<std::string, double>>& series,
                      double q) {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  double previous = 0.0;
  for (const auto& [le, cumulative] : series) {
    if (le != "+inf") {
      bounds.push_back(std::strtod(le.c_str(), nullptr));
    }
    buckets.push_back(static_cast<uint64_t>(cumulative - previous));
    previous = cumulative;
  }
  if (bounds.empty() || buckets.size() != bounds.size() + 1) {
    return 0.0;
  }
  return obs::HistogramPercentile(bounds, buckets, q);
}

double SampleOr(const ExpoSnapshot& snapshot, const std::string& name,
                double fallback) {
  const auto it = snapshot.samples.find(name);
  return it != snapshot.samples.end() ? it->second : fallback;
}

struct PollResult {
  ExpoSnapshot expo;
  std::vector<std::string> telemetry;  // TELEMETRY payload lines
};

// One serve::Client connection per poll (reconnecting each frame rides
// through daemon restarts), both requests pipelined in one round trip.
StatusOr<PollResult> Poll(const std::string& socket_path) {
  StatusOr<serve::Client> client = serve::Client::Connect(socket_path);
  if (!client.ok()) {
    return client.status();
  }
  const std::vector<std::string> requests = {"METRICS format=expo",
                                             "TELEMETRY"};
  StatusOr<std::vector<wire::Response>> responses = client->CallMany(requests);
  if (!responses.ok()) {
    return responses.status();
  }
  PollResult result;
  for (const wire::Response& response : *responses) {
    if (!response.ok) {
      return Status(response.code, response.error);
    }
    if (response.verb == "METRICS") {
      for (const std::string& payload : response.payload) {
        ParseExpoLine(payload, result.expo);
      }
    } else if (response.verb == "TELEMETRY") {
      result.telemetry = response.payload;
    }
  }
  return result;
}

constexpr const char* kVerbs[] = {"hello",     "admit",    "depart",
                                  "rebalance", "status",   "metrics",
                                  "telemetry", "recorder", "shutdown",
                                  "other"};

void Render(const PollResult& poll, const ExpoSnapshot* previous,
            double interval_s, int frame, const std::string& socket_path) {
  std::printf("pandia_top - %s  frame=%d  jobs=%d  free-threads=%d\n",
              socket_path.c_str(), frame,
              static_cast<int>(SampleOr(poll.expo, "serve.jobs", 0.0)),
              static_cast<int>(SampleOr(poll.expo, "serve.free_threads", 0.0)));
  std::printf("\n%-10s %10s %8s %9s %10s %10s %10s\n", "verb", "requests",
              "errors", "rate/s", "p50_us", "p90_us", "p99_us");
  for (const char* verb : kVerbs) {
    const std::string prefix = std::string("serve.") + verb;
    const double requests = SampleOr(poll.expo, prefix + ".requests", 0.0);
    if (requests <= 0.0) {
      continue;  // verb never seen — keep the table to what happened
    }
    const double errors = SampleOr(poll.expo, prefix + ".errors", 0.0);
    double rate = 0.0;
    if (previous != nullptr && interval_s > 0.0) {
      rate = (requests - SampleOr(*previous, prefix + ".requests", 0.0)) /
             interval_s;
    }
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    const auto it = poll.expo.histograms.find(prefix + ".latency_us");
    if (it != poll.expo.histograms.end()) {
      p50 = ExpoPercentile(it->second, 0.50);
      p90 = ExpoPercentile(it->second, 0.90);
      p99 = ExpoPercentile(it->second, 0.99);
    }
    std::printf("%-10s %10.0f %8.0f %9.1f %10.1f %10.1f %10.1f\n", verb,
                requests, errors, rate, p50, p90, p99);
  }
  const double appends =
      SampleOr(poll.expo, "serve.journal.append_latency_us.count", 0.0);
  if (appends > 0.0) {
    const auto histogram_p99 = [&](const char* name) {
      const auto it = poll.expo.histograms.find(name);
      return it != poll.expo.histograms.end() ? ExpoPercentile(it->second, 0.99)
                                              : 0.0;
    };
    std::printf("\njournal: appends=%.0f bytes=%.0f append-p99=%.1fus "
                "fsync-p99=%.1fus\n",
                appends, SampleOr(poll.expo, "serve.journal.bytes", 0.0),
                histogram_p99("serve.journal.append_latency_us"),
                histogram_p99("serve.journal.fsync_latency_us"));
    std::printf("         compactions=%.0f reclaimed=%.0fB live-ratio=%.2f "
                "torn-tails=%.0f%s\n",
                SampleOr(poll.expo, "serve.journal.compactions", 0.0),
                SampleOr(poll.expo,
                         "serve.journal.compaction_bytes_reclaimed", 0.0),
                SampleOr(poll.expo, "serve.journal.live_ratio", 1.0),
                SampleOr(poll.expo, "serve.journal.torn_tails", 0.0),
                SampleOr(poll.expo, "serve.degraded", 0.0) > 0.0
                    ? "  DEGRADED (read-only)"
                    : "");
  }
  std::printf("\ntelemetry:\n");
  for (const std::string& line : poll.telemetry) {
    std::printf("  %s\n", line.c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool once = false;
  double interval_s = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socket_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strncmp(argv[i], "--interval=", 11) == 0) {
      interval_s = std::strtod(argv[i] + 11, nullptr);
      if (!(interval_s > 0.0 && interval_s <= 3600.0)) {
        std::fprintf(stderr,
                     "error: --interval needs seconds in (0, 3600], got '%s'\n",
                     argv[i] + 11);
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      std::fprintf(stderr,
                   "usage: %s --socket=PATH [--interval=SECONDS] [--once]\n",
                   argv[0]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: %s --socket=PATH [--interval=SECONDS] [--once]\n",
                 argv[0]);
    return 2;
  }

  const bool interactive = !once && isatty(STDOUT_FILENO) != 0;
  ExpoSnapshot previous;
  bool have_previous = false;
  for (int frame = 1;; ++frame) {
    pandia::StatusOr<PollResult> poll = Poll(socket_path);
    if (!poll.ok()) {
      return pandia::tools::FailWith(poll.status(), socket_path);
    }
    if (interactive) {
      std::printf("\033[H\033[2J");  // cursor home + clear screen
    }
    Render(*poll, have_previous ? &previous : nullptr, interval_s, frame,
           socket_path);
    if (once) {
      return 0;
    }
    previous = std::move(poll->expo);
    have_previous = true;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}
