#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (run via ctest as
tools_bench_regression_test)."""

import importlib.util
import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")

spec = importlib.util.spec_from_file_location("check_bench_regression", TOOL)
cbr = importlib.util.module_from_spec(spec)
spec.loader.exec_module(cbr)


def bench_doc(rows, context=None):
    doc = {"context": context or {"num_cpus": 1, "date": "2026-08-08",
                                  "host_name": "ci-runner",
                                  "pandia_build_type": "Release"}}
    doc["benchmarks"] = rows
    return doc


def raw_row(name, items_per_second, run_name=None):
    return {
        "name": name,
        "run_name": run_name or name,
        "run_type": "iteration",
        "real_time": 1e9 / items_per_second,
        "time_unit": "ns",
        "items_per_second": items_per_second,
    }


def aggregate_row(name, aggregate, items_per_second):
    return {
        "name": f"{name}_{aggregate}",
        "run_name": name,
        "run_type": "aggregate",
        "aggregate_name": aggregate,
        "real_time": 1e9 / items_per_second,
        "time_unit": "ns",
        "items_per_second": items_per_second,
    }


class LoadRowsTest(unittest.TestCase):
    def write(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, dir=self.tmp.name)
        json.dump(doc, f)
        f.close()
        return f.name

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def test_prefers_median_aggregates(self):
        path = self.write(bench_doc([
            raw_row("BM_X", 50.0),
            aggregate_row("BM_X", "mean", 90.0),
            aggregate_row("BM_X", "median", 100.0),
            aggregate_row("BM_X", "stddev", 5.0),
        ]))
        _, rows = cbr.load_rows(path)
        self.assertEqual(rows, {"BM_X": 100.0})

    def test_median_of_raw_repetitions(self):
        # Five repetitions without aggregates: the median (300), not the
        # first, last, or mean, must win.
        path = self.write(bench_doc([
            raw_row("BM_X/8", v, run_name="BM_X/8")
            for v in (100.0, 200.0, 300.0, 400.0, 10000.0)
        ]))
        _, rows = cbr.load_rows(path)
        self.assertEqual(rows, {"BM_X/8": 300.0})

    def test_even_repetitions_average_middle_pair(self):
        path = self.write(bench_doc(
            [raw_row("BM_X", v) for v in (100.0, 200.0, 300.0, 400.0)]))
        _, rows = cbr.load_rows(path)
        self.assertEqual(rows, {"BM_X": 250.0})

    def test_falls_back_to_inverse_real_time(self):
        row = raw_row("BM_X", 1000.0)
        del row["items_per_second"]
        row["real_time"] = 1000.0  # 1000 ns -> 1e6 items/sec
        path = self.write(bench_doc([row]))
        _, rows = cbr.load_rows(path)
        self.assertAlmostEqual(rows["BM_X"], 1e6)


class MainTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_tool(self, *argv):
        return subprocess.run(
            [sys.executable, TOOL, *argv],
            capture_output=True, text=True,
            env={**os.environ, "PANDIA_BENCH_THRESHOLD": "20"})

    def test_pass_within_tolerance(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 90.0)]))
        result = self.run_tool(cur, base)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_fail_beyond_tolerance(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 70.0)]))
        result = self.run_tool(cur, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_tolerance_flag_overrides_env(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 70.0)]))
        result = self.run_tool(cur, base, "--tolerance", "40")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_max_regression_pct_alias(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 70.0)]))
        result = self.run_tool(cur, base, "--max-regression-pct", "40")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_missing_family_notes_by_default(self):
        base = self.write("base.json", bench_doc(
            [raw_row("BM_X", 100.0), raw_row("BM_Gone", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 100.0)]))
        result = self.run_tool(cur, base)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("missing", result.stdout)

    def test_missing_family_fails_with_flag(self):
        base = self.write("base.json", bench_doc(
            [raw_row("BM_X", 100.0), raw_row("BM_Gone", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 100.0)]))
        result = self.run_tool(cur, base, "--fail-on-missing")
        self.assertEqual(result.returncode, 1)
        self.assertIn("BM_Gone", result.stderr)

    def test_empty_current_fails(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([]))
        result = self.run_tool(cur, base)
        self.assertEqual(result.returncode, 1)

    def test_require_speedup_met(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 600.0)]))
        result = self.run_tool(cur, base, "--require-speedup", "BM_X:5")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_require_speedup_unmet(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 300.0)]))
        result = self.run_tool(cur, base, "--require-speedup", "BM_X:5")
        self.assertEqual(result.returncode, 1)
        self.assertIn("required >= 5.00x", result.stderr)

    def test_require_speedup_missing_benchmark_fails(self):
        base = self.write("base.json", bench_doc([raw_row("BM_X", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X", 100.0)]))
        result = self.run_tool(cur, base, "--require-speedup", "BM_Y:2")
        self.assertEqual(result.returncode, 1)

    def test_require_speedup_name_with_slash_args(self):
        base = self.write("base.json", bench_doc(
            [raw_row("BM_X/18", 100.0)]))
        cur = self.write("cur.json", bench_doc([raw_row("BM_X/18", 600.0)]))
        result = self.run_tool(cur, base, "--require-speedup", "BM_X/18:5")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_json_out_report(self):
        base = self.write("base.json", bench_doc(
            [raw_row("BM_X", 100.0), raw_row("BM_Gone", 100.0)]))
        cur = self.write("cur.json", bench_doc(
            [raw_row("BM_X", 60.0), raw_row("BM_New", 1.0)]))
        out = os.path.join(self.tmp.name, "report.json")
        result = self.run_tool(cur, base, "--json-out", out)
        self.assertEqual(result.returncode, 1)
        with open(out) as f:
            report = json.load(f)
        self.assertFalse(report["ok"])
        self.assertEqual(report["missing"], ["BM_Gone"])
        self.assertEqual(report["new"], ["BM_New"])
        (row,) = report["benchmarks"]
        self.assertEqual(row["name"], "BM_X")
        self.assertTrue(row["regressed"])
        self.assertAlmostEqual(row["delta_pct"], -40.0)

    def test_update_strips_run_specific_context(self):
        cur = self.write("cur.json", bench_doc(
            [raw_row("BM_X", 100.0)],
            context={"date": "2026-08-08", "host_name": "dev-box",
                     "num_cpus": 1, "pandia_build_type": "Release",
                     "pandia_pinned_cpu": 0}))
        baseline = os.path.join(self.tmp.name, "baseline.json")
        result = self.run_tool(cur, baseline, "--update")
        self.assertEqual(result.returncode, 0, result.stderr)
        with open(baseline) as f:
            doc = json.load(f)
        self.assertEqual(
            doc["context"],
            {"num_cpus": 1, "pandia_build_type": "Release",
             "pandia_pinned_cpu": 0})
        # The updated baseline must round-trip through a check cleanly.
        result = self.run_tool(cur, baseline)
        self.assertEqual(result.returncode, 0, result.stderr)


if __name__ == "__main__":
    unittest.main()
