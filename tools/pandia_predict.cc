// pandia-predict: predict placements from stored descriptions (paper §5).
//
//   pandia_predict <machine-desc-file> <workload-desc-file> [placement ...]
//
// Placements use the textual grammar of ParsePlacement ("s0:8x1+2x2,s1:4x1",
// "12", "24x2"). Without placements, the tool searches the canonical
// placement space and reports the best placement, the cheapest placement
// within 95% of it, and a Figure-7-style explanation of the winner.
#include <cstdio>
#include <string>

#include "src/predictor/optimizer.h"
#include "src/predictor/predictor.h"
#include "src/predictor/report.h"
#include "src/serialize/serialize.h"
#include "src/topology/placement_parse.h"

int main(int argc, char** argv) {
  using namespace pandia;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <machine-desc-file> <workload-desc-file> [placement ...]\n",
                 argv[0]);
    return 2;
  }
  const std::optional<std::string> machine_text = ReadTextFile(argv[1]);
  if (!machine_text.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
    return 1;
  }
  std::string error;
  const std::optional<MachineDescription> machine =
      MachineDescriptionFromText(*machine_text, &error);
  if (!machine.has_value()) {
    std::fprintf(stderr, "error: %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  const std::optional<std::string> workload_text = ReadTextFile(argv[2]);
  if (!workload_text.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 1;
  }
  const std::optional<WorkloadDescription> workload =
      WorkloadDescriptionFromText(*workload_text, &error);
  if (!workload.has_value()) {
    std::fprintf(stderr, "error: %s: %s\n", argv[2], error.c_str());
    return 1;
  }
  if (workload->machine != machine->topo.name) {
    std::fprintf(stderr,
                 "note: workload was profiled on '%s', predicting on '%s' "
                 "(portability mode, expect larger errors; paper §6.1)\n",
                 workload->machine.c_str(), machine->topo.name.c_str());
  }

  const Predictor predictor(*machine, *workload);
  if (argc > 3) {
    for (int i = 3; i < argc; ++i) {
      const std::optional<Placement> placement =
          ParsePlacement(machine->topo, argv[i], &error);
      if (!placement.has_value()) {
        std::fprintf(stderr, "error: placement '%s': %s\n", argv[i], error.c_str());
        return 1;
      }
      const Prediction prediction = predictor.Predict(*placement);
      std::fputs(ExplainPrediction(*machine, *placement, prediction).c_str(), stdout);
    }
    return 0;
  }

  const RankedPlacement best = FindBestPlacement(predictor);
  std::printf("best predicted placement:\n");
  std::fputs(ExplainPrediction(*machine, best.placement, best.prediction).c_str(),
             stdout);
  const std::optional<RankedPlacement> cheap = FindCheapestPlacement(predictor, 0.95);
  if (cheap.has_value() && !(cheap->placement == best.placement)) {
    std::printf("\ncheapest placement within 95%% of the best:\n");
    std::fputs(ExplainPrediction(*machine, cheap->placement, cheap->prediction).c_str(),
               stdout);
  }
  return 0;
}
