// pandia-predict: predict placements from stored descriptions (paper §5).
//
//   pandia_predict [flags] <machine> <workload> [placement ...]
//
// <machine> is either a stored machine-description file or the name of a
// simulated machine ("x5-2", "x4-2", "x3-2", "x2-4" — the description is
// then generated from stress runs). <workload> is either a stored workload
// description or an evaluation-suite workload name (profiled on the spot;
// requires a simulated machine). Placements use the textual grammar of
// ParsePlacement ("s0:8x1+2x2,s1:4x1", "12", "24x2"). Without placements,
// the tool searches the canonical placement space and reports the best
// placement, the cheapest placement within 95% of it, and a Figure-7-style
// explanation of the winner.
//
// All inputs are validated: malformed description files, implausible field
// values, and bad placements produce a structured error naming the problem
// (never an abort).
//
// Flags:
//   --jobs=N          fan the placement-space search out over N worker
//                     threads (default: the PANDIA_JOBS environment
//                     variable, else serial); the chosen placements are
//                     byte-identical at every job count
//
// Robustness flags (apply when the workload is profiled on the spot; see
// tools/tool_common.h):
//   --trials=N, --fault-seed=S, --fault-jitter/dropout/corrupt/fail=P
//
// Observability flags (src/obs):
//   --trace-out=FILE  write a Chrome trace_event JSON file (open via
//                     chrome://tracing or https://ui.perfetto.dev)
//   --metrics         print the metrics table and per-span wall-time summary
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

namespace {

using namespace pandia;

bool IsKnownMachine(const std::string& name) {
  const std::vector<std::string> known = sim::KnownMachineNames();
  return std::find(known.begin(), known.end(), name) != known.end();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs=N] [--trials=N] [--fault-seed=S] "
               "[--trace-out=FILE] [--metrics] "
               "<machine-desc-file|machine-name> "
               "<workload-desc-file|workload-name> [placement ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tools::CommonFlags common;
  tools::RobustnessFlags robustness;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    tools::FlagParse parsed = common.Match(argv[i]);
    if (parsed == tools::FlagParse::kNoMatch) {
      parsed = robustness.Match(argv[i]);
    }
    if (parsed == tools::FlagParse::kError) {
      return 2;
    }
    if (parsed == tools::FlagParse::kOk) {
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
    positional.push_back(argv[i]);
  }
  if (positional.size() < 2) {
    return Usage(argv[0]);
  }
  common.ActivateTracing();
  const sim::FaultPlan fault_plan = robustness.MakeFaultPlan();

  std::optional<eval::Pipeline> pipeline;
  std::optional<MachineDescription> machine;
  if (const StatusOr<std::string> text = ReadTextFile(positional[0]); text.ok()) {
    StatusOr<MachineDescription> parsed = MachineDescriptionFromText(*text);
    if (!parsed.ok()) {
      return tools::FailWith(parsed.status(), positional[0]);
    }
    machine = std::move(*parsed);
  } else if (IsKnownMachine(positional[0])) {
    pipeline.emplace(positional[0]);
    machine = pipeline->description();
  } else {
    std::fprintf(stderr,
                 "error: '%s' is neither a readable machine description (%s) nor a "
                 "known machine (x5-2, x4-2, x3-2, x2-4)\n",
                 positional[0].c_str(), text.status().ToString().c_str());
    return 1;
  }

  std::optional<WorkloadDescription> workload;
  if (const StatusOr<std::string> text = ReadTextFile(positional[1]); text.ok()) {
    StatusOr<WorkloadDescription> parsed = WorkloadDescriptionFromText(*text);
    if (!parsed.ok()) {
      return tools::FailWith(parsed.status(), positional[1]);
    }
    workload = std::move(*parsed);
  } else if (workloads::Exists(positional[1])) {
    if (!pipeline.has_value()) {
      if (!IsKnownMachine(machine->topo.name)) {
        std::fprintf(stderr,
                     "error: profiling workload '%s' needs a simulated machine, "
                     "but '%s' is not one\n",
                     positional[1].c_str(), machine->topo.name.c_str());
        return 1;
      }
      pipeline.emplace(machine->topo.name);
    }
    if (fault_plan.active()) {
      pipeline->SetFaultPlan(fault_plan);
    }
    ProfileOptions profile_options;
    profile_options.trials = robustness.trials;
    StatusOr<WorkloadDescription> profiled =
        pipeline->ProfileRobust(workloads::ByName(positional[1]), profile_options);
    if (!profiled.ok()) {
      return tools::FailWith(profiled.status(),
                             "profiling '" + positional[1] + "' failed");
    }
    if (robustness.trials > 1 || fault_plan.active()) {
      tools::PrintProfileQuality(profiled->quality);
    }
    workload = std::move(*profiled);
  } else {
    std::fprintf(stderr,
                 "error: '%s' is neither a readable workload description (%s) nor a "
                 "known workload name\n",
                 positional[1].c_str(), text.status().ToString().c_str());
    return 1;
  }

  if (workload->machine != machine->topo.name) {
    std::fprintf(stderr,
                 "note: workload was profiled on '%s', predicting on '%s' "
                 "(portability mode, expect larger errors; paper §6.1)\n",
                 workload->machine.c_str(), machine->topo.name.c_str());
  }

  const StatusOr<Predictor> predictor = Predictor::Create(*machine, *workload);
  if (!predictor.ok()) {
    return tools::FailWith(predictor.status());
  }
  if (positional.size() > 2) {
    for (size_t i = 2; i < positional.size(); ++i) {
      std::string error;
      const std::optional<Placement> placement =
          ParsePlacement(machine->topo, positional[i], &error);
      if (!placement.has_value()) {
        std::fprintf(stderr, "error: placement '%s': %s\n", positional[i].c_str(),
                     error.c_str());
        return 1;
      }
      const StatusOr<Prediction> prediction = predictor->TryPredict(*placement);
      if (!prediction.ok()) {
        return tools::FailWith(prediction.status(),
                               "placement '" + positional[i] + "'");
      }
      std::fputs(ExplainPrediction(*machine, *placement, *prediction).c_str(),
                 stdout);
    }
  } else {
    OptimizerOptions optimizer_options;
    common.Apply(optimizer_options.common);
    const StatusOr<RankedPlacement> best =
        TryFindBestPlacement(*predictor, optimizer_options);
    if (!best.ok()) {
      return tools::FailWith(best.status());
    }
    std::printf("best predicted placement:\n");
    std::fputs(ExplainPrediction(*machine, best->placement, best->prediction).c_str(),
               stdout);
    const StatusOr<RankedPlacement> cheap =
        TryFindCheapestPlacement(*predictor, 0.95, optimizer_options);
    if (!cheap.ok()) {
      return tools::FailWith(cheap.status());
    }
    if (!(cheap->placement == best->placement)) {
      std::printf("\ncheapest placement within 95%% of the best:\n");
      std::fputs(
          ExplainPrediction(*machine, cheap->placement, cheap->prediction).c_str(),
          stdout);
    }
  }

  return common.Finish(stdout);
}
