// pandia-serve-client: one-shot client for a running pandia_serve daemon.
//
//   pandia_serve_client --socket=PATH [--admit=NAME:THREADS:TYPE:FILE ...]
//                       [--timeout-ms=N] [--retries=N] [request ...]
//
// Each positional argument is one wire-v1 request line sent verbatim
// (quote it: 'ADMIT name=web threads=4 ...'). --admit builds an ADMIT
// request from a stored workload-description file (as written by
// pandia_profile), escaping the document for the wire — the shell-friendly
// way to admit a job, since description text cannot be quoted by hand.
// Without positional arguments or --admit the request lines are read from
// stdin until EOF. All responses are printed to stdout exactly as the
// daemon framed them; the exit code is 0 only when every response block
// reports ok.
//
// --timeout-ms bounds each socket send/receive (a stalled daemon fails the
// call instead of hanging). --retries re-attempts a refused/absent socket
// with exponential backoff (50 ms doubling), riding through a daemon
// restart. Only the connect is ever retried: a stream truncated
// mid-response still exits 1 — a half-delivered answer must never be
// mistaken for success.
//
// Built on serve::Client (src/serve/client.h): one connection, a HELLO
// handshake, then every request line pipelined before the first response
// block is read back.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

namespace {

// NAME:THREADS:TYPE:FILE -> "ADMIT name=... threads=... desc.TYPE=<doc>".
pandia::StatusOr<std::string> BuildAdmit(const std::string& spec) {
  using pandia::Status;
  std::vector<std::string> parts;
  size_t start = 0;
  // FILE may itself contain ':' (rare, but legal in paths): split on the
  // first three separators only.
  for (int i = 0; i < 3; ++i) {
    const size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "--admit needs NAME:THREADS:TYPE:FILE, got '" + spec + "'");
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  parts.push_back(spec.substr(start));
  for (const std::string& part : parts) {
    if (part.empty()) {
      return Status::InvalidArgument(
          "--admit needs NAME:THREADS:TYPE:FILE, got '" + spec + "'");
    }
  }
  const pandia::StatusOr<std::string> text = pandia::ReadTextFile(parts[3]);
  if (!text.ok()) {
    return text.status();
  }
  return pandia::StrFormat("ADMIT name=%s threads=%s desc.%s=%s",
                           pandia::wire::EscapeValue(parts[0]).c_str(),
                           parts[1].c_str(), parts[2].c_str(),
                           pandia::wire::EscapeValue(*text).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pandia;
  std::string socket_path;
  serve::ClientOptions exchange;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socket_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      const StatusOr<int> value = tools::ParseIntFlag(argv[i] + 13, "--timeout-ms");
      if (!value.ok() || *value < 0) {
        std::fprintf(stderr, "error: --timeout-ms needs a non-negative integer\n");
        return 2;
      }
      exchange.timeout_ms = *value;
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      const StatusOr<int> value = tools::ParseIntFlag(argv[i] + 10, "--retries");
      if (!value.ok() || *value < 0) {
        std::fprintf(stderr, "error: --retries needs a non-negative integer\n");
        return 2;
      }
      exchange.retries = *value;
    } else if (std::strncmp(argv[i], "--admit=", 8) == 0) {
      StatusOr<std::string> request = BuildAdmit(argv[i] + 8);
      if (!request.ok()) {
        return tools::FailWith(request.status());
      }
      requests.push_back(*std::move(request));
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      requests.push_back(argv[i]);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: %s --socket=PATH [request ...]\n", argv[0]);
    return 2;
  }
  if (requests.empty()) {
    // Request lines from stdin until EOF; blank lines are no-ops the daemon
    // never answers, so they are dropped here too.
    std::string stdin_text;
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), stdin)) > 0) {
      stdin_text.append(chunk, n);
    }
    for (std::string& line : StrSplit(stdin_text, '\n')) {
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (!line.empty()) {
        requests.push_back(std::move(line));
      }
    }
  }
  if (requests.empty()) {
    std::fprintf(stderr, "error: no requests to send\n");
    return 2;
  }
  StatusOr<serve::Client> client = serve::Client::Connect(socket_path, exchange);
  if (!client.ok()) {
    return tools::FailWith(client.status(), socket_path);
  }
  // Pipeline: every request line goes out before the first response block
  // is read back, then one block per request in order.
  std::string batch;
  for (const std::string& request : requests) {
    batch += request;
    batch += '\n';
  }
  if (Status sent = client->Send(batch); !sent.ok()) {
    return tools::FailWith(sent, socket_path);
  }
  // Any failed request fails the invocation. Only each block's status line
  // decides — payload rows are free-form and may themselves start with
  // "err ".
  int exit_code = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const StatusOr<std::string> block = client->ReceiveRaw();
    if (!block.ok()) {
      std::fprintf(stderr, "error: truncated response block (%s)\n",
                   std::string(block.status().message()).c_str());
      return 1;
    }
    std::fputs(block->c_str(), stdout);
    const StatusOr<wire::Response> parsed =
        wire::ParseResponse(StrSplit(block->substr(0, block->size() - 1), '\n'));
    if (!parsed.ok() || !parsed->ok) {
      exit_code = 1;
    }
  }
  return exit_code;
}
