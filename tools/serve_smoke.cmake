# Smoke test driven by ctest (see tools/CMakeLists.txt): run the
# pandia_serve daemon on a two-machine simulated rack, feed it a request
# script over stdin (valid STATUS/METRICS plus the telemetry verbs —
# METRICS format=expo, TELEMETRY, RECORDER — a malformed verb, a DEPART for
# a job that does not exist, then SHUTDOWN), and assert the daemon answers
# every request with a structured response block and exits cleanly — bad
# requests must never take the process down. A second run against the same
# journal verifies restart replay keeps STATUS identical.
#
# ADMIT needs workload-description text embedded in the request, which a
# cmake script cannot synthesize; the admission and kill-and-replay soak
# paths are exercised by tests/serve_test.cc.
#
# Variables (passed via -D): SERVE, WORK.

file(MAKE_DIRECTORY ${WORK})
file(REMOVE ${WORK}/journal.wire)
set(requests "STATUS\nMETRICS\nMETRICS format=expo\nTELEMETRY\nRECORDER\nFROBNICATE everything\nDEPART name=ghost\nnot a request line\nSTATUS\nSHUTDOWN\n")
file(WRITE ${WORK}/requests.txt "${requests}")

execute_process(
  COMMAND ${SERVE} --machine node0=x3-2 --machine node1=x3-2
          --journal=${WORK}/journal.wire
  INPUT_FILE ${WORK}/requests.txt
  RESULT_VARIABLE serve_result
  OUTPUT_VARIABLE serve_output
  ERROR_VARIABLE serve_stderr
)
if(NOT serve_result EQUAL 0)
  message(FATAL_ERROR "pandia_serve failed (${serve_result}):\n${serve_output}\n${serve_stderr}")
endif()
foreach(needle "ok STATUS" "ok METRICS" "ok TELEMETRY" "ok RECORDER"
        "machines = 2" "ok SHUTDOWN")
  if(NOT serve_output MATCHES "${needle}")
    message(FATAL_ERROR "pandia_serve output is missing '${needle}':\n${serve_output}")
  endif()
endforeach()
# The expo exposition: bare `name value` samples and `{le=...}` histogram
# rows for the per-verb instruments (STATUS ran before the expo dump).
if(NOT serve_output MATCHES "serve\\.status\\.requests 1")
  message(FATAL_ERROR "expo format is missing 'serve.status.requests 1':\n${serve_output}")
endif()
if(NOT serve_output MATCHES "serve\\.status\\.latency_us{le=")
  message(FATAL_ERROR "expo format is missing histogram rows for serve.status.latency_us:\n${serve_output}")
endif()
# An empty rack's TELEMETRY and the RECORDER preamble.
if(NOT serve_output MATCHES "mutation-seq = 0")
  message(FATAL_ERROR "TELEMETRY is missing 'mutation-seq = 0':\n${serve_output}")
endif()
if(NOT serve_output MATCHES "capacity = 256")
  message(FATAL_ERROR "RECORDER is missing 'capacity = 256':\n${serve_output}")
endif()
if(NOT serve_output MATCHES "event = seq=1 ")
  message(FATAL_ERROR "RECORDER dump is missing the first request event:\n${serve_output}")
endif()
if(NOT serve_output MATCHES "err invalid-argument")
  message(FATAL_ERROR "malformed requests did not produce err invalid-argument:\n${serve_output}")
endif()
if(NOT serve_output MATCHES "err not-found")
  message(FATAL_ERROR "DEPART of an unknown job did not produce err not-found:\n${serve_output}")
endif()

# Restart against the same (empty-mutation) journal: STATUS must be stable.
file(WRITE ${WORK}/status_only.txt "STATUS\nSHUTDOWN\n")
execute_process(
  COMMAND ${SERVE} --machine node0=x3-2 --machine node1=x3-2
          --journal=${WORK}/journal.wire
  INPUT_FILE ${WORK}/status_only.txt
  RESULT_VARIABLE replay_result
  OUTPUT_VARIABLE replay_output
  ERROR_VARIABLE replay_stderr
)
if(NOT replay_result EQUAL 0)
  message(FATAL_ERROR "pandia_serve restart failed (${replay_result}):\n${replay_output}\n${replay_stderr}")
endif()
if(NOT replay_output MATCHES "machines = 2")
  message(FATAL_ERROR "restarted daemon STATUS is missing the rack:\n${replay_output}")
endif()
