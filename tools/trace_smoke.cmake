# Smoke test driven by ctest (see tools/CMakeLists.txt): run pandia_predict
# on the simulated x3-2 machine with tracing and metrics enabled, then
# validate the emitted Chrome trace JSON with pandia_trace_check, requiring
# the nested predict/optimizer spans the acceptance criteria name.
#
# Variables (passed via -D): PREDICT, CHECK, OUT.

execute_process(
  COMMAND ${PREDICT} --trace-out=${OUT} --metrics x3-2 MD
  RESULT_VARIABLE predict_result
  OUTPUT_VARIABLE predict_output
  ERROR_VARIABLE predict_stderr
)
if(NOT predict_result EQUAL 0)
  message(FATAL_ERROR "pandia_predict failed (${predict_result}):\n${predict_output}\n${predict_stderr}")
endif()
if(NOT predict_output MATCHES "predictor\\.iterations")
  message(FATAL_ERROR "pandia_predict --metrics did not print predictor.iterations:\n${predict_output}")
endif()
if(NOT predict_output MATCHES "optimizer\\.placements_evaluated")
  message(FATAL_ERROR "pandia_predict --metrics did not print optimizer.placements_evaluated:\n${predict_output}")
endif()

execute_process(
  COMMAND ${CHECK} ${OUT} predict predict.iteration optimizer.rank pipeline.profile
  RESULT_VARIABLE check_result
  OUTPUT_VARIABLE check_output
  ERROR_VARIABLE check_stderr
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "pandia_trace_check failed (${check_result}):\n${check_output}\n${check_stderr}")
endif()

# Second pass with the parallel search enabled: per-thread tracer buffers
# must still yield a structurally valid merged trace, and the chosen
# placement must match the serial run above.
execute_process(
  COMMAND ${PREDICT} --jobs=2 --trace-out=${OUT}.jobs2 --metrics x3-2 MD
  RESULT_VARIABLE parallel_result
  OUTPUT_VARIABLE parallel_output
  ERROR_VARIABLE parallel_stderr
)
if(NOT parallel_result EQUAL 0)
  message(FATAL_ERROR "pandia_predict --jobs=2 failed (${parallel_result}):\n${parallel_output}\n${parallel_stderr}")
endif()
# Everything before the metrics dump is the placement report; the metrics
# themselves differ legitimately (parallel runs bump the pool counters).
string(FIND "${predict_output}" "metrics:" serial_cut)
string(FIND "${parallel_output}" "metrics:" parallel_cut)
string(SUBSTRING "${predict_output}" 0 ${serial_cut} serial_report)
string(SUBSTRING "${parallel_output}" 0 ${parallel_cut} parallel_report)
if(NOT serial_report STREQUAL parallel_report)
  message(FATAL_ERROR "serial/parallel placement report mismatch:\n--- serial ---\n${serial_report}\n--- parallel (--jobs=2) ---\n${parallel_report}")
endif()

execute_process(
  COMMAND ${CHECK} ${OUT}.jobs2 predict predict.iteration optimizer.rank pipeline.profile
  RESULT_VARIABLE parallel_check_result
  OUTPUT_VARIABLE parallel_check_output
  ERROR_VARIABLE parallel_check_stderr
)
if(NOT parallel_check_result EQUAL 0)
  message(FATAL_ERROR "pandia_trace_check (--jobs=2 trace) failed (${parallel_check_result}):\n${parallel_check_output}\n${parallel_check_stderr}")
endif()
