# Smoke test driven by ctest (see tools/CMakeLists.txt): run pandia_predict
# on the simulated x3-2 machine with tracing and metrics enabled, then
# validate the emitted Chrome trace JSON with pandia_trace_check, requiring
# the nested predict/optimizer spans the acceptance criteria name.
#
# Variables (passed via -D): PREDICT, CHECK, OUT.

execute_process(
  COMMAND ${PREDICT} --trace-out=${OUT} --metrics x3-2 MD
  RESULT_VARIABLE predict_result
  OUTPUT_VARIABLE predict_output
  ERROR_VARIABLE predict_stderr
)
if(NOT predict_result EQUAL 0)
  message(FATAL_ERROR "pandia_predict failed (${predict_result}):\n${predict_output}\n${predict_stderr}")
endif()
if(NOT predict_output MATCHES "predictor\\.iterations")
  message(FATAL_ERROR "pandia_predict --metrics did not print predictor.iterations:\n${predict_output}")
endif()
if(NOT predict_output MATCHES "optimizer\\.placements_evaluated")
  message(FATAL_ERROR "pandia_predict --metrics did not print optimizer.placements_evaluated:\n${predict_output}")
endif()

execute_process(
  COMMAND ${CHECK} ${OUT} predict predict.iteration optimizer.rank pipeline.profile
  RESULT_VARIABLE check_result
  OUTPUT_VARIABLE check_output
  ERROR_VARIABLE check_stderr
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "pandia_trace_check failed (${check_result}):\n${check_output}\n${check_stderr}")
endif()
