// pandia-sweep: measure and predict a workload over the canonical placement
// space and emit a plottable CSV series (the raw data behind Figures 1/10).
//
//   pandia_sweep <machine> <workload> [sample-count]
//
// Output columns: placement index (paper order), placement, threads,
// measured time, predicted time, normalized measured/predicted performance.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/sim/machine_spec.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace pandia;
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr, "usage: %s <machine> <workload> [sample-count]\n", argv[0]);
    return 2;
  }
  const std::vector<std::string> known = sim::KnownMachineNames();
  if (std::find(known.begin(), known.end(), argv[1]) == known.end()) {
    std::fprintf(stderr, "error: unknown machine '%s' (known: x5-2, x4-2, x3-2, x2-4)\n",
                 argv[1]);
    return 2;
  }
  if (!workloads::Exists(argv[2])) {
    std::fprintf(stderr,
                 "error: unknown workload '%s' (the 22 evaluation workloads plus "
                 "NPO-1T, Equake, BT-small)\n",
                 argv[2]);
    return 2;
  }
  const eval::Pipeline pipeline(argv[1]);
  const sim::WorkloadSpec workload = workloads::ByName(argv[2]);
  const WorkloadDescription desc = pipeline.Profile(workload);
  const Predictor predictor = pipeline.MakePredictor(desc);
  eval::SweepOptions options;
  if (argc == 4) {
    options.sample_count = static_cast<size_t>(std::atoi(argv[3]));
    options.exhaustive_limit = options.sample_count;
  }
  const eval::SweepResult result =
      eval::RunSweep(pipeline.machine(), predictor, workload, options);

  std::printf("# %s on %s: %zu placements, error mean %.2f%% median %.2f%%, "
              "offset %.2f%%/%.2f%%, best-placement gap %.2f%%\n",
              result.workload.c_str(), result.machine.c_str(),
              result.placements.size(), result.error_mean, result.error_median,
              result.offset_error_mean, result.offset_error_median,
              result.best_placement_gap_pct);
  std::printf("index,placement,threads,measured_time,predicted_time,"
              "measured_norm,predicted_norm\n");
  for (size_t i = 0; i < result.placements.size(); ++i) {
    const eval::PlacementResult& pr = result.placements[i];
    std::printf("%zu,\"%s\",%d,%.6g,%.6g,%.4f,%.4f\n", i,
                pr.placement.ToString().c_str(), pr.placement.TotalThreads(),
                pr.measured_time, pr.predicted_time, pr.measured_norm,
                pr.predicted_norm);
  }
  return 0;
}
