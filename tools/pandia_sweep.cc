// pandia-sweep: measure and predict a workload over the canonical placement
// space and emit a plottable CSV series (the raw data behind Figures 1/10).
//
//   pandia_sweep [flags] <machine> <workload> [sample-count]
//
// Output columns: placement index (paper order), placement, threads,
// measured time, predicted time, normalized measured/predicted performance.
//
// Flags:
//   --jobs=N          fan per-placement measure/predict work out over N
//                     worker threads (default: the PANDIA_JOBS environment
//                     variable, else serial). Output is byte-identical at
//                     every job count.
//
// Robustness flags (see tools/tool_common.h): --trials=N and --fault-* make
// the profiling phase noisy-but-robust; the sweep's measurement runs stay
// fault-free so predicted-vs-measured errors reflect description quality.
//
// Observability flags (src/obs):
//   --trace-out=FILE  write a Chrome trace_event JSON file of the sweep
//                     (per-placement measure/predict spans)
//   --metrics         print the metrics table and per-span wall-time summary
//                     to stderr (stdout stays parseable CSV)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

int main(int argc, char** argv) {
  using namespace pandia;
  tools::CommonFlags common;
  tools::RobustnessFlags robustness;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    tools::FlagParse parsed = common.Match(argv[i]);
    if (parsed == tools::FlagParse::kNoMatch) {
      parsed = robustness.Match(argv[i]);
    }
    if (parsed == tools::FlagParse::kError) {
      return 2;
    }
    if (parsed == tools::FlagParse::kOk) {
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return 2;
    }
    positional.push_back(argv[i]);
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::fprintf(stderr,
                 "usage: %s [--jobs=N] [--trials=N] [--fault-seed=S] "
                 "[--trace-out=FILE] [--metrics] <machine> "
                 "<workload> [sample-count]\n",
                 argv[0]);
    return 2;
  }
  const std::vector<std::string> known = sim::KnownMachineNames();
  if (std::find(known.begin(), known.end(), positional[0]) == known.end()) {
    std::fprintf(stderr, "error: unknown machine '%s' (known: x5-2, x4-2, x3-2, x2-4)\n",
                 positional[0].c_str());
    return 2;
  }
  if (!workloads::Exists(positional[1])) {
    std::fprintf(stderr,
                 "error: unknown workload '%s' (the 22 evaluation workloads plus "
                 "NPO-1T, Equake, BT-small)\n",
                 positional[1].c_str());
    return 2;
  }
  common.ActivateTracing();
  eval::Pipeline pipeline(positional[0]);
  const sim::WorkloadSpec workload = workloads::ByName(positional[1]);
  const sim::FaultPlan fault_plan = robustness.MakeFaultPlan();
  if (fault_plan.active()) {
    pipeline.SetFaultPlan(fault_plan);
  }
  ProfileOptions profile_options;
  profile_options.trials = robustness.trials;
  const StatusOr<WorkloadDescription> desc_or =
      pipeline.ProfileRobust(workload, profile_options);
  if (!desc_or.ok()) {
    return tools::FailWith(desc_or.status(),
                           "profiling '" + positional[1] + "' failed");
  }
  if (robustness.trials > 1 || fault_plan.active()) {
    tools::PrintProfileQuality(desc_or->quality);
  }
  const WorkloadDescription& desc = *desc_or;
  // Measurement runs below compare against fault-free ground truth.
  pipeline.SetFaultPlan(sim::FaultPlan{});
  const Predictor predictor = pipeline.MakePredictor(desc);
  eval::SweepOptions options;
  common.Apply(options.common);
  if (positional.size() == 3) {
    options.sample_count = static_cast<size_t>(std::atoi(positional[2].c_str()));
    options.exhaustive_limit = options.sample_count;
  }
  const eval::SweepResult result =
      eval::RunSweep(pipeline.machine(), predictor, workload, options);

  std::printf("# %s on %s: %zu placements, error mean %.2f%% median %.2f%%, "
              "offset %.2f%%/%.2f%%, best-placement gap %.2f%%\n",
              result.workload.c_str(), result.machine.c_str(),
              result.placements.size(), result.error_mean, result.error_median,
              result.offset_error_mean, result.offset_error_median,
              result.best_placement_gap_pct);
  std::printf("index,placement,threads,measured_time,predicted_time,"
              "measured_norm,predicted_norm\n");
  for (size_t i = 0; i < result.placements.size(); ++i) {
    const eval::PlacementResult& pr = result.placements[i];
    std::printf("%zu,\"%s\",%d,%.6g,%.6g,%.4f,%.4f\n", i,
                pr.placement.ToString().c_str(), pr.placement.TotalThreads(),
                pr.measured_time, pr.predicted_time, pr.measured_norm,
                pr.predicted_norm);
  }

  // stdout stays parseable CSV; the observability tables go to stderr.
  return common.Finish(stderr);
}
