// pandia_lint — walks the tree and runs the repo-invariant lint rules
// (src/lint/lint.h) over every .h/.cc file.
//
//   pandia_lint [--root=DIR] [PATH...]   lint PATHs (default: src tests tools)
//   pandia_lint --analyze [...]          also run the whole-program analyzer
//                                        (lock-order, discarded-status,
//                                        wire-verb-drift, metric-drift)
//   pandia_lint --list-rules             print the rules and exit
//
// Paths are relative to --root (default: the current directory). Output is
// one "file:line: rule: message" diagnostic per finding; the exit code is 0
// when the tree is clean, 1 when anything fired, 2 on usage or I/O errors.
// Suppress a deliberate violation on its line with
//   // pandia-lint: allow(<rule>) <why>
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/lint/analyze.h"
#include "src/lint/lint.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

// Collects the repo-relative (generic, forward-slash) paths of every source
// file under `target`, which may itself be a single file.
bool CollectFiles(const fs::path& root, const std::string& target,
                  std::vector<std::string>* files) {
  std::error_code ec;
  const fs::path full = root / target;
  if (fs::is_regular_file(full, ec)) {
    files->push_back(target);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    std::fprintf(stderr, "pandia_lint: no such file or directory: %s\n",
                 full.string().c_str());
    return false;
  }
  for (fs::recursive_directory_iterator it(full, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::fprintf(stderr, "pandia_lint: error walking %s: %s\n",
                   full.string().c_str(), ec.message().c_str());
      return false;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      files->push_back(
          fs::relative(it->path(), root, ec).generic_string());
    }
  }
  std::sort(files->begin(), files->end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool analyze = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const pandia::lint::RuleInfo& rule : pandia::lint::Rules()) {
        std::printf("%-17s %s\n", std::string(rule.name).c_str(),
                    std::string(rule.summary).c_str());
      }
      for (const pandia::lint::RuleInfo& rule : pandia::lint::AnalyzerRules()) {
        std::printf("%-17s [--analyze] %s\n", std::string(rule.name).c_str(),
                    std::string(rule.summary).c_str());
      }
      return 0;
    }
    if (arg == "--analyze") {
      analyze = true;
      continue;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = std::string(arg.substr(7));
      continue;
    }
    if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: pandia_lint [--root=DIR] [--analyze] [PATH...]\n"
                   "       pandia_lint --list-rules\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
    targets.emplace_back(arg);
  }
  if (targets.empty()) {
    targets = {"src", "tests", "tools"};
  }

  std::vector<std::string> files;
  for (const std::string& target : targets) {
    if (!CollectFiles(root, target, &files)) return 2;
  }

  size_t finding_count = 0;
  std::vector<pandia::lint::SourceFile> sources;
  for (const std::string& file : files) {
    std::string content;
    if (!ReadFile(fs::path(root) / file, &content)) {
      std::fprintf(stderr, "pandia_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    for (const pandia::lint::Finding& finding :
         pandia::lint::LintFile(file, content)) {
      std::printf("%s\n", pandia::lint::FormatFinding(finding).c_str());
      ++finding_count;
    }
    if (analyze) {
      sources.push_back(pandia::lint::SourceFile{file, std::move(content)});
    }
  }
  if (analyze) {
    std::error_code ec;
    const fs::path design = fs::path(root) / "DESIGN.md";
    std::string design_text;
    if (fs::is_regular_file(design, ec) && ReadFile(design, &design_text)) {
      sources.push_back(
          pandia::lint::SourceFile{"DESIGN.md", std::move(design_text)});
    }
    for (const pandia::lint::Finding& finding :
         pandia::lint::AnalyzeFiles(sources).findings) {
      std::printf("%s\n", pandia::lint::FormatFinding(finding).c_str());
      ++finding_count;
    }
  }
  if (finding_count > 0) {
    std::fprintf(stderr, "pandia_lint: %zu finding%s in %zu files\n",
                 finding_count, finding_count == 1 ? "" : "s", files.size());
    return 1;
  }
  return 0;
}
