// pandia-profile: run the six profiling runs for a workload (paper §4) and
// emit its workload description.
//
//   pandia_profile <machine> <workload> [output-file]
//
// <workload> is one of the evaluation-suite names (plus NPO-1T / Equake);
// on real hardware this step would pin and time the actual binary.
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/eval/pipeline.h"
#include "src/sim/machine_spec.h"
#include "src/serialize/serialize.h"
#include "src/workload_desc/assumptions.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace pandia;
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr, "usage: %s <machine> <workload> [output-file]\n", argv[0]);
    return 2;
  }
  const std::vector<std::string> known = sim::KnownMachineNames();
  if (std::find(known.begin(), known.end(), argv[1]) == known.end()) {
    std::fprintf(stderr, "error: unknown machine '%s' (known: x5-2, x4-2, x3-2, x2-4)\n",
                 argv[1]);
    return 2;
  }
  if (!workloads::Exists(argv[2])) {
    std::fprintf(stderr,
                 "error: unknown workload '%s' (the 22 evaluation workloads plus "
                 "NPO-1T, Equake, BT-small)\n",
                 argv[2]);
    return 2;
  }
  const eval::Pipeline pipeline(argv[1]);
  const sim::WorkloadSpec workload = workloads::ByName(argv[2]);
  // Two extra validation runs: refuse silently-wrong descriptions for
  // workloads like equake or BT-small that break the model's assumptions.
  const AssumptionReport assumptions =
      ValidateAssumptions(pipeline.machine(), pipeline.description(), workload);
  for (const std::string& warning : assumptions.warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }
  const WorkloadDescription desc = pipeline.Profile(workload);
  const std::string text = WorkloadDescriptionToText(desc);
  if (argc == 4) {
    if (!WriteTextFile(argv[3], text)) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("wrote %s (p=%.4f o_s=%.4f l=%.2f b=%.3f, %d profile threads)\n",
                argv[3], desc.parallel_fraction, desc.inter_socket_overhead,
                desc.load_balance, desc.burstiness, desc.profile_threads);
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}
