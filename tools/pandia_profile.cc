// pandia-profile: run the six profiling runs for a workload (paper §4) and
// emit its workload description.
//
//   pandia_profile [flags] <machine> <workload> [output-file]
//
// <workload> is one of the evaluation-suite names (plus NPO-1T / Equake);
// on real hardware this step would pin and time the actual binary.
//
// Robustness flags (see tools/tool_common.h): --trials=N repeats every
// profiling run N times and aggregates by median with outlier rejection;
// --fault-seed=S (and the --fault-* knobs) inject deterministic measurement
// faults to exercise that path. With the default single trial and no faults
// the output is byte-identical to earlier versions.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/pandia.h"
#include "tools/tool_common.h"

int main(int argc, char** argv) {
  using namespace pandia;
  tools::RobustnessFlags robustness;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const tools::FlagParse parsed = robustness.Match(argv[i]);
    if (parsed == tools::FlagParse::kError) {
      return 2;
    }
    if (parsed == tools::FlagParse::kOk) {
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return 2;
    }
    positional.push_back(argv[i]);
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::fprintf(stderr,
                 "usage: %s [--trials=N] [--fault-seed=S] [--fault-jitter=X] "
                 "[--fault-dropout=P] [--fault-corrupt=P] [--fault-fail=P] "
                 "<machine> <workload> [output-file]\n",
                 argv[0]);
    return 2;
  }
  const std::vector<std::string> known = sim::KnownMachineNames();
  if (std::find(known.begin(), known.end(), positional[0]) == known.end()) {
    std::fprintf(stderr, "error: unknown machine '%s' (known: x5-2, x4-2, x3-2, x2-4)\n",
                 positional[0].c_str());
    return 2;
  }
  if (!workloads::Exists(positional[1])) {
    std::fprintf(stderr,
                 "error: unknown workload '%s' (the 22 evaluation workloads plus "
                 "NPO-1T, Equake, BT-small)\n",
                 positional[1].c_str());
    return 2;
  }
  eval::Pipeline pipeline(positional[0]);
  const sim::WorkloadSpec workload = workloads::ByName(positional[1]);
  // Two extra validation runs: refuse silently-wrong descriptions for
  // workloads like equake or BT-small that break the model's assumptions.
  const AssumptionReport assumptions =
      ValidateAssumptions(pipeline.machine(), pipeline.description(), workload);
  for (const std::string& warning : assumptions.warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }
  const sim::FaultPlan plan = robustness.MakeFaultPlan();
  if (plan.active()) {
    pipeline.SetFaultPlan(plan);
  }
  ProfileOptions profile_options;
  profile_options.trials = robustness.trials;
  const StatusOr<WorkloadDescription> desc =
      pipeline.ProfileRobust(workload, profile_options);
  if (!desc.ok()) {
    return tools::FailWith(desc.status(),
                           "profiling '" + positional[1] + "' failed");
  }
  if (robustness.trials > 1 || plan.active()) {
    tools::PrintProfileQuality(desc->quality);
  }
  const std::string text = WorkloadDescriptionToText(*desc);
  if (positional.size() == 3) {
    const Status written = WriteTextFile(positional[2], text);
    if (!written.ok()) {
      return tools::FailWith(written);
    }
    std::printf("wrote %s (p=%.4f o_s=%.4f l=%.2f b=%.3f, %d profile threads)\n",
                positional[2].c_str(), desc->parallel_fraction,
                desc->inter_socket_overhead, desc->load_balance, desc->burstiness,
                desc->profile_threads);
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}
