// Shared helpers for the pandia_* CLI front-ends: common flag parsing
// (--jobs, --trace-out, --metrics, --trials, --fault-*) and uniform Status
// error reporting. Tools never abort on bad input; every failure path
// prints a structured error naming the offending flag, field, or file and
// exits non-zero.
//
// Tools include only this header and the umbrella src/pandia.h — never
// internal src/ headers directly.
#ifndef PANDIA_TOOLS_TOOL_COMMON_H_
#define PANDIA_TOOLS_TOOL_COMMON_H_

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/pandia.h"

namespace pandia {
namespace tools {

enum class FlagParse { kNoMatch, kOk, kError };

// Parses a whole decimal integer flag value; `flag` names it in the error.
inline StatusOr<int> ParseIntFlag(const char* value, const char* flag) {
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (*value == '\0' || *end != '\0' || parsed < INT_MIN || parsed > INT_MAX) {
    return Status::InvalidArgument(
        StrFormat("%s needs an integer, got '%s'", flag, value));
  }
  return static_cast<int>(parsed);
}

// The shared fan-out/observability flags, threaded through CommonOptions so
// every tool parses and applies them the same way:
//   --jobs=N          fan parallelizable phases out over N worker threads
//                     (default: the PANDIA_JOBS environment variable, else
//                     serial); results are byte-identical at any job count
//   --trace-out=FILE  write a Chrome trace_event JSON file (open via
//                     chrome://tracing or https://ui.perfetto.dev)
//   --metrics         print the metrics table and per-span wall-time summary
//   --metrics-out=FILE  dump the final metrics snapshot as CSV on clean
//                     shutdown (machine-readable companion to --metrics)
struct CommonFlags {
  int jobs = 0;  // 0: defer to PANDIA_JOBS
  std::string trace_out;
  std::string metrics_out;
  bool metrics = false;

  // Tries to consume one argv entry; prints to stderr on kError.
  FlagParse Match(const char* arg) {
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
      return FlagParse::kOk;
    }
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
      if (metrics_out.empty()) {
        std::fprintf(stderr, "error: --metrics-out needs a file path\n");
        return FlagParse::kError;
      }
      return FlagParse::kOk;
    }
    if (std::strcmp(arg, "--metrics") == 0) {
      metrics = true;
      return FlagParse::kOk;
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = std::atoi(arg + 7);
      if (jobs < 1) {
        std::fprintf(stderr, "error: --jobs needs a positive integer, got '%s'\n",
                     arg + 7);
        return FlagParse::kError;
      }
      return FlagParse::kOk;
    }
    return FlagParse::kNoMatch;
  }

  // Call once after flag parsing: spans are recorded only while the tracer
  // is enabled (--metrics needs them for the per-span summary too).
  void ActivateTracing() const {
    if (!trace_out.empty() || metrics) {
      obs::Tracer::Global().SetEnabled(true);
    }
  }

  // Copies the flags into any options struct carrying a CommonOptions.
  void Apply(CommonOptions& common) const { common.jobs = jobs; }

  // Emits the requested artifacts: the trace file, and the metrics/span
  // tables on `out`. Returns a non-zero exit code on write failure.
  int Finish(std::FILE* out = stdout) const {
    if (!trace_out.empty()) {
      const Status written =
          WriteTextFile(trace_out, obs::Tracer::Global().ChromeTraceJson());
      if (!written.ok()) {
        std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote trace to %s (open via chrome://tracing)\n",
                   trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::FILE* file = std::fopen(metrics_out.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     metrics_out.c_str());
        return 1;
      }
      obs::RenderTable(obs::MetricsRegistry::Global().Snapshot()).PrintCsv(file);
      if (std::fclose(file) != 0) {
        std::fprintf(stderr, "error: cannot write '%s'\n", metrics_out.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote metrics CSV to %s\n", metrics_out.c_str());
    }
    if (metrics) {
      std::fprintf(out, "\nmetrics:\n");
      obs::RenderTable(obs::MetricsRegistry::Global().Snapshot()).Print(out);
      std::fprintf(out, "\nspan summary:\n");
      obs::Tracer::Global().SummaryTable().Print(out);
    }
    return 0;
  }
};

// Robustness flags shared by the measuring tools:
//   --trials=N         profiling trials per run (default 1; median aggregate)
//   --fault-seed=S     arm the default fault plan (3% time jitter, 5% counter
//                      dropout, 1-in-20 run failure) with seed S
//   --fault-jitter=X   override the time-jitter magnitude (in [0, 0.9])
//   --fault-dropout=P  override the counter-dropout probability
//   --fault-corrupt=P  override the counter-corruption probability
//   --fault-fail=P     override the run-failure probability (in [0, 0.9])
// Any --fault-* flag arms fault injection; knob overrides given without
// --fault-seed start from an otherwise-quiet plan with seed 1.
struct RobustnessFlags {
  int trials = 1;
  std::optional<uint64_t> fault_seed;
  std::optional<double> jitter;
  std::optional<double> dropout;
  std::optional<double> corrupt;
  std::optional<double> fail;

  // Tries to consume one argv entry; prints to stderr on kError.
  FlagParse Match(const char* arg) {
    const auto value_of = [arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value_of("--trials=")) {
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (*v == '\0' || *end != '\0' || parsed < 1 || parsed > 1000) {
        std::fprintf(stderr, "error: --trials needs an integer in [1, 1000], got '%s'\n", v);
        return FlagParse::kError;
      }
      trials = static_cast<int>(parsed);
      return FlagParse::kOk;
    }
    if (const char* v = value_of("--fault-seed=")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (*v == '\0' || *end != '\0') {
        std::fprintf(stderr, "error: --fault-seed needs an unsigned integer, got '%s'\n", v);
        return FlagParse::kError;
      }
      fault_seed = static_cast<uint64_t>(parsed);
      return FlagParse::kOk;
    }
    const auto parse_rate = [](const char* flag, const char* v, double max_value,
                               std::optional<double>& out) {
      char* end = nullptr;
      const double parsed = std::strtod(v, &end);
      if (*v == '\0' || *end != '\0' || !(parsed >= 0.0 && parsed <= max_value)) {
        std::fprintf(stderr, "error: %s needs a number in [0, %g], got '%s'\n", flag,
                     max_value, v);
        return FlagParse::kError;
      }
      out = parsed;
      return FlagParse::kOk;
    };
    if (const char* v = value_of("--fault-jitter=")) {
      return parse_rate("--fault-jitter", v, 0.9, jitter);
    }
    if (const char* v = value_of("--fault-dropout=")) {
      return parse_rate("--fault-dropout", v, 1.0, dropout);
    }
    if (const char* v = value_of("--fault-corrupt=")) {
      return parse_rate("--fault-corrupt", v, 1.0, corrupt);
    }
    if (const char* v = value_of("--fault-fail=")) {
      return parse_rate("--fault-fail", v, 0.9, fail);
    }
    return FlagParse::kNoMatch;
  }

  bool any_fault_flag() const {
    return fault_seed.has_value() || jitter.has_value() || dropout.has_value() ||
           corrupt.has_value() || fail.has_value();
  }

  sim::FaultPlan MakeFaultPlan() const {
    sim::FaultPlan plan;
    if (fault_seed.has_value()) {
      plan = sim::FaultPlan::Defaults(*fault_seed);
    } else if (any_fault_flag()) {
      plan.enabled = true;
    }
    if (jitter.has_value()) {
      plan.time_jitter = *jitter;
    }
    if (dropout.has_value()) {
      plan.counter_dropout = *dropout;
    }
    if (corrupt.has_value()) {
      plan.counter_corrupt = *corrupt;
    }
    if (fail.has_value()) {
      plan.run_failure = *fail;
    }
    return plan;
  }
};

// Prints "error: [context: ]CODE: message" and returns the tool exit code.
inline int FailWith(const Status& status, const std::string& context = "") {
  if (context.empty()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  } else {
    std::fprintf(stderr, "error: %s: %s\n", context.c_str(),
                 status.ToString().c_str());
  }
  return 1;
}

// One-paragraph stderr summary of a robust-profiling session (trials used,
// repairs made, diagnostics). Quiet for a pristine single-trial profile.
inline void PrintProfileQuality(const ProfileQuality& quality) {
  int trials = 0;
  int outliers = 0;
  for (const ProfileRunQuality& run : quality.runs) {
    trials = run.trials > trials ? run.trials : trials;
    outliers += run.outliers_rejected;
  }
  std::fprintf(stderr,
               "profile quality: %d trial(s) per run, %d retried run(s), %d "
               "outlier(s) rejected, %d counter(s) imputed%s\n",
               trials, quality.total_retries(), outliers, quality.counters_imputed,
               quality.degraded() ? "" : " (clean)");
  for (const std::string& diagnostic : quality.diagnostics) {
    std::fprintf(stderr, "profile note: %s\n", diagnostic.c_str());
  }
}

}  // namespace tools
}  // namespace pandia

#endif  // PANDIA_TOOLS_TOOL_COMMON_H_
