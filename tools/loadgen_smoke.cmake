# End-to-end load-generator smoke driven by ctest (see tools/CMakeLists.txt):
# run a 2-shard pandia_serve fleet headless on a Unix-domain socket, replay a
# short closed-loop trace plus a short open-loop Poisson trace through
# pandia_loadgen, and assert
#   * both runs complete with zero generator errors,
#   * the closed-loop run admits every request it offered,
#   * the JSON report carries an LG_AdmitThroughput row with a positive
#     items_per_second and all three LG_AdmitLatency percentile rows (the
#     shape tools/check_bench_regression.py gates in CI against
#     bench/BENCH_serve_baseline.json), and
#   * the fleet answers STATUS with both shards after the load.
#
# The daemon must run in the background while the generator drives it, so
# the session is scripted through `bash -c` (this repo targets Linux).
#
# Variables (passed via -D): SERVE, LOADGEN, CLIENT, WORK.

file(MAKE_DIRECTORY ${WORK})
file(REMOVE ${WORK}/serve.sock ${WORK}/loadgen.json)

execute_process(
  COMMAND bash -c "\
set -e; \
'${SERVE}' --machine node0=x3-2 --machine node1=x3-2 \
  --machine node2=x3-2 --machine node3=x3-2 \
  --shards=2 --replace-margin=10 --socket='${WORK}/serve.sock' \
  < /dev/null > '${WORK}/serve.out' 2> '${WORK}/serve.err' & \
serve_pid=$!; \
for i in $(seq 1 100); do [ -S '${WORK}/serve.sock' ] && break; sleep 0.1; done; \
[ -S '${WORK}/serve.sock' ] || { echo 'daemon never opened its socket' >&2; exit 1; }; \
'${LOADGEN}' --socket='${WORK}/serve.sock' --connections=2 --requests=200 \
  --batch=2 --seed=3 --json-out='${WORK}/loadgen.json' \
  2> '${WORK}/loadgen_closed.err'; \
'${LOADGEN}' --socket='${WORK}/serve.sock' --mode=open --pattern=poisson \
  --rate=2000 --requests=100 --seed=5 2> '${WORK}/loadgen_open.err'; \
'${CLIENT}' --socket='${WORK}/serve.sock' 'STATUS' > '${WORK}/status.out'; \
'${CLIENT}' --socket='${WORK}/serve.sock' 'SHUTDOWN' > '${WORK}/shutdown.out'; \
wait $serve_pid"
  RESULT_VARIABLE session_result
  OUTPUT_VARIABLE session_output
  ERROR_VARIABLE session_stderr
)
if(NOT session_result EQUAL 0)
  message(FATAL_ERROR "scripted loadgen session failed (${session_result}):\n${session_output}\n${session_stderr}")
endif()

# Closed loop: every offered request admitted, none errored.
file(READ ${WORK}/loadgen_closed.err closed_report)
if(NOT closed_report MATCHES "200 admit\\(s\\) in ")
  message(FATAL_ERROR "closed-loop run did not admit all 200 requests:\n${closed_report}")
endif()
if(NOT closed_report MATCHES "error\\(s\\)=0")
  message(FATAL_ERROR "closed-loop run reported generator errors:\n${closed_report}")
endif()

# Open loop: the trace replayed to completion without errors.
file(READ ${WORK}/loadgen_open.err open_report)
if(NOT open_report MATCHES "100 admit\\(s\\) in ")
  message(FATAL_ERROR "open-loop run did not admit all 100 requests:\n${open_report}")
endif()
if(NOT open_report MATCHES "error\\(s\\)=0")
  message(FATAL_ERROR "open-loop run reported generator errors:\n${open_report}")
endif()

# The JSON report: google-benchmark shape with the rows the CI gate reads.
file(READ ${WORK}/loadgen.json json_report)
if(NOT json_report MATCHES "\"name\": \"LG_AdmitThroughput\"")
  message(FATAL_ERROR "loadgen JSON is missing LG_AdmitThroughput:\n${json_report}")
endif()
if(NOT json_report MATCHES "\"items_per_second\": ([0-9.]+)")
  message(FATAL_ERROR "loadgen JSON carries no items_per_second:\n${json_report}")
endif()
if(CMAKE_MATCH_1 LESS_EQUAL 0)
  message(FATAL_ERROR "loadgen throughput is not positive (${CMAKE_MATCH_1}):\n${json_report}")
endif()
foreach(quantile P50 P90 P99)
  if(NOT json_report MATCHES "\"name\": \"LG_AdmitLatency${quantile}\"")
    message(FATAL_ERROR "loadgen JSON is missing LG_AdmitLatency${quantile}:\n${json_report}")
  endif()
endforeach()

# The fleet survived the load: STATUS fans out across both shards, and no
# loadgen job leaked past its DEPART.
file(READ ${WORK}/status.out status_output)
if(NOT status_output MATCHES "ok STATUS")
  message(FATAL_ERROR "post-load STATUS failed:\n${status_output}")
endif()
if(NOT status_output MATCHES "shards = 2")
  message(FATAL_ERROR "post-load STATUS is missing the shard count:\n${status_output}")
endif()
if(status_output MATCHES "job = lg-")
  message(FATAL_ERROR "a loadgen job leaked past its DEPART:\n${status_output}")
endif()
