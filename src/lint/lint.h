// pandia_lint — the repo-invariant checker's rule engine.
//
// A fast token/line-level linter for the Pandia tree. It is not a compiler:
// it lexes each file just far enough to separate code from comments and
// string/char literals (so a rule never fires on its own name appearing in a
// doc comment or a test fixture string), then runs a fixed set of rules over
// the code text line by line. The rules encode repo invariants that generic
// tooling does not know about:
//
//   naked-mutex     std::mutex / lock_guard / condition_variable et al. are
//                   reserved for src/util/mutex.h; everything else uses the
//                   annotated pandia::util::Mutex so Clang thread-safety
//                   analysis sees every acquisition.
//   no-abort        library code under src/ reports errors via Status, never
//                   abort()/exit()/throw. (PANDIA_CHECK's own abort carries
//                   an explicit allow.)
//   unseeded-rand   rand()/srand()/std::random_device/time(nullptr) outside
//                   src/util/rng break run-to-run determinism; all
//                   randomness flows through the seeded Rng.
//   unordered-wire  unordered containers in src/serialize/ or src/serve/
//                   risk hash-order-dependent wire output; serialization
//                   paths iterate ordered containers only.
//   no-raw-journal-io  direct file I/O in src/serve/ outside journal.cc;
//                   serve::Journal owns framing, fsync policy, compaction.
//   no-raw-poll-io  raw event-loop/socket syscalls (epoll_*/poll/select/
//                   socket/accept) outside serve/socket.cc and
//                   socket_internal.h; the Poller is the one event loop.
//   todo-owner      TODOs must name an owner: TODO(name): ...
//   metric-name     instrument names at counter(/gauge(/histogram( sites
//                   follow subsystem.dotted_lowercase.
//
// Cross-file rules (lock-order, discarded-status, wire-verb-drift,
// metric-drift) live in the whole-program analyzer, src/lint/analyze.h.
//
// Any finding can be suppressed on its line with a trailing comment:
//
//   std::mutex raw_;  // pandia-lint: allow(naked-mutex) interop with libfoo
//
// The engine is a library so tests can feed it synthetic files directly;
// tools/pandia_lint.cc is the CLI that walks the tree.
#ifndef PANDIA_SRC_LINT_LINT_H_
#define PANDIA_SRC_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace pandia {
namespace lint {

struct Finding {
  std::string path;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

// The registered rules, in the order they run. Names are the identifiers
// accepted by `pandia-lint: allow(<name>)` and printed in findings.
const std::vector<RuleInfo>& Rules();

// Lints one file. `path` should be the repo-relative path with forward
// slashes (e.g. "src/serve/service.cc"): rules use it for scoping (which
// rules apply) and exemptions (which files are allowed to violate them).
// Findings come back in line order; allow()-suppressed findings are dropped.
std::vector<Finding> LintFile(std::string_view path, std::string_view content);

// "path:line: rule: message" — the single-line diagnostic format.
std::string FormatFinding(const Finding& finding);

}  // namespace lint
}  // namespace pandia

#endif  // PANDIA_SRC_LINT_LINT_H_
