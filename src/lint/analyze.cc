#include "src/lint/analyze.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/lint/lexer.h"

namespace pandia {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Small text utilities over the blanked `code` buffer.

bool IsBlank(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

size_t SkipBlanks(std::string_view text, size_t pos) {
  while (pos < text.size() && IsBlank(text[pos])) ++pos;
  return pos;
}

// Last non-blank position strictly before `pos`, or npos.
size_t PrevNonBlank(std::string_view text, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!IsBlank(text[pos])) return pos;
  }
  return std::string_view::npos;
}

// The identifier ending at `end` (inclusive); empty if text[end] is not an
// identifier character.
std::string_view IdentEndingAt(std::string_view text, size_t end) {
  if (end == std::string_view::npos || !IsIdentChar(text[end])) return {};
  size_t start = end;
  while (start > 0 && IsIdentChar(text[start - 1])) --start;
  return text.substr(start, end - start + 1);
}

// The identifier starting at `pos`; empty if text[pos] cannot start one.
std::string_view IdentStartingAt(std::string_view text, size_t pos) {
  if (pos >= text.size() || !IsIdentChar(text[pos]) || IsDigit(text[pos])) {
    return {};
  }
  size_t end = pos;
  while (end < text.size() && IsIdentChar(text[end])) ++end;
  return text.substr(pos, end - pos);
}

// Position of the delimiter matching the opener at `open` ('(' / '{' / '<'),
// or npos. Operates on the blanked code buffer, so delimiters inside strings
// and comments cannot confuse the count.
size_t MatchDelim(std::string_view text, size_t open, char open_c, char close_c) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_c) ++depth;
    if (text[i] == close_c && --depth == 0) return i;
  }
  return std::string_view::npos;
}

// Binary-searchable newline index: LineOf(offset) in O(log n).
class LineIndex {
 public:
  explicit LineIndex(std::string_view content) {
    starts_.push_back(0);
    for (size_t i = 0; i < content.size(); ++i) {
      if (content[i] == '\n') starts_.push_back(i + 1);
    }
  }
  int LineOf(size_t offset) const {
    auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<size_t> starts_;
};

std::string Stem(std::string_view path) {
  if (EndsWith(path, ".cc")) return std::string(path.substr(0, path.size() - 3));
  if (EndsWith(path, ".h")) return std::string(path.substr(0, path.size() - 2));
  return std::string(path);
}

bool IsUpperVerb(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!((c >= 'A' && c <= 'Z') || c == '-')) return false;
  }
  return true;
}

// Whole-token occurrence of `token` anywhere in free text (used against
// DESIGN.md prose).
bool TextHasToken(std::string_view text, std::string_view token) {
  return FindToken(text, token, 0) != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Indexed file: one lex per file, shared by both phases.

struct IndexedFile {
  const SourceFile* source = nullptr;
  SeparatedSource sep;
  LineIndex lines;
  std::map<int, std::set<std::string>> allows;

  explicit IndexedFile(const SourceFile& file)
      : source(&file), sep(Separate(file.content)), lines(file.content) {
    allows = CollectAllows(SplitLines(sep.comments));
  }

  std::string_view path() const { return source->path; }
  std::string_view code() const { return sep.code; }
  bool is_header() const { return EndsWith(source->path, ".h"); }
  bool is_cc() const { return EndsWith(source->path, ".cc"); }
};

std::vector<IndexedFile> BuildIndex(const std::vector<SourceFile>& files) {
  std::vector<IndexedFile> indexed;
  indexed.reserve(files.size());
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, ".h") || EndsWith(file.path, ".cc")) {
      indexed.emplace_back(file);
    }
  }
  return indexed;
}

// The first literal whose opening quote lies in (begin, end), if any.
const Literal* FirstLiteralIn(const std::vector<Literal>& literals,
                              size_t begin, size_t end) {
  for (const Literal& lit : literals) {
    if (lit.offset > begin && lit.offset < end) return &lit;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Phase 1: fact extraction.

// `inline constexpr int kFoo = 42;` — the lock-rank constants (and any other
// small integer constant; only names looked up later matter).
void IndexRankConstants(const IndexedFile& file, RepoFacts* facts) {
  std::string_view code = file.code();
  for (size_t pos = FindToken(code, "constexpr", 0);
       pos != std::string_view::npos;
       pos = FindToken(code, "constexpr", pos + 1)) {
    size_t p = SkipBlanks(code, pos + 9);
    std::string_view type = IdentStartingAt(code, p);
    if (type != "int") continue;
    p = SkipBlanks(code, p + type.size());
    std::string_view name = IdentStartingAt(code, p);
    if (name.empty()) continue;
    p = SkipBlanks(code, p + name.size());
    if (p >= code.size() || code[p] != '=') continue;
    p = SkipBlanks(code, p + 1);
    bool negative = false;
    if (p < code.size() && code[p] == '-') {
      negative = true;
      ++p;
    }
    if (p >= code.size() || !IsDigit(code[p])) continue;
    int value = 0;
    while (p < code.size() && IsDigit(code[p])) {
      value = value * 10 + (code[p] - '0');
      ++p;
    }
    facts->rank_constants[std::string(name)] = negative ? -value : value;
  }
}

// Status/StatusOr-returning functions. To keep the name set usable across
// classes, every `Type ident(`-shaped declaration in any file votes on its
// name: a name is a "status function" only if it is declared with a
// Status/StatusOr return somewhere and never declared with any other
// identified return type (so e.g. a `Validate` that returns Status in one
// class and void in another drops out rather than flagging the void one).
// Call sites never vote: a call's name is preceded by punctuation or a
// statement keyword, not by a type identifier.
void IndexStatusFunctions(const std::vector<IndexedFile>& files,
                          RepoFacts* facts) {
  static const std::set<std::string_view> kNonTypeTokens = {
      "return",  "co_return", "if",       "while",    "for",    "switch",
      "case",    "delete",    "new",      "else",     "do",     "sizeof",
      "alignof", "not",       "and",      "or",       "goto",   "using",
      "typedef", "namespace", "throw",    "decltype", "alignas",
      "static_assert",
  };
  std::map<std::string, int> status_votes;
  std::map<std::string, int> other_votes;
  for (const IndexedFile& file : files) {
    std::string_view code = file.code();
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdentChar(code[i]) || (i > 0 && IsIdentChar(code[i - 1]))) {
        continue;
      }
      std::string_view name = IdentStartingAt(code, i);
      if (name.empty()) {
        continue;
      }
      size_t after = SkipBlanks(code, i + name.size());
      if (after >= code.size() || code[after] != '(') {
        i += name.size() - 1;
        continue;
      }
      // `name(` — find the preceding return-type token, if any.
      size_t prev = PrevNonBlank(code, i);
      if (prev == std::string_view::npos) {
        i += name.size() - 1;
        continue;
      }
      if (code[prev] == '>') {
        // Possibly `StatusOr<...> name(`: walk the angle brackets back.
        int depth = 0;
        size_t j = prev + 1;
        size_t open = std::string_view::npos;
        while (j > 0) {
          --j;
          if (code[j] == '>') ++depth;
          if (code[j] == '<' && --depth == 0) {
            open = j;
            break;
          }
        }
        if (open != std::string_view::npos && open > 0) {
          std::string_view tmpl =
              IdentEndingAt(code, PrevNonBlank(code, open));
          if (tmpl == "StatusOr") {
            ++status_votes[std::string(name)];
          } else if (!tmpl.empty()) {
            ++other_votes[std::string(name)];
          }
        }
      } else if (IsIdentChar(code[prev])) {
        std::string_view ret = IdentEndingAt(code, prev);
        if (ret == "Status" || ret == "StatusOr") {
          ++status_votes[std::string(name)];
        } else if (kNonTypeTokens.count(ret) == 0) {
          ++other_votes[std::string(name)];
        }
      }
      i += name.size() - 1;
    }
  }
  for (const auto& [name, votes] : status_votes) {
    if (votes > 0 && other_votes[name] == 0) {
      facts->status_functions.insert(name);
    }
  }
}

// util::Mutex declarations with optional {"name", rank} initializers.
void IndexLockDecls(const IndexedFile& file, RepoFacts* facts) {
  std::string_view code = file.code();
  const std::string stem = Stem(file.path());
  for (size_t pos = FindToken(code, "Mutex", 0); pos != std::string_view::npos;
       pos = FindToken(code, "Mutex", pos + 1)) {
    size_t p = SkipBlanks(code, pos + 5);
    std::string_view var = IdentStartingAt(code, p);
    if (var.empty()) continue;  // `Mutex(`, `Mutex&`, `Mutex {`: not a decl
    if (var == "PANDIA_SCOPED_CAPABILITY") continue;
    size_t after = SkipBlanks(code, p + var.size());
    if (after < code.size() && (code[after] == ')' || code[after] == ',')) {
      continue;  // function parameter, not a declaration
    }
    LockDecl decl;
    decl.var = std::string(var);
    decl.stem = stem;
    decl.file = std::string(file.path());
    decl.line = file.lines.LineOf(p);
    if (after < code.size() && (code[after] == '{' || code[after] == '(')) {
      const char open_c = code[after];
      const char close_c = open_c == '{' ? '}' : ')';
      size_t close = MatchDelim(code, after, open_c, close_c);
      if (close == std::string_view::npos) continue;
      const Literal* name_lit =
          FirstLiteralIn(file.sep.literals, after, close);
      if (name_lit != nullptr) {
        decl.id = name_lit->text;
        // After the (blanked) literal: `, <rank>` — an integer or a
        // kLockRank* constant name.
        size_t q = SkipBlanks(code, name_lit->offset);
        if (q < close && code[q] == ',') {
          q = SkipBlanks(code, q + 1);
          if (q < close && (IsDigit(code[q]) || code[q] == '-')) {
            size_t end = q + 1;
            while (end < close && IsDigit(code[end])) ++end;
            decl.rank_expr = std::string(code.substr(q, end - q));
          } else {
            // Possibly qualified: take the last identifier before the close.
            size_t r = PrevNonBlank(code, close);
            std::string_view ident = IdentEndingAt(code, r);
            if (!ident.empty()) decl.rank_expr = std::string(ident);
          }
        }
      }
    }
    if (decl.id.empty()) decl.id = stem + "::" + decl.var;
    facts->locks.push_back(std::move(decl));
  }
}

void ResolveRanks(RepoFacts* facts) {
  for (LockDecl& decl : facts->locks) {
    if (decl.rank_expr.empty()) continue;
    if (IsDigit(decl.rank_expr[0]) || decl.rank_expr[0] == '-') {
      decl.rank = 0;
      bool negative = decl.rank_expr[0] == '-';
      for (char c : decl.rank_expr) {
        if (IsDigit(c)) decl.rank = decl.rank * 10 + (c - '0');
      }
      if (negative) decl.rank = -decl.rank;
      decl.has_rank = true;
    } else {
      auto it = facts->rank_constants.find(decl.rank_expr);
      if (it != facts->rank_constants.end()) {
        decl.rank = it->second;
        decl.has_rank = true;
      }
    }
  }
}

// Lock identity resolution: (stem, var) first — a header's member mutex
// resolves at use sites in the same-stem .cc — then a globally unique var
// name as fallback.
class LockResolver {
 public:
  explicit LockResolver(const RepoFacts& facts) {
    for (const LockDecl& decl : facts.locks) {
      by_stem_var_.emplace(decl.stem + "\n" + decl.var, decl.id);
      by_var_[decl.var].insert(decl.id);
    }
  }

  // The canonical lock id for an acquisition expression like `mu_`,
  // `buffer->mu`, `shard.mu`, `&cache_.mu`; empty when unresolvable.
  std::string Resolve(std::string_view expr, const std::string& stem) const {
    size_t end = expr.size();
    while (end > 0 && !IsIdentChar(expr[end - 1])) --end;
    if (end == 0) return {};
    size_t start = end;
    while (start > 0 && IsIdentChar(expr[start - 1])) --start;
    const std::string var(expr.substr(start, end - start));
    auto it = by_stem_var_.find(stem + "\n" + var);
    if (it != by_stem_var_.end()) return it->second;
    auto vit = by_var_.find(var);
    if (vit != by_var_.end() && vit->second.size() == 1) {
      return *vit->second.begin();
    }
    return {};
  }

 private:
  std::map<std::string, std::string> by_stem_var_;
  std::map<std::string, std::set<std::string>> by_var_;
};

// PANDIA_REQUIRES/PANDIA_ACQUIRE annotations on header declarations, keyed
// by (stem, function name) so the same-stem .cc definition inherits them.
struct AnnotationIndex {
  // stem + "\n" + function -> lock ids required/acquired at entry
  std::map<std::string, std::vector<std::string>> by_fn;
};

void IndexHeaderAnnotations(const IndexedFile& file,
                            const LockResolver& resolver,
                            AnnotationIndex* index) {
  std::string_view code = file.code();
  const std::string stem = Stem(file.path());
  for (std::string_view macro :
       {std::string_view("PANDIA_REQUIRES"), std::string_view("PANDIA_ACQUIRE")}) {
    for (size_t pos = FindToken(code, macro, 0); pos != std::string_view::npos;
         pos = FindToken(code, macro, pos + 1)) {
      size_t open = SkipBlanks(code, pos + macro.size());
      if (open >= code.size() || code[open] != '(') continue;
      size_t close = MatchDelim(code, open, '(', ')');
      if (close == std::string_view::npos) continue;
      // Walk back over trailing specifiers to the signature's `)`, then to
      // its `(`, then to the function name.
      size_t p = PrevNonBlank(code, pos);
      while (p != std::string_view::npos && IsIdentChar(code[p])) {
        std::string_view spec = IdentEndingAt(code, p);
        if (spec != "const" && spec != "noexcept" && spec != "override" &&
            spec != "final") {
          break;
        }
        p = PrevNonBlank(code, p - spec.size() + 1);
      }
      if (p == std::string_view::npos || code[p] != ')') continue;
      int depth = 0;
      size_t sig_open = std::string_view::npos;
      size_t j = p + 1;
      while (j > 0) {
        --j;
        if (code[j] == ')') ++depth;
        if (code[j] == '(' && --depth == 0) {
          sig_open = j;
          break;
        }
      }
      if (sig_open == std::string_view::npos || sig_open == 0) continue;
      std::string_view fn =
          IdentEndingAt(code, PrevNonBlank(code, sig_open));
      if (fn.empty()) continue;
      // Resolve each annotation argument to a lock id.
      std::string_view args = code.substr(open + 1, close - open - 1);
      size_t start = 0;
      while (start <= args.size()) {
        size_t comma = args.find(',', start);
        std::string_view arg = comma == std::string_view::npos
                                   ? args.substr(start)
                                   : args.substr(start, comma - start);
        std::string id = resolver.Resolve(arg, stem);
        if (!id.empty()) {
          index->by_fn[stem + "\n" + std::string(fn)].push_back(id);
        }
        if (comma == std::string_view::npos) break;
        start = comma + 1;
      }
    }
  }
}

// The lexical acquisition scan: walks one file's code buffer tracking brace
// depth, the stack of held locks (MutexLock scopes plus annotation-implied
// holds), and records an edge for every nested acquisition.
void ScanAcquisitions(const IndexedFile& file, const LockResolver& resolver,
                      const AnnotationIndex& annotations, RepoFacts* facts) {
  std::string_view code = file.code();
  const std::string stem = Stem(file.path());

  struct Held {
    std::string id;
    int depth;
    int line;
  };
  struct Pending {
    std::string id;
    int line;
  };
  std::vector<Held> held;
  std::vector<Pending> pending;
  int depth = 0;

  auto acquire = [&](const std::string& id, int line) {
    for (const Held& h : held) {
      if (h.id == id) continue;
      facts->lock_edges.push_back(
          LockEdge{h.id, id, std::string(file.path()), h.line, line});
    }
  };

  size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '{') {
      ++depth;
      for (const Pending& p : pending) {
        held.push_back(Held{p.id, depth, p.line});
      }
      pending.clear();
      ++i;
      continue;
    }
    if (c == '}') {
      while (!held.empty() && held.back().depth == depth) held.pop_back();
      --depth;
      ++i;
      continue;
    }
    if (c == ';') {
      pending.clear();  // annotated declaration without a body
      ++i;
      continue;
    }
    if (!IsIdentChar(c) || (i > 0 && IsIdentChar(code[i - 1]))) {
      ++i;
      continue;
    }
    std::string_view ident = IdentStartingAt(code, i);
    if (ident.empty()) {
      ++i;
      continue;
    }
    if (ident == "MutexLock") {
      // `MutexLock guard(expr);` — possibly `util::`-qualified (the `::` is
      // transparent to the token scan) or brace-initialized.
      size_t p = SkipBlanks(code, i + ident.size());
      std::string_view guard = IdentStartingAt(code, p);
      p = SkipBlanks(code, p + guard.size());
      if (!guard.empty() && p < code.size() &&
          (code[p] == '(' || code[p] == '{')) {
        const char open_c = code[p];
        const char close_c = open_c == '(' ? ')' : '}';
        size_t close = MatchDelim(code, p, open_c, close_c);
        if (close != std::string_view::npos) {
          std::string id =
              resolver.Resolve(code.substr(p + 1, close - p - 1), stem);
          if (!id.empty()) {
            const int line = file.lines.LineOf(i);
            acquire(id, line);
            held.push_back(Held{id, depth, line});
          }
          i = close + 1;
          continue;
        }
      }
      i += ident.size();
      continue;
    }
    if (ident == "PANDIA_REQUIRES" || ident == "PANDIA_ACQUIRE") {
      size_t open = SkipBlanks(code, i + ident.size());
      if (open < code.size() && code[open] == '(') {
        size_t close = MatchDelim(code, open, '(', ')');
        if (close != std::string_view::npos) {
          std::string_view args = code.substr(open + 1, close - open - 1);
          const int line = file.lines.LineOf(i);
          size_t start = 0;
          while (start <= args.size()) {
            size_t comma = args.find(',', start);
            std::string_view arg = comma == std::string_view::npos
                                       ? args.substr(start)
                                       : args.substr(start, comma - start);
            std::string id = resolver.Resolve(arg, stem);
            if (!id.empty()) pending.push_back(Pending{id, line});
            if (comma == std::string_view::npos) break;
            start = comma + 1;
          }
          i = close + 1;
          continue;
        }
      }
      i += ident.size();
      continue;
    }
    // `Class::Method(` at file scope in a .cc: the header declaration may
    // carry the REQUIRES annotation this definition inherits.
    if (file.is_cc() && depth == 0 && i >= 2 && code[i - 1] == ':' &&
        code[i - 2] == ':') {
      size_t after = SkipBlanks(code, i + ident.size());
      if (after < code.size() && code[after] == '(') {
        auto it = annotations.by_fn.find(stem + "\n" + std::string(ident));
        if (it != annotations.by_fn.end()) {
          const int line = file.lines.LineOf(i);
          for (const std::string& id : it->second) {
            pending.push_back(Pending{id, line});
          }
        }
      }
    }
    i += ident.size();
  }
}

// Wire-verb facts: the kVerbs / kJournalRecordVerbs inventory arrays, and
// every `<chain>.verb == "X"` / `!= "X"` dispatch comparison.
void IndexVerbs(const IndexedFile& file, RepoFacts* facts) {
  std::string_view code = file.code();
  struct ArraySpec {
    std::string_view token;
    std::vector<VerbSite>* out;
  };
  ArraySpec arrays[] = {{"kVerbs", &facts->declared_verbs},
                        {"kJournalRecordVerbs", &facts->journal_verbs}};
  for (const ArraySpec& spec : arrays) {
    for (size_t pos = FindToken(code, spec.token, 0);
         pos != std::string_view::npos;
         pos = FindToken(code, spec.token, pos + 1)) {
      // `kVerbs[] = {` — accept any run of `[`, `]`, `=`, blanks between the
      // name and the brace, stopping at anything else (e.g. a use site).
      size_t p = pos + spec.token.size();
      while (p < code.size() &&
             (IsBlank(code[p]) || code[p] == '[' || code[p] == ']' ||
              code[p] == '=')) {
        ++p;
      }
      if (p >= code.size() || code[p] != '{') continue;
      size_t close = MatchDelim(code, p, '{', '}');
      if (close == std::string_view::npos) continue;
      for (const Literal& lit : file.sep.literals) {
        if (lit.offset > p && lit.offset < close && IsUpperVerb(lit.text)) {
          spec.out->push_back(
              VerbSite{lit.text, std::string(file.path()), lit.line});
        }
      }
    }
  }

  for (const Literal& lit : file.sep.literals) {
    if (!IsUpperVerb(lit.text)) continue;
    size_t p = PrevNonBlank(code, lit.offset);
    if (p == std::string_view::npos || p == 0 || code[p] != '=') continue;
    if (code[p - 1] != '=' && code[p - 1] != '!') continue;
    std::string_view lhs = IdentEndingAt(code, PrevNonBlank(code, p - 1));
    if (lhs != "verb") continue;
    facts->dispatched_verbs[std::string(file.path())].push_back(
        VerbSite{lit.text, std::string(file.path()), lit.line});
  }
}

// Metric registrations: a string literal directly inside counter(/gauge(/
// histogram(.
void IndexMetrics(const IndexedFile& file, RepoFacts* facts) {
  std::string_view code = file.code();
  for (const Literal& lit : file.sep.literals) {
    size_t p = PrevNonBlank(code, lit.offset);
    if (p == std::string_view::npos || code[p] != '(') continue;
    std::string_view call = IdentEndingAt(code, PrevNonBlank(code, p));
    if (call != "counter" && call != "gauge" && call != "histogram") continue;
    facts->metric_sites.push_back(MetricSite{
        lit.text, std::string(call), std::string(file.path()), lit.line});
  }
}

// ---------------------------------------------------------------------------
// Lock graph machinery shared by the rule, the DOT export, and the
// topological order.

struct LockGraph {
  std::vector<std::string> nodes;               // sorted, unique
  std::vector<LockEdge> edges;                  // deduplicated by (from, to)
  std::map<std::string, std::vector<size_t>> out;  // node -> edge indices
};

LockGraph BuildLockGraph(const RepoFacts& facts) {
  LockGraph graph;
  std::set<std::string> nodes;
  for (const LockDecl& decl : facts.locks) nodes.insert(decl.id);
  std::set<std::pair<std::string, std::string>> seen;
  for (const LockEdge& edge : facts.lock_edges) {
    nodes.insert(edge.from);
    nodes.insert(edge.to);
    if (!seen.insert({edge.from, edge.to}).second) continue;
    graph.out[edge.from].push_back(graph.edges.size());
    graph.edges.push_back(edge);
  }
  graph.nodes.assign(nodes.begin(), nodes.end());
  return graph;
}

// Every elementary cycle reachable by DFS, canonicalized (rotated so the
// smallest id leads) and deduplicated. Each cycle is the list of edge
// indices in order.
std::vector<std::vector<size_t>> FindCycles(const LockGraph& graph) {
  std::vector<std::vector<size_t>> cycles;
  std::set<std::vector<std::string>> seen_cycles;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path_nodes;
  std::vector<size_t> path_edges;

  auto dfs = [&](auto&& self, const std::string& node) -> void {
    color[node] = 1;
    path_nodes.push_back(node);
    auto it = graph.out.find(node);
    if (it != graph.out.end()) {
      for (size_t ei : it->second) {
        const std::string& next = graph.edges[ei].to;
        if (color[next] == 1) {
          // Back edge: the cycle runs from `next`'s position to here.
          auto start = std::find(path_nodes.begin(), path_nodes.end(), next);
          std::vector<std::string> ids(start, path_nodes.end());
          std::vector<size_t> edges(
              path_edges.begin() + (start - path_nodes.begin()),
              path_edges.end());
          edges.push_back(ei);
          // Canonicalize: rotate the smallest id to the front (edge k stays
          // ids[k] -> ids[k+1 mod n]).
          const std::ptrdiff_t shift =
              std::min_element(ids.begin(), ids.end()) - ids.begin();
          std::rotate(ids.begin(), ids.begin() + shift, ids.end());
          std::rotate(edges.begin(), edges.begin() + shift, edges.end());
          if (seen_cycles.insert(ids).second) cycles.push_back(edges);
        } else if (color[next] == 0) {
          path_edges.push_back(ei);
          self(self, next);
          path_edges.pop_back();
        }
      }
    }
    path_nodes.pop_back();
    color[node] = 2;
  };
  for (const std::string& node : graph.nodes) {
    if (color[node] == 0) dfs(dfs, node);
  }
  return cycles;
}

const LockDecl* DeclForId(const RepoFacts& facts, const std::string& id) {
  for (const LockDecl& decl : facts.locks) {
    if (decl.id == id && decl.has_rank) return &decl;
  }
  for (const LockDecl& decl : facts.locks) {
    if (decl.id == id) return &decl;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Phase 2: rules.

class FindingSink {
 public:
  explicit FindingSink(const std::vector<IndexedFile>& files) {
    for (const IndexedFile& file : files) {
      allows_[std::string(file.path())] = &file.allows;
    }
  }

  void Report(std::string_view file, int line, std::string_view rule,
              std::string message) {
    auto fit = allows_.find(std::string(file));
    if (fit != allows_.end()) {
      auto lit = fit->second->find(line);
      if (lit != fit->second->end() &&
          lit->second.count(std::string(rule)) > 0) {
        return;
      }
    }
    findings_.push_back(
        Finding{std::string(file), line, std::string(rule), std::move(message)});
  }

  std::vector<Finding> Take() {
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) {
                       if (a.path != b.path) return a.path < b.path;
                       if (a.line != b.line) return a.line < b.line;
                       return a.rule < b.rule;
                     });
    return std::move(findings_);
  }

 private:
  // path -> line -> allowed rules (borrowed from the indexed files)
  std::map<std::string, const std::map<int, std::set<std::string>>*> allows_;
  std::vector<Finding> findings_;
};

void CheckLockOrder(const RepoFacts& facts, FindingSink* sink) {
  LockGraph graph = BuildLockGraph(facts);

  for (const std::vector<size_t>& cycle : FindCycles(graph)) {
    std::string ids;
    for (size_t ei : cycle) {
      ids += "\"" + graph.edges[ei].from + "\" -> ";
    }
    ids += "\"" + graph.edges[cycle.front()].from + "\"";
    std::string witness;
    for (size_t ei : cycle) {
      const LockEdge& e = graph.edges[ei];
      witness += "; \"" + e.to + "\" acquired at " + e.file + ":" +
                 std::to_string(e.to_line) + " while \"" + e.from +
                 "\" held (since " + e.file + ":" +
                 std::to_string(e.from_line) + ")";
    }
    const LockEdge& anchor = graph.edges[cycle.front()];
    sink->Report(anchor.file, anchor.to_line, "lock-order",
                 "potential deadlock: lock-order cycle " + ids + witness);
  }

  for (const LockEdge& edge : graph.edges) {
    const LockDecl* from = DeclForId(facts, edge.from);
    const LockDecl* to = DeclForId(facts, edge.to);
    if (from == nullptr || to == nullptr || !from->has_rank || !to->has_rank) {
      continue;
    }
    if (from->rank >= to->rank) {
      sink->Report(
          edge.file, edge.to_line, "lock-order",
          "acquisition order contradicts declared lock ranks: \"" + edge.to +
              "\" (rank " + std::to_string(to->rank) +
              ") acquired while \"" + edge.from + "\" (rank " +
              std::to_string(from->rank) +
              ") held; ranks must strictly ascend (held since " + edge.file +
              ":" + std::to_string(edge.from_line) + ")");
    }
  }
}

void CheckDiscardedStatus(const std::vector<IndexedFile>& files,
                          const RepoFacts& facts, FindingSink* sink) {
  if (facts.status_functions.empty()) return;
  for (const IndexedFile& file : files) {
    std::string_view code = file.code();
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdentChar(code[i]) || (i > 0 && IsIdentChar(code[i - 1]))) {
        continue;
      }
      std::string_view name = IdentStartingAt(code, i);
      if (name.empty()) continue;
      const size_t next_i = i + name.size() - 1;
      if (facts.status_functions.count(std::string(name)) == 0) {
        i = next_i;
        continue;
      }
      size_t open = SkipBlanks(code, i + name.size());
      if (open >= code.size() || code[open] != '(') {
        i = next_i;
        continue;
      }
      size_t close = MatchDelim(code, open, '(', ')');
      if (close == std::string_view::npos) {
        i = next_i;
        continue;
      }
      size_t after = SkipBlanks(code, close + 1);
      if (after >= code.size() || code[after] != ';') {
        i = next_i;
        continue;
      }
      // The call is a full statement `name(...);` — unless something uses
      // its value to the left. Walk the qualifier chain backward
      // (`obj.`, `ptr->`, `ns::`, including `call().`), then require a
      // statement boundary.
      size_t p = PrevNonBlank(code, i);
      bool chain = true;
      while (chain && p != std::string_view::npos) {
        if (code[p] == '.' && (p == 0 || !IsDigit(code[p - 1]))) {
          p = PrevNonBlank(code, p);
        } else if (code[p] == '>' && p > 0 && code[p - 1] == '-') {
          p = PrevNonBlank(code, p - 1);
        } else if (code[p] == ':' && p > 0 && code[p - 1] == ':') {
          p = PrevNonBlank(code, p - 1);
        } else {
          break;
        }
        // After a qualifier: an identifier, or a call's closing paren.
        if (p != std::string_view::npos && code[p] == ')') {
          int depth = 0;
          size_t j = p + 1;
          size_t sig_open = std::string_view::npos;
          while (j > 0) {
            --j;
            if (code[j] == ')') ++depth;
            if (code[j] == '(' && --depth == 0) {
              sig_open = j;
              break;
            }
          }
          if (sig_open == std::string_view::npos) {
            chain = false;
            break;
          }
          p = PrevNonBlank(code, sig_open);
        }
        if (p != std::string_view::npos && IsIdentChar(code[p])) {
          std::string_view q = IdentEndingAt(code, p);
          const size_t ident_start = p + 1 - q.size();
          p = ident_start == 0 ? std::string_view::npos
                               : PrevNonBlank(code, ident_start);
        } else {
          chain = false;
        }
      }
      const bool discarded =
          p == std::string_view::npos ||
          (chain && (code[p] == ';' || code[p] == '{' || code[p] == '}'));
      if (discarded) {
        sink->Report(file.path(), file.lines.LineOf(i), "discarded-status",
                     "result of Status-returning call '" + std::string(name) +
                         "' is discarded; check it, propagate it, or cast "
                         "to void with a comment");
      }
      i = next_i;
    }
  }
}

void CheckWireVerbDrift(const std::vector<IndexedFile>& files,
                        const RepoFacts& facts, FindingSink* sink) {
  if (facts.declared_verbs.empty()) return;

  auto find_file = [&](std::string_view suffix) -> std::string {
    for (const IndexedFile& file : files) {
      if (EndsWith(file.path(), suffix)) return std::string(file.path());
    }
    return {};
  };
  const std::string service = find_file("serve/service.cc");
  const std::string fleet = find_file("serve/fleet_service.cc");

  auto dispatched_in = [&](const std::string& path, std::string_view verb) {
    auto it = facts.dispatched_verbs.find(path);
    if (it == facts.dispatched_verbs.end()) return false;
    for (const VerbSite& site : it->second) {
      if (site.verb == verb) return true;
    }
    return false;
  };

  for (const VerbSite& verb : facts.declared_verbs) {
    if (!service.empty() && !dispatched_in(service, verb.verb)) {
      sink->Report(verb.file, verb.line, "wire-verb-drift",
                   "verb " + verb.verb +
                       " declared in the wire inventory but never "
                       "dispatched by " +
                       service);
    }
    if (!fleet.empty() && !dispatched_in(fleet, verb.verb)) {
      sink->Report(verb.file, verb.line, "wire-verb-drift",
                   "verb " + verb.verb +
                       " declared in the wire inventory but never "
                       "dispatched by " +
                       fleet);
    }
  }
  for (const VerbSite& verb : facts.journal_verbs) {
    if (!service.empty() && !dispatched_in(service, verb.verb)) {
      sink->Report(verb.file, verb.line, "wire-verb-drift",
                   "journal record verb " + verb.verb +
                       " declared in the wire inventory but never replayed "
                       "by " +
                       service);
    }
  }

  auto declared = [&](std::string_view verb) {
    for (const VerbSite& site : facts.declared_verbs) {
      if (site.verb == verb) return true;
    }
    for (const VerbSite& site : facts.journal_verbs) {
      if (site.verb == verb) return true;
    }
    return false;
  };
  for (const std::string& dispatcher : {service, fleet}) {
    if (dispatcher.empty()) continue;
    auto it = facts.dispatched_verbs.find(dispatcher);
    if (it == facts.dispatched_verbs.end()) continue;
    std::set<std::string> reported;
    for (const VerbSite& site : it->second) {
      if (declared(site.verb) || !reported.insert(site.verb).second) continue;
      sink->Report(site.file, site.line, "wire-verb-drift",
                   "verb " + site.verb + " dispatched by " + dispatcher +
                       " but missing from the wire.h verb inventory");
    }
  }

  if (facts.has_design) {
    for (const std::vector<VerbSite>* inventory :
         {&facts.declared_verbs, &facts.journal_verbs}) {
      for (const VerbSite& verb : *inventory) {
        if (!TextHasToken(facts.design_text, verb.verb)) {
          sink->Report(verb.file, verb.line, "wire-verb-drift",
                       "verb " + verb.verb +
                           " is not documented in DESIGN.md");
        }
      }
    }
  }
}

void CheckMetricDrift(const RepoFacts& facts, FindingSink* sink) {
  std::map<std::string, std::vector<const MetricSite*>> by_name;
  for (const MetricSite& site : facts.metric_sites) {
    if (!StartsWith(site.file, "src/")) continue;  // fixtures/tests exempt
    by_name[site.name].push_back(&site);
  }
  for (const auto& [name, sites] : by_name) {
    const MetricSite* first = sites.front();
    for (const MetricSite* site : sites) {
      if (site->instrument != first->instrument) {
        sink->Report(site->file, site->line, "metric-drift",
                     "metric '" + name + "' registered as " +
                         site->instrument + " here but as " +
                         first->instrument + " at " + first->file + ":" +
                         std::to_string(first->line) +
                         "; one name, one instrument type");
        break;
      }
    }
    if (facts.has_design &&
        facts.design_text.find(name) == std::string::npos) {
      sink->Report(first->file, first->line, "metric-drift",
                   "metric '" + name +
                       "' is registered but missing from DESIGN.md's metric "
                       "inventory");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& AnalyzerRules() {
  static const std::vector<RuleInfo>* rules = new std::vector<RuleInfo>{
      {"lock-order",
       "the global lock-acquisition digraph must be acyclic and consistent "
       "with the declared kLockRank* order"},
      {"discarded-status",
       "a Status/StatusOr-returning call must not be a bare "
       "expression-statement"},
      {"wire-verb-drift",
       "wire.h's verb inventory, both dispatchers, and DESIGN.md must agree"},
      {"metric-drift",
       "each metric name has one instrument type and a DESIGN.md inventory "
       "row"},
  };
  return *rules;
}

RepoFacts IndexFiles(const std::vector<SourceFile>& files) {
  RepoFacts facts;
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, "DESIGN.md")) {
      facts.design_text = file.content;
      facts.has_design = true;
    }
  }
  std::vector<IndexedFile> indexed = BuildIndex(files);
  for (const IndexedFile& file : indexed) {
    IndexRankConstants(file, &facts);
    IndexLockDecls(file, &facts);
    IndexVerbs(file, &facts);
    IndexMetrics(file, &facts);
  }
  IndexStatusFunctions(indexed, &facts);
  ResolveRanks(&facts);

  LockResolver resolver(facts);
  AnnotationIndex annotations;
  for (const IndexedFile& file : indexed) {
    if (file.is_header()) IndexHeaderAnnotations(file, resolver, &annotations);
  }
  for (const IndexedFile& file : indexed) {
    ScanAcquisitions(file, resolver, annotations, &facts);
  }
  return facts;
}

std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const RepoFacts& facts) {
  std::vector<IndexedFile> indexed = BuildIndex(files);
  FindingSink sink(indexed);
  CheckLockOrder(facts, &sink);
  CheckDiscardedStatus(indexed, facts, &sink);
  CheckWireVerbDrift(indexed, facts, &sink);
  CheckMetricDrift(facts, &sink);
  return sink.Take();
}

AnalyzeResult AnalyzeFiles(const std::vector<SourceFile>& files) {
  AnalyzeResult result;
  result.facts = IndexFiles(files);
  result.findings = Analyze(files, result.facts);
  return result;
}

std::string LockGraphDot(const RepoFacts& facts) {
  LockGraph graph = BuildLockGraph(facts);
  std::set<size_t> cycle_edges;
  for (const std::vector<size_t>& cycle : FindCycles(graph)) {
    cycle_edges.insert(cycle.begin(), cycle.end());
  }
  std::string dot = "digraph lock_order {\n  rankdir=LR;\n";
  for (const std::string& node : graph.nodes) {
    const LockDecl* decl = DeclForId(facts, node);
    dot += "  \"" + node + "\" [label=\"" + node;
    if (decl != nullptr && decl->has_rank) {
      dot += "\\nrank " + std::to_string(decl->rank);
    }
    dot += "\"];\n";
  }
  for (size_t ei = 0; ei < graph.edges.size(); ++ei) {
    const LockEdge& edge = graph.edges[ei];
    dot += "  \"" + edge.from + "\" -> \"" + edge.to + "\" [label=\"" +
           edge.file + ":" + std::to_string(edge.to_line) + "\"";
    const LockDecl* from = DeclForId(facts, edge.from);
    const LockDecl* to = DeclForId(facts, edge.to);
    const bool contradicts = from != nullptr && to != nullptr &&
                             from->has_rank && to->has_rank &&
                             from->rank >= to->rank;
    if (cycle_edges.count(ei) > 0 || contradicts) {
      dot += ", color=red, penwidth=2";
    }
    dot += "];\n";
  }
  dot += "}\n";
  return dot;
}

std::vector<std::string> TopologicalLockOrder(const RepoFacts& facts) {
  LockGraph graph = BuildLockGraph(facts);
  std::map<std::string, int> indegree;
  for (const std::string& node : graph.nodes) indegree[node] = 0;
  for (const LockEdge& edge : graph.edges) ++indegree[edge.to];

  std::set<std::string> ready;
  for (const auto& [node, deg] : indegree) {
    if (deg == 0) ready.insert(node);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    std::string node = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(node);
    auto it = graph.out.find(node);
    if (it == graph.out.end()) continue;
    for (size_t ei : it->second) {
      const std::string& next = graph.edges[ei].to;
      if (--indegree[next] == 0) ready.insert(next);
    }
  }
  // Nodes still carrying in-degree sit on cycles; append them sorted so the
  // output is total and deterministic.
  std::vector<std::string> cyclic;
  for (const auto& [node, deg] : indegree) {
    if (deg > 0) cyclic.push_back(node);
  }
  std::sort(cyclic.begin(), cyclic.end());
  order.insert(order.end(), cyclic.begin(), cyclic.end());
  return order;
}

}  // namespace lint
}  // namespace pandia
