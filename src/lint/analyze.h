// pandia_analyze — the whole-program analyzer's engine.
//
// Where pandia_lint (src/lint/lint.h) judges one line of one file at a time,
// the analyzer reasons across the whole tree in two phases:
//
//   Phase 1 (IndexFiles) lexes every file with the shared lexer
//   (src/lint/lexer.h) and extracts cross-file *facts*:
//     - functions returning Status/StatusOr, harvested from headers;
//     - named/ranked util::Mutex declarations, and lock-acquisition edges
//       ("B acquired while A held") from nested MutexLock scopes and
//       PANDIA_REQUIRES/PANDIA_ACQUIRE annotations (including annotations on
//       header declarations applied to the same-stem .cc definitions);
//     - the wire-verb inventory (wire::kVerbs / wire::kJournalRecordVerbs)
//       vs. the verbs each dispatcher actually compares against;
//     - metric-name literals at counter(/gauge(/histogram( call sites;
//     - the raw text of DESIGN.md, when present, as the documented protocol
//       and metric inventory.
//
//   Phase 2 (Analyze) runs cross-file rules over the facts:
//     lock-order        cycles in the global lock-ordering digraph (reported
//                       with witness acquisition paths), plus acquisition
//                       edges that contradict the declared kLockRank* order.
//     discarded-status  a Status/StatusOr-returning call used as a full
//                       expression-statement — the wrapper-function cases
//                       [[nodiscard]] cannot see.
//     wire-verb-drift   a verb declared but not dispatched by both services,
//                       dispatched but undeclared, or undocumented in
//                       DESIGN.md.
//     metric-drift      one metric name under two instrument types, or
//                       registered but missing from DESIGN.md's inventory.
//
// Findings reuse lint::Finding and the per-line escape hatch:
//   // pandia-lint: allow(<rule>) <why>
// on the anchor line of a finding suppresses it.
//
// The engine is file-content-driven (no filesystem access) so tests feed it
// synthetic multi-file trees; tools/pandia_analyze.cc walks the real repo.
#ifndef PANDIA_SRC_LINT_ANALYZE_H_
#define PANDIA_SRC_LINT_ANALYZE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/lint/lint.h"

namespace pandia {
namespace lint {

// One input file: repo-relative forward-slash path + full content. Paths
// matter: rules scope by them (e.g. which file is a dispatcher) and facts
// key on them (a header's locks resolve in the same-stem .cc).
struct SourceFile {
  std::string path;
  std::string content;
};

// A util::Mutex declaration. `id` is the canonical cross-file identity: the
// declared name literal (`Mutex mu_{"serve.service", ...}`) when present,
// else "<stem>::<var>" for unnamed mutexes.
struct LockDecl {
  std::string id;
  std::string var;        // the declared variable identifier
  std::string stem;       // path minus extension, e.g. "src/obs/trace"
  std::string file;
  int line = 0;
  std::string rank_expr;  // "kLockRankObsTrace" or "55"; empty when unranked
  bool has_rank = false;
  int rank = 0;           // resolved value; meaningful iff has_rank
};

// A lock-ordering edge: `to` was acquired while `from` was held.
// `from_line` is where `from` became held (its MutexLock, or the
// PANDIA_REQUIRES annotation); `to_line` is the nested acquisition.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int from_line = 0;
  int to_line = 0;
};

// A wire-verb literal: either an inventory entry in wire.h or a dispatch
// comparison (`request.verb == "ADMIT"`) in a service.
struct VerbSite {
  std::string verb;
  std::string file;
  int line = 0;
};

// A metric registration: a name literal at a counter(/gauge(/histogram(
// call site.
struct MetricSite {
  std::string name;
  std::string instrument;  // "counter", "gauge", or "histogram"
  std::string file;
  int line = 0;
};

// Everything phase 1 knows about the tree.
struct RepoFacts {
  std::set<std::string> status_functions;
  std::map<std::string, int> rank_constants;  // kLockRank* name -> value
  std::vector<LockDecl> locks;
  std::vector<LockEdge> lock_edges;
  std::vector<VerbSite> declared_verbs;        // wire::kVerbs
  std::vector<VerbSite> journal_verbs;         // wire::kJournalRecordVerbs
  std::map<std::string, std::vector<VerbSite>> dispatched_verbs;  // by file
  std::vector<MetricSite> metric_sites;
  std::string design_text;  // raw DESIGN.md; empty when absent
  bool has_design = false;
};

// The analyzer's registered rules (names accepted by allow()).
const std::vector<RuleInfo>& AnalyzerRules();

// Phase 1: index the tree into facts. A file whose path ends in "DESIGN.md"
// is taken as the documentation inventory; .h/.cc files are lexed; anything
// else is ignored.
RepoFacts IndexFiles(const std::vector<SourceFile>& files);

// Phase 2: run the cross-file rules. `files` must be the same list given to
// IndexFiles (discarded-status rescans them against the fact index, and
// allow() comments are honored per anchor line). Findings come back sorted
// by (file, line).
std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const RepoFacts& facts);

// Both phases.
struct AnalyzeResult {
  RepoFacts facts;
  std::vector<Finding> findings;
};
AnalyzeResult AnalyzeFiles(const std::vector<SourceFile>& files);

// The lock-ordering digraph in Graphviz DOT, one node per lock (labelled
// with its declared rank) and one edge per deduplicated acquisition pair,
// labelled with the witness site. Edges that contradict declared ranks and
// edges on cycles are highlighted.
std::string LockGraphDot(const RepoFacts& facts);

// The locks in a topological order of the acquisition digraph (Kahn,
// lexicographic tie-break, so the output is deterministic). Locks on cycles
// are appended at the end, sorted. This is the order kLockRank* values are
// assigned from.
std::vector<std::string> TopologicalLockOrder(const RepoFacts& facts);

}  // namespace lint
}  // namespace pandia

#endif  // PANDIA_SRC_LINT_ANALYZE_H_
