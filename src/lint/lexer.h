// The code/comment/string-separating lexer shared by the per-line linter
// (src/lint/lint.cc) and the whole-program analyzer (src/lint/analyze.cc).
//
// Neither tool is a compiler: they lex a C++ source file just far enough to
// know, for every byte, whether it is code, comment text, or the inside of a
// string/char literal. The separation is what keeps a rule from firing on
// its own name in a doc comment or on forbidden tokens inside test-fixture
// strings — and what lets the analyzer read wire verbs and metric names out
// of real literals with exact line numbers.
//
// Internal to src/lint (not part of the public header set): include only
// from lint/analyze sources and their tests.
#ifndef PANDIA_SRC_LINT_LEXER_H_
#define PANDIA_SRC_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pandia {
namespace lint {

// A string or char literal found during separation. `offset` is the byte
// offset of the opening quote in the original content; `line` is 1-based.
// `text` is the raw (unescaped-as-written) body, excluding the quotes; for
// raw strings, the body between the delimiter parentheses.
struct Literal {
  size_t offset = 0;
  int line = 0;
  std::string text;
};

// The separation pass. Produces two buffers the same length as the input:
// `code` holds the program text with comments and string/char literals
// blanked to spaces, `comments` holds the comment text with everything else
// blanked. Newlines survive in both so byte offsets map to the same line
// numbers everywhere. `literals` lists every string literal in file order.
struct SeparatedSource {
  std::string code;
  std::string comments;
  std::vector<Literal> literals;
};

SeparatedSource Separate(std::string_view content);

bool IsIdentChar(char c);
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Splits on '\n'; the terminating newline of the last line is optional.
std::vector<std::string_view> SplitLines(std::string_view text);

// Position of the next whole-identifier occurrence of `token` in `text` at
// or after `from`, or npos. Both neighbors must be non-identifier characters
// so "rand" does not match inside "srand" or "operand".
size_t FindToken(std::string_view text, std::string_view token, size_t from);
bool HasToken(std::string_view text, std::string_view token);

// True when a whole-identifier occurrence of `name` is followed (after
// optional spaces) by '(' — a call like abort(), exit(0), srand(seed).
bool HasCall(std::string_view text, std::string_view name);

// Per-line suppression directives gathered from comment text:
//   // pandia-lint: allow(rule)            one rule
//   // pandia-lint: allow(rule-a, rule-b)  several
std::map<int, std::set<std::string>> CollectAllows(
    const std::vector<std::string_view>& comment_lines);

// 1-based line number of byte `offset` in `content`.
int LineOfOffset(std::string_view content, size_t offset);

}  // namespace lint
}  // namespace pandia

#endif  // PANDIA_SRC_LINT_LEXER_H_
