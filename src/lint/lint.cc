#include "src/lint/lint.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/lint/lexer.h"

namespace pandia {
namespace lint {
namespace {

// True for time(nullptr) / time(NULL) — the classic unseeded-clock seed.
bool HasTimeNullCall(std::string_view line) {
  for (size_t pos = FindToken(line, "time", 0); pos != std::string_view::npos;
       pos = FindToken(line, "time", pos + 1)) {
    size_t after = pos + 4;
    auto skip_ws = [&] {
      while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
        ++after;
      }
    };
    skip_ws();
    if (after >= line.size() || line[after] != '(') continue;
    ++after;
    skip_ws();
    std::string_view rest = line.substr(after);
    std::string_view arg;
    if (StartsWith(rest, "nullptr")) {
      arg = "nullptr";
    } else if (StartsWith(rest, "NULL")) {
      arg = "NULL";
    } else {
      continue;
    }
    after += arg.size();
    skip_ws();
    if (after < line.size() && line[after] == ')') return true;
  }
  return false;
}

struct Sink {
  std::string_view path;
  const std::map<int, std::set<std::string>>* allows;
  std::vector<Finding>* findings;

  void Report(int line, std::string_view rule, std::string message) const {
    auto it = allows->find(line);
    if (it != allows->end() && it->second.count(std::string(rule)) > 0) return;
    findings->push_back(Finding{std::string(path), line, std::string(rule),
                                std::move(message)});
  }
};

// naked-mutex — raw standard-library locking primitives anywhere but the one
// wrapper header that owns them.
void CheckNakedMutex(const Sink& sink,
                     const std::vector<std::string_view>& code_lines) {
  if (EndsWith(sink.path, "util/mutex.h")) return;
  static constexpr std::string_view kTypes[] = {
      "mutex",          "timed_mutex", "recursive_mutex", "shared_mutex",
      "lock_guard",     "unique_lock", "scoped_lock",     "condition_variable",
      "condition_variable_any",
  };
  static constexpr std::string_view kIncludes[] = {
      "<mutex>", "<condition_variable>", "<shared_mutex>"};
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view type : kTypes) {
      // Only the std:: spellings are banned; pandia::util::Mutex is the
      // replacement and unrelated identifiers may reuse these words.
      size_t pos = line.find("std::");
      bool hit = false;
      for (; pos != std::string_view::npos && !hit;
           pos = line.find("std::", pos + 1)) {
        std::string_view after = line.substr(pos + 5);
        if (StartsWith(after, type) &&
            (after.size() == type.size() || !IsIdentChar(after[type.size()]))) {
          hit = true;
        }
      }
      if (hit) {
        sink.Report(lineno, "naked-mutex",
                    "std::" + std::string(type) +
                        " outside src/util/mutex.h; use the annotated "
                        "pandia::util::Mutex/MutexLock/CondVar so thread-safety "
                        "analysis sees the acquisition");
      }
    }
    for (std::string_view inc : kIncludes) {
      if (line.find(inc) != std::string_view::npos) {
        sink.Report(lineno, "naked-mutex",
                    "#include " + std::string(inc) +
                        " outside src/util/mutex.h; include "
                        "\"src/util/mutex.h\" instead");
      }
    }
  }
}

// no-abort — library code reports Status; it does not kill the process or
// throw past the API boundary.
void CheckNoAbort(const Sink& sink,
                  const std::vector<std::string_view>& code_lines) {
  if (!StartsWith(sink.path, "src/")) return;
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    if (HasCall(line, "abort")) {
      sink.Report(lineno, "no-abort",
                  "abort() in library code; return a pandia::Status "
                  "(or use PANDIA_CHECK for contract violations)");
    }
    if (HasCall(line, "exit")) {
      sink.Report(lineno, "no-abort",
                  "exit() in library code; only tool main()s may choose the "
                  "process exit code");
    }
    if (HasToken(line, "throw")) {
      sink.Report(lineno, "no-abort",
                  "throw in library code; the Pandia libraries are "
                  "exception-free and propagate errors via Status");
    }
  }
}

// unseeded-rand — all randomness flows through the seeded src/util/rng so
// runs are reproducible.
void CheckUnseededRand(const Sink& sink,
                       const std::vector<std::string_view>& code_lines) {
  if (sink.path.find("src/util/rng") != std::string_view::npos) return;
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    if (HasCall(line, "rand") || HasCall(line, "srand")) {
      sink.Report(lineno, "unseeded-rand",
                  "rand()/srand(); use the seeded pandia::Rng "
                  "(src/util/rng.h) so runs are reproducible");
    }
    if (HasToken(line, "random_device")) {
      sink.Report(lineno, "unseeded-rand",
                  "std::random_device is non-deterministic; seed a "
                  "pandia::Rng explicitly");
    }
    if (HasTimeNullCall(line)) {
      sink.Report(lineno, "unseeded-rand",
                  "time(nullptr) seeding breaks reproducibility; thread an "
                  "explicit seed through options");
    }
  }
}

// unordered-wire — serialization and service output iterate ordered
// containers only, so wire bytes and STATUS text never depend on hash order.
void CheckUnorderedWire(const Sink& sink,
                        const std::vector<std::string_view>& code_lines) {
  if (!StartsWith(sink.path, "src/serialize/") &&
      !StartsWith(sink.path, "src/serve/")) {
    return;
  }
  static constexpr std::string_view kContainers[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view container : kContainers) {
      if (HasToken(line, container)) {
        sink.Report(lineno, "unordered-wire",
                    std::string(container) +
                        " in a serialization/wire path; iteration order feeds "
                        "output bytes — use std::map/std::set or sort first");
      }
    }
  }
}

// subsystem.dotted_lowercase: two or more dot-separated segments, each
// [a-z][a-z0-9_]*.
bool IsValidMetricName(std::string_view name) {
  int segments = 0;
  size_t start = 0;
  while (start <= name.size()) {
    const size_t dot = name.find('.', start);
    const std::string_view segment = dot == std::string_view::npos
                                         ? name.substr(start)
                                         : name.substr(start, dot - start);
    if (segment.empty() || segment.front() < 'a' || segment.front() > 'z') {
      return false;
    }
    for (char c : segment) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
        return false;
      }
    }
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 2;
}

// metric-name — instrument names registered at counter( / gauge( /
// histogram( call sites follow the subsystem.dotted_lowercase convention.
// The code buffer has literals blanked, so the call structure is located in
// `code_lines` and the name itself read back from the raw source at the
// same byte offsets. Only complete single-literal arguments are checked:
// concatenations and variables (dynamic names) are out of this rule's
// reach, as are literals wrapped onto the next line.
void CheckMetricName(const Sink& sink,
                     const std::vector<std::string_view>& code_lines,
                     const std::vector<std::string_view>& raw_lines) {
  static constexpr std::string_view kCalls[] = {"counter", "gauge", "histogram"};
  for (size_t li = 0; li < code_lines.size() && li < raw_lines.size(); ++li) {
    std::string_view code = code_lines[li];
    std::string_view raw = raw_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view call : kCalls) {
      for (size_t pos = FindToken(code, call, 0); pos != std::string_view::npos;
           pos = FindToken(code, call, pos + 1)) {
        size_t after = pos + call.size();
        while (after < code.size() && (code[after] == ' ' || code[after] == '\t')) {
          ++after;
        }
        if (after >= code.size() || code[after] != '(') continue;
        ++after;
        while (after < raw.size() && (raw[after] == ' ' || raw[after] == '\t')) {
          ++after;
        }
        if (after >= raw.size() || raw[after] != '"') continue;
        size_t end = after + 1;
        std::string name;
        bool terminated = false;
        while (end < raw.size()) {
          if (raw[end] == '"') {
            terminated = true;
            break;
          }
          if (raw[end] == '\\' && end + 1 < raw.size()) {
            ++end;  // escaped char: keep scanning; the name is judged as-is
          }
          name += raw[end];
          ++end;
        }
        if (!terminated) continue;
        size_t next = end + 1;
        while (next < raw.size() && (raw[next] == ' ' || raw[next] == '\t')) {
          ++next;
        }
        // The literal must be the whole argument; "a" + suffix is dynamic.
        if (next >= raw.size() || (raw[next] != ',' && raw[next] != ')')) {
          continue;
        }
        if (!IsValidMetricName(name)) {
          sink.Report(lineno, "metric-name",
                      "instrument name '" + name +
                          "' is not subsystem.dotted_lowercase (two or more "
                          "dot-separated [a-z][a-z0-9_]* segments)");
        }
      }
    }
  }
}

// no-raw-journal-io — the Journal class (src/serve/journal.cc) owns every
// byte of journal file I/O: checksummed framing, fsync policy, and atomic
// compaction all live behind its API, so any direct stdio/fd call on a
// journal file elsewhere in src/serve/ is a durability bug waiting to
// happen (an unframed write corrupts the log; an unsynced one breaks the
// recovery contract).
void CheckNoRawJournalIo(const Sink& sink,
                         const std::vector<std::string_view>& code_lines) {
  if (!StartsWith(sink.path, "src/serve/")) return;
  if (EndsWith(sink.path, "serve/journal.cc")) return;
  static constexpr std::string_view kCalls[] = {
      "fopen",  "freopen", "fwrite", "fprintf",   "fputs",     "fputc",
      "fflush", "fclose",  "fread",  "fscanf",    "fsync",     "fdatasync",
      "ftruncate", "truncate", "rename",
  };
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view call : kCalls) {
      if (HasCall(line, call)) {
        sink.Report(lineno, "no-raw-journal-io",
                    std::string(call) +
                        "() in src/serve/ outside journal.cc; all journal "
                        "file I/O goes through serve::Journal (checksummed "
                        "framing, fsync policy, atomic compaction)");
      }
    }
  }
}

// no-raw-poll-io — the Poller abstraction and the socket helpers in
// src/serve/socket.cc (plus the shared plumbing in socket_internal.h) own
// every raw event-loop and socket-creation syscall. A stray epoll_ctl or
// socket() elsewhere is a second event-loop entry point: it bypasses the
// nonblocking/backpressure/pipelining contracts the one loop enforces.
void CheckNoRawPollIo(const Sink& sink,
                      const std::vector<std::string_view>& code_lines) {
  if (!StartsWith(sink.path, "src/")) return;
  if (EndsWith(sink.path, "serve/socket.cc") ||
      EndsWith(sink.path, "serve/socket_internal.h")) {
    return;
  }
  static constexpr std::string_view kCalls[] = {
      "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait",
      "poll",         "ppoll",         "select",    "socket",
      "accept",       "accept4",
  };
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view call : kCalls) {
      if (HasCall(line, call)) {
        sink.Report(lineno, "no-raw-poll-io",
                    std::string(call) +
                        "() outside src/serve/socket.cc and "
                        "socket_internal.h; event-loop and socket syscalls "
                        "go through the Poller/SocketServer/Client "
                        "abstractions so the one event loop keeps its "
                        "nonblocking and backpressure contracts");
      }
    }
  }
}

// todo-owner — every TODO(owner) must actually name the owner.
void CheckTodoOwner(const Sink& sink,
                    const std::vector<std::string_view>& comment_lines) {
  for (size_t li = 0; li < comment_lines.size(); ++li) {
    std::string_view line = comment_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (size_t pos = FindToken(line, "TODO", 0); pos != std::string_view::npos;
         pos = FindToken(line, "TODO", pos + 1)) {
      size_t after = pos + 4;
      bool owned = false;
      if (after < line.size() && line[after] == '(') {
        size_t close = line.find(')', after + 1);
        owned = close != std::string_view::npos && close > after + 1;
      }
      if (!owned) {
        sink.Report(lineno, "todo-owner",
                    "TODO without an owner; write TODO(name): ...");
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = new std::vector<RuleInfo>{
      {"naked-mutex",
       "std::mutex/lock_guard/condition_variable et al. only in "
       "src/util/mutex.h; use pandia::util::Mutex elsewhere"},
      {"no-abort",
       "no abort()/exit()/throw in src/ library code; errors are Status"},
      {"unseeded-rand",
       "no rand()/srand()/std::random_device/time(nullptr) outside "
       "src/util/rng; randomness is seeded"},
      {"unordered-wire",
       "no unordered containers in src/serialize/ or src/serve/; wire and "
       "STATUS output must not depend on hash order"},
      {"no-raw-journal-io",
       "no direct file I/O (fopen/fwrite/fflush/fsync/rename/...) in "
       "src/serve/ outside journal.cc; the Journal class owns every journal "
       "byte"},
      {"no-raw-poll-io",
       "no raw event-loop/socket syscalls (epoll_*/poll/select/socket/"
       "accept) in src/ outside serve/socket.cc and socket_internal.h; the "
       "Poller abstraction is the only event-loop entry point"},
      {"todo-owner", "TODO comments must name an owner: TODO(name): ..."},
      {"metric-name",
       "instrument names at counter(/gauge(/histogram( call sites follow "
       "subsystem.dotted_lowercase"},
  };
  return *rules;
}

std::vector<Finding> LintFile(std::string_view path, std::string_view content) {
  SeparatedSource source = Separate(content);
  std::vector<std::string_view> code_lines = SplitLines(source.code);
  std::vector<std::string_view> comment_lines = SplitLines(source.comments);
  std::vector<std::string_view> raw_lines = SplitLines(content);
  std::map<int, std::set<std::string>> allows = CollectAllows(comment_lines);

  std::vector<Finding> findings;
  Sink sink{path, &allows, &findings};
  CheckNakedMutex(sink, code_lines);
  CheckNoAbort(sink, code_lines);
  CheckUnseededRand(sink, code_lines);
  CheckUnorderedWire(sink, code_lines);
  CheckNoRawJournalIo(sink, code_lines);
  CheckNoRawPollIo(sink, code_lines);
  CheckTodoOwner(sink, comment_lines);
  CheckMetricName(sink, code_lines, raw_lines);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.path + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

}  // namespace lint
}  // namespace pandia
