#include "src/lint/lint.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pandia {
namespace lint {
namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

// The separation pass. Produces two buffers the same length as `content`:
// `code` holds the program text with comments and string/char literals
// blanked to spaces, `comments` holds the comment text with everything else
// blanked. Newlines survive in both so byte offsets map to the same line
// numbers everywhere. This is what keeps the linter from flagging its own
// rule names in doc comments or the forbidden tokens inside test-fixture
// string literals.
struct SeparatedSource {
  std::string code;
  std::string comments;
};

// True when the '"' at `pos` opens a raw string literal: it is directly
// preceded by an encoding prefix ending in R (R", u8R", uR", UR", LR") that
// is itself not the tail of a longer identifier.
bool IsRawStringQuote(std::string_view content, size_t pos) {
  if (pos == 0 || content[pos - 1] != 'R') return false;
  size_t start = pos - 1;  // first char of the prefix
  if (start >= 2 && content[start - 2] == 'u' && content[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 && (content[start - 1] == 'u' || content[start - 1] == 'U' ||
                            content[start - 1] == 'L')) {
    start -= 1;
  }
  return start == 0 || !IsIdentChar(content[start - 1]);
}

SeparatedSource Separate(std::string_view content) {
  SeparatedSource out;
  out.code.assign(content.size(), ' ');
  out.comments.assign(content.size(), ' ');
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
    }
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  size_t i = 0;
  while (i < content.size()) {
    char c = content[i];
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kLineComment;
          i += 2;
          break;
        }
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '*') {
          state = State::kBlockComment;
          i += 2;
          break;
        }
        if (c == '"' && IsRawStringQuote(content, i)) {
          // R"delim( ... )delim" — no escapes inside; skip to the matching
          // close sequence (or end of file for an unterminated literal).
          size_t open = content.find('(', i + 1);
          if (open == std::string_view::npos) {
            i = content.size();
            break;
          }
          std::string closer = ")";
          closer.append(content.substr(i + 1, open - i - 1));
          closer.push_back('"');
          size_t close = content.find(closer, open + 1);
          i = close == std::string_view::npos ? content.size()
                                              : close + closer.size();
          break;
        }
        if (c == '"') {
          state = State::kString;
          ++i;
          break;
        }
        // A ' is a char literal only when it does not follow an identifier
        // character (digit separators like 1'000'000 stay code).
        if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          state = State::kChar;
          ++i;
          break;
        }
        if (c != '\n') out.code[i] = c;
        ++i;
        break;
      }
      case State::kLineComment: {
        if (c == '\n') {
          state = State::kCode;
        } else {
          out.comments[i] = c;
        }
        ++i;
        break;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kCode;
          i += 2;
          break;
        }
        if (c != '\n') out.comments[i] = c;
        ++i;
        break;
      }
      case State::kString:
      case State::kChar: {
        if (c == '\\' && i + 1 < content.size()) {
          i += 2;
          break;
        }
        if ((state == State::kString && c == '"') ||
            (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        ++i;
        break;
      }
    }
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// Position of the next whole-identifier occurrence of `token` in `line` at
// or after `from`, or npos. Both neighbors must be non-identifier characters
// so "rand" does not match inside "srand" or "operand".
size_t FindToken(std::string_view line, std::string_view token, size_t from) {
  for (size_t pos = line.find(token, from); pos != std::string_view::npos;
       pos = line.find(token, pos + 1)) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

bool HasToken(std::string_view line, std::string_view token) {
  return FindToken(line, token, 0) != std::string_view::npos;
}

// True when a whole-identifier occurrence of `name` is followed (after
// optional spaces) by '(' — a call like abort(), exit(0), srand(seed).
bool HasCall(std::string_view line, std::string_view name) {
  for (size_t pos = FindToken(line, name, 0); pos != std::string_view::npos;
       pos = FindToken(line, name, pos + 1)) {
    size_t after = pos + name.size();
    while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
      ++after;
    }
    if (after < line.size() && line[after] == '(') return true;
  }
  return false;
}

// True for time(nullptr) / time(NULL) — the classic unseeded-clock seed.
bool HasTimeNullCall(std::string_view line) {
  for (size_t pos = FindToken(line, "time", 0); pos != std::string_view::npos;
       pos = FindToken(line, "time", pos + 1)) {
    size_t after = pos + 4;
    auto skip_ws = [&] {
      while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
        ++after;
      }
    };
    skip_ws();
    if (after >= line.size() || line[after] != '(') continue;
    ++after;
    skip_ws();
    std::string_view rest = line.substr(after);
    std::string_view arg;
    if (StartsWith(rest, "nullptr")) {
      arg = "nullptr";
    } else if (StartsWith(rest, "NULL")) {
      arg = "NULL";
    } else {
      continue;
    }
    after += arg.size();
    skip_ws();
    if (after < line.size() && line[after] == ')') return true;
  }
  return false;
}

// Per-line suppression directives gathered from comment text:
//   // pandia-lint: allow(rule)            one rule
//   // pandia-lint: allow(rule-a, rule-b)  several
std::map<int, std::set<std::string>> CollectAllows(
    const std::vector<std::string_view>& comment_lines) {
  std::map<int, std::set<std::string>> allows;
  constexpr std::string_view kDirective = "pandia-lint:";
  for (size_t li = 0; li < comment_lines.size(); ++li) {
    std::string_view line = comment_lines[li];
    for (size_t pos = line.find(kDirective); pos != std::string_view::npos;
         pos = line.find(kDirective, pos + 1)) {
      size_t p = pos + kDirective.size();
      while (p < line.size() && line[p] == ' ') ++p;
      constexpr std::string_view kAllow = "allow(";
      if (!StartsWith(line.substr(p), kAllow)) continue;
      p += kAllow.size();
      size_t close = line.find(')', p);
      if (close == std::string_view::npos) continue;
      std::string_view args = line.substr(p, close - p);
      size_t start = 0;
      while (start <= args.size()) {
        size_t comma = args.find(',', start);
        std::string_view name = comma == std::string_view::npos
                                    ? args.substr(start)
                                    : args.substr(start, comma - start);
        while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
        while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
        if (!name.empty()) {
          allows[static_cast<int>(li) + 1].emplace(name);
        }
        if (comma == std::string_view::npos) break;
        start = comma + 1;
      }
    }
  }
  return allows;
}

struct Sink {
  std::string_view path;
  const std::map<int, std::set<std::string>>* allows;
  std::vector<Finding>* findings;

  void Report(int line, std::string_view rule, std::string message) const {
    auto it = allows->find(line);
    if (it != allows->end() && it->second.count(std::string(rule)) > 0) return;
    findings->push_back(Finding{std::string(path), line, std::string(rule),
                                std::move(message)});
  }
};

// naked-mutex — raw standard-library locking primitives anywhere but the one
// wrapper header that owns them.
void CheckNakedMutex(const Sink& sink,
                     const std::vector<std::string_view>& code_lines) {
  if (EndsWith(sink.path, "util/mutex.h")) return;
  static constexpr std::string_view kTypes[] = {
      "mutex",          "timed_mutex", "recursive_mutex", "shared_mutex",
      "lock_guard",     "unique_lock", "scoped_lock",     "condition_variable",
      "condition_variable_any",
  };
  static constexpr std::string_view kIncludes[] = {
      "<mutex>", "<condition_variable>", "<shared_mutex>"};
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view type : kTypes) {
      // Only the std:: spellings are banned; pandia::util::Mutex is the
      // replacement and unrelated identifiers may reuse these words.
      size_t pos = line.find("std::");
      bool hit = false;
      for (; pos != std::string_view::npos && !hit;
           pos = line.find("std::", pos + 1)) {
        std::string_view after = line.substr(pos + 5);
        if (StartsWith(after, type) &&
            (after.size() == type.size() || !IsIdentChar(after[type.size()]))) {
          hit = true;
        }
      }
      if (hit) {
        sink.Report(lineno, "naked-mutex",
                    "std::" + std::string(type) +
                        " outside src/util/mutex.h; use the annotated "
                        "pandia::util::Mutex/MutexLock/CondVar so thread-safety "
                        "analysis sees the acquisition");
      }
    }
    for (std::string_view inc : kIncludes) {
      if (line.find(inc) != std::string_view::npos) {
        sink.Report(lineno, "naked-mutex",
                    "#include " + std::string(inc) +
                        " outside src/util/mutex.h; include "
                        "\"src/util/mutex.h\" instead");
      }
    }
  }
}

// no-abort — library code reports Status; it does not kill the process or
// throw past the API boundary.
void CheckNoAbort(const Sink& sink,
                  const std::vector<std::string_view>& code_lines) {
  if (!StartsWith(sink.path, "src/")) return;
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    if (HasCall(line, "abort")) {
      sink.Report(lineno, "no-abort",
                  "abort() in library code; return a pandia::Status "
                  "(or use PANDIA_CHECK for contract violations)");
    }
    if (HasCall(line, "exit")) {
      sink.Report(lineno, "no-abort",
                  "exit() in library code; only tool main()s may choose the "
                  "process exit code");
    }
    if (HasToken(line, "throw")) {
      sink.Report(lineno, "no-abort",
                  "throw in library code; the Pandia libraries are "
                  "exception-free and propagate errors via Status");
    }
  }
}

// unseeded-rand — all randomness flows through the seeded src/util/rng so
// runs are reproducible.
void CheckUnseededRand(const Sink& sink,
                       const std::vector<std::string_view>& code_lines) {
  if (sink.path.find("src/util/rng") != std::string_view::npos) return;
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    if (HasCall(line, "rand") || HasCall(line, "srand")) {
      sink.Report(lineno, "unseeded-rand",
                  "rand()/srand(); use the seeded pandia::Rng "
                  "(src/util/rng.h) so runs are reproducible");
    }
    if (HasToken(line, "random_device")) {
      sink.Report(lineno, "unseeded-rand",
                  "std::random_device is non-deterministic; seed a "
                  "pandia::Rng explicitly");
    }
    if (HasTimeNullCall(line)) {
      sink.Report(lineno, "unseeded-rand",
                  "time(nullptr) seeding breaks reproducibility; thread an "
                  "explicit seed through options");
    }
  }
}

// unordered-wire — serialization and service output iterate ordered
// containers only, so wire bytes and STATUS text never depend on hash order.
void CheckUnorderedWire(const Sink& sink,
                        const std::vector<std::string_view>& code_lines) {
  if (!StartsWith(sink.path, "src/serialize/") &&
      !StartsWith(sink.path, "src/serve/")) {
    return;
  }
  static constexpr std::string_view kContainers[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view container : kContainers) {
      if (HasToken(line, container)) {
        sink.Report(lineno, "unordered-wire",
                    std::string(container) +
                        " in a serialization/wire path; iteration order feeds "
                        "output bytes — use std::map/std::set or sort first");
      }
    }
  }
}

// subsystem.dotted_lowercase: two or more dot-separated segments, each
// [a-z][a-z0-9_]*.
bool IsValidMetricName(std::string_view name) {
  int segments = 0;
  size_t start = 0;
  while (start <= name.size()) {
    const size_t dot = name.find('.', start);
    const std::string_view segment = dot == std::string_view::npos
                                         ? name.substr(start)
                                         : name.substr(start, dot - start);
    if (segment.empty() || segment.front() < 'a' || segment.front() > 'z') {
      return false;
    }
    for (char c : segment) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
        return false;
      }
    }
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 2;
}

// metric-name — instrument names registered at counter( / gauge( /
// histogram( call sites follow the subsystem.dotted_lowercase convention.
// The code buffer has literals blanked, so the call structure is located in
// `code_lines` and the name itself read back from the raw source at the
// same byte offsets. Only complete single-literal arguments are checked:
// concatenations and variables (dynamic names) are out of this rule's
// reach, as are literals wrapped onto the next line.
void CheckMetricName(const Sink& sink,
                     const std::vector<std::string_view>& code_lines,
                     const std::vector<std::string_view>& raw_lines) {
  static constexpr std::string_view kCalls[] = {"counter", "gauge", "histogram"};
  for (size_t li = 0; li < code_lines.size() && li < raw_lines.size(); ++li) {
    std::string_view code = code_lines[li];
    std::string_view raw = raw_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view call : kCalls) {
      for (size_t pos = FindToken(code, call, 0); pos != std::string_view::npos;
           pos = FindToken(code, call, pos + 1)) {
        size_t after = pos + call.size();
        while (after < code.size() && (code[after] == ' ' || code[after] == '\t')) {
          ++after;
        }
        if (after >= code.size() || code[after] != '(') continue;
        ++after;
        while (after < raw.size() && (raw[after] == ' ' || raw[after] == '\t')) {
          ++after;
        }
        if (after >= raw.size() || raw[after] != '"') continue;
        size_t end = after + 1;
        std::string name;
        bool terminated = false;
        while (end < raw.size()) {
          if (raw[end] == '"') {
            terminated = true;
            break;
          }
          if (raw[end] == '\\' && end + 1 < raw.size()) {
            ++end;  // escaped char: keep scanning; the name is judged as-is
          }
          name += raw[end];
          ++end;
        }
        if (!terminated) continue;
        size_t next = end + 1;
        while (next < raw.size() && (raw[next] == ' ' || raw[next] == '\t')) {
          ++next;
        }
        // The literal must be the whole argument; "a" + suffix is dynamic.
        if (next >= raw.size() || (raw[next] != ',' && raw[next] != ')')) {
          continue;
        }
        if (!IsValidMetricName(name)) {
          sink.Report(lineno, "metric-name",
                      "instrument name '" + name +
                          "' is not subsystem.dotted_lowercase (two or more "
                          "dot-separated [a-z][a-z0-9_]* segments)");
        }
      }
    }
  }
}

// no-raw-journal-io — the Journal class (src/serve/journal.cc) owns every
// byte of journal file I/O: checksummed framing, fsync policy, and atomic
// compaction all live behind its API, so any direct stdio/fd call on a
// journal file elsewhere in src/serve/ is a durability bug waiting to
// happen (an unframed write corrupts the log; an unsynced one breaks the
// recovery contract).
void CheckNoRawJournalIo(const Sink& sink,
                         const std::vector<std::string_view>& code_lines) {
  if (!StartsWith(sink.path, "src/serve/")) return;
  if (EndsWith(sink.path, "serve/journal.cc")) return;
  static constexpr std::string_view kCalls[] = {
      "fopen",  "freopen", "fwrite", "fprintf",   "fputs",     "fputc",
      "fflush", "fclose",  "fread",  "fscanf",    "fsync",     "fdatasync",
      "ftruncate", "truncate", "rename",
  };
  for (size_t li = 0; li < code_lines.size(); ++li) {
    std::string_view line = code_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::string_view call : kCalls) {
      if (HasCall(line, call)) {
        sink.Report(lineno, "no-raw-journal-io",
                    std::string(call) +
                        "() in src/serve/ outside journal.cc; all journal "
                        "file I/O goes through serve::Journal (checksummed "
                        "framing, fsync policy, atomic compaction)");
      }
    }
  }
}

// todo-owner — every TODO(owner) must actually name the owner.
void CheckTodoOwner(const Sink& sink,
                    const std::vector<std::string_view>& comment_lines) {
  for (size_t li = 0; li < comment_lines.size(); ++li) {
    std::string_view line = comment_lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (size_t pos = FindToken(line, "TODO", 0); pos != std::string_view::npos;
         pos = FindToken(line, "TODO", pos + 1)) {
      size_t after = pos + 4;
      bool owned = false;
      if (after < line.size() && line[after] == '(') {
        size_t close = line.find(')', after + 1);
        owned = close != std::string_view::npos && close > after + 1;
      }
      if (!owned) {
        sink.Report(lineno, "todo-owner",
                    "TODO without an owner; write TODO(name): ...");
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = new std::vector<RuleInfo>{
      {"naked-mutex",
       "std::mutex/lock_guard/condition_variable et al. only in "
       "src/util/mutex.h; use pandia::util::Mutex elsewhere"},
      {"no-abort",
       "no abort()/exit()/throw in src/ library code; errors are Status"},
      {"unseeded-rand",
       "no rand()/srand()/std::random_device/time(nullptr) outside "
       "src/util/rng; randomness is seeded"},
      {"unordered-wire",
       "no unordered containers in src/serialize/ or src/serve/; wire and "
       "STATUS output must not depend on hash order"},
      {"no-raw-journal-io",
       "no direct file I/O (fopen/fwrite/fflush/fsync/rename/...) in "
       "src/serve/ outside journal.cc; the Journal class owns every journal "
       "byte"},
      {"todo-owner", "TODO comments must name an owner: TODO(name): ..."},
      {"metric-name",
       "instrument names at counter(/gauge(/histogram( call sites follow "
       "subsystem.dotted_lowercase"},
  };
  return *rules;
}

std::vector<Finding> LintFile(std::string_view path, std::string_view content) {
  SeparatedSource source = Separate(content);
  std::vector<std::string_view> code_lines = SplitLines(source.code);
  std::vector<std::string_view> comment_lines = SplitLines(source.comments);
  std::vector<std::string_view> raw_lines = SplitLines(content);
  std::map<int, std::set<std::string>> allows = CollectAllows(comment_lines);

  std::vector<Finding> findings;
  Sink sink{path, &allows, &findings};
  CheckNakedMutex(sink, code_lines);
  CheckNoAbort(sink, code_lines);
  CheckUnseededRand(sink, code_lines);
  CheckUnorderedWire(sink, code_lines);
  CheckNoRawJournalIo(sink, code_lines);
  CheckTodoOwner(sink, comment_lines);
  CheckMetricName(sink, code_lines, raw_lines);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.path + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

}  // namespace lint
}  // namespace pandia
