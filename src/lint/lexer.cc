#include "src/lint/lexer.h"

#include <cstddef>
#include <string>
#include <string_view>

namespace pandia {
namespace lint {
namespace {

// True when the '"' at `pos` opens a raw string literal: it is directly
// preceded by an encoding prefix ending in R (R", u8R", uR", UR", LR") that
// is itself not the tail of a longer identifier.
bool IsRawStringQuote(std::string_view content, size_t pos) {
  if (pos == 0 || content[pos - 1] != 'R') return false;
  size_t start = pos - 1;  // first char of the prefix
  if (start >= 2 && content[start - 2] == 'u' && content[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 && (content[start - 1] == 'u' || content[start - 1] == 'U' ||
                            content[start - 1] == 'L')) {
    start -= 1;
  }
  return start == 0 || !IsIdentChar(content[start - 1]);
}

}  // namespace

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

int LineOfOffset(std::string_view content, size_t offset) {
  int line = 1;
  for (size_t i = 0; i < offset && i < content.size(); ++i) {
    if (content[i] == '\n') ++line;
  }
  return line;
}

SeparatedSource Separate(std::string_view content) {
  SeparatedSource out;
  out.code.assign(content.size(), ' ');
  out.comments.assign(content.size(), ' ');
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
    }
  }

  // Literals are discovered in offset order, so their line numbers are
  // computed with one incremental newline scan instead of LineOfOffset's
  // from-the-top walk per literal.
  size_t counted_to = 0;
  int line_at_counted = 1;
  auto line_of = [&](size_t offset) {
    for (; counted_to < offset && counted_to < content.size(); ++counted_to) {
      if (content[counted_to] == '\n') ++line_at_counted;
    }
    return line_at_counted;
  };

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  size_t string_start = 0;   // offset of the opening quote (kString only)
  std::string string_text;   // body of the literal being scanned
  size_t i = 0;
  while (i < content.size()) {
    char c = content[i];
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kLineComment;
          i += 2;
          break;
        }
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '*') {
          state = State::kBlockComment;
          i += 2;
          break;
        }
        if (c == '"' && IsRawStringQuote(content, i)) {
          // R"delim( ... )delim" — no escapes inside; skip to the matching
          // close sequence (or end of file for an unterminated literal).
          size_t open = content.find('(', i + 1);
          if (open == std::string_view::npos) {
            i = content.size();
            break;
          }
          std::string closer = ")";
          closer.append(content.substr(i + 1, open - i - 1));
          closer.push_back('"');
          size_t close = content.find(closer, open + 1);
          size_t body_end = close == std::string_view::npos ? content.size() : close;
          Literal literal;
          literal.offset = i;
          literal.line = line_of(i);
          literal.text = std::string(content.substr(open + 1, body_end - open - 1));
          out.literals.push_back(std::move(literal));
          i = close == std::string_view::npos ? content.size()
                                              : close + closer.size();
          break;
        }
        if (c == '"') {
          state = State::kString;
          string_start = i;
          string_text.clear();
          ++i;
          break;
        }
        // A ' is a char literal only when it does not follow an identifier
        // character (digit separators like 1'000'000 stay code).
        if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          state = State::kChar;
          ++i;
          break;
        }
        if (c != '\n') out.code[i] = c;
        ++i;
        break;
      }
      case State::kLineComment: {
        if (c == '\n') {
          state = State::kCode;
        } else {
          out.comments[i] = c;
        }
        ++i;
        break;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kCode;
          i += 2;
          break;
        }
        if (c != '\n') out.comments[i] = c;
        ++i;
        break;
      }
      case State::kString:
      case State::kChar: {
        if (c == '\\' && i + 1 < content.size()) {
          if (state == State::kString) {
            string_text.push_back(c);
            string_text.push_back(content[i + 1]);
          }
          i += 2;
          break;
        }
        if (state == State::kString && c == '"') {
          Literal literal;
          literal.offset = string_start;
          literal.line = line_of(string_start);
          literal.text = std::move(string_text);
          out.literals.push_back(std::move(literal));
          string_text.clear();
          state = State::kCode;
        } else if (state == State::kChar && c == '\'') {
          state = State::kCode;
        } else if (state == State::kString && c != '\n') {
          string_text.push_back(c);
        }
        ++i;
        break;
      }
    }
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

size_t FindToken(std::string_view text, std::string_view token, size_t from) {
  for (size_t pos = text.find(token, from); pos != std::string_view::npos;
       pos = text.find(token, pos + 1)) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

bool HasToken(std::string_view text, std::string_view token) {
  return FindToken(text, token, 0) != std::string_view::npos;
}

bool HasCall(std::string_view text, std::string_view name) {
  for (size_t pos = FindToken(text, name, 0); pos != std::string_view::npos;
       pos = FindToken(text, name, pos + 1)) {
    size_t after = pos + name.size();
    while (after < text.size() && (text[after] == ' ' || text[after] == '\t')) {
      ++after;
    }
    if (after < text.size() && text[after] == '(') return true;
  }
  return false;
}

std::map<int, std::set<std::string>> CollectAllows(
    const std::vector<std::string_view>& comment_lines) {
  std::map<int, std::set<std::string>> allows;
  constexpr std::string_view kDirective = "pandia-lint:";
  for (size_t li = 0; li < comment_lines.size(); ++li) {
    std::string_view line = comment_lines[li];
    for (size_t pos = line.find(kDirective); pos != std::string_view::npos;
         pos = line.find(kDirective, pos + 1)) {
      size_t p = pos + kDirective.size();
      while (p < line.size() && line[p] == ' ') ++p;
      constexpr std::string_view kAllow = "allow(";
      if (!StartsWith(line.substr(p), kAllow)) continue;
      p += kAllow.size();
      size_t close = line.find(')', p);
      if (close == std::string_view::npos) continue;
      std::string_view args = line.substr(p, close - p);
      size_t start = 0;
      while (start <= args.size()) {
        size_t comma = args.find(',', start);
        std::string_view name = comma == std::string_view::npos
                                    ? args.substr(start)
                                    : args.substr(start, comma - start);
        while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
        while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
        if (!name.empty()) {
          allows[static_cast<int>(li) + 1].emplace(name);
        }
        if (comma == std::string_view::npos) break;
        start = comma + 1;
      }
    }
  }
  return allows;
}

}  // namespace lint
}  // namespace pandia
