// The Pandia performance predictor (paper §5).
//
// Given a machine description, a workload description, and a proposed
// thread placement, predicts the workload's speedup relative to its
// single-thread time. The prediction combines an Amdahl's-law speedup with
// per-thread slowdowns from three iteratively refined sources:
//
//   1. resource contention — each thread is slowed by the oversubscription
//      factor of its most contended resource, plus the core-burstiness
//      penalty when threads share a core (§5.1);
//   2. inter-socket communication — per-remote-peer latency o_s, charged
//      between the lockstep and work-weighted extremes according to the
//      load-balancing factor l (§5.2);
//   3. load balancing — threads are pulled toward the slowest thread's
//      slowdown when work cannot be redistributed (§5.3).
//
// Thread-utilization factors scale each thread's demands by the fraction of
// time it is busy, and carry information between iterations (§5.4). The
// final speedup is Amdahl's speedup times the mean reciprocal slowdown
// (§5.5).
#ifndef PANDIA_SRC_PREDICTOR_PREDICTOR_H_
#define PANDIA_SRC_PREDICTOR_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/solver_scratch.h"
#include "src/topology/placement.h"
#include "src/util/common_options.h"
#include "src/util/status.h"
#include "src/workload_desc/description.h"

namespace pandia {

class CoSchedulePredictor;

struct PredictionOptions {
  // Shared fan-out/cache/trace knobs (src/util/common_options.h). The
  // trace hook lives here: when common.trace is non-null, every Predict
  // call clears the trace and records per-iteration solver state.
  CommonOptions common;

  int max_iterations = 1000;
  double convergence_eps = 1e-6;
  // §5.4: a dampening function engages after 100 iterations to prevent
  // oscillation.
  int dampen_after = 100;

  // Ablation switches (all on for the paper's model; see bench/abl_model_terms).
  bool model_burstiness = true;
  bool model_communication = true;
  bool model_load_balance = true;
  bool iterate = true;  // false: stop after the first iteration

  // When a prediction hits max_iterations while still moving by more than
  // kDivergenceDelta, retry once with dampening from the first iteration
  // (adaptive damping). Retries only make sense for runs that are allowed
  // to converge (iterate, convergence_eps > 0, dampen_after > 1); outcomes
  // are counted in the predictor.divergence_* metrics.
  bool retry_on_divergence = true;

  // Incremental re-prediction (opt-in). When true, callers that score many
  // adjacent problems (optimizer rankings, rack admission candidate scans)
  // seed each fixed-point solve from the previous solve's converged state
  // (see SolverWarmStart) instead of cold-starting. Warm solves stop in
  // the same convergence plateau as cold solves — both halt when
  // successive iterates move by less than convergence_eps, so on slowly
  // contracting problems either may park up to ~1% from the mathematical
  // fixed point, and warm speedups typically agree with cold ones to well
  // under 1% (bit-exact on problems that converge immediately). They are
  // not byte-identical, so this is off by default: the default ("exact")
  // mode is byte-identical to the retained reference solver. The flag is
  // part of the context fingerprint, and warm-started rankings bypass the
  // prediction cache and run their predict stage serially (seed chaining
  // is order-dependent). Re-score the winning candidate with an exact
  // predictor when the final number matters.
  bool warm_start = false;
};

// A final_delta above this after max_iterations marks a divergent (not just
// slowly converging) prediction: it triggers the adaptive-damping retry and
// flags the result in reports and ranking metrics.
inline constexpr double kDivergenceDelta = 0.01;

struct ThreadPrediction {
  ThreadLocation location;
  double resource_slowdown = 1.0;  // incl. burstiness
  double comm_penalty = 0.0;
  double balance_penalty = 0.0;
  double overall_slowdown = 1.0;
  double utilization = 1.0;        // final thread-utilization factor
  int bottleneck = -1;             // ResourceIndex of the binding resource
};

struct Prediction {
  double amdahl_speedup = 1.0;
  double speedup = 1.0;   // predicted speedup over t1
  double time = 0.0;      // predicted execution time (t1 / speedup)
  int iterations = 0;
  bool converged = false;
  // Worst relative slowdown change in the final iteration: distinguishes
  // "converged at eps" from "hit max_iterations while barely moving" from
  // "stopped while still oscillating".
  double final_delta = 0.0;
  std::vector<ThreadPrediction> threads;
  // Modeled load on every resource (ResourceIndex order) at the final
  // utilizations — Pandia's resource-consumption prediction (§1, §6.3).
  std::vector<double> resource_load;
};

class Predictor {
 public:
  // The descriptions are copied; `options` tunes iteration and ablations.
  // The constructor PANDIA_CHECKs the workload's model invariants, so it is
  // for descriptions produced in-process; descriptions arriving from files
  // or users go through Create, which validates and returns a Status.
  Predictor(MachineDescription machine, WorkloadDescription workload,
            PredictionOptions options = {});

  // Validating factory for externally supplied descriptions: both
  // descriptions' Validate() plus option sanity, with errors naming the
  // offending field instead of aborting.
  static StatusOr<Predictor> Create(MachineDescription machine,
                                    WorkloadDescription workload,
                                    PredictionOptions options = {});

  // Predicts performance for `placement`, which must match the machine
  // description's topology shape. Runs on a persistent co-scheduling engine
  // and a thread-local scratch arena: repeated calls perform no solver-
  // internal heap allocations.
  Prediction Predict(const Placement& placement) const;

  // Warm-started variant for scoring runs of adjacent placements: with
  // options().warm_start set, the solve seeds from `warm`'s converged
  // state (when thread counts match) and writes its own converged state
  // back. With the option off or `warm` null this is exactly Predict().
  Prediction PredictWarm(const Placement& placement, SolverWarmStart* warm) const;

  // Allocation-free output-param overload: identical results to
  // PredictWarm(placement, warm), but written into *out with its vectors'
  // capacity reused, so tight scoring loops (candidate scans, rack
  // admission probes) stop paying a result-vector allocation per call.
  // The returning APIs above are thin wrappers over this.
  void PredictInto(const Placement& placement, SolverWarmStart* warm,
                   Prediction* out) const;

  // Predict with the placement validated first (shape and thread count);
  // for placements assembled from user input.
  [[nodiscard]] StatusOr<Prediction> TryPredict(const Placement& placement) const;

  const MachineDescription& machine() const { return machine_; }
  const WorkloadDescription& workload() const { return workload_; }
  const PredictionOptions& options() const { return options_; }

  // Fingerprint of (machine, workload, options) — everything that
  // determines a Prediction besides the placement. Computed once at
  // construction; the prediction cache (src/predictor/prediction_cache.h)
  // combines it with a placement fingerprint to form its key.
  uint64_t context_fingerprint() const { return context_fingerprint_; }

 private:
  MachineDescription machine_;
  WorkloadDescription workload_;
  PredictionOptions options_;
  uint64_t context_fingerprint_ = 0;
  // Persistent solver engine (immutable once built; shared across copies of
  // this Predictor). Constructing it per call used to dominate the cost of
  // a single prediction.
  std::shared_ptr<const CoSchedulePredictor> engine_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_PREDICTOR_H_
