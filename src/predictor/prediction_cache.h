// Thread-safe memoization of predictor results.
//
// A placement search predicts thousands of candidate placements, and higher
// layers (rank-then-explain tools, repeated sweeps, co-tenancy what-ifs)
// revisit many of them with the same machine/workload inputs. Following
// PPT-Multicore's analytical-model reuse, this cache keys a Prediction by a
// fingerprint of everything that determines it:
//
//   context   = machine description + workload description + the
//               PredictionOptions that shape the solve (hashed once per
//               Predictor, see Predictor::context_fingerprint()),
//   placement = the per-core thread-count vector.
//
// The cache is sharded (16 shards, each a mutex + hash map + FIFO ring), so
// concurrent lookups from the ParallelFor workers contend only per shard.
// Hits return a copy of the stored Prediction; concurrent inserts of the
// same key keep the first value (all callers compute identical values, so
// which copy wins is unobservable). When a shard exceeds its capacity the
// oldest entry in that shard is evicted.
//
// Invalidation: long-running holders of mutable co-scheduling state (the
// placement service) key joint predictions by fingerprints of the full
// resident set, but a caller that keys by a job's own context alone would
// read stale values once a neighbour departs. Every entry is therefore
// tagged with the cache generation current at insert time; BumpGeneration()
// logically invalidates everything inserted before it (stale entries are
// dropped lazily on lookup), giving mutation events a hard invalidation
// hook regardless of how callers fingerprint their contexts.
//
// Observability (src/obs registry):
//   prediction_cache.hits / .misses / .insertions / .evictions  counters
//   prediction_cache.generation_invalidations                   counter
//   prediction_cache.size / .generation                         gauges
#ifndef PANDIA_SRC_PREDICTOR_PREDICTION_CACHE_H_
#define PANDIA_SRC_PREDICTOR_PREDICTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "src/predictor/predictor.h"
#include "src/topology/placement.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pandia {

struct PredictionCacheKey {
  uint64_t context = 0;    // Predictor::context_fingerprint()
  uint64_t placement = 0;  // PlacementFingerprint()

  friend bool operator==(const PredictionCacheKey&,
                         const PredictionCacheKey&) = default;
};

// Fingerprint of the (machine, workload, options) triple that determines a
// Prediction, bit-exact over every model input. The CommonOptions member is
// excluded: jobs/cache/trace shape how the solve is run and recorded, not
// its value.
uint64_t ContextFingerprint(const MachineDescription& machine,
                            const WorkloadDescription& workload,
                            const PredictionOptions& options);

// Building blocks for co-scheduled contexts: a joint prediction is
// determined by the machine, the solver options, and every resident
// (workload, placement) pair, so online schedulers fold these into one
// context fingerprint (see rack::Rack) instead of hashing only the job
// whose prediction they want.
uint64_t MachineOptionsFingerprint(const MachineDescription& machine,
                                   const PredictionOptions& options);
uint64_t WorkloadFingerprint(const WorkloadDescription& workload);
// Order-sensitive fold of two fingerprints (FNV over the second value).
uint64_t CombineFingerprints(uint64_t a, uint64_t b);

// Fingerprint of a placement's per-core thread counts (placements are
// canonical, so equal placements hash equal).
uint64_t PlacementFingerprint(const Placement& placement);

class PredictionCache {
 public:
  // `max_entries` bounds the total entry count across all shards.
  explicit PredictionCache(size_t max_entries = 1 << 18);

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  // Process-wide cache used by the optimizer and the eval sweeps.
  static PredictionCache& Global();

  // Lookup drops (and counts) entries inserted before the current
  // generation instead of returning them.
  std::optional<Prediction> Lookup(const PredictionCacheKey& key);
  void Insert(const PredictionCacheKey& key, const Prediction& prediction);

  // Invalidation hook for online state mutations (job departures, rack
  // reconfiguration): logically drops every current entry. O(1); stale
  // entries are reclaimed lazily on lookup or eviction.
  void BumpGeneration();
  uint64_t generation() const;

  // Entry count including not-yet-reclaimed stale entries.
  size_t size() const;
  void Clear();

 private:
  static constexpr size_t kShards = 16;
  struct KeyHash {
    size_t operator()(const PredictionCacheKey& key) const;
  };
  struct Entry {
    Prediction prediction;
    uint64_t generation = 0;
  };
  struct Shard {
    mutable util::Mutex mu{"predictor.cache_shard",
                           util::kLockRankPredictorCacheShard};
    std::unordered_map<PredictionCacheKey, Entry, KeyHash> entries
        PANDIA_GUARDED_BY(mu);
    // Insertion order, for eviction.
    std::deque<PredictionCacheKey> fifo PANDIA_GUARDED_BY(mu);
  };

  Shard& ShardFor(const PredictionCacheKey& key);

  size_t per_shard_capacity_;
  Shard shards_[kShards];
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> generation_{0};
};

// Predict with memoization: returns the cached Prediction for (predictor
// context, placement) or computes and inserts it. Falls back to a direct
// predictor.Predict when `cache` is null or the predictor carries a
// convergence-trace hook (a cache hit would silently skip recording, and
// concurrent traced solves would race on the shared trace buffer).
Prediction PredictCached(const Predictor& predictor, const Placement& placement,
                         PredictionCache* cache);

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_PREDICTION_CACHE_H_
