// Thread-safe memoization of predictor results.
//
// A placement search predicts thousands of candidate placements, and higher
// layers (rank-then-explain tools, repeated sweeps, co-tenancy what-ifs)
// revisit many of them with the same machine/workload inputs. Following
// PPT-Multicore's analytical-model reuse, this cache keys a Prediction by a
// fingerprint of everything that determines it:
//
//   context   = machine description + workload description + the
//               PredictionOptions that shape the solve (hashed once per
//               Predictor, see Predictor::context_fingerprint()),
//   placement = the per-core thread-count vector.
//
// The cache is sharded (16 shards, each a mutex + hash map + FIFO ring), so
// concurrent lookups from the ParallelFor workers contend only per shard.
// Hits return a copy of the stored Prediction; concurrent inserts of the
// same key keep the first value (all callers compute identical values, so
// which copy wins is unobservable). When a shard exceeds its capacity the
// oldest entry in that shard is evicted.
//
// Observability (src/obs registry):
//   prediction_cache.hits / .misses / .insertions / .evictions  counters
//   prediction_cache.size                                       gauge
#ifndef PANDIA_SRC_PREDICTOR_PREDICTION_CACHE_H_
#define PANDIA_SRC_PREDICTOR_PREDICTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/predictor/predictor.h"
#include "src/topology/placement.h"

namespace pandia {

struct PredictionCacheKey {
  uint64_t context = 0;    // Predictor::context_fingerprint()
  uint64_t placement = 0;  // PlacementFingerprint()

  friend bool operator==(const PredictionCacheKey&,
                         const PredictionCacheKey&) = default;
};

// Fingerprint of the (machine, workload, options) triple that determines a
// Prediction, bit-exact over every model input. The trace pointer is
// excluded: it records the solve but does not change it.
uint64_t ContextFingerprint(const MachineDescription& machine,
                            const WorkloadDescription& workload,
                            const PredictionOptions& options);

// Fingerprint of a placement's per-core thread counts (placements are
// canonical, so equal placements hash equal).
uint64_t PlacementFingerprint(const Placement& placement);

class PredictionCache {
 public:
  // `max_entries` bounds the total entry count across all shards.
  explicit PredictionCache(size_t max_entries = 1 << 18);

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  // Process-wide cache used by the optimizer and the eval sweeps.
  static PredictionCache& Global();

  std::optional<Prediction> Lookup(const PredictionCacheKey& key) const;
  void Insert(const PredictionCacheKey& key, const Prediction& prediction);

  size_t size() const;
  void Clear();

 private:
  static constexpr size_t kShards = 16;
  struct KeyHash {
    size_t operator()(const PredictionCacheKey& key) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PredictionCacheKey, Prediction, KeyHash> entries;
    std::deque<PredictionCacheKey> fifo;  // insertion order, for eviction
  };

  Shard& ShardFor(const PredictionCacheKey& key);
  const Shard& ShardFor(const PredictionCacheKey& key) const;

  size_t per_shard_capacity_;
  Shard shards_[kShards];
  std::atomic<size_t> size_{0};
};

// Predict with memoization: returns the cached Prediction for (predictor
// context, placement) or computes and inserts it. Falls back to a direct
// predictor.Predict when `cache` is null or the predictor carries a
// convergence-trace hook (a cache hit would silently skip recording, and
// concurrent traced solves would race on the shared trace buffer).
Prediction PredictCached(const Predictor& predictor, const Placement& placement,
                         PredictionCache* cache);

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_PREDICTION_CACHE_H_
