#include "src/predictor/prediction_cache.h"

#include <algorithm>
#include <bit>
#include <string_view>

#include "src/obs/metrics.h"

namespace pandia {
namespace {

// FNV-1a 64. Model inputs are hashed bit-exact (no rounding): two contexts
// differing in any double produce different fingerprints with overwhelming
// probability, and identical inputs always collide — exactly what a
// memoization key needs.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t& h, const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
}

void HashU64(uint64_t& h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }
void HashDouble(uint64_t& h, double v) { HashU64(h, std::bit_cast<uint64_t>(v)); }
void HashInt(uint64_t& h, int v) { HashU64(h, static_cast<uint64_t>(v)); }
void HashString(uint64_t& h, std::string_view s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

obs::Counter& HitsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("prediction_cache.hits");
  return counter;
}
obs::Counter& MissesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("prediction_cache.misses");
  return counter;
}
obs::Counter& InsertionsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("prediction_cache.insertions");
  return counter;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("prediction_cache.evictions");
  return counter;
}
obs::Gauge& SizeGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().gauge("prediction_cache.size");
  return gauge;
}
obs::Counter& GenerationInvalidationsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().counter(
      "prediction_cache.generation_invalidations");
  return counter;
}
obs::Gauge& GenerationGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().gauge("prediction_cache.generation");
  return gauge;
}

}  // namespace

uint64_t MachineOptionsFingerprint(const MachineDescription& machine,
                                   const PredictionOptions& options) {
  uint64_t h = kFnvOffset;
  // Machine: topology shape plus every measured capacity.
  HashString(h, machine.topo.name);
  HashInt(h, machine.topo.num_sockets);
  HashInt(h, machine.topo.cores_per_socket);
  HashInt(h, machine.topo.threads_per_core);
  HashDouble(h, machine.topo.l1_size);
  HashDouble(h, machine.topo.l2_size);
  HashDouble(h, machine.topo.l3_size);
  HashDouble(h, machine.core_ops);
  HashDouble(h, machine.smt_combined_ops);
  HashDouble(h, machine.l1_bw);
  HashDouble(h, machine.l2_bw);
  HashDouble(h, machine.l3_port_bw);
  HashDouble(h, machine.l3_agg_bw);
  HashDouble(h, machine.dram_bw);
  HashDouble(h, machine.link_bw);
  // Options that shape the solve (CommonOptions records/parallelizes, it
  // does not change values).
  HashInt(h, options.max_iterations);
  HashDouble(h, options.convergence_eps);
  HashInt(h, options.dampen_after);
  HashInt(h, options.model_burstiness ? 1 : 0);
  HashInt(h, options.model_communication ? 1 : 0);
  HashInt(h, options.model_load_balance ? 1 : 0);
  HashInt(h, options.iterate ? 1 : 0);
  HashInt(h, options.retry_on_divergence ? 1 : 0);
  // Warm-started solves converge within eps of cold ones but are not
  // byte-identical, so the flag must split the key space.
  HashInt(h, options.warm_start ? 1 : 0);
  return h;
}

uint64_t WorkloadFingerprint(const WorkloadDescription& workload) {
  uint64_t h = kFnvOffset;
  // Every model input (§4's five properties + demand vector + memory
  // policy). Bookkeeping fields (profile_threads, r2..r6) feed no
  // prediction, but they are cheap and keeping them makes the fingerprint
  // a plain "all fields" rule.
  HashString(h, workload.workload);
  HashString(h, workload.machine);
  HashDouble(h, workload.t1);
  HashDouble(h, workload.demands.instr_rate);
  HashDouble(h, workload.demands.l1_bw);
  HashDouble(h, workload.demands.l2_bw);
  HashDouble(h, workload.demands.l3_bw);
  HashDouble(h, workload.demands.dram_local_bw);
  HashDouble(h, workload.demands.dram_remote_bw);
  HashDouble(h, workload.parallel_fraction);
  HashDouble(h, workload.inter_socket_overhead);
  HashDouble(h, workload.load_balance);
  HashDouble(h, workload.burstiness);
  HashInt(h, static_cast<int>(workload.memory_policy));
  HashInt(h, workload.profile_threads);
  HashDouble(h, workload.r2);
  HashDouble(h, workload.r3);
  HashDouble(h, workload.r4);
  HashDouble(h, workload.r5);
  HashDouble(h, workload.r6);
  return h;
}

uint64_t CombineFingerprints(uint64_t a, uint64_t b) {
  HashU64(a, b);
  return a;
}

uint64_t ContextFingerprint(const MachineDescription& machine,
                            const WorkloadDescription& workload,
                            const PredictionOptions& options) {
  return CombineFingerprints(MachineOptionsFingerprint(machine, options),
                             WorkloadFingerprint(workload));
}

uint64_t PlacementFingerprint(const Placement& placement) {
  uint64_t h = kFnvOffset;
  const std::vector<uint8_t>& per_core = placement.PerCore();
  HashU64(h, per_core.size());
  HashBytes(h, per_core.data(), per_core.size());
  return h;
}

size_t PredictionCache::KeyHash::operator()(const PredictionCacheKey& key) const {
  uint64_t h = kFnvOffset;
  HashU64(h, key.context);
  HashU64(h, key.placement);
  return static_cast<size_t>(h);
}

PredictionCache::PredictionCache(size_t max_entries)
    : per_shard_capacity_(std::max<size_t>(1, max_entries / kShards)) {}

PredictionCache& PredictionCache::Global() {
  static PredictionCache* cache = new PredictionCache;
  return *cache;
}

PredictionCache::Shard& PredictionCache::ShardFor(const PredictionCacheKey& key) {
  return shards_[KeyHash{}(key) % kShards];
}

std::optional<Prediction> PredictionCache::Lookup(const PredictionCacheKey& key) {
  const uint64_t current = generation_.load(std::memory_order_acquire);
  bool stale = false;
  {
    Shard& shard = ShardFor(key);
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (it->second.generation == current) {
        HitsCounter().Increment();
        return it->second.prediction;
      }
      // Inserted before the last BumpGeneration: the value may describe a
      // co-scheduling context that no longer exists. Reclaim it here; its
      // FIFO slot stays behind and erases nothing when it is evicted.
      shard.entries.erase(it);
      stale = true;
    }
  }
  if (stale) {
    GenerationInvalidationsCounter().Increment();
    size_.fetch_sub(1, std::memory_order_relaxed);
    SizeGauge().Set(static_cast<double>(size()));
  }
  MissesCounter().Increment();
  return std::nullopt;
}

void PredictionCache::Insert(const PredictionCacheKey& key,
                             const Prediction& prediction) {
  size_t evicted = 0;
  bool inserted = false;
  {
    Shard& shard = ShardFor(key);
    util::MutexLock lock(shard.mu);
    // First writer wins; racing inserts of the same key computed the same
    // value, so dropping the duplicate is free.
    auto [it, fresh] = shard.entries.emplace(
        key, Entry{prediction, generation_.load(std::memory_order_acquire)});
    (void)it;
    inserted = fresh;
    if (fresh) {
      shard.fifo.push_back(key);
      while (shard.fifo.size() > per_shard_capacity_) {
        evicted += shard.entries.erase(shard.fifo.front());
        shard.fifo.pop_front();
      }
    }
  }
  if (inserted) {
    InsertionsCounter().Increment();
    size_.fetch_add(1, std::memory_order_relaxed);
  }
  if (evicted > 0) {
    EvictionsCounter().Increment(evicted);
    size_.fetch_sub(evicted, std::memory_order_relaxed);
  }
  SizeGauge().Set(static_cast<double>(size()));
}

void PredictionCache::BumpGeneration() {
  const uint64_t next = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  GenerationGauge().Set(static_cast<double>(next));
}

uint64_t PredictionCache::generation() const {
  return generation_.load(std::memory_order_acquire);
}

size_t PredictionCache::size() const {
  return size_.load(std::memory_order_relaxed);
}

void PredictionCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    size_.fetch_sub(shard.entries.size(), std::memory_order_relaxed);
    shard.entries.clear();
    shard.fifo.clear();
  }
  SizeGauge().Set(0.0);
}

Prediction PredictCached(const Predictor& predictor, const Placement& placement,
                         PredictionCache* cache) {
  if (cache == nullptr || predictor.options().common.trace != nullptr) {
    return predictor.Predict(placement);
  }
  const PredictionCacheKey key{predictor.context_fingerprint(),
                               PlacementFingerprint(placement)};
  if (std::optional<Prediction> hit = cache->Lookup(key)) {
    return *std::move(hit);
  }
  Prediction prediction = predictor.Predict(placement);
  // A prediction that never settled (even after the adaptive-damping retry)
  // is a property of this solve, not of the (context, placement) key; caching
  // it would hand the divergent numbers to every future caller silently.
  if (prediction.converged) {
    cache->Insert(key, prediction);
  } else {
    static obs::Counter& rejected = obs::MetricsRegistry::Global().counter(
        "prediction_cache.non_converged_rejected");
    rejected.Increment();
  }
  return prediction;
}

}  // namespace pandia
