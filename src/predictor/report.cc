#include "src/predictor/report.h"

#include <cmath>
#include <vector>

#include "src/topology/resource_index.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {
namespace {

struct Row {
  ThreadPrediction sample;
  int count = 1;
};

bool SameClass(const ThreadPrediction& a, const ThreadPrediction& b) {
  auto close = [](double x, double y) { return std::fabs(x - y) < 5e-3; };
  return a.location.socket == b.location.socket && a.bottleneck == b.bottleneck &&
         close(a.resource_slowdown, b.resource_slowdown) &&
         close(a.comm_penalty, b.comm_penalty) &&
         close(a.balance_penalty, b.balance_penalty);
}

}  // namespace

std::string ExplainPrediction(const MachineDescription& machine,
                              const Placement& placement,
                              const Prediction& prediction) {
  PANDIA_CHECK(static_cast<int>(prediction.threads.size()) == placement.TotalThreads());
  const ResourceIndex index(machine.topo);

  std::vector<Row> rows;
  for (const ThreadPrediction& thread : prediction.threads) {
    if (!rows.empty() && SameClass(rows.back().sample, thread)) {
      ++rows.back().count;
    } else {
      rows.push_back(Row{thread, 1});
    }
  }

  std::string out = StrFormat("prediction for %s\n", placement.ToString().c_str());
  out += StrFormat(
      "  Amdahl speedup %.2f, predicted speedup %.2f (time %.2f), %d iterations "
      "(final delta %.2g)%s\n",
      prediction.amdahl_speedup, prediction.speedup, prediction.time,
      prediction.iterations, prediction.final_delta,
      prediction.converged ? "" : " (NOT converged)");
  if (!prediction.converged) {
    out += StrFormat(
        "  WARNING: the solver was still moving %.2g per iteration when it "
        "stopped; treat speedup and time as approximate\n",
        prediction.final_delta);
  }
  out += StrFormat("  %-8s %-7s %-10s %-7s %-9s %-9s %-6s %s\n", "threads", "socket",
                   "resource", "+comm", "+balance", "overall", "util", "bottleneck");
  for (const Row& row : rows) {
    out += StrFormat("  %-8d %-7d %-10.2f %-7.2f %-9.2f %-9.2f %-6.2f %s\n", row.count,
                     row.sample.location.socket, row.sample.resource_slowdown,
                     row.sample.comm_penalty, row.sample.balance_penalty,
                     row.sample.overall_slowdown, row.sample.utilization,
                     row.sample.bottleneck >= 0
                         ? index.Name(row.sample.bottleneck).c_str()
                         : "-");
  }
  return out;
}

}  // namespace pandia
