#include "src/predictor/predictor.h"

#include "src/predictor/co_schedule.h"
#include "src/predictor/prediction_cache.h"
#include "src/util/check.h"

namespace pandia {

Predictor::Predictor(MachineDescription machine, WorkloadDescription workload,
                     PredictionOptions options)
    : machine_(std::move(machine)),
      workload_(std::move(workload)),
      options_(options),
      context_fingerprint_(ContextFingerprint(machine_, workload_, options_)) {
  PANDIA_CHECK(workload_.t1 > 0.0);
  PANDIA_CHECK(workload_.parallel_fraction >= 0.0 && workload_.parallel_fraction <= 1.0);
  PANDIA_CHECK(workload_.load_balance >= 0.0 && workload_.load_balance <= 1.0);
}

Prediction Predictor::Predict(const Placement& placement) const {
  // The single-workload model (§5) is the one-job case of the co-scheduling
  // engine; see co_schedule.cc for the iterative model itself.
  const CoSchedulePredictor engine(machine_, options_);
  const CoScheduleRequest request{&workload_, placement};
  CoSchedulePrediction joint =
      engine.Predict(std::span<const CoScheduleRequest>(&request, 1));
  return std::move(joint.jobs.front());
}

}  // namespace pandia
