#include "src/predictor/predictor.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/predictor/co_schedule.h"
#include "src/predictor/prediction_cache.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {

Predictor::Predictor(MachineDescription machine, WorkloadDescription workload,
                     PredictionOptions options)
    : machine_(std::move(machine)),
      workload_(std::move(workload)),
      options_(options),
      context_fingerprint_(ContextFingerprint(machine_, workload_, options_)),
      engine_(std::make_shared<CoSchedulePredictor>(machine_, options_)) {
  PANDIA_CHECK(workload_.t1 > 0.0);
  PANDIA_CHECK(workload_.parallel_fraction >= 0.0 && workload_.parallel_fraction <= 1.0);
  PANDIA_CHECK(workload_.load_balance >= 0.0 && workload_.load_balance <= 1.0);
}

StatusOr<Predictor> Predictor::Create(MachineDescription machine,
                                      WorkloadDescription workload,
                                      PredictionOptions options) {
  PANDIA_RETURN_IF_ERROR(machine.Validate());
  PANDIA_RETURN_IF_ERROR(workload.Validate());
  if (options.max_iterations < 1) {
    return Status::InvalidArgument(StrFormat(
        "prediction option 'max_iterations' must be >= 1, got %d",
        options.max_iterations));
  }
  if (!(options.convergence_eps >= 0.0)) {
    return Status::InvalidArgument(StrFormat(
        "prediction option 'convergence_eps' must be >= 0, got %g",
        options.convergence_eps));
  }
  if (options.dampen_after < 1) {
    return Status::InvalidArgument(StrFormat(
        "prediction option 'dampen_after' must be >= 1, got %d",
        options.dampen_after));
  }
  return Predictor(std::move(machine), std::move(workload), options);
}

Prediction Predictor::Predict(const Placement& placement) const {
  return PredictWarm(placement, nullptr);
}

Prediction Predictor::PredictWarm(const Placement& placement,
                                  SolverWarmStart* warm) const {
  Prediction prediction;
  PredictInto(placement, warm, &prediction);
  return prediction;
}

void Predictor::PredictInto(const Placement& placement, SolverWarmStart* warm,
                            Prediction* out) const {
  // The single-workload model (§5) is the one-job case of the co-scheduling
  // engine; see co_schedule.cc for the iterative model itself. The one-job
  // fast path skips the CoSchedulePrediction wrapper and the Placement copy
  // a CoScheduleRequest would cost.
  Prediction& prediction = *out;
  engine_->PredictOneInto(workload_, placement, warm, &prediction);

  // Adaptive damping: a run that hit max_iterations while still moving by a
  // lot is oscillating, not slowly converging. Retry once with dampening
  // engaged from the first iteration, which trades convergence speed for
  // stability. Runs configured to never converge (eps = 0, single
  // iteration, dampen_after = 1) are left alone.
  const bool diverged =
      !prediction.converged && prediction.final_delta > kDivergenceDelta;
  const bool retryable = options_.retry_on_divergence && options_.iterate &&
                         options_.convergence_eps > 0.0 && options_.dampen_after > 1;
  if (diverged && retryable) {
    static obs::Counter& retries =
        obs::MetricsRegistry::Global().counter("predictor.divergence_retries");
    static obs::Counter& recovered =
        obs::MetricsRegistry::Global().counter("predictor.divergence_recovered");
    static obs::Counter& unrecovered =
        obs::MetricsRegistry::Global().counter("predictor.divergence_unrecovered");
    retries.Increment();
    PredictionOptions damped = options_;
    damped.dampen_after = 1;
    // The retry always cold-starts: a warm seed that led the solve into
    // oscillation is no basis for the stabilized re-solve.
    damped.warm_start = false;
    const CoSchedulePredictor damped_engine(machine_, damped);
    Prediction retried = damped_engine.PredictOne(workload_, placement);
    if (retried.converged || retried.final_delta < prediction.final_delta) {
      (retried.converged ? recovered : unrecovered).Increment();
      prediction = std::move(retried);
    } else {
      unrecovered.Increment();
    }
    // A seed that fed an oscillating solve is invalid for neighbours too.
    if (warm != nullptr) {
      warm->f_start.clear();
    }
  }
}

StatusOr<Prediction> Predictor::TryPredict(const Placement& placement) const {
  const MachineTopology& expected = machine_.topo;
  const MachineTopology& actual = placement.topology();
  if (actual.num_sockets != expected.num_sockets ||
      actual.cores_per_socket != expected.cores_per_socket ||
      actual.threads_per_core != expected.threads_per_core) {
    return Status::InvalidArgument(StrFormat(
        "placement topology %dx%dx%d does not match machine '%s' (%dx%dx%d)",
        actual.num_sockets, actual.cores_per_socket, actual.threads_per_core,
        expected.name.c_str(), expected.num_sockets, expected.cores_per_socket,
        expected.threads_per_core));
  }
  if (placement.TotalThreads() < 1) {
    return Status::InvalidArgument("placement has no threads");
  }
  return Predict(placement);
}

}  // namespace pandia
