// Placement optimization on top of the predictor — the paper's headline use
// cases (§1): pick the best placement for a workload, and find the smallest
// resource footprint that still meets a performance target (e.g. limit a
// poorly scaling workload to a few cores).
#ifndef PANDIA_SRC_PREDICTOR_OPTIMIZER_H_
#define PANDIA_SRC_PREDICTOR_OPTIMIZER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/predictor/predictor.h"
#include "src/topology/placement.h"
#include "src/util/common_options.h"
#include "src/util/status.h"

namespace pandia {

struct RankedPlacement {
  Placement placement;
  Prediction prediction;
};

// Non-converged entries in a ranking (prediction.converged == false after
// the adaptive-damping retry) keep their rank but are counted in the
// optimizer.non_converged_ranked metric, and reports flag them — callers
// relying on exact ordering near ties should treat them as approximate.

struct OptimizerOptions {
  // Shared fan-out/cache knobs (src/util/common_options.h): candidate
  // predictions fan out over common.jobs worker threads (chunking is
  // static and results are written by candidate index, so rankings are
  // byte-identical to a serial run at any job count), and common.use_cache
  // memoizes predictions in PredictionCache::Global() (automatically
  // bypassed when the predictor carries a convergence-trace hook).
  CommonOptions common;

  // When the canonical placement space is larger than this, placements are
  // sampled instead of enumerated.
  uint64_t exhaustive_limit = 25000;
  size_t sample_count = 4000;
  uint64_t sample_seed = 1;
  // Optional admission constraint on candidate placements (e.g. "no SMT",
  // "at most one socket" when other tenants own the rest of the machine).
  std::function<bool(const Placement&)> constraint;
};

// Common constraints for the optimizer (and for eval sweeps).
std::function<bool(const Placement&)> NoSmtConstraint();
std::function<bool(const Placement&)> MaxSocketsConstraint(int max_sockets);
std::function<bool(const Placement&)> MaxThreadsConstraint(int max_threads);

// Predicts every canonical placement (or a deterministic sample on very
// large machines) and returns the one with the highest predicted speedup.
RankedPlacement FindBestPlacement(const Predictor& predictor,
                                  const OptimizerOptions& options = {});

// Returns the best placements in descending predicted-speedup order (at
// most `top_k`).
std::vector<RankedPlacement> RankPlacements(const Predictor& predictor, size_t top_k,
                                            const OptimizerOptions& options = {});

// Status-returning variants for user-assembled constraints: an admission
// constraint that rejects every placement is reported instead of aborting.
[[nodiscard]] StatusOr<std::vector<RankedPlacement>> TryRankPlacements(
    const Predictor& predictor, size_t top_k, const OptimizerOptions& options = {});
[[nodiscard]] StatusOr<RankedPlacement> TryFindBestPlacement(
    const Predictor& predictor, const OptimizerOptions& options = {});

// Smallest placement (fewest hardware threads, then fewest active sockets)
// whose predicted speedup is at least `target_fraction` of the best
// predicted speedup. Identifies over-provisioning: when scaling is poor, a
// few cores deliver almost all of the achievable performance.
//
// TryFindCheapestPlacement is the primary surface (out-of-range
// target_fraction and constraint-rejecting-everything report as Status);
// FindCheapestPlacement is a thin aborting wrapper kept for bench code.
[[nodiscard]] StatusOr<RankedPlacement> TryFindCheapestPlacement(
    const Predictor& predictor, double target_fraction,
    const OptimizerOptions& options = {});
std::optional<RankedPlacement> FindCheapestPlacement(
    const Predictor& predictor, double target_fraction,
    const OptimizerOptions& options = {});

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_OPTIMIZER_H_
