// Structure-of-arrays implementation of the iterative joint model (§5).
//
// The solver is the hottest code in the system — every optimizer ranking
// and every rack admission calls it thousands of times — so it is written
// against flat, contiguous arrays in a reusable SolverScratch arena (see
// solver_scratch.h) rather than per-call std::vectors, and a solve of an
// already-seen shape allocates nothing. Results are byte-identical to the
// retained reference implementation (src/predictor/reference_solver.cc);
// the equivalence property test (tests/solver_equivalence_test.cc) pins
// this down across all four paper machines and an edge-case corpus.
//
// The demand layout exploits the model's structure: a thread's demand list
// is a fixed-width per-core part (core issue, L1, L2, L3 port — rates
// shared by the whole job) followed by a per-(job, socket) tail (L3
// aggregate, DRAM, interconnect — identical for all of the job's threads
// on that socket). Assembly therefore does per-thread work proportional to
// 4, not to the full demand list, and the bottleneck scan reuses one
// (max, argmax) per tail for every thread sharing it — exact, because the
// reference's scan is a strict-> first-wins argmax and the tail entries
// come last in its demand order.
//
// Further recompute-avoidance, all bit-exact against the reference:
//   * contention factors load/caps are divided out inline and only when
//     load > caps — a factor <= 1.0 can never win a scan whose running
//     worst starts at 1.0;
//   * thread-utilization factors are computed once during result assembly
//     (and inline where the communication step reads them) — every
//     in-loop recompute the reference performs is either overwritten
//     unread or reproduces the same bits;
//   * the communication step is skipped for single-socket jobs (all its
//     terms are exactly +0.0) and the §5.4 clamp pass is skipped when no
//     slowdown falls outside [1, ceiling] (every clamp is the identity);
//   * capacities are memoized on their exact inputs (topology dims +
//     capacity scalars + SMT mask), the per-solve sizing pass is skipped
//     when the problem shape matches the previous solve, and only the
//     previous solve's touched load entries are re-zeroed.
//
// The per-thread loops run job-major (hoisting each job's rates, masks and
// model constants out of the inner loop) over __restrict-qualified raw
// pointers — the scratch buffers never alias, but without the qualifier
// every store to a double array forces the compiler to reload every other
// double array.
#include "src/predictor/co_schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "src/obs/metrics.h"
#include "src/obs/prediction_trace.h"
#include "src/obs/trace.h"
#include "src/topology/memory_policy.h"
#include "src/util/check.h"

namespace pandia {
namespace {

SolverScratch& ThreadLocalScratch() {
  static thread_local SolverScratch scratch;
  return scratch;
}

// One static init-guard for the whole counter set instead of one per
// counter — registry lookups happen once, per-call cost is the increments.
struct SolverMetrics {
  obs::Counter& predictions;
  obs::Counter& total_iterations;
  obs::Counter& converged;
  obs::Counter& non_converged;
  obs::Counter& warm_seeded;
  obs::Histogram& iterations_histogram;

  static SolverMetrics& Get() {
    static SolverMetrics metrics{
        obs::MetricsRegistry::Global().counter("predictor.predictions"),
        obs::MetricsRegistry::Global().counter("predictor.iterations"),
        obs::MetricsRegistry::Global().counter("predictor.converged"),
        obs::MetricsRegistry::Global().counter("predictor.non_converged"),
        obs::MetricsRegistry::Global().counter("predictor.warm_starts"),
        obs::MetricsRegistry::Global().histogram(
            "predictor.iterations_per_predict",
            {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0})};
    return metrics;
  }
};

// Largest relative move max_t |s[t] - p[t]| / s[t]; p == nullptr means the
// all-ones initial state of the first iteration. Each element's subtract,
// |.| (sign-bit clear), and divide are the same IEEE operations as the
// scalar loop's std::fabs(s - p) / s, and reordering the max reduction
// cannot change its value: the merge is pure selection, and the NaN-skip
// semantics match (std::max(worst, q) keeps worst when q is NaN; so does
// _mm_max_pd(q, acc), which returns acc when the comparison is unordered).
inline double MaxRelativeDelta(const double* __restrict s,
                               const double* __restrict p, int n) {
  double worst = 0.0;
  int t = 0;
#if defined(__SSE2__)
  __m128d acc = _mm_setzero_pd();
  const __m128d abs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
  const __m128d ones = _mm_set1_pd(1.0);
  for (; t + 2 <= n; t += 2) {
    const __m128d sv = _mm_loadu_pd(s + t);
    const __m128d pv = p != nullptr ? _mm_loadu_pd(p + t) : ones;
    const __m128d q = _mm_div_pd(_mm_and_pd(_mm_sub_pd(sv, pv), abs_mask), sv);
    acc = _mm_max_pd(q, acc);
  }
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, acc);
  worst = std::max(lanes[1], std::max(worst, lanes[0]));
#endif
  for (; t < n; ++t) {
    const double pv = p != nullptr ? p[t] : 1.0;
    worst = std::max(worst, std::fabs(s[t] - pv) / s[t]);
  }
  return worst;
}

}  // namespace

CoSchedulePredictor::CoSchedulePredictor(MachineDescription machine,
                                         PredictionOptions options)
    : machine_(std::move(machine)), options_(options), index_(machine_.topo) {}

CoSchedulePrediction CoSchedulePredictor::Predict(
    std::span<const CoScheduleRequest> requests) const {
  return PredictWithScratch(requests, ThreadLocalScratch(), nullptr);
}

CoSchedulePrediction CoSchedulePredictor::Predict(
    std::span<const CoScheduleRequest> requests, SolverWarmStart* warm) const {
  return PredictWithScratch(requests, ThreadLocalScratch(), warm);
}

void CoSchedulePredictor::PredictInto(
    std::span<const CoScheduleRequest> requests, SolverWarmStart* warm,
    CoSchedulePrediction* out) const {
  PredictIntoWithScratch(requests, ThreadLocalScratch(), warm, out);
}

Prediction CoSchedulePredictor::PredictOne(const WorkloadDescription& workload,
                                           const Placement& placement,
                                           SolverWarmStart* warm) const {
  Prediction prediction;
  PredictOneInto(workload, placement, warm, &prediction);
  return prediction;
}

void CoSchedulePredictor::PredictOneInto(const WorkloadDescription& workload,
                                         const Placement& placement,
                                         SolverWarmStart* warm,
                                         Prediction* out) const {
  SolverScratch& s = ThreadLocalScratch();
  const SolverJobRef job{&workload, &placement};
  const SolveOutcome outcome = Solve(std::span<const SolverJobRef>(&job, 1), s, warm);
  AssembleJob(0, s, outcome, workload.t1, out);
  out->resource_load.assign(s.load.begin(), s.load.end());
}

CoSchedulePrediction CoSchedulePredictor::PredictWithScratch(
    std::span<const CoScheduleRequest> requests, SolverScratch& s,
    SolverWarmStart* warm) const {
  CoSchedulePrediction result;
  PredictIntoWithScratch(requests, s, warm, &result);
  return result;
}

void CoSchedulePredictor::PredictIntoWithScratch(
    std::span<const CoScheduleRequest> requests, SolverScratch& s,
    SolverWarmStart* warm, CoSchedulePrediction* out) const {
  PANDIA_CHECK(!requests.empty());
  const size_t num_jobs = requests.size();
  s.Size(s.job_refs, num_jobs);
  for (size_t r = 0; r < num_jobs; ++r) {
    s.job_refs[r] = SolverJobRef{requests[r].workload, &requests[r].placement};
  }
  const SolveOutcome outcome =
      Solve(std::span<const SolverJobRef>(s.job_refs.data(), num_jobs), s, warm);

  out->resource_load.assign(s.load.begin(), s.load.end());
  out->jobs.resize(num_jobs);
  for (size_t j = 0; j < num_jobs; ++j) {
    AssembleJob(j, s, outcome, requests[j].workload->t1, &out->jobs[j]);
    out->jobs[j].resource_load = out->resource_load;
  }
}

CoSchedulePredictor::SolveOutcome CoSchedulePredictor::Solve(
    std::span<const SolverJobRef> jobs, SolverScratch& s,
    SolverWarmStart* warm) const {
  PANDIA_CHECK(!jobs.empty());
  const obs::TraceSpan predict_span("predict", static_cast<int64_t>(jobs.size()));
  obs::PredictionTrace* trace = options_.common.trace;
  if (trace != nullptr) {
    trace->Clear();
  }
  const MachineTopology& topo = machine_.topo;
  const int num_cores = topo.NumCores();
  const int num_sockets = topo.num_sockets;
  const int cores_per_socket = topo.cores_per_socket;
  const size_t num_jobs = jobs.size();
  const size_t num_resources = static_cast<size_t>(index_.Count());

  // --- Assemble jobs and threads into the scratch arena's SoA layout ---
  int n_total = 0;
  for (const SolverJobRef& job : jobs) {
    PANDIA_CHECK(job.workload != nullptr);
    PANDIA_CHECK(job.workload->t1 > 0.0);
    const MachineTopology& placement_topo = job.placement->topology();
    PANDIA_CHECK_MSG(placement_topo.num_sockets == topo.num_sockets &&
                         placement_topo.cores_per_socket == topo.cores_per_socket &&
                         placement_topo.threads_per_core == topo.threads_per_core,
                     "placement topology does not match machine description");
    n_total += job.placement->TotalThreads();
  }

  // Sizing pass — skipped entirely when the problem shape matches the
  // previous solve (the steady state for rankings and benchmarks).
  const size_t n = static_cast<size_t>(n_total);
  const size_t num_tails = num_jobs * static_cast<size_t>(num_sockets);
  const size_t max_tail = 1 + 2 * static_cast<size_t>(num_sockets);
  if (s.shape_jobs != static_cast<int64_t>(num_jobs) ||
      s.shape_threads != n_total || s.shape_cores != num_cores ||
      s.shape_sockets != num_sockets ||
      s.shape_resources != static_cast<int64_t>(num_resources)) {
    s.Size(s.combined_per_core, static_cast<size_t>(num_cores));

    s.Size(s.job_first_thread, num_jobs);
    s.Size(s.job_num_threads, num_jobs);
    s.Size(s.job_amdahl, num_jobs);
    s.Size(s.job_f_initial, num_jobs);
    s.Size(s.job_os, num_jobs);
    s.Size(s.job_l, num_jobs);
    s.Size(s.job_b, num_jobs);
    s.Size(s.job_single_socket, num_jobs);
    s.Size(s.job_core_rates, 4 * num_jobs);
    s.Size(s.job_core_mask, 4 * num_jobs);

    s.Size(s.thread_socket, n);
    s.Size(s.thread_core, n);
    s.Size(s.thread_slot, n);
    s.Size(s.remote_peers, n);
    s.Size(s.f_start, n);
    s.Size(s.s_overall, n);
    s.Size(s.s_prev, n);
    s.Size(s.s_resource, n);
    s.Size(s.comm_penalty, n);
    s.Size(s.balance_penalty, n);
    s.Size(s.bottleneck, n);

    s.Size(s.active_sockets, static_cast<size_t>(num_sockets));
    s.Size(s.job_socket_threads, static_cast<size_t>(num_sockets));
    s.Size(s.socket_work, static_cast<size_t>(num_sockets));
    s.Size(s.memory_weights, static_cast<size_t>(num_sockets));

    s.Size(s.tail_offset, num_tails + 1);
    s.Size(s.tail_res, num_tails * max_tail);
    s.Size(s.tail_rate, num_tails * max_tail);
    s.Size(s.tail_max, num_tails);
    s.Size(s.tail_arg, num_tails);

    s.Size(s.load, num_resources);
    s.Size(s.core_load, 4 * static_cast<size_t>(num_cores));
    s.Size(s.resource_seen, num_resources);
    s.Size(s.resource_touched, num_tails * max_tail);
    // Each occupied (job, core) pair has at least one thread, so n bounds
    // the touched-core list.
    s.Size(s.touched_cores, n);

    s.shape_jobs = static_cast<int64_t>(num_jobs);
    s.shape_threads = n_total;
    s.shape_cores = num_cores;
    s.shape_sockets = num_sockets;
    s.shape_resources = static_cast<int64_t>(num_resources);

    // The previous touched lists may index differently-sized load arrays;
    // re-establish the "zero outside the touched set" invariant wholesale.
    s.num_touched = 0;
    s.num_touched_cores = 0;
    std::fill(s.load.begin(), s.load.end(), 0.0);
    std::fill(s.core_load.begin(), s.core_load.end(), 0.0);
  } else {
    // Invariant: load[] and core_load[] are all-zero outside the previous
    // solve's touched set. Zero those stale entries instead of the whole
    // resource vector; this solve's touched entries are zeroed at the top
    // of each iteration (and, for `load`'s core planes, written once at
    // the final export).
    double* const load = s.load.data();
    for (int32_t i = 0; i < s.num_touched; ++i) {
      load[s.resource_touched[i]] = 0.0;
    }
    double* const core_load = s.core_load.data();
    for (int32_t i = 0; i < s.num_touched_cores; ++i) {
      const int32_t core = s.touched_cores[i];
      core_load[4 * core] = 0.0;
      core_load[4 * core + 1] = 0.0;
      core_load[4 * core + 2] = 0.0;
      core_load[4 * core + 3] = 0.0;
      load[core] = 0.0;
      load[num_cores + core] = 0.0;
      load[2 * num_cores + core] = 0.0;
      load[3 * num_cores + core] = 0.0;
    }
  }

  if (num_jobs == 1) {
    const std::vector<uint8_t>& per_core = jobs[0].placement->PerCore();
    std::copy(per_core.begin(), per_core.end(), s.combined_per_core.begin());
  } else {
    std::fill(s.combined_per_core.begin(), s.combined_per_core.end(),
              static_cast<uint8_t>(0));
    for (const SolverJobRef& job : jobs) {
      const std::vector<uint8_t>& per_core = job.placement->PerCore();
      for (int c = 0; c < num_cores; ++c) {
        s.combined_per_core[c] =
            static_cast<uint8_t>(s.combined_per_core[c] + per_core[c]);
      }
    }
  }

  // Distinct touched resources, marked by epoch so no per-solve clear is
  // needed; the marking is fused into the thread expansion below.
  if (++s.seen_epoch == 0) {
    std::fill(s.resource_seen.begin(), s.resource_seen.end(), 0u);
    s.seen_epoch = 1;
  }
  const uint32_t epoch = s.seen_epoch;
  int32_t num_touched = 0;
  int32_t num_touched_cores = 0;

  int t_index = 0;
  int32_t tail_index = 0;
  for (size_t r = 0; r < num_jobs; ++r) {
    const WorkloadDescription& workload = *jobs[r].workload;
    const Placement& placement = *jobs[r].placement;
    const std::vector<uint8_t>& per_core = placement.PerCore();
    const int num_threads = placement.TotalThreads();
    s.job_first_thread[r] = t_index;
    s.job_num_threads[r] = num_threads;
    const double p = workload.parallel_fraction;
    PANDIA_CHECK(p >= 0.0 && p <= 1.0);
    s.job_amdahl[r] = 1.0 / ((1.0 - p) + p / num_threads);
    s.job_f_initial[r] = s.job_amdahl[r] / num_threads;
    s.job_os[r] = options_.model_communication ? workload.inter_socket_overhead : 0.0;
    s.job_l[r] = options_.model_load_balance ? workload.load_balance : 1.0;
    PANDIA_CHECK(s.job_l[r] >= 0.0 && s.job_l[r] <= 1.0);
    s.job_b[r] = options_.model_burstiness ? workload.burstiness : 0.0;

    // Non-positive rates are zeroed, not just masked: the unconditional
    // core adds in step 1 rely on a zero rate contributing exactly +0.0
    // (the reference skips non-positive entries outright).
    const ResourceDemandVector& d = workload.demands;
    double* const rates = &s.job_core_rates[4 * r];
    uint8_t* const mask = &s.job_core_mask[4 * r];
    const double raw_rates[4] = {d.instr_rate, d.l1_bw, d.l2_bw, d.l3_bw};
    for (int k = 0; k < 4; ++k) {
      const bool positive = raw_rates[k] > 0.0;
      rates[k] = positive ? raw_rates[k] : 0.0;
      mask[k] = positive ? 1 : 0;
    }

    // Deterministic thread expansion (cores in index order, SMT slots in
    // order) — mirrors Placement::ThreadLocations without allocating.
    // Socket-major iteration keeps the same global core order while
    // avoiding a core->socket integer division per core.
    std::fill(s.active_sockets.begin(), s.active_sockets.end(),
              static_cast<uint8_t>(0));
    std::fill(s.job_socket_threads.begin(), s.job_socket_threads.end(), 0);
    int home_socket = -1;
    int sockets_used = 0;
    int remaining = num_threads;
    for (int socket = 0; socket < num_sockets && remaining > 0; ++socket) {
      const int core_base = socket * cores_per_socket;
      for (int local = 0; local < cores_per_socket && remaining > 0; ++local) {
        const int core = core_base + local;
        const int count = per_core[core];
        if (count == 0) {
          continue;
        }
        remaining -= count;
        if (home_socket < 0) {
          home_socket = socket;  // first thread's socket
        }
        if (s.active_sockets[socket] == 0) {
          s.active_sockets[socket] = 1;
          ++sockets_used;
        }
        s.job_socket_threads[socket] += count;
        s.touched_cores[num_touched_cores++] = core;
        for (int slot = 0; slot < count; ++slot) {
          s.thread_socket[t_index] = socket;
          s.thread_core[t_index] = core;
          s.thread_slot[t_index] = slot;
          ++t_index;
        }
      }
    }
    s.job_single_socket[r] = sockets_used <= 1 ? 1 : 0;

    // Per-(job, socket) demand tails, entries in the reference's demand
    // order (L3Agg, then DRAM/link per memory node). Zero-rate entries are
    // excluded, exactly as the reference excludes them — a zero-rate entry
    // must not join the bottleneck scan, since another job can oversubscribe
    // the same resource.
    const double dram_total = d.dram_total_bw();
    for (int socket = 0; socket < num_sockets; ++socket) {
      s.tail_offset[r * num_sockets + socket] = tail_index;
      if (s.active_sockets[socket] == 0) {
        continue;
      }
      if (d.l3_bw > 0.0) {
        s.tail_res[tail_index] = index_.L3Agg(socket);
        s.tail_rate[tail_index++] = d.l3_bw;
      }
      if (dram_total > 0.0) {
        MemoryNodeWeightsInto(workload.memory_policy, num_sockets, s.active_sockets,
                              socket, home_socket,
                              std::span<double>(s.memory_weights.data(), num_sockets));
        for (int m = 0; m < num_sockets; ++m) {
          if (s.memory_weights[m] <= 0.0) {
            continue;
          }
          s.tail_res[tail_index] = index_.Dram(m);
          s.tail_rate[tail_index++] = dram_total * s.memory_weights[m];
          if (m != socket) {
            s.tail_res[tail_index] = index_.Link(socket, m);
            s.tail_rate[tail_index++] = dram_total * s.memory_weights[m];
          }
        }
      }
    }

    // Same-job peers on other sockets — only the communication step reads
    // these, and it only runs for multi-socket jobs with os > 0.
    if (s.job_os[r] > 0.0 && s.job_single_socket[r] == 0) {
      for (int t = s.job_first_thread[r]; t < t_index; ++t) {
        s.remote_peers[t] =
            static_cast<int32_t>(num_threads - s.job_socket_threads[s.thread_socket[t]]);
      }
    }
  }
  PANDIA_CHECK(t_index == n_total);
  s.tail_offset[num_tails] = tail_index;
  for (int32_t d = 0; d < tail_index; ++d) {
    const int32_t res = s.tail_res[d];
    if (s.resource_seen[res] != epoch) {
      s.resource_seen[res] = epoch;
      s.resource_touched[num_touched++] = res;
    }
  }
  s.num_touched = num_touched;
  s.num_touched_cores = num_touched_cores;

  // Capacities: a pure function of the topology dims, the eight capacity
  // scalars, and the per-core SMT mask — skip the rebuild when none changed.
  const double caps_scalars[8] = {machine_.core_ops,   machine_.smt_combined_ops,
                                  machine_.l1_bw,      machine_.l2_bw,
                                  machine_.l3_port_bw, machine_.l3_agg_bw,
                                  machine_.dram_bw,    machine_.link_bw};
  const bool caps_valid =
      s.caps.size() == num_resources &&
      s.caps_key_dims[0] == topo.num_sockets &&
      s.caps_key_dims[1] == topo.cores_per_socket &&
      s.caps_key_dims[2] == topo.threads_per_core &&
      std::equal(caps_scalars, caps_scalars + 8, s.caps_key_scalars) &&
      s.caps_key_mask.size() == s.combined_per_core.size() &&
      std::equal(s.combined_per_core.begin(), s.combined_per_core.end(),
                 s.caps_key_mask.begin());
  if (!caps_valid) {
    s.Size(s.caps, num_resources);
    machine_.CapacitiesInto(s.combined_per_core, index_, s.caps);
    // Core-major mirror of the four per-core capacity planes, matching
    // core_load's layout.
    s.Size(s.caps4, 4 * static_cast<size_t>(num_cores));
    for (int core = 0; core < num_cores; ++core) {
      for (int k = 0; k < 4; ++k) {
        s.caps4[4 * core + k] = s.caps[k * num_cores + core];
      }
    }
    s.caps_key_dims[0] = topo.num_sockets;
    s.caps_key_dims[1] = topo.cores_per_socket;
    s.caps_key_dims[2] = topo.threads_per_core;
    std::copy(caps_scalars, caps_scalars + 8, s.caps_key_scalars);
    s.Size(s.caps_key_mask, s.combined_per_core.size());
    std::copy(s.combined_per_core.begin(), s.combined_per_core.end(),
              s.caps_key_mask.begin());
  }

  // --- Iterative joint model (§5, generalized over jobs) ---
  // s_overall needs no initialization: step 1 overwrites every entry, and
  // the first iteration's delta is computed against the literal 1.0 initial
  // state instead of a materialized all-ones buffer.
  bool any_comm = false;
  for (size_t j = 0; j < num_jobs; ++j) {
    any_comm |= s.job_os[j] > 0.0 && s.job_single_socket[j] == 0;
  }
  if (!any_comm) {
    // Step 2 never runs; the per-thread comm penalties the assembly reads
    // are all zero (the reference writes the same zeros every iteration).
    // The flag makes the fill once-per-arena: vector resizing preserves
    // zero contents (shrink keeps the prefix, growth value-initializes), so
    // a true flag stays valid across shape changes.
    if (!s.comm_penalty_zeroed) {
      std::fill(s.comm_penalty.begin(), s.comm_penalty.end(), 0.0);
      s.comm_penalty_zeroed = true;
    }
  } else {
    s.comm_penalty_zeroed = false;
  }

  // Warm start (opt-in, see SolverWarmStart). The first iteration always
  // runs from the Amdahl initial state so the slowdown ceiling (§5.4) is
  // exactly the cold solve's — seeding the ceiling-setting iteration from a
  // neighbour was observed to clamp against a wrong ceiling and oscillate.
  // The seed is injected as the *input* of the second iteration instead
  // (see the bottom of the loop), jumping the trajectory next to the
  // neighbouring fixed point once the ceiling is established. A seed that
  // is bitwise the Amdahl initial state (an uncontended neighbour hands
  // exactly that back) carries no information and counts as a cold start,
  // which keeps uncontended chains on the reference trajectory.
  for (size_t j = 0; j < num_jobs; ++j) {
    const double f_initial = s.job_f_initial[j];
    const int first = s.job_first_thread[j];
    const int last = first + s.job_num_threads[j];
    for (int t = first; t < last; ++t) {
      s.f_start[t] = f_initial;
    }
  }
  const bool seed =
      options_.warm_start && warm != nullptr && warm->f_start.size() == n &&
      !std::equal(warm->f_start.begin(), warm->f_start.end(), s.f_start.begin());
  if (options_.warm_start && warm != nullptr) {
    ++(seed ? warm->seeded : warm->cold);
  }
  if (seed) {
    SolverMetrics::Get().warm_seeded.Increment();
  }

  double slowdown_ceiling = 0.0;
  int iterations = 0;
  bool converged = false;
  bool prev_below_eps = false;
  double final_delta = 0.0;
  const int max_iterations = options_.iterate ? options_.max_iterations : 1;

  // Raw __restrict views of the scratch buffers. None of them overlap; the
  // qualifier lets the compiler keep values live across stores to the
  // double arrays instead of reloading after every write.
  double* __restrict const load = s.load.data();
  double* __restrict const core_load = s.core_load.data();
  const double* __restrict const caps = s.caps.data();
  const double* __restrict const caps4 = s.caps4.data();
  const int32_t* __restrict const touched = s.resource_touched.data();
  const int32_t* __restrict const tcores = s.touched_cores.data();
  const int32_t* __restrict const t_off = s.tail_offset.data();
  const int32_t* __restrict const t_res = s.tail_res.data();
  const double* __restrict const t_rate = s.tail_rate.data();
  const int32_t* __restrict const thread_socket = s.thread_socket.data();
  const int32_t* __restrict const thread_core = s.thread_core.data();
  double* __restrict const f_start = s.f_start.data();
  double* __restrict const s_resource = s.s_resource.data();
  double* __restrict const balance_penalty = s.balance_penalty.data();
  int* __restrict const bottleneck = s.bottleneck.data();
  double* __restrict const tail_max = s.tail_max.data();
  int32_t* __restrict const tail_arg = s.tail_arg.data();
  const uint8_t* __restrict const combined = s.combined_per_core.data();

  for (int iter = 0; iter < max_iterations; ++iter) {
    const obs::TraceSpan iteration_span("predict.iteration", iter + 1);
    ++iterations;
    // Double-buffer: last iteration's s_overall becomes `prev` by swapping
    // buffers (step 1 below overwrites every s_overall entry).
    s.s_overall.swap(s.s_prev);
    const double* __restrict const prev = s.s_prev.data();
    double* __restrict const s_overall = s.s_overall.data();

    // Step 1: resource contention, including cross-job load (§5.1).
    // Accumulation runs per thread in the reference's demand order; adding
    // a zero-rate core term contributes exactly +0.0 and is a bitwise
    // no-op, so the four core adds run unconditionally. The per-core planes
    // accumulate into the contiguous core-major mirror; the tails
    // accumulate into the resource vector directly.
    for (int32_t i = 0; i < num_touched; ++i) {
      load[touched[i]] = 0.0;
    }
    for (int32_t i = 0; i < num_touched_cores; ++i) {
      double* const cl = &core_load[4 * tcores[i]];
      cl[0] = 0.0;
      cl[1] = 0.0;
      cl[2] = 0.0;
      cl[3] = 0.0;
    }
    for (size_t j = 0; j < num_jobs; ++j) {
      const double* const rates = &s.job_core_rates[4 * j];
      const double r0 = rates[0], r1 = rates[1], r2 = rates[2], r3 = rates[3];
      const size_t tail_base = j * static_cast<size_t>(num_sockets);
      const int first = s.job_first_thread[j];
      const int last = first + s.job_num_threads[j];
      for (int t = first; t < last; ++t) {
        const double f = f_start[t];
        double* const cl = &core_load[4 * thread_core[t]];
        cl[0] += r0 * f;
        cl[1] += r1 * f;
        cl[2] += r2 * f;
        cl[3] += r3 * f;
        const size_t js = tail_base + thread_socket[t];
        for (int32_t d = t_off[js]; d < t_off[js + 1]; ++d) {
          load[t_res[d]] += t_rate[d] * f;
        }
      }
    }
    // One (max, first-argmax) per tail, shared by every thread of that
    // (job, socket), with the contention divide load/caps done inline and
    // only for oversubscribed entries: fl(load/caps) <= 1.0 otherwise,
    // which can never beat a merged scan whose running worst starts at
    // 1.0. Exact: tail entries come last in the reference's per-thread
    // demand order, and its scan is strict-> first-wins — the first tail
    // entry attaining the tail max is the only one that can update the
    // merged result.
    for (size_t js = 0; js < num_tails; ++js) {
      double mt = 0.0;
      int32_t arg = -1;
      for (int32_t d = t_off[js]; d < t_off[js + 1]; ++d) {
        const int32_t res = t_res[d];
        const double ld = load[res];
        const double cp = caps[res];
        if (ld > cp) {
          const double fr = ld / cp;
          if (fr > mt) {
            mt = fr;
            arg = res;
          }
        }
      }
      tail_max[js] = mt;
      tail_arg[js] = arg;
    }
    for (size_t j = 0; j < num_jobs; ++j) {
      const uint8_t* const mask = &s.job_core_mask[4 * j];
      const bool m0 = mask[0] != 0, m1 = mask[1] != 0, m2 = mask[2] != 0,
                 m3 = mask[3] != 0;
      const double b = s.job_b[j];
      const size_t tail_base = j * static_cast<size_t>(num_sockets);
      const int first = s.job_first_thread[j];
      const int last = first + s.job_num_threads[j];
      for (int t = first; t < last; ++t) {
        const int core = thread_core[t];
        const double* const cl = &core_load[4 * core];
        const double* const c4 = &caps4[4 * core];
        double worst = 1.0;
        int worst_resource = -1;
        // Contiguous any-oversubscribed check first; the full masked scan
        // (reference plane order, strict-> first-wins) only runs when some
        // plane is over capacity — in the common uncontended case this is
        // four compares on one cache line.
        if (cl[0] > c4[0] || cl[1] > c4[1] || cl[2] > c4[2] || cl[3] > c4[3]) {
          if (m0 && cl[0] > c4[0]) {
            const double fr = cl[0] / c4[0];
            if (fr > worst) {
              worst = fr;
              worst_resource = core;
            }
          }
          if (m1 && cl[1] > c4[1]) {
            const double fr = cl[1] / c4[1];
            if (fr > worst) {
              worst = fr;
              worst_resource = num_cores + core;
            }
          }
          if (m2 && cl[2] > c4[2]) {
            const double fr = cl[2] / c4[2];
            if (fr > worst) {
              worst = fr;
              worst_resource = 2 * num_cores + core;
            }
          }
          if (m3 && cl[3] > c4[3]) {
            const double fr = cl[3] / c4[3];
            if (fr > worst) {
              worst = fr;
              worst_resource = 3 * num_cores + core;
            }
          }
        }
        const size_t js = tail_base + thread_socket[t];
        if (tail_max[js] > worst) {
          worst = tail_max[js];
          worst_resource = tail_arg[js];
        }
        if (combined[core] > 1 && b > 0.0) {
          worst *= 1.0 + b * f_start[t];
        }
        s_resource[t] = worst;
        bottleneck[t] = worst_resource;
        s_overall[t] = worst;
      }
    }

    // Step 2: off-socket communication, within each job (§5.2). Single-
    // socket jobs are skipped: every term is exactly +0.0 (no remote peers,
    // remote_work cancels bitwise), so the reference's pass is the identity.
    if (any_comm) {
      std::fill(s.comm_penalty.begin(), s.comm_penalty.end(), 0.0);
      for (size_t j = 0; j < num_jobs; ++j) {
        if (s.job_os[j] <= 0.0 || s.job_single_socket[j] != 0) {
          continue;
        }
        const int first = s.job_first_thread[j];
        const int last = first + s.job_num_threads[j];
        const double os = s.job_os[j];
        const double l = s.job_l[j];
        const double f_initial = s.job_f_initial[j];
        double total_work = 0.0;
        std::fill(s.socket_work.begin(), s.socket_work.end(), 0.0);
        for (int t = first; t < last; ++t) {
          const double inv = 1.0 / s_overall[t];
          total_work += inv;
          s.socket_work[thread_socket[t]] += inv;
        }
        // The communication term is constant per (job, socket): the remote
        // peer count and the remote-work fraction depend only on the
        // thread's socket. Threads are socket-sorted within a job (see the
        // expansion above), so a one-entry cache recomputes it at most
        // num_sockets times — from the same operands in the same order as
        // the per-thread reference expression, hence the same bits.
        int cur_socket = -1;
        double comm = 0.0;
        for (int t = first; t < last; ++t) {
          const int socket = thread_socket[t];
          if (socket != cur_socket) {
            cur_socket = socket;
            const double lockstep = os * s.remote_peers[t];
            const double remote_work = total_work - s.socket_work[socket];
            const double independent =
                s.job_num_threads[j] * os * (remote_work / total_work);
            comm = l * independent + (1.0 - l) * lockstep;
          }
          // The reference reads the step-1 utilization here; computing it in
          // place from the same operands yields the same bits.
          const double penalty = comm * (f_initial / s_overall[t]);
          s.comm_penalty[t] = penalty;
          s_overall[t] += penalty;
        }
      }
    }

    // Step 3: load balancing, within each job (§5.3). The global extrema of
    // the written slowdowns decide below whether the §5.4 clamp pass can do
    // anything.
    double global_max = 0.0;
    double global_min = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < num_jobs; ++j) {
      const double l = s.job_l[j];
      const int first = s.job_first_thread[j];
      const int last = first + s.job_num_threads[j];
      double s_max = 0.0;
      for (int t = first; t < last; ++t) {
        s_max = std::max(s_max, s_overall[t]);
      }
      const double pull = (1.0 - l) * s_max;
      for (int t = first; t < last; ++t) {
        const double pulled = l * s_overall[t] + pull;
        balance_penalty[t] = pulled - s_overall[t];
        s_overall[t] = pulled;
        global_max = std::max(global_max, pulled);
        global_min = std::min(global_min, pulled);
      }
    }

    // §5.4: bounded by the first iteration's maximal slowdown. The pass
    // only runs when some slowdown actually falls outside [1, ceiling];
    // otherwise every clamp is the identity and skipping it is exact.
    if (iter == 0) {
      slowdown_ceiling = global_max;
    } else if (global_max > slowdown_ceiling || global_min < 1.0) {
      for (int t = 0; t < n_total; ++t) {
        s_overall[t] = std::clamp(s_overall[t], 1.0, slowdown_ceiling);
      }
    }

    // For the first iteration the previous state is the implicit all-ones
    // initial state (s_prev holds stale data then — it is never read), so
    // the delta is "distance moved this iteration" throughout; convergence
    // is still only declared from the second iteration on.
    const double worst_delta =
        MaxRelativeDelta(s_overall, iter == 0 ? nullptr : prev, n_total);
    final_delta = worst_delta;
    // Seeded solves must confirm convergence across two consecutive
    // iterations: a seed that coincides with the Amdahl initial state (a
    // chain that passed through an uncontended sibling hands exactly that
    // back) makes the second iteration reproduce the first within eps
    // while parked at a non-fixed point, and one more genuine map step
    // always exposes that. Cold solves keep the reference criterion.
    const bool below_eps = iter > 0 && worst_delta < options_.convergence_eps;
    if (below_eps && (!seed || prev_below_eps)) {
      converged = true;
    }
    prev_below_eps = below_eps;
    const bool dampened = !converged && iter + 1 >= options_.dampen_after;
    if (trace != nullptr) {
      obs::PredictionIterationTrace iteration_trace;
      iteration_trace.iteration = iterations;
      iteration_trace.max_delta = worst_delta;
      iteration_trace.converged = converged;
      iteration_trace.dampened = dampened;
      iteration_trace.thread_slowdowns.assign(s.s_overall.begin(), s.s_overall.end());
      iteration_trace.thread_bottlenecks.assign(s.bottleneck.begin(),
                                                s.bottleneck.end());
      trace->iterations.push_back(std::move(iteration_trace));
    }
    if (converged) {
      break;
    }

    // Elementwise with the uniform dampening branch hoisted, so both loop
    // versions auto-vectorize.
    for (size_t j = 0; j < num_jobs; ++j) {
      const double f_initial = s.job_f_initial[j];
      const int first = s.job_first_thread[j];
      const int last = first + s.job_num_threads[j];
      if (!dampened) {
        for (int t = first; t < last; ++t) {
          f_start[t] = f_initial * (s_resource[t] / s_overall[t]);
        }
      } else {
        for (int t = first; t < last; ++t) {
          f_start[t] =
              0.5 * (f_initial * (s_resource[t] / s_overall[t]) + f_start[t]);
        }
      }
    }
    if (seed && iter == 0) {
      std::copy(warm->f_start.begin(), warm->f_start.end(), f_start);
    }
  }

  // Scatter the core-major planes back into the ResourceIndex-ordered
  // resource vector (tail entries accumulated there directly), so `load`
  // exports the full combined resource loads. Duplicate cores (jobs sharing
  // a core) rewrite the same combined values — harmless.
  for (int32_t i = 0; i < num_touched_cores; ++i) {
    const int32_t core = tcores[i];
    const double* const cl = &core_load[4 * core];
    load[core] = cl[0];
    load[num_cores + core] = cl[1];
    load[2 * num_cores + core] = cl[2];
    load[3 * num_cores + core] = cl[3];
  }

  // Hand the final iteration-input state to the caller's warm-start seed so
  // an adjacent solve can continue from here.
  if (options_.warm_start && warm != nullptr) {
    warm->f_start.assign(s.f_start.begin(), s.f_start.end());
  }

  if (trace != nullptr) {
    trace->converged = converged || !options_.iterate;
    trace->final_delta = final_delta;
  }
  {
    SolverMetrics& metrics = SolverMetrics::Get();
    metrics.predictions.Increment();
    metrics.total_iterations.Increment(static_cast<uint64_t>(iterations));
    ((converged || !options_.iterate) ? metrics.converged : metrics.non_converged)
        .Increment();
    metrics.iterations_histogram.Observe(static_cast<double>(iterations));
  }

  SolveOutcome outcome;
  outcome.iterations = iterations;
  outcome.converged = converged || !options_.iterate;
  outcome.final_delta = final_delta;
  return outcome;
}

// --- Final per-job predictions (§5.5) ---
void CoSchedulePredictor::AssembleJob(size_t j, const SolverScratch& s,
                                      const SolveOutcome& outcome, double t1,
                                      Prediction* out) const {
  out->amdahl_speedup = s.job_amdahl[j];
  const int first = s.job_first_thread[j];
  const int num_threads = s.job_num_threads[j];
  const int last = first + num_threads;
  // The final thread-utilization factor f_initial / s_overall is computed
  // here rather than in the solver loop: the reference recomputes it after
  // every step, but every intermediate write is either consumed in step 2
  // (recomputed inline there from the same operands) or overwritten, and
  // s_overall does not change after the reference's last write on any exit
  // path.
  const double f_initial = s.job_f_initial[j];
  double harmonic = 0.0;
  out->threads.resize(static_cast<size_t>(num_threads));
  for (int t = first; t < last; ++t) {
    harmonic += 1.0 / s.s_overall[t];
    ThreadPrediction& tp = out->threads[static_cast<size_t>(t - first)];
    tp.location =
        ThreadLocation{s.thread_socket[t], s.thread_core[t], s.thread_slot[t]};
    tp.resource_slowdown = s.s_resource[t];
    tp.comm_penalty = s.comm_penalty[t];
    tp.balance_penalty = s.balance_penalty[t];
    tp.overall_slowdown = s.s_overall[t];
    tp.utilization = f_initial / s.s_overall[t];
    tp.bottleneck = s.bottleneck[t];
  }
  out->speedup = s.job_amdahl[j] * harmonic / num_threads;
  out->time = t1 / out->speedup;
  out->iterations = outcome.iterations;
  out->converged = outcome.converged;
  out->final_delta = outcome.final_delta;
}

}  // namespace pandia
