// Retained reference implementation of the co-scheduling solver.
//
// This is the array-of-structs solver the SoA hot path in co_schedule.cc
// replaced, kept verbatim (minus metrics emission) as the equivalence
// oracle: the production solver must produce byte-identical predictions —
// slowdowns, bottlenecks, final_delta, and per-iteration trace contents —
// in exact mode (PredictionOptions::warm_start off). It allocates freely
// and is linked only by tests and benchmarks; nothing on a serving path
// should call it.
#ifndef PANDIA_SRC_PREDICTOR_REFERENCE_SOLVER_H_
#define PANDIA_SRC_PREDICTOR_REFERENCE_SOLVER_H_

#include <span>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/co_schedule.h"

namespace pandia {

// One joint solve with the reference algorithm. Mirrors
// CoSchedulePredictor::Predict's contract (including trace recording via
// options.common.trace) but never reads or writes warm-start seeds.
CoSchedulePrediction ReferenceCoSchedulePredict(
    const MachineDescription& machine, const PredictionOptions& options,
    std::span<const CoScheduleRequest> requests);

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_REFERENCE_SOLVER_H_
