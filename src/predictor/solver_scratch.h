// Reusable solver state for the co-scheduling predictor's hot path.
//
// One CoSchedulePredictor::Predict call needs roughly a dozen working
// arrays whose sizes depend only on the problem shape (threads, jobs,
// resources, sockets, cores). Allocating them per call dominated the cost
// of a single prediction, so the solver keeps them in a SolverScratch arena
// instead: every buffer is resized (grow-only in capacity) at the top of a
// solve and reused across calls. After the first solve of a given shape, a
// solve performs zero heap allocations inside the solver loop — only the
// returned Prediction owns freshly allocated vectors.
//
// Layout: a thread's demand list factors into a fixed-width per-core part
// (core issue + L1 + L2 + L3 port, rates shared by every thread of the
// job) and a per-(job, socket) "tail" (L3 aggregate + DRAM + interconnect
// entries, identical for all of the job's threads on that socket). The
// tails are a small CSR structure-of-arrays (tail_offset / tail_res /
// tail_rate) built once per solve, so the iteration loop walks flat
// contiguous arrays and shares the tail work across threads. The previous
// iteration's slowdowns live in a second buffer (s_prev) that is swapped —
// not copied — with s_overall at the top of each iteration.
//
// Lifetime rules: a SolverScratch may be reused across solves of any shape
// and any CoSchedulePredictor, but never concurrently — callers either own
// one per thread or use the solver's built-in thread-local arena (the
// default Predict path). Contents are meaningless between calls; only
// capacity is retained.
#ifndef PANDIA_SRC_PREDICTOR_SOLVER_SCRATCH_H_
#define PANDIA_SRC_PREDICTOR_SOLVER_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pandia {

struct WorkloadDescription;
class Placement;

// One job's inputs by pointer — the solver core reads (workload, placement)
// pairs through these so single-job callers can pass a stack array instead
// of materializing a CoScheduleRequest (whose by-value Placement would cost
// an allocation per call).
struct SolverJobRef {
  const WorkloadDescription* workload = nullptr;
  const Placement* placement = nullptr;
};

struct SolverScratch {
  // --- per-thread state (SoA) ---
  std::vector<int32_t> thread_socket;
  std::vector<int32_t> thread_core;
  std::vector<int32_t> thread_slot;
  std::vector<int32_t> remote_peers;
  std::vector<double> f_start;
  std::vector<double> s_overall;
  std::vector<double> s_prev;  // last iteration's s_overall (swapped, not copied)
  std::vector<double> s_resource;
  std::vector<double> comm_penalty;
  std::vector<double> balance_penalty;
  std::vector<int> bottleneck;

  // --- per-job state (SoA) ---
  std::vector<int32_t> job_first_thread;
  std::vector<int32_t> job_num_threads;
  std::vector<double> job_amdahl;
  std::vector<double> job_f_initial;
  std::vector<double> job_os;
  std::vector<double> job_l;
  std::vector<double> job_b;
  std::vector<uint8_t> job_single_socket;  // per job: all threads on one socket
  // Per-core demand rates {instr, l1, l2, l3}, 4 per job, plus 0/1 flags for
  // which of the four are > 0 (zero-rate entries must not join the
  // bottleneck scan: the resource may be oversubscribed by another job).
  std::vector<double> job_core_rates;
  std::vector<uint8_t> job_core_mask;

  // Per-(job, socket) demand tails: the socket-dependent entries (L3
  // aggregate, DRAM channels, interconnect links) shared by every thread of
  // job j on socket s. CSR over the flattened (job, socket) index.
  std::vector<int32_t> tail_offset;  // size num_jobs * num_sockets + 1
  std::vector<int32_t> tail_res;
  std::vector<double> tail_rate;
  // Per-iteration max contention factor (and its resource) within each
  // tail, shared by all threads of that (job, socket).
  std::vector<double> tail_max;
  std::vector<int32_t> tail_arg;

  // --- per-resource / per-core / per-socket ---
  // The four per-core planes (core issue, L1, L2, L3 port) accumulate in a
  // core-major mirror (core_load[4 * core + k], with caps4 mirroring the
  // matching capacities) so a thread's per-core demand occupies one
  // contiguous 32-byte block — the accumulate / zero / scan loops touch one
  // cache line per core instead of four plane-strided ones. The socket-level
  // tail entries accumulate directly in `load` (ResourceIndex order), and
  // the core planes are scattered back into `load` once per solve, so
  // `load` still exports the full resource vector.
  std::vector<double> load;
  std::vector<double> core_load;
  std::vector<double> caps;
  std::vector<double> caps4;
  std::vector<uint8_t> combined_per_core;
  std::vector<double> socket_work;
  std::vector<uint8_t> active_sockets;      // current job's active-socket flags
  std::vector<int32_t> job_socket_threads;  // current job's threads per socket

  // Distinct tail resources referenced by any demand entry (indices into
  // `load`), plus the occupied cores (indices into `core_load` / `load`'s
  // core planes; may repeat a core once per job sharing it). Iterations
  // zero and refresh only these instead of sweeping the full resource
  // vector. resource_seen holds the epoch of the last solve that touched
  // the tail entry, so no per-solve clear is needed.
  std::vector<int32_t> resource_touched;
  std::vector<int32_t> touched_cores;
  std::vector<uint32_t> resource_seen;
  uint32_t seen_epoch = 0;
  int32_t num_touched = 0;
  int32_t num_touched_cores = 0;
  // True while comm_penalty is known to be all-zero (resizing preserves
  // this: shrink keeps the zero prefix, growth value-initializes).
  bool comm_penalty_zeroed = false;

  // Row buffer for MemoryNodeWeightsInto (num_sockets entries).
  std::vector<double> memory_weights;

  // Capacity memo key: the caps vector is a pure function of the topology
  // dims, the eight capacity scalars, and the per-core SMT mask. When all
  // of these match the previous solve, CapacitiesInto is skipped.
  std::vector<uint8_t> caps_key_mask;
  double caps_key_scalars[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int32_t caps_key_dims[3] = {-1, -1, -1};

  // Job input pointers for the multi-request entry point.
  std::vector<SolverJobRef> job_refs;

  // Shape of the last solve. When it matches, the per-solve sizing pass is
  // skipped entirely.
  int64_t shape_jobs = -1;
  int64_t shape_threads = -1;
  int64_t shape_cores = -1;
  int64_t shape_sockets = -1;
  int64_t shape_resources = -1;

  // Incremented whenever any buffer's capacity grows. Steady-state solves of
  // a shape already seen leave it unchanged — the zero-allocation property
  // the equivalence tests pin down.
  uint64_t grow_events = 0;

  // Grows `v` to exactly `n` elements, counting capacity growth.
  template <typename T>
  void Size(std::vector<T>& v, std::size_t n) {
    if (v.size() == n) {
      return;
    }
    if (v.capacity() < n) {
      ++grow_events;
    }
    v.resize(n);
  }
};

// Warm-start seed for incremental re-prediction: the utilization-iteration
// input state (f_start) a previous solve converged with. A seeded solve
// still runs its first iteration from the Amdahl initial state (that
// iteration sets the §5.4 slowdown ceiling, which must match the cold
// solve's), then continues from the converged neighbour — reaching the
// fixed point in far fewer iterations than a full cold trajectory when the
// cold solve needs many.
//
// Invalidation rules: a seed is only applied when its thread count matches
// the new problem's total thread count exactly — otherwise the solve cold-
// starts and the seed is overwritten by the new converged state. A seed
// bitwise-equal to the Amdahl initial state also counts as cold (it
// carries no information). Seeds must never be carried across machines,
// workloads, or solver options (the warm_start flag is part of the context
// fingerprint, and callers that chain seeds do so within one ranking or
// one rack machine only). Seeded solves confirm convergence over two
// consecutive below-eps iterations and stop in the same convergence
// plateau as cold solves (speedups typically within ~1%), but are not
// byte-identical; the exact-mode default never reads a seed (see
// PredictionOptions::warm_start).
struct SolverWarmStart {
  std::vector<double> f_start;
  // Solves seeded (thread counts matched) vs cold-started through this
  // seed, for callers that want to report reuse rates.
  uint64_t seeded = 0;
  uint64_t cold = 0;
};

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_SOLVER_SCRATCH_H_
