// Heterogeneous thread groups — the §6.4 limitation, addressed the way the
// paper suggests: "We suspect that more heterogeneous workloads could be
// considered by identifying groups of threads through profiling. In
// practice ... it may be more productive to expose thread groupings
// explicitly in software."
//
// A grouped workload is a set of named thread groups (e.g. a scan group
// feeding an aggregation group), each profiled separately into its own
// workload description. Prediction runs the groups jointly through the
// co-scheduling engine; for pipeline-structured applications the end-to-end
// rate is the slowest group's rate, so the optimizer searches the splits of
// the machine between groups for the best balanced rate.
#ifndef PANDIA_SRC_PREDICTOR_GROUPED_H_
#define PANDIA_SRC_PREDICTOR_GROUPED_H_

#include <string>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/co_schedule.h"

namespace pandia {

struct ThreadGroup {
  std::string name;
  WorkloadDescription description;
  // Relative work rate this group must sustain per unit of application
  // progress (a pipeline stage that processes twice the data has weight 2).
  double weight = 1.0;
};

struct GroupedPrediction {
  std::vector<Prediction> groups;  // one per group, in group order
  // End-to-end pipeline rate: min over groups of speedup / weight.
  double pipeline_rate = 0.0;
  int bottleneck_group = 0;
};

class GroupedWorkloadPredictor {
 public:
  GroupedWorkloadPredictor(MachineDescription machine, std::vector<ThreadGroup> groups,
                           PredictionOptions options = {});

  // Predicts the groups under explicit placements (one per group; cores may
  // overlap, e.g. SMT-sharing a producer with its consumer).
  GroupedPrediction Predict(std::span<const Placement> placements) const;

  // Searches splits of the whole machine between the groups (disjoint
  // cores, spread and packed variants, every thread-count partition at
  // one-per-core granularity) for the best pipeline rate. Returns the
  // per-group placements.
  std::vector<Placement> OptimizeSplit() const;

  const std::vector<ThreadGroup>& groups() const { return groups_; }

 private:
  MachineDescription machine_;
  std::vector<ThreadGroup> groups_;
  PredictionOptions options_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_GROUPED_H_
