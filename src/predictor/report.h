// Human-readable prediction reports in the style of the paper's worked
// example (Figure 7): per-thread slowdown decomposition — resource
// contention, communication penalty, load-balance penalty — plus the named
// bottleneck resource, utilizations, and the final speedup.
#ifndef PANDIA_SRC_PREDICTOR_REPORT_H_
#define PANDIA_SRC_PREDICTOR_REPORT_H_

#include <string>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/predictor.h"
#include "src/topology/placement.h"

namespace pandia {

// Renders the prediction as a table. Threads with identical locations-class
// and penalties are folded into one row with a multiplicity column, so full
// 72-thread placements stay readable.
std::string ExplainPrediction(const MachineDescription& machine,
                              const Placement& placement,
                              const Prediction& prediction);

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_REPORT_H_
