// Co-scheduling prediction — the extension the paper sketches as future
// work (§8): "We believe Pandia's prediction of resource consumption as
// well as overall workload performance will let us handle cases with
// multiple workloads sharing a machine."
//
// The iterative model of §5 generalizes directly: all jobs' threads route
// their utilization-scaled demands onto the shared resource vector; each
// thread's slowdown is its worst oversubscription factor; burstiness
// applies per core occupancy across jobs; communication and load-balancing
// penalties apply within each job; utilization feedback runs globally until
// the joint prediction converges. Predicting one job reduces exactly to the
// single-workload model, and Predictor::Predict is implemented on top of
// this engine.
#ifndef PANDIA_SRC_PREDICTOR_CO_SCHEDULE_H_
#define PANDIA_SRC_PREDICTOR_CO_SCHEDULE_H_

#include <span>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/predictor.h"
#include "src/topology/placement.h"
#include "src/workload_desc/description.h"

namespace pandia {

struct CoScheduleRequest {
  const WorkloadDescription* workload = nullptr;
  Placement placement;
};

struct CoSchedulePrediction {
  // One prediction per request, in request order: each job's speedup is
  // relative to its own t1, accounting for interference from every other
  // job.
  std::vector<Prediction> jobs;
  // Combined load on every resource (ResourceIndex order).
  std::vector<double> resource_load;
};

class CoSchedulePredictor {
 public:
  explicit CoSchedulePredictor(MachineDescription machine,
                               PredictionOptions options = {});

  // Jointly predicts the given jobs. All placements must match the machine
  // description's topology shape; cores may be shared between jobs.
  CoSchedulePrediction Predict(std::span<const CoScheduleRequest> requests) const;

  const MachineDescription& machine() const { return machine_; }

 private:
  MachineDescription machine_;
  PredictionOptions options_;
  ResourceIndex index_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_CO_SCHEDULE_H_
