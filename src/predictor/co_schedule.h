// Co-scheduling prediction — the extension the paper sketches as future
// work (§8): "We believe Pandia's prediction of resource consumption as
// well as overall workload performance will let us handle cases with
// multiple workloads sharing a machine."
//
// The iterative model of §5 generalizes directly: all jobs' threads route
// their utilization-scaled demands onto the shared resource vector; each
// thread's slowdown is its worst oversubscription factor; burstiness
// applies per core occupancy across jobs; communication and load-balancing
// penalties apply within each job; utilization feedback runs globally until
// the joint prediction converges. Predicting one job reduces exactly to the
// single-workload model, and Predictor::Predict is implemented on top of
// this engine.
#ifndef PANDIA_SRC_PREDICTOR_CO_SCHEDULE_H_
#define PANDIA_SRC_PREDICTOR_CO_SCHEDULE_H_

#include <span>
#include <vector>

#include "src/machine_desc/machine_description.h"
#include "src/predictor/predictor.h"
#include "src/predictor/solver_scratch.h"
#include "src/topology/placement.h"
#include "src/workload_desc/description.h"

namespace pandia {

struct CoScheduleRequest {
  const WorkloadDescription* workload = nullptr;
  Placement placement;
};

struct CoSchedulePrediction {
  // One prediction per request, in request order: each job's speedup is
  // relative to its own t1, accounting for interference from every other
  // job.
  std::vector<Prediction> jobs;
  // Combined load on every resource (ResourceIndex order).
  std::vector<double> resource_load;
};

class CoSchedulePredictor {
 public:
  explicit CoSchedulePredictor(MachineDescription machine,
                               PredictionOptions options = {});

  // Jointly predicts the given jobs. All placements must match the machine
  // description's topology shape; cores may be shared between jobs.
  //
  // Uses a thread-local SolverScratch arena: after the first call of a
  // given problem shape on a thread, the solver performs no heap
  // allocations (the returned CoSchedulePrediction still owns its vectors).
  CoSchedulePrediction Predict(std::span<const CoScheduleRequest> requests) const;

  // Warm-started variant: when options().warm_start is set and the seed's
  // thread count matches, the fixed-point iteration starts from `warm`'s
  // converged state instead of the Amdahl initial state; the converged
  // state of this solve is written back to `warm` either way. With the
  // option off or `warm` null this is exactly Predict() — byte-identical
  // to the reference solver. See SolverWarmStart for invalidation rules.
  CoSchedulePrediction Predict(std::span<const CoScheduleRequest> requests,
                               SolverWarmStart* warm) const;

  // Caller-passed-arena variant for callers that manage scratch lifetime
  // themselves (tests, long-lived services). `scratch` must not be used
  // concurrently.
  CoSchedulePrediction PredictWithScratch(std::span<const CoScheduleRequest> requests,
                                          SolverScratch& scratch,
                                          SolverWarmStart* warm) const;

  // Allocation-free output-param variant: identical results to
  // Predict(requests, warm), but written into *out, reusing its vectors'
  // capacity. Callers that score many candidates in a loop (the rack's
  // admission probes) keep one CoSchedulePrediction alive and stop paying
  // a result-vector allocation per call.
  void PredictInto(std::span<const CoScheduleRequest> requests,
                   SolverWarmStart* warm, CoSchedulePrediction* out) const;

  // Output-param form of PredictOne; same reuse contract as PredictInto.
  void PredictOneInto(const WorkloadDescription& workload, const Placement& placement,
                      SolverWarmStart* warm, Prediction* out) const;

  // Single-job fast path: byte-identical to Predict() on a one-element
  // request span, but reads the placement by reference and assembles the
  // Prediction directly, skipping the CoSchedulePrediction wrapper and its
  // duplicate resource_load vector. This is the path Predictor::Predict
  // rides.
  Prediction PredictOne(const WorkloadDescription& workload, const Placement& placement,
                        SolverWarmStart* warm = nullptr) const;

  const MachineDescription& machine() const { return machine_; }
  const PredictionOptions& options() const { return options_; }

 private:
  struct SolveOutcome {
    int iterations = 0;
    bool converged = false;
    double final_delta = 0.0;
  };

  // Runs assembly plus the iterative model, leaving the converged per-thread
  // state (s_overall, s_resource, penalties, bottleneck) and the final
  // resource loads in `s`.
  SolveOutcome Solve(std::span<const SolverJobRef> jobs, SolverScratch& s,
                     SolverWarmStart* warm) const;

  // The shared core of PredictWithScratch / PredictInto: solves and writes
  // the joint prediction into *out (resize/assign, capacity reused).
  void PredictIntoWithScratch(std::span<const CoScheduleRequest> requests,
                              SolverScratch& scratch, SolverWarmStart* warm,
                              CoSchedulePrediction* out) const;

  // Builds job j's Prediction from the solved scratch state. Does not fill
  // Prediction::resource_load; callers assign it from s.load.
  void AssembleJob(size_t j, const SolverScratch& s, const SolveOutcome& outcome,
                   double t1, Prediction* out) const;

  MachineDescription machine_;
  PredictionOptions options_;
  ResourceIndex index_;
};

}  // namespace pandia

#endif  // PANDIA_SRC_PREDICTOR_CO_SCHEDULE_H_
