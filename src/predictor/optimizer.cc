#include "src/predictor/optimizer.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/parallel_metrics.h"
#include "src/obs/trace.h"
#include "src/predictor/prediction_cache.h"
#include "src/topology/enumerate.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace pandia {
namespace {

StatusOr<std::vector<Placement>> CandidatePlacements(const MachineTopology& topo,
                                                     const OptimizerOptions& options) {
  const obs::TraceSpan span("optimizer.candidates");
  // Reproducibility metrics: with these plus the constraint, a sweep's exact
  // candidate set can be reconstructed from logs alone.
  static obs::Gauge& space_size =
      obs::MetricsRegistry::Global().gauge("optimizer.space_size");
  static obs::Gauge& sampled =
      obs::MetricsRegistry::Global().gauge("optimizer.sampled");
  static obs::Gauge& sample_seed =
      obs::MetricsRegistry::Global().gauge("optimizer.sample_seed");
  static obs::Gauge& sample_count =
      obs::MetricsRegistry::Global().gauge("optimizer.sample_count");
  static obs::Counter& exhaustive_runs =
      obs::MetricsRegistry::Global().counter("optimizer.exhaustive_runs");
  static obs::Counter& sampled_runs =
      obs::MetricsRegistry::Global().counter("optimizer.sampled_runs");

  const uint64_t space = CountCanonicalPlacements(topo);
  space_size.Set(static_cast<double>(space));
  std::vector<Placement> candidates;
  if (space <= options.exhaustive_limit) {
    sampled.Set(0.0);
    exhaustive_runs.Increment();
    candidates = EnumerateCanonicalPlacements(topo);
    if (options.constraint) {
      std::erase_if(candidates,
                    [&](const Placement& p) { return !options.constraint(p); });
    }
  } else {
    sampled.Set(1.0);
    sample_seed.Set(static_cast<double>(options.sample_seed));
    sample_count.Set(static_cast<double>(options.sample_count));
    sampled_runs.Increment();
    candidates = SampleCanonicalPlacements(topo, options.sample_count,
                                           options.sample_seed, options.constraint);
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no placements satisfy the constraint");
  }
  return candidates;
}

obs::Counter& PlacementsEvaluatedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("optimizer.placements_evaluated");
  return counter;
}

// Predicts every candidate, fanning out across options.common.jobs workers. Each
// prediction lands in the slot matching its candidate index, so the result
// vector is identical to a serial loop regardless of job count.
//
// With PredictionOptions::warm_start set the predict stage instead runs
// serially, chaining a SolverWarmStart seed through the candidates in their
// deterministic enumeration/sample order: canonical enumeration emits long
// runs of same-thread-count siblings, so most solves start from an adjacent
// converged state. Warm results are within convergence_eps of cold ones but
// not byte-identical, so the cache is bypassed (the flag splits the context
// fingerprint as well).
std::vector<Prediction> PredictCandidates(const Predictor& predictor,
                                          const std::vector<Placement>& candidates,
                                          const OptimizerOptions& options) {
  obs::InstallParallelMetrics();
  PlacementsEvaluatedCounter().Increment(candidates.size());
  std::vector<Prediction> predictions(candidates.size());
  if (predictor.options().warm_start) {
    SolverWarmStart warm;
    for (size_t i = 0; i < candidates.size(); ++i) {
      predictions[i] = predictor.PredictWarm(candidates[i], &warm);
    }
    static obs::Counter& warm_ranked =
        obs::MetricsRegistry::Global().counter("optimizer.warm_ranked");
    warm_ranked.Increment(candidates.size());
  } else {
    PredictionCache* cache =
        options.common.use_cache ? &PredictionCache::Global() : nullptr;
    util::ParallelFor(candidates.size(), options.common.jobs, [&](size_t i) {
      predictions[i] = PredictCached(predictor, candidates[i], cache);
    });
  }
  // Divergent solves keep their slot (the ranking stays deterministic and
  // complete) but are surfaced: counted here, flagged in reports, and never
  // memoized (see PredictCached).
  uint64_t non_converged = 0;
  for (const Prediction& prediction : predictions) {
    if (!prediction.converged) {
      ++non_converged;
    }
  }
  if (non_converged > 0) {
    static obs::Counter& counter =
        obs::MetricsRegistry::Global().counter("optimizer.non_converged_ranked");
    counter.Increment(non_converged);
  }
  return predictions;
}

}  // namespace

std::function<bool(const Placement&)> NoSmtConstraint() {
  return [](const Placement& placement) {
    for (const SocketLoad& load : placement.SocketLoads()) {
      if (load.doubles > 0) {
        return false;
      }
    }
    return true;
  };
}

std::function<bool(const Placement&)> MaxSocketsConstraint(int max_sockets) {
  PANDIA_CHECK(max_sockets > 0);
  return [max_sockets](const Placement& placement) {
    return placement.NumActiveSockets() <= max_sockets;
  };
}

std::function<bool(const Placement&)> MaxThreadsConstraint(int max_threads) {
  PANDIA_CHECK(max_threads > 0);
  return [max_threads](const Placement& placement) {
    return placement.TotalThreads() <= max_threads;
  };
}

RankedPlacement FindBestPlacement(const Predictor& predictor,
                                  const OptimizerOptions& options) {
  std::vector<RankedPlacement> ranked = RankPlacements(predictor, 1, options);
  PANDIA_CHECK(!ranked.empty());
  return std::move(ranked.front());
}

std::vector<RankedPlacement> RankPlacements(const Predictor& predictor, size_t top_k,
                                            const OptimizerOptions& options) {
  StatusOr<std::vector<RankedPlacement>> ranked =
      TryRankPlacements(predictor, top_k, options);
  PANDIA_CHECK_MSG(ranked.ok(), ranked.status().message().c_str());
  return std::move(*ranked);
}

StatusOr<RankedPlacement> TryFindBestPlacement(const Predictor& predictor,
                                               const OptimizerOptions& options) {
  StatusOr<std::vector<RankedPlacement>> ranked =
      TryRankPlacements(predictor, 1, options);
  PANDIA_RETURN_IF_ERROR(ranked.status());
  PANDIA_CHECK(!ranked->empty());
  return std::move(ranked->front());
}

StatusOr<std::vector<RankedPlacement>> TryRankPlacements(
    const Predictor& predictor, size_t top_k, const OptimizerOptions& options) {
  if (top_k == 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  const obs::TraceSpan span("optimizer.rank");
  StatusOr<std::vector<Placement>> candidates_or =
      CandidatePlacements(predictor.machine().topo, options);
  PANDIA_RETURN_IF_ERROR(candidates_or.status());
  std::vector<Placement>& candidates = *candidates_or;
  std::vector<Prediction> predictions =
      PredictCandidates(predictor, candidates, options);
  std::vector<RankedPlacement> ranked;
  ranked.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ranked.push_back(
        RankedPlacement{std::move(candidates[i]), std::move(predictions[i])});
  }
  // Stable sort with candidates in their deterministic enumeration/sample
  // order: speedup ties resolve to the earlier candidate, so the ranking is
  // reproducible across runs and identical at every job count.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedPlacement& a, const RankedPlacement& b) {
                     return a.prediction.speedup > b.prediction.speedup;
                   });
  if (ranked.size() > top_k) {
    ranked.erase(ranked.begin() + static_cast<ptrdiff_t>(top_k), ranked.end());
  }
  return ranked;
}

StatusOr<RankedPlacement> TryFindCheapestPlacement(const Predictor& predictor,
                                                   double target_fraction,
                                                   const OptimizerOptions& options) {
  if (!(target_fraction > 0.0 && target_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "target_fraction must be in (0, 1]");
  }
  const obs::TraceSpan span("optimizer.cheapest");
  StatusOr<std::vector<Placement>> candidates_or =
      CandidatePlacements(predictor.machine().topo, options);
  PANDIA_RETURN_IF_ERROR(candidates_or.status());
  std::vector<Placement>& candidates = *candidates_or;
  std::vector<Prediction> predictions =
      PredictCandidates(predictor, candidates, options);
  double best_speedup = 0.0;
  std::vector<RankedPlacement> all;
  all.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    all.push_back(
        RankedPlacement{std::move(candidates[i]), std::move(predictions[i])});
    best_speedup = std::max(best_speedup, all.back().prediction.speedup);
  }
  const double target = best_speedup * target_fraction;
  std::optional<RankedPlacement> cheapest;
  auto cost_less = [](const RankedPlacement& a, const RankedPlacement& b) {
    if (a.placement.TotalThreads() != b.placement.TotalThreads()) {
      return a.placement.TotalThreads() < b.placement.TotalThreads();
    }
    if (a.placement.NumActiveSockets() != b.placement.NumActiveSockets()) {
      return a.placement.NumActiveSockets() < b.placement.NumActiveSockets();
    }
    return a.prediction.speedup > b.prediction.speedup;
  };
  for (RankedPlacement& candidate : all) {
    if (candidate.prediction.speedup + 1e-12 < target) {
      continue;
    }
    if (!cheapest.has_value() || cost_less(candidate, *cheapest)) {
      cheapest = std::move(candidate);
    }
  }
  // The best candidate always meets its own target, so a non-empty
  // candidate set guarantees a result.
  PANDIA_CHECK(cheapest.has_value());
  return *std::move(cheapest);
}

std::optional<RankedPlacement> FindCheapestPlacement(const Predictor& predictor,
                                                     double target_fraction,
                                                     const OptimizerOptions& options) {
  StatusOr<RankedPlacement> cheapest =
      TryFindCheapestPlacement(predictor, target_fraction, options);
  PANDIA_CHECK_MSG(cheapest.ok(), cheapest.status().message().c_str());
  return *std::move(cheapest);
}

}  // namespace pandia
