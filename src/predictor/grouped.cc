#include "src/predictor/grouped.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "src/util/check.h"

namespace pandia {
namespace {

// Splits `total` cores between two contiguous runs of the core list in
// every proportion; for more than two groups, recurses on the remainder.
// Placements are one thread per core or two per core (packed variant).
void EnumerateSplits(const MachineTopology& topo, int group,
                     int first_core, int cores_left, int num_groups,
                     std::vector<std::pair<int, bool>>& current,
                     std::vector<std::vector<std::pair<int, bool>>>& out) {
  const int groups_left = num_groups - group;
  if (groups_left == 1) {
    for (const bool packed : {false, true}) {
      current[group] = {cores_left, packed};
      out.push_back(current);
    }
    return;
  }
  // Leave at least one core per remaining group.
  for (int take = 1; take <= cores_left - (groups_left - 1); ++take) {
    for (const bool packed : {false, true}) {
      current[group] = {take, packed};
      EnumerateSplits(topo, group + 1, first_core + take, cores_left - take,
                      num_groups, current, out);
    }
  }
}

}  // namespace

GroupedWorkloadPredictor::GroupedWorkloadPredictor(MachineDescription machine,
                                                   std::vector<ThreadGroup> groups,
                                                   PredictionOptions options)
    : machine_(std::move(machine)), groups_(std::move(groups)), options_(options) {
  PANDIA_CHECK(!groups_.empty());
  for (const ThreadGroup& group : groups_) {
    PANDIA_CHECK_MSG(group.weight > 0.0, "group weight must be positive");
  }
}

GroupedPrediction GroupedWorkloadPredictor::Predict(
    std::span<const Placement> placements) const {
  PANDIA_CHECK(placements.size() == groups_.size());
  std::vector<CoScheduleRequest> requests;
  requests.reserve(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    requests.push_back(CoScheduleRequest{&groups_[g].description, placements[g]});
  }
  const CoSchedulePredictor engine(machine_, options_);
  CoSchedulePrediction joint = engine.Predict(requests);

  GroupedPrediction result;
  result.pipeline_rate = std::numeric_limits<double>::infinity();
  for (size_t g = 0; g < groups_.size(); ++g) {
    const double rate = joint.jobs[g].speedup / groups_[g].weight;
    if (rate < result.pipeline_rate) {
      result.pipeline_rate = rate;
      result.bottleneck_group = static_cast<int>(g);
    }
  }
  result.groups = std::move(joint.jobs);
  return result;
}

std::vector<Placement> GroupedWorkloadPredictor::OptimizeSplit() const {
  const MachineTopology& topo = machine_.topo;
  const int num_groups = static_cast<int>(groups_.size());
  PANDIA_CHECK_MSG(num_groups <= topo.NumCores(),
                   "more groups than cores to split");

  std::vector<std::vector<std::pair<int, bool>>> splits;
  std::vector<std::pair<int, bool>> current(static_cast<size_t>(num_groups));
  EnumerateSplits(topo, 0, 0, topo.NumCores(), num_groups, current, splits);

  std::optional<std::vector<Placement>> best;
  double best_rate = 0.0;
  for (const auto& split : splits) {
    std::vector<Placement> placements;
    placements.reserve(split.size());
    int core = 0;
    for (const auto& [cores, packed] : split) {
      std::vector<uint8_t> per_core(static_cast<size_t>(topo.NumCores()), 0);
      for (int i = 0; i < cores; ++i) {
        per_core[core + i] = packed ? 2 : 1;
      }
      core += cores;
      placements.emplace_back(topo, std::move(per_core));
    }
    const GroupedPrediction prediction = Predict(placements);
    if (prediction.pipeline_rate > best_rate) {
      best_rate = prediction.pipeline_rate;
      best = std::move(placements);
    }
  }
  PANDIA_CHECK(best.has_value());
  return std::move(*best);
}

}  // namespace pandia
