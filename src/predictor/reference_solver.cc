#include "src/predictor/reference_solver.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/obs/prediction_trace.h"
#include "src/topology/memory_policy.h"
#include "src/topology/resource_index.h"
#include "src/util/check.h"

namespace pandia {
namespace {

// Per-thread static state assembled from the requests.
struct ModelThread {
  int job = 0;
  ThreadLocation location;
  std::vector<std::pair<int, double>> demand;  // (resource, rate per utilization)
  int remote_peers = 0;                        // same-job peers on other sockets
};

struct ModelJob {
  const WorkloadDescription* workload = nullptr;
  int first_thread = 0;
  int num_threads = 0;
  double amdahl = 1.0;
  double f_initial = 1.0;
  double os = 0.0;
  double l = 1.0;
  double b = 0.0;
};

}  // namespace

CoSchedulePrediction ReferenceCoSchedulePredict(
    const MachineDescription& machine, const PredictionOptions& options,
    std::span<const CoScheduleRequest> requests) {
  PANDIA_CHECK(!requests.empty());
  obs::PredictionTrace* trace = options.common.trace;
  if (trace != nullptr) {
    trace->Clear();
  }
  const MachineTopology& topo = machine.topo;
  const ResourceIndex index(topo);

  // --- Assemble jobs and threads ---
  std::vector<ModelJob> jobs;
  std::vector<ModelThread> threads;
  std::vector<uint8_t> combined_per_core(static_cast<size_t>(topo.NumCores()), 0);
  for (const CoScheduleRequest& request : requests) {
    PANDIA_CHECK(request.workload != nullptr);
    PANDIA_CHECK(request.workload->t1 > 0.0);
    const MachineTopology& placement_topo = request.placement.topology();
    PANDIA_CHECK_MSG(placement_topo.num_sockets == topo.num_sockets &&
                         placement_topo.cores_per_socket == topo.cores_per_socket &&
                         placement_topo.threads_per_core == topo.threads_per_core,
                     "placement topology does not match machine description");
    for (int c = 0; c < topo.NumCores(); ++c) {
      combined_per_core[c] =
          static_cast<uint8_t>(combined_per_core[c] + request.placement.ThreadsOnCore(c));
    }
  }
  for (const CoScheduleRequest& request : requests) {
    const WorkloadDescription& workload = *request.workload;
    ModelJob job;
    job.workload = &workload;
    job.first_thread = static_cast<int>(threads.size());
    job.num_threads = request.placement.TotalThreads();
    const double p = workload.parallel_fraction;
    PANDIA_CHECK(p >= 0.0 && p <= 1.0);
    job.amdahl = 1.0 / ((1.0 - p) + p / job.num_threads);
    job.f_initial = job.amdahl / job.num_threads;
    job.os = options.model_communication ? workload.inter_socket_overhead : 0.0;
    job.l = options.model_load_balance ? workload.load_balance : 1.0;
    PANDIA_CHECK(job.l >= 0.0 && job.l <= 1.0);
    job.b = options.model_burstiness ? workload.burstiness : 0.0;

    const std::vector<ThreadLocation> locations = request.placement.ThreadLocations();
    std::vector<bool> active_sockets(static_cast<size_t>(topo.num_sockets), false);
    for (const ThreadLocation& loc : locations) {
      active_sockets[loc.socket] = true;
    }
    const int home_socket = locations.front().socket;
    const ResourceDemandVector& d = workload.demands;
    for (const ThreadLocation& loc : locations) {
      ModelThread thread;
      thread.job = static_cast<int>(jobs.size());
      thread.location = loc;
      if (d.instr_rate > 0.0) {
        thread.demand.emplace_back(index.Core(loc.core), d.instr_rate);
      }
      if (d.l1_bw > 0.0) {
        thread.demand.emplace_back(index.L1(loc.core), d.l1_bw);
      }
      if (d.l2_bw > 0.0) {
        thread.demand.emplace_back(index.L2(loc.core), d.l2_bw);
      }
      if (d.l3_bw > 0.0) {
        thread.demand.emplace_back(index.L3Port(loc.core), d.l3_bw);
        thread.demand.emplace_back(index.L3Agg(loc.socket), d.l3_bw);
      }
      const double dram_total = d.dram_total_bw();
      if (dram_total > 0.0) {
        const std::vector<double> weights =
            MemoryNodeWeights(workload.memory_policy, topo.num_sockets, active_sockets,
                              loc.socket, home_socket);
        for (int m = 0; m < topo.num_sockets; ++m) {
          if (weights[m] <= 0.0) {
            continue;
          }
          thread.demand.emplace_back(index.Dram(m), dram_total * weights[m]);
          if (m != loc.socket) {
            thread.demand.emplace_back(index.Link(loc.socket, m),
                                       dram_total * weights[m]);
          }
        }
      }
      for (const ThreadLocation& peer : locations) {
        if (&peer != &loc && peer.socket != loc.socket) {
          ++thread.remote_peers;
        }
      }
      threads.push_back(std::move(thread));
    }
    jobs.push_back(job);
  }
  const int n_total = static_cast<int>(threads.size());
  const std::vector<double> caps = machine.Capacities(combined_per_core);

  // --- Iterative joint model (§5, generalized over jobs) ---
  std::vector<double> f_start(n_total);
  std::vector<double> s_overall(n_total, 1.0);
  std::vector<double> s_resource(n_total, 1.0);
  std::vector<double> comm_penalty(n_total, 0.0);
  std::vector<double> balance_penalty(n_total, 0.0);
  std::vector<double> utilization(n_total);
  std::vector<int> bottleneck(n_total, -1);
  std::vector<double> load(static_cast<size_t>(index.Count()), 0.0);
  for (int t = 0; t < n_total; ++t) {
    f_start[t] = jobs[threads[t].job].f_initial;
    utilization[t] = f_start[t];
  }

  double slowdown_ceiling = 0.0;
  int iterations = 0;
  bool converged = false;
  double final_delta = 0.0;
  const int max_iterations = options.iterate ? options.max_iterations : 1;

  for (int iter = 0; iter < max_iterations; ++iter) {
    ++iterations;
    const std::vector<double> prev = s_overall;

    // Step 1: resource contention, including cross-job load (§5.1).
    std::fill(load.begin(), load.end(), 0.0);
    for (int t = 0; t < n_total; ++t) {
      for (const auto& [resource, amount] : threads[t].demand) {
        load[resource] += amount * f_start[t];
      }
    }
    for (int t = 0; t < n_total; ++t) {
      const ModelJob& job = jobs[threads[t].job];
      double worst = 1.0;
      int worst_resource = -1;
      for (const auto& [resource, amount] : threads[t].demand) {
        const double factor = load[resource] / caps[resource];
        if (factor > worst) {
          worst = factor;
          worst_resource = resource;
        }
      }
      if (combined_per_core[threads[t].location.core] > 1 && job.b > 0.0) {
        worst *= 1.0 + job.b * f_start[t];
      }
      s_resource[t] = worst;
      bottleneck[t] = worst_resource;
      s_overall[t] = worst;
      utilization[t] = job.f_initial / s_overall[t];
    }

    // Step 2: off-socket communication, within each job (§5.2).
    std::fill(comm_penalty.begin(), comm_penalty.end(), 0.0);
    for (const ModelJob& job : jobs) {
      if (job.os <= 0.0) {
        continue;
      }
      double total_work = 0.0;
      std::vector<double> socket_work(static_cast<size_t>(topo.num_sockets), 0.0);
      for (int t = job.first_thread; t < job.first_thread + job.num_threads; ++t) {
        total_work += 1.0 / s_overall[t];
        socket_work[threads[t].location.socket] += 1.0 / s_overall[t];
      }
      for (int t = job.first_thread; t < job.first_thread + job.num_threads; ++t) {
        const double lockstep = job.os * threads[t].remote_peers;
        const double remote_work =
            total_work - socket_work[threads[t].location.socket];
        const double independent =
            job.num_threads * job.os * (remote_work / total_work);
        const double comm = job.l * independent + (1.0 - job.l) * lockstep;
        comm_penalty[t] = comm * utilization[t];
        s_overall[t] += comm_penalty[t];
        utilization[t] = job.f_initial / s_overall[t];
      }
    }

    // Step 3: load balancing, within each job (§5.3).
    std::fill(balance_penalty.begin(), balance_penalty.end(), 0.0);
    for (const ModelJob& job : jobs) {
      double s_max = 0.0;
      for (int t = job.first_thread; t < job.first_thread + job.num_threads; ++t) {
        s_max = std::max(s_max, s_overall[t]);
      }
      for (int t = job.first_thread; t < job.first_thread + job.num_threads; ++t) {
        const double pulled = job.l * s_overall[t] + (1.0 - job.l) * s_max;
        balance_penalty[t] = pulled - s_overall[t];
        s_overall[t] = pulled;
        utilization[t] = job.f_initial / s_overall[t];
      }
    }

    // §5.4: bounded by the first iteration's maximal slowdown.
    if (iter == 0) {
      slowdown_ceiling = *std::max_element(s_overall.begin(), s_overall.end());
    } else {
      for (int t = 0; t < n_total; ++t) {
        s_overall[t] = std::clamp(s_overall[t], 1.0, slowdown_ceiling);
        utilization[t] = jobs[threads[t].job].f_initial / s_overall[t];
      }
    }

    double worst_delta = 0.0;
    for (int t = 0; t < n_total; ++t) {
      worst_delta =
          std::max(worst_delta, std::fabs(s_overall[t] - prev[t]) / s_overall[t]);
    }
    final_delta = worst_delta;
    if (iter > 0 && worst_delta < options.convergence_eps) {
      converged = true;
    }
    const bool dampened = !converged && iter + 1 >= options.dampen_after;
    if (trace != nullptr) {
      obs::PredictionIterationTrace iteration_trace;
      iteration_trace.iteration = iterations;
      iteration_trace.max_delta = worst_delta;
      iteration_trace.converged = converged;
      iteration_trace.dampened = dampened;
      iteration_trace.thread_slowdowns = s_overall;
      iteration_trace.thread_bottlenecks = bottleneck;
      trace->iterations.push_back(std::move(iteration_trace));
    }
    if (converged) {
      break;
    }

    for (int t = 0; t < n_total; ++t) {
      double next = jobs[threads[t].job].f_initial * (s_resource[t] / s_overall[t]);
      if (dampened) {
        next = 0.5 * (next + f_start[t]);
      }
      f_start[t] = next;
    }
  }

  if (trace != nullptr) {
    trace->converged = converged || !options.iterate;
    trace->final_delta = final_delta;
  }

  // --- Final per-job predictions (§5.5) ---
  CoSchedulePrediction result;
  result.resource_load = load;
  result.jobs.reserve(jobs.size());
  for (const ModelJob& job : jobs) {
    Prediction prediction;
    prediction.amdahl_speedup = job.amdahl;
    double harmonic = 0.0;
    for (int t = job.first_thread; t < job.first_thread + job.num_threads; ++t) {
      harmonic += 1.0 / s_overall[t];
      ThreadPrediction tp;
      tp.location = threads[t].location;
      tp.resource_slowdown = s_resource[t];
      tp.comm_penalty = comm_penalty[t];
      tp.balance_penalty = balance_penalty[t];
      tp.overall_slowdown = s_overall[t];
      tp.utilization = utilization[t];
      tp.bottleneck = bottleneck[t];
      prediction.threads.push_back(tp);
    }
    prediction.speedup = job.amdahl * harmonic / job.num_threads;
    prediction.time = job.workload->t1 / prediction.speedup;
    prediction.iterations = iterations;
    prediction.converged = converged || !options.iterate;
    prediction.final_delta = final_delta;
    prediction.resource_load = load;
    result.jobs.push_back(std::move(prediction));
  }
  return result;
}

}  // namespace pandia
