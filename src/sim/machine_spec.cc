#include "src/sim/machine_spec.h"

#include "src/util/check.h"

namespace pandia {
namespace sim {

double TurboCurve::Multiplier(int active_cores, int cores_per_socket,
                              bool turbo_enabled) const {
  PANDIA_CHECK(active_cores >= 0 && active_cores <= cores_per_socket);
  if (!turbo_enabled) {
    return 1.0;
  }
  if (active_cores <= 1) {
    return max_single_ghz / nominal_ghz;
  }
  // Turbo bins fall steeply for the first few active cores and then flatten
  // toward the all-core bin (convex, as on real Xeon parts): the boost above
  // the all-core frequency decays as 1/active, scaled to land exactly on
  // max_all_ghz when every core is awake.
  const double fade = static_cast<double>(cores_per_socket - active_cores) /
                      static_cast<double>(cores_per_socket - 1);
  const double ghz =
      max_all_ghz + (max_single_ghz - max_all_ghz) * fade / active_cores;
  return ghz / nominal_ghz;
}

MachineSpec MakeX5_2() {
  MachineSpec spec;
  spec.topo = MachineTopology{.name = "x5-2",
                              .num_sockets = 2,
                              .cores_per_socket = 18,
                              .threads_per_core = 2,
                              .l1_size = 0.032,
                              .l2_size = 0.25,
                              .l3_size = 45.0};
  spec.turbo = TurboCurve{.nominal_ghz = 2.3, .max_single_ghz = 3.6, .max_all_ghz = 2.8};
  spec.core_ops = 9.2;
  spec.smt_combined_factor = 0.90;
  spec.l1_bw = 150.0;
  spec.l2_bw = 64.0;
  spec.l3_port_bw = 30.0;
  spec.l3_agg_bw = 300.0;
  spec.dram_bw = 60.0;
  spec.link_bw = 38.0;
  spec.adaptive_caches = true;
  spec.burst_collision_beta = 1.0;
  spec.smt_pressure = 0.15;
  spec.remote_latency_scale = 1.0;
  return spec;
}

MachineSpec MakeX4_2() {
  MachineSpec spec;
  spec.topo = MachineTopology{.name = "x4-2",
                              .num_sockets = 2,
                              .cores_per_socket = 8,
                              .threads_per_core = 2,
                              .l1_size = 0.032,
                              .l2_size = 0.25,
                              .l3_size = 25.0};
  spec.turbo = TurboCurve{.nominal_ghz = 2.9, .max_single_ghz = 3.6, .max_all_ghz = 3.2};
  spec.core_ops = 8.2;
  spec.smt_combined_factor = 0.89;
  spec.l1_bw = 120.0;
  spec.l2_bw = 52.0;
  spec.l3_port_bw = 26.0;
  spec.l3_agg_bw = 170.0;
  spec.dram_bw = 50.0;
  spec.link_bw = 32.0;
  spec.adaptive_caches = true;
  spec.burst_collision_beta = 1.1;
  spec.smt_pressure = 0.16;
  spec.remote_latency_scale = 1.05;
  return spec;
}

MachineSpec MakeX3_2() {
  MachineSpec spec;
  spec.topo = MachineTopology{.name = "x3-2",
                              .num_sockets = 2,
                              .cores_per_socket = 8,
                              .threads_per_core = 2,
                              .l1_size = 0.032,
                              .l2_size = 0.25,
                              .l3_size = 20.0};
  spec.turbo = TurboCurve{.nominal_ghz = 2.7, .max_single_ghz = 3.5, .max_all_ghz = 3.1};
  spec.core_ops = 7.4;
  spec.smt_combined_factor = 0.88;
  spec.l1_bw = 100.0;
  spec.l2_bw = 45.0;
  spec.l3_port_bw = 23.0;
  spec.l3_agg_bw = 150.0;
  spec.dram_bw = 42.0;
  spec.link_bw = 26.0;
  spec.adaptive_caches = true;
  spec.burst_collision_beta = 1.15;
  spec.smt_pressure = 0.18;
  spec.remote_latency_scale = 1.15;
  return spec;
}

MachineSpec MakeX2_4() {
  MachineSpec spec;
  spec.topo = MachineTopology{.name = "x2-4",
                              .num_sockets = 4,
                              .cores_per_socket = 10,
                              .threads_per_core = 2,
                              .l1_size = 0.032,
                              .l2_size = 0.25,
                              .l3_size = 24.0};
  spec.turbo = TurboCurve{.nominal_ghz = 2.26, .max_single_ghz = 2.66, .max_all_ghz = 2.4};
  spec.core_ops = 5.8;
  spec.smt_combined_factor = 0.86;
  spec.l1_bw = 80.0;
  spec.l2_bw = 36.0;
  spec.l3_port_bw = 18.0;
  spec.l3_agg_bw = 110.0;
  spec.dram_bw = 30.0;
  spec.link_bw = 20.0;
  // Westmere predates adaptive insertion policies (§6.2): sharper cliffs.
  spec.adaptive_caches = false;
  spec.cache_cliff_sharpness = 2.0;
  spec.burst_collision_beta = 1.3;
  spec.smt_pressure = 0.20;
  spec.remote_latency_scale = 1.4;
  return spec;
}

std::vector<std::string> KnownMachineNames() { return {"x5-2", "x4-2", "x3-2", "x2-4"}; }

MachineSpec MachineByName(const std::string& name) {
  if (name == "x5-2") {
    return MakeX5_2();
  }
  if (name == "x4-2") {
    return MakeX4_2();
  }
  if (name == "x3-2") {
    return MakeX3_2();
  }
  if (name == "x2-4") {
    return MakeX2_4();
  }
  PANDIA_CHECK_MSG(false, "unknown machine name");
}

}  // namespace sim
}  // namespace pandia
