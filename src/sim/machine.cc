#include "src/sim/machine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/fair_share.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace pandia {
namespace sim {
namespace {

constexpr double kWorkEps = 1e-9;

// Fraction of traffic at a cache level that spills to the next level when
// the resident working set is `ratio` times the cache size. Adaptive caches
// (§2.2) degrade gradually; older parts fall off a cliff.
double Overflow(double ratio, bool adaptive, double sharpness) {
  if (ratio <= 1.0) {
    return 0.0;
  }
  if (adaptive) {
    return 1.0 - 1.0 / ratio;
  }
  return std::min(0.95, sharpness * (ratio - 1.0));
}

struct SimThread {
  int job = 0;
  ThreadLocation loc;
  bool background = false;
  bool worker = true;       // false: placed but idle (max_active_threads)
  int remote_peers = 0;     // same-job workers on other sockets
  double stall_per_work = 0.0;
  double remaining = 0.0;   // static-mode parallel share left
  bool finished = false;    // static mode: reached the barrier
  double work_done = 0.0;
  double busy_time = 0.0;
};

struct JobMeta {
  const WorkloadSpec* spec = nullptr;
  bool background = false;
  std::vector<bool> active_sockets;
  int home_socket = 0;
  int n_workers = 0;
  double eff_total_work = 0.0;
};

// One contention interval: the fair-share problem for the currently working
// threads plus everything needed to integrate consumption over time.
struct Interval {
  std::vector<int> working;  // indices into the thread array
  FairShareProblem problem;  // parallel arrays with `working`
  FairShareResult solution;
};

class Engine {
 public:
  Engine(const MachineSpec& spec, const ResourceIndex& index,
         std::span<const JobRequest> jobs)
      : spec_(spec), index_(index), jobs_(jobs) {
    Validate();
    BuildThreads();
    BuildTurbo();
  }

  RunResult Execute();

 private:
  void Validate();
  void BuildThreads();
  void BuildTurbo();

  // Builds and solves the contention problem for the given working threads.
  Interval SolveInterval(const std::vector<int>& working) const;

  // Integrates `dt` seconds of the interval into work/busy/consumption.
  void Accumulate(const Interval& interval, double dt);

  double RunSerial();
  double RunParallelStatic();
  double RunParallelDynamic();

  std::vector<int> BackgroundWorkers() const;

  const MachineSpec& spec_;
  const ResourceIndex& index_;
  std::span<const JobRequest> jobs_;

  int foreground_ = -1;
  std::vector<SimThread> threads_;
  std::vector<JobMeta> meta_;
  std::vector<double> socket_freq_;
  // consumption[job][resource]
  std::vector<std::vector<double>> consumption_;
};

void Engine::Validate() {
  PANDIA_CHECK_MSG(!jobs_.empty(), "no jobs");
  const MachineTopology& topo = spec_.topo;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    const JobRequest& job = jobs_[j];
    PANDIA_CHECK(job.spec != nullptr);
    const MachineTopology& placement_topo = job.placement.topology();
    PANDIA_CHECK_MSG(placement_topo.num_sockets == topo.num_sockets &&
                         placement_topo.cores_per_socket == topo.cores_per_socket &&
                         placement_topo.threads_per_core == topo.threads_per_core,
                     "placement topology does not match machine");
    PANDIA_CHECK(job.placement.TotalThreads() > 0);
    if (!job.background) {
      PANDIA_CHECK_MSG(foreground_ < 0, "exactly one foreground job supported");
      foreground_ = static_cast<int>(j);
    }
  }
  PANDIA_CHECK_MSG(foreground_ >= 0, "a foreground job is required");
}

void Engine::BuildThreads() {
  const MachineTopology& topo = spec_.topo;
  meta_.resize(jobs_.size());
  consumption_.assign(jobs_.size(),
                      std::vector<double>(static_cast<size_t>(index_.Count()), 0.0));
  for (size_t j = 0; j < jobs_.size(); ++j) {
    const JobRequest& job = jobs_[j];
    JobMeta& meta = meta_[j];
    meta.spec = job.spec;
    meta.background = job.background;
    meta.active_sockets.assign(static_cast<size_t>(topo.num_sockets), false);
    const std::vector<ThreadLocation> locations = job.placement.ThreadLocations();
    meta.home_socket = job.spec->home_socket >= 0 ? job.spec->home_socket
                                                  : locations.front().socket;
    PANDIA_CHECK(meta.home_socket < topo.num_sockets);
    for (const ThreadLocation& loc : locations) {
      meta.active_sockets[loc.socket] = true;
    }
    const int max_active = job.spec->max_active_threads;
    for (size_t i = 0; i < locations.size(); ++i) {
      SimThread thread;
      thread.job = static_cast<int>(j);
      thread.loc = locations[i];
      thread.background = job.background;
      thread.worker = max_active <= 0 || static_cast<int>(i) < max_active;
      threads_.push_back(thread);
      if (thread.worker) {
        ++meta.n_workers;
      }
    }
    PANDIA_CHECK(meta.n_workers > 0);
  }
  // Remote peers and the resulting communication stall (workers only).
  for (SimThread& thread : threads_) {
    if (!thread.worker) {
      continue;
    }
    for (const SimThread& other : threads_) {
      if (&other != &thread && other.job == thread.job && other.worker &&
          other.loc.socket != thread.loc.socket) {
        ++thread.remote_peers;
      }
    }
    // Saturating peer count: a thread's communication volume is split among
    // its remote peers, so the marginal cost of extra peers falls off.
    const double effective_peers =
        thread.remote_peers /
        (1.0 + thread.remote_peers / spec_.comm_peer_saturation);
    thread.stall_per_work = meta_[thread.job].spec->comm_intensity *
                            spec_.remote_latency_scale * effective_peers;
  }
  // Effective total work (equake-style growth uses the worker count).
  for (JobMeta& meta : meta_) {
    meta.eff_total_work =
        meta.spec->total_work *
        (1.0 + meta.spec->work_growth * std::max(0, meta.n_workers - 1));
  }
}

void Engine::BuildTurbo() {
  const MachineTopology& topo = spec_.topo;
  // Placed threads (even spinning ones) keep their cores out of deep sleep,
  // so the turbo bin is a function of placement alone.
  std::vector<bool> core_awake(static_cast<size_t>(topo.NumCores()), false);
  for (const SimThread& thread : threads_) {
    core_awake[thread.loc.core] = true;
  }
  socket_freq_.resize(static_cast<size_t>(topo.num_sockets));
  for (int s = 0; s < topo.num_sockets; ++s) {
    int awake = 0;
    for (int c = topo.FirstCoreOfSocket(s), i = 0; i < topo.cores_per_socket; ++i, ++c) {
      awake += core_awake[c] ? 1 : 0;
    }
    socket_freq_[s] =
        spec_.turbo.Multiplier(awake, topo.cores_per_socket, spec_.turbo_enabled);
  }
}

Interval Engine::SolveInterval(const std::vector<int>& working) const {
  const MachineTopology& topo = spec_.topo;
  Interval interval;
  interval.working = working;

  // Working-thread census per core / per socket, and distinct working sets.
  std::vector<int> core_count(static_cast<size_t>(topo.NumCores()), 0);
  std::vector<double> core_ws(static_cast<size_t>(topo.NumCores()), 0.0);
  std::vector<double> socket_ws(static_cast<size_t>(topo.num_sockets), 0.0);
  // Distinct working set accounting per (job, core) and (job, socket): the
  // shared fraction is resident once, the private remainder once per thread.
  std::vector<std::vector<int>> job_core(jobs_.size());
  std::vector<std::vector<int>> job_socket(jobs_.size());
  for (size_t j = 0; j < jobs_.size(); ++j) {
    job_core[j].assign(static_cast<size_t>(topo.NumCores()), 0);
    job_socket[j].assign(static_cast<size_t>(topo.num_sockets), 0);
  }
  for (int t : working) {
    const SimThread& thread = threads_[t];
    ++core_count[thread.loc.core];
    ++job_core[thread.job][thread.loc.core];
    ++job_socket[thread.job][thread.loc.socket];
  }
  for (size_t j = 0; j < jobs_.size(); ++j) {
    const WorkloadSpec& sp = *meta_[j].spec;
    if (sp.working_set <= 0.0) {
      continue;
    }
    auto distinct = [&sp](int n) {
      return n == 0 ? 0.0
                    : sp.working_set *
                          (sp.shared_fraction + (1.0 - sp.shared_fraction) * n);
    };
    for (int c = 0; c < topo.NumCores(); ++c) {
      core_ws[c] += distinct(job_core[j][c]);
    }
    for (int s = 0; s < topo.num_sockets; ++s) {
      socket_ws[s] += distinct(job_socket[j][s]);
    }
  }
  std::vector<double> l2_overflow(static_cast<size_t>(topo.NumCores()), 0.0);
  for (int c = 0; c < topo.NumCores(); ++c) {
    l2_overflow[c] = Overflow(core_ws[c] / topo.l2_size, spec_.adaptive_caches,
                              spec_.cache_cliff_sharpness);
  }
  std::vector<double> l3_overflow(static_cast<size_t>(topo.num_sockets), 0.0);
  for (int s = 0; s < topo.num_sockets; ++s) {
    l3_overflow[s] = Overflow(socket_ws[s] / topo.l3_size, spec_.adaptive_caches,
                              spec_.cache_cliff_sharpness);
  }

  // Capacities. Core-clocked resources scale with the socket's turbo bin.
  FairShareProblem& problem = interval.problem;
  problem.capacities.assign(static_cast<size_t>(index_.Count()), 0.0);
  for (int c = 0; c < topo.NumCores(); ++c) {
    const double freq = socket_freq_[topo.SocketOfCore(c)];
    const double smt = core_count[c] > 1 ? spec_.smt_combined_factor : 1.0;
    problem.capacities[index_.Core(c)] = spec_.core_ops * freq * smt;
    problem.capacities[index_.L1(c)] = spec_.l1_bw * freq;
    problem.capacities[index_.L2(c)] = spec_.l2_bw * freq;
    problem.capacities[index_.L3Port(c)] = spec_.l3_port_bw;
  }
  // DRAM requesters per memory node: threads with any DRAM traffic count
  // toward every node their policy routes them to.
  std::vector<int> dram_requesters(static_cast<size_t>(topo.num_sockets), 0);
  for (int t : working) {
    const SimThread& thread = threads_[t];
    const WorkloadSpec& sp = *meta_[thread.job].spec;
    if (sp.dram_bpw > 0.0 || sp.working_set > 0.0) {
      const std::vector<double> weights =
          MemoryNodeWeights(sp.memory_policy, topo.num_sockets,
                            meta_[thread.job].active_sockets, thread.loc.socket,
                            meta_[thread.job].home_socket);
      for (int m = 0; m < topo.num_sockets; ++m) {
        if (weights[m] > 0.0) {
          ++dram_requesters[m];
        }
      }
    }
  }
  // L3 requesters: working threads on the socket with L3 traffic.
  std::vector<int> l3_requesters(static_cast<size_t>(topo.num_sockets), 0);
  for (int t : working) {
    const SimThread& thread = threads_[t];
    const WorkloadSpec& sp = *meta_[thread.job].spec;
    if (sp.l3_bpw > 0.0 || sp.l2_bpw > 0.0) {
      ++l3_requesters[thread.loc.socket];
    }
  }
  for (int s = 0; s < topo.num_sockets; ++s) {
    // Both the sliced L3 and the DRAM banks run closer to peak with more
    // concurrent requesters.
    const double l3_req = std::max(1, l3_requesters[s]);
    problem.capacities[index_.L3Agg(s)] =
        spec_.l3_agg_bw * l3_req / (l3_req + spec_.dram_mlp_k);
    const double requesters = std::max(1, dram_requesters[s]);
    problem.capacities[index_.Dram(s)] =
        spec_.dram_bw * requesters / (requesters + spec_.dram_mlp_k);
  }
  for (int a = 0; a < topo.num_sockets; ++a) {
    for (int b = a + 1; b < topo.num_sockets; ++b) {
      problem.capacities[index_.Link(a, b)] = spec_.link_bw;
    }
  }

  // Per-thread demands and rate caps.
  problem.demands.resize(working.size());
  problem.rate_caps.resize(working.size());
  for (size_t i = 0; i < working.size(); ++i) {
    const SimThread& thread = threads_[working[i]];
    const WorkloadSpec& sp = *meta_[thread.job].spec;
    const int core = thread.loc.core;
    const int socket = thread.loc.socket;
    std::vector<ResourceDemand>& demands = problem.demands[i];

    // SMT burst collisions inflate the effective core demand when several
    // bursty threads are resident on one core.
    const double burst = 1.0 + spec_.burst_collision_beta * (1.0 - sp.duty_cycle) *
                                   (core_count[core] - 1);
    demands.push_back({index_.Core(core), sp.ops_per_work * burst});
    if (sp.l1_bpw > 0.0) {
      demands.push_back({index_.L1(core), sp.l1_bpw});
    }
    if (sp.l2_bpw > 0.0) {
      demands.push_back({index_.L2(core), sp.l2_bpw});
    }
    const double l3_eff =
        sp.l3_bpw + spec_.l2_spill_fraction * l2_overflow[core] * sp.l2_bpw;
    if (l3_eff > 0.0) {
      demands.push_back({index_.L3Port(core), l3_eff});
      demands.push_back({index_.L3Agg(socket), l3_eff});
    }
    const double dram_eff = sp.dram_bpw + l3_overflow[socket] * l3_eff;
    double remote_fraction = 0.0;
    {
      const std::vector<double> weights =
          MemoryNodeWeights(sp.memory_policy, topo.num_sockets,
                            meta_[thread.job].active_sockets, socket,
                            meta_[thread.job].home_socket);
      for (int m = 0; m < topo.num_sockets; ++m) {
        if (m != socket) {
          remote_fraction += weights[m];
        }
        if (weights[m] <= 0.0 || dram_eff <= 0.0) {
          continue;
        }
        demands.push_back({index_.Dram(m), dram_eff * weights[m]});
        if (m != socket) {
          demands.push_back({index_.Link(socket, m), dram_eff * weights[m]});
        }
      }
    }
    if (sp.comm_bytes_per_work > 0.0) {
      // Coherence traffic to each socket hosting working same-job peers,
      // with the same per-peer saturation as the latency cost.
      int remote_working = 0;
      for (int m = 0; m < topo.num_sockets; ++m) {
        if (m != socket) {
          remote_working += job_socket[thread.job][m];
        }
      }
      const double peer_scale =
          1.0 / (1.0 + remote_working / spec_.comm_peer_saturation);
      for (int m = 0; m < topo.num_sockets; ++m) {
        if (m != socket && job_socket[thread.job][m] > 0) {
          demands.push_back({index_.Link(socket, m),
                             sp.comm_bytes_per_work * peer_scale *
                                 job_socket[thread.job][m]});
        }
      }
    }

    // Rate cap: the uncontended rate, degraded by communication stalls. A
    // single thread only reaches single_thread_ipc of the core's issue
    // capacity (ILP limit), which is the headroom SMT exploits.
    double uncontended = std::numeric_limits<double>::infinity();
    for (const ResourceDemand& d : demands) {
      if (d.amount > 0.0) {
        double capacity = problem.capacities[d.resource];
        if (index_.KindOf(d.resource) == ResourceKind::kCore) {
          capacity *= sp.single_thread_ipc;
        }
        uncontended = std::min(uncontended, capacity / d.amount);
      }
    }
    PANDIA_CHECK(std::isfinite(uncontended));
    // Sharing the core divides the achievable rate regardless of which
    // resource the thread is bound on (front-end partitioning, halved MLP).
    uncontended /= 1.0 + spec_.smt_pressure * (core_count[core] - 1);
    const double memory_stall =
        sp.remote_access_cost * spec_.remote_latency_scale * remote_fraction;
    problem.rate_caps[i] =
        1.0 / (1.0 / uncontended + thread.stall_per_work + memory_stall);
  }

  interval.solution = SolveMaxMinFairShare(problem);
  return interval;
}

void Engine::Accumulate(const Interval& interval, double dt) {
  if (dt <= 0.0) {
    return;
  }
  for (size_t i = 0; i < interval.working.size(); ++i) {
    SimThread& thread = threads_[interval.working[i]];
    const double rate = interval.solution.rates[i];
    thread.work_done += rate * dt;
    thread.busy_time += dt;
    std::vector<double>& used = consumption_[thread.job];
    for (const ResourceDemand& d : interval.problem.demands[i]) {
      used[d.resource] += d.amount * rate * dt;
    }
  }
}

std::vector<int> Engine::BackgroundWorkers() const {
  std::vector<int> workers;
  for (size_t t = 0; t < threads_.size(); ++t) {
    if (threads_[t].background && threads_[t].worker) {
      workers.push_back(static_cast<int>(t));
    }
  }
  return workers;
}

double Engine::RunSerial() {
  const JobMeta& meta = meta_[foreground_];
  const double serial_work =
      (1.0 - meta.spec->parallel_fraction) * meta.eff_total_work;
  if (serial_work <= kWorkEps) {
    return 0.0;
  }
  const std::vector<int> background = BackgroundWorkers();
  const double share = serial_work / meta.n_workers;
  double elapsed = 0.0;
  // Critical sections rotate over the workers; each executes its share with
  // only the background jobs contending.
  for (size_t t = 0; t < threads_.size(); ++t) {
    const SimThread& thread = threads_[t];
    if (thread.background || !thread.worker) {
      continue;
    }
    std::vector<int> working = background;
    working.push_back(static_cast<int>(t));
    Interval interval = SolveInterval(working);
    const double rate = interval.solution.rates.back();
    PANDIA_CHECK(rate > 0.0);
    const double dt = share / rate;
    Accumulate(interval, dt);
    elapsed += dt;
  }
  return elapsed;
}

double Engine::RunParallelStatic() {
  const JobMeta& meta = meta_[foreground_];
  const double parallel_work = meta.spec->parallel_fraction * meta.eff_total_work;
  if (parallel_work <= kWorkEps) {
    return 0.0;
  }
  // Static distribution: equal shares, or — when the parallel loop has a
  // finite number of indivisible iterations (§6.4) — a ceil/floor split of
  // the quanta, which is what makes scaling discontinuous.
  std::vector<int> pending;
  int worker_rank = 0;
  for (size_t t = 0; t < threads_.size(); ++t) {
    SimThread& thread = threads_[t];
    if (thread.background || !thread.worker) {
      continue;
    }
    if (meta.spec->parallel_quanta > 0) {
      const int quanta = meta.spec->parallel_quanta;
      const int base = quanta / meta.n_workers;
      const int extra = worker_rank < quanta % meta.n_workers ? 1 : 0;
      thread.remaining = (base + extra) * (parallel_work / quanta);
    } else {
      thread.remaining = parallel_work / meta.n_workers;
    }
    ++worker_rank;
    if (thread.remaining > kWorkEps) {
      pending.push_back(static_cast<int>(t));
    }
  }
  PANDIA_CHECK(!pending.empty());
  const std::vector<int> background = BackgroundWorkers();
  double elapsed = 0.0;
  // Event loop: rates are constant between completions; each event retires
  // at least one thread, so there are at most n_workers rounds (and in
  // practice as many rounds as there are distinct thread classes).
  while (!pending.empty()) {
    std::vector<int> working = background;
    working.insert(working.end(), pending.begin(), pending.end());
    Interval interval = SolveInterval(working);
    double dt = std::numeric_limits<double>::infinity();
    for (size_t i = background.size(); i < working.size(); ++i) {
      const double rate = interval.solution.rates[i];
      PANDIA_CHECK(rate > 0.0);
      dt = std::min(dt, threads_[working[i]].remaining / rate);
    }
    Accumulate(interval, dt);
    elapsed += dt;
    std::vector<int> still_pending;
    for (size_t i = background.size(); i < working.size(); ++i) {
      SimThread& thread = threads_[working[i]];
      thread.remaining -= interval.solution.rates[i] * dt;
      if (thread.remaining > kWorkEps * parallel_work / meta.n_workers) {
        still_pending.push_back(working[i]);
      } else {
        thread.remaining = 0.0;
        thread.finished = true;
      }
    }
    pending = std::move(still_pending);
  }
  return elapsed;
}

double Engine::RunParallelDynamic() {
  const JobMeta& meta = meta_[foreground_];
  const double parallel_work = meta.spec->parallel_fraction * meta.eff_total_work;
  if (parallel_work <= kWorkEps) {
    return 0.0;
  }
  std::vector<int> workers;
  for (size_t t = 0; t < threads_.size(); ++t) {
    if (!threads_[t].background && threads_[t].worker) {
      workers.push_back(static_cast<int>(t));
    }
  }
  const std::vector<int> background = BackgroundWorkers();
  std::vector<int> working = background;
  working.insert(working.end(), workers.begin(), workers.end());
  Interval interval = SolveInterval(working);
  double aggregate = 0.0;
  double slowest = std::numeric_limits<double>::infinity();
  int slowest_thread = workers.front();
  for (size_t i = background.size(); i < working.size(); ++i) {
    const double rate = interval.solution.rates[i];
    PANDIA_CHECK(rate > 0.0);
    aggregate += rate;
    if (rate < slowest) {
      slowest = rate;
      slowest_thread = working[i];
    }
  }
  // The pool drains at the aggregate rate; the final chunk leaves the
  // slowest thread running alone (work-stealing tail).
  const double chunk = std::min(meta.spec->chunk_fraction * parallel_work,
                                parallel_work / meta.n_workers);
  const double main_time = (parallel_work - chunk) / aggregate;
  Accumulate(interval, main_time);
  double elapsed = main_time;
  if (chunk > kWorkEps) {
    std::vector<int> tail = background;
    tail.push_back(slowest_thread);
    Interval tail_interval = SolveInterval(tail);
    const double tail_rate = tail_interval.solution.rates.back();
    PANDIA_CHECK(tail_rate > 0.0);
    const double dt = chunk / tail_rate;
    Accumulate(tail_interval, dt);
    elapsed += dt;
  }
  return elapsed;
}

RunResult Engine::Execute() {
  const double serial_time = RunSerial();
  const double parallel_time =
      meta_[foreground_].spec->balance == BalanceMode::kStatic
          ? RunParallelStatic()
          : RunParallelDynamic();
  double wall = serial_time + parallel_time;
  PANDIA_CHECK(wall > 0.0);

  // Deterministic measurement jitter, keyed on the run configuration.
  uint64_t key = spec_.noise_seed;
  key = HashCombine(key, std::hash<std::string>{}(spec_.topo.name));
  for (const JobRequest& job : jobs_) {
    key = HashCombine(key, std::hash<std::string>{}(job.spec->name));
    for (uint8_t count : job.placement.PerCore()) {
      key = HashCombine(key, count);
    }
  }
  Rng rng(key);
  const double scale = 1.0 + rng.NextJitter(spec_.noise_magnitude);
  wall *= scale;

  RunResult result;
  result.wall_time = wall;
  result.socket_frequency = socket_freq_;
  result.jobs.resize(jobs_.size());
  size_t thread_cursor = 0;
  for (size_t j = 0; j < jobs_.size(); ++j) {
    JobResult& job_result = result.jobs[j];
    job_result.completion_time = wall;
    job_result.resource_consumption = std::move(consumption_[j]);
    const size_t placed = static_cast<size_t>(jobs_[j].placement.TotalThreads());
    for (size_t i = 0; i < placed; ++i) {
      const SimThread& thread = threads_[thread_cursor + i];
      job_result.threads.push_back(
          ThreadResult{thread.loc, thread.work_done, thread.busy_time * scale});
    }
    thread_cursor += placed;
  }
  return result;
}

// Deterministic run key shared by the intrinsic measurement jitter and the
// fault plan: a pure function of the run configuration plus the caller's
// nonce, so faults are reproducible and order-independent.
uint64_t RunKey(uint64_t seed, const MachineSpec& spec,
                std::span<const JobRequest> jobs, uint64_t nonce) {
  uint64_t key = HashCombine(seed, nonce);
  key = HashCombine(key, std::hash<std::string>{}(spec.topo.name));
  for (const JobRequest& job : jobs) {
    key = HashCombine(key, std::hash<std::string>{}(job.spec->name));
    for (uint8_t count : job.placement.PerCore()) {
      key = HashCombine(key, count);
    }
  }
  return key;
}

// Applies the fault plan to a completed run. Draw order is fixed (failure,
// time, then counters job-major) so each knob perturbs independently of the
// others' settings only through the shared stream position.
void ApplyFaults(const FaultPlan& plan, const MachineSpec& spec,
                 std::span<const JobRequest> jobs, uint64_t nonce,
                 RunResult& result) {
  static obs::Counter& failed_runs =
      obs::MetricsRegistry::Global().counter("sim.fault.failed_runs");
  static obs::Counter& jittered_runs =
      obs::MetricsRegistry::Global().counter("sim.fault.jittered_runs");
  static obs::Counter& dropped_counters =
      obs::MetricsRegistry::Global().counter("sim.fault.dropped_counters");
  static obs::Counter& corrupted_counters =
      obs::MetricsRegistry::Global().counter("sim.fault.corrupted_counters");

  Rng rng(RunKey(plan.seed, spec, jobs, nonce));
  if (plan.run_failure > 0.0 && rng.NextDouble() < plan.run_failure) {
    result.failed = true;
    result.failure_reason = "injected run failure (crashed/evicted benchmark)";
    failed_runs.Increment();
    return;
  }
  if (plan.time_jitter > 0.0) {
    const double scale = 1.0 + rng.NextJitter(plan.time_jitter);
    result.wall_time *= scale;
    for (JobResult& job : result.jobs) {
      job.completion_time *= scale;
      for (ThreadResult& thread : job.threads) {
        thread.busy_time *= scale;
      }
    }
    jittered_runs.Increment();
  }
  if (plan.counter_dropout > 0.0 || plan.counter_corrupt > 0.0) {
    for (JobResult& job : result.jobs) {
      for (double& value : job.resource_consumption) {
        const double draw = rng.NextDouble();
        if (draw < plan.counter_dropout) {
          if (value != 0.0) {
            dropped_counters.Increment();
          }
          value = 0.0;
        } else if (draw < plan.counter_dropout + plan.counter_corrupt) {
          if (value != 0.0) {
            corrupted_counters.Increment();
          }
          value *= 1.0 + rng.NextJitter(0.75);
        }
      }
    }
  }
}

}  // namespace

Machine::Machine(MachineSpec spec) : spec_(std::move(spec)), index_(spec_.topo) {}

RunResult Machine::Run(std::span<const JobRequest> jobs, uint64_t fault_nonce) const {
  const obs::TraceSpan span("sim.run", static_cast<int64_t>(jobs.size()));
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("sim.runs");
  static obs::Counter& jobs_run = obs::MetricsRegistry::Global().counter("sim.jobs");
  runs.Increment();
  jobs_run.Increment(jobs.size());
  Engine engine(spec_, index_, jobs);
  RunResult result = engine.Execute();
  if (fault_plan_.active()) {
    ApplyFaults(fault_plan_, spec_, jobs, fault_nonce, result);
  }
  return result;
}

RunResult Machine::RunOne(const WorkloadSpec& workload, const Placement& placement) const {
  const JobRequest request{&workload, placement, /*background=*/false};
  return Run(std::span<const JobRequest>(&request, 1));
}

}  // namespace sim
}  // namespace pandia
