#include "src/sim/fair_share.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace pandia {
namespace sim {
namespace {

constexpr double kRelEps = 1e-12;

}  // namespace

FairShareResult SolveMaxMinFairShare(const FairShareProblem& problem) {
  const size_t num_threads = problem.demands.size();
  const size_t num_resources = problem.capacities.size();
  PANDIA_CHECK(problem.rate_caps.size() == num_threads);
  for (double cap : problem.capacities) {
    PANDIA_CHECK_MSG(cap > 0.0, "resource capacity must be positive");
  }

  FairShareResult result;
  result.rates.assign(num_threads, 0.0);
  result.resource_usage.assign(num_resources, 0.0);
  if (num_threads == 0) {
    return result;
  }

  std::vector<bool> frozen(num_threads, false);
  // Aggregate demand of unfrozen threads on each resource.
  std::vector<double> active_demand(num_resources, 0.0);
  size_t unfrozen = 0;
  for (size_t t = 0; t < num_threads; ++t) {
    PANDIA_CHECK_MSG(problem.rate_caps[t] > 0.0, "rate cap must be positive");
    // Threads with no demands are only bounded by their cap.
    for (const ResourceDemand& d : problem.demands[t]) {
      PANDIA_CHECK(d.resource >= 0 && static_cast<size_t>(d.resource) < num_resources);
      PANDIA_CHECK(d.amount >= 0.0);
      active_demand[d.resource] += d.amount;
    }
    ++unfrozen;
  }

  while (unfrozen > 0) {
    // Largest uniform rate increase before a resource saturates or a thread
    // hits its cap.
    double delta = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < num_threads; ++t) {
      if (!frozen[t]) {
        delta = std::min(delta, problem.rate_caps[t] - result.rates[t]);
      }
    }
    for (size_t r = 0; r < num_resources; ++r) {
      if (active_demand[r] > kRelEps * problem.capacities[r] + 0.0 &&
          active_demand[r] > 0.0) {
        const double slack = problem.capacities[r] - result.resource_usage[r];
        delta = std::min(delta, slack / active_demand[r]);
      }
    }
    delta = std::max(delta, 0.0);

    for (size_t t = 0; t < num_threads; ++t) {
      if (!frozen[t]) {
        result.rates[t] += delta;
      }
    }
    for (size_t r = 0; r < num_resources; ++r) {
      result.resource_usage[r] += delta * active_demand[r];
    }

    // Freeze threads that hit their cap or use a saturated resource.
    std::vector<bool> saturated(num_resources, false);
    for (size_t r = 0; r < num_resources; ++r) {
      saturated[r] = result.resource_usage[r] >=
                     problem.capacities[r] * (1.0 - kRelEps) - kRelEps;
    }
    size_t newly_frozen = 0;
    for (size_t t = 0; t < num_threads; ++t) {
      if (frozen[t]) {
        continue;
      }
      bool freeze = result.rates[t] >= problem.rate_caps[t] * (1.0 - kRelEps);
      if (!freeze) {
        for (const ResourceDemand& d : problem.demands[t]) {
          if (d.amount > 0.0 && saturated[d.resource]) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        frozen[t] = true;
        ++newly_frozen;
        --unfrozen;
        for (const ResourceDemand& d : problem.demands[t]) {
          active_demand[d.resource] -= d.amount;
        }
      }
    }
    // Progressive filling must retire at least one thread per round; if
    // numerics ever stall, freeze everything rather than spin.
    if (newly_frozen == 0) {
      break;
    }
  }
  return result;
}

}  // namespace sim
}  // namespace pandia
