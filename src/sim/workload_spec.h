// Ground-truth workload description for the simulator.
//
// A WorkloadSpec stands in for a benchmark binary: it defines behaviour the
// real benchmark would exhibit on hardware. Pandia's profiler must never
// read these fields — it observes the workload only through run times and
// the counter facade, exactly as the paper observes NPB/OMP/join binaries.
// The single exception is `memory_policy`, which is run configuration
// (numactl) rather than a hidden property.
#ifndef PANDIA_SRC_SIM_WORKLOAD_SPEC_H_
#define PANDIA_SRC_SIM_WORKLOAD_SPEC_H_

#include <string>

#include "src/topology/memory_policy.h"

namespace pandia {
namespace sim {

// How the parallel section distributes work between threads.
enum class BalanceMode {
  kStatic,   // equal per-thread shares, barrier at the end (OpenMP static)
  kDynamic,  // shared pool, threads pull chunks (work stealing / guided)
};

struct WorkloadSpec {
  std::string name;

  // Total useful work in abstract units (one unit = ops_per_work
  // instructions). Constant regardless of thread count, per the paper's
  // workload assumptions (§2.3) — except see work_growth.
  double total_work = 1000.0;

  // Fraction of the work that can run in parallel (Amdahl p). The serial
  // remainder is executed in critical sections spread over all threads.
  double parallel_fraction = 0.99;

  BalanceMode balance = BalanceMode::kStatic;
  // Dynamic mode: chunk size as a fraction of the parallel work. Small
  // chunks give near-perfect balancing; large chunks behave like static
  // distribution with a tail.
  double chunk_fraction = 0.01;

  // Fraction of a core's issue capacity that a single thread of this
  // workload can exploit (ILP limit). Values below 1 leave headroom that a
  // second SMT thread on the core can use.
  double single_thread_ipc = 1.0;

  // Resource demands per work unit.
  double ops_per_work = 1.0;  // instructions
  double l1_bpw = 8.0;        // bytes to the private L1
  double l2_bpw = 2.0;        // bytes to the private L2
  double l3_bpw = 1.0;        // bytes to the shared L3
  double dram_bpw = 0.5;      // bytes to memory (routed per memory_policy)

  // Cache footprint: per-thread working set (MiB-like units, matching
  // MachineTopology cache sizes) and the fraction of it shared between
  // threads. Drives L2->L3 and L3->DRAM overflow when co-located threads
  // outgrow a cache.
  double working_set = 0.0;
  double shared_fraction = 0.0;

  // Cross-socket communication. comm_intensity is the per-remote-peer
  // latency cost (relative time units, the ground truth behind the paper's
  // o_s); comm_bytes_per_work is the interconnect traffic per work unit per
  // remote peer.
  double comm_intensity = 0.0;
  double comm_bytes_per_work = 0.0;

  // Remote-memory latency: extra stall seconds per work unit when every
  // access is to a remote node, scaled by the fraction of the thread's DRAM
  // traffic that is remote under the memory policy. Captures the NUMA
  // latency cost that the paper folds into o_s (§2.3, §4.3).
  double remote_access_cost = 0.0;

  // Duty cycle in (0, 1]: 1.0 = perfectly smooth demand; smaller values
  // issue the same average demand in bursts, which collide when threads
  // share a core (ground truth behind the paper's burstiness b).
  double duty_cycle = 1.0;

  MemoryPolicy memory_policy = MemoryPolicy::kInterleaveActive;
  // For MemoryPolicy::kHomeSocket: the socket holding the data. -1 = the
  // socket of the job's first thread. Lets stressors generate pure
  // cross-socket traffic regardless of where their threads run.
  int home_socket = -1;

  // Violations of the paper's assumptions, for the §6.3/§6.4 limit studies:
  // equake-style work growth, total_work * (1 + work_growth * (n - 1)) ...
  double work_growth = 0.0;
  // ... NPO-1T-style capped parallelism: threads beyond this many idle
  // after initialization (0 = unlimited) ...
  int max_active_threads = 0;
  // ... and discontinuous scaling (§6.4, BT with its smallest dataset): the
  // parallel loop has only this many indivisible iterations before a
  // barrier, so with n threads some receive ceil(quanta/n) iterations and
  // performance plateaus between divisors. 0 = effectively infinite
  // fine-grained parallelism. Only meaningful with BalanceMode::kStatic;
  // dynamic schedulers redistribute iterations, so their granularity is
  // expressed via chunk_fraction instead.
  int parallel_quanta = 0;
};

}  // namespace sim
}  // namespace pandia

#endif  // PANDIA_SRC_SIM_WORKLOAD_SPEC_H_
