// Ground-truth machine model used by the simulator.
//
// This is the simulated hardware: true capacities, the Turbo-Boost frequency
// curve, SMT behaviour, cache-overflow sharpness, and measurement noise.
// Pandia never reads this struct — it measures the machine through stress
// runs (src/machine_desc) exactly as the paper does on real hardware.
//
// Units are abstract but consistent (paper §3, Figure 3): instruction rates
// in Gops/s-like units, bandwidths in GB/s-like units, cache sizes in
// MiB-like units.
#ifndef PANDIA_SRC_SIM_MACHINE_SPEC_H_
#define PANDIA_SRC_SIM_MACHINE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/topology.h"

namespace pandia {
namespace sim {

// Per-socket frequency as a function of how many of the socket's cores are
// awake. Mirrors Intel Turbo Boost (paper §6.3, Figure 14): the highest bin
// applies with one active core, decaying linearly to the all-core turbo
// frequency; with turbo disabled the chip runs at nominal frequency, which is
// *below* the all-core turbo frequency.
struct TurboCurve {
  double nominal_ghz = 2.3;     // frequency with Turbo Boost disabled
  double max_single_ghz = 3.6;  // one active core on the socket
  double max_all_ghz = 2.8;     // every core on the socket active

  // Frequency multiplier relative to nominal for a socket with
  // `active_cores` of `cores_per_socket` cores awake.
  double Multiplier(int active_cores, int cores_per_socket, bool turbo_enabled) const;
};

struct MachineSpec {
  MachineTopology topo;
  TurboCurve turbo;
  bool turbo_enabled = true;

  // Capacities at nominal frequency. Core-clocked resources (core issue
  // capacity and the private L1/L2 links) scale with the turbo multiplier;
  // L3, DRAM, and the interconnect run on fixed clocks.
  double core_ops = 8.0;              // per core
  double smt_combined_factor = 0.98;  // peak core throughput with 2 resident threads,
                                      // relative to 1 (front-end sharing loss)
  double l1_bw = 150.0;               // per core
  double l2_bw = 64.0;                // per core
  double l3_port_bw = 30.0;           // per core into the shared L3
  double l3_agg_bw = 320.0;           // per socket, aggregate L3 bandwidth
  double dram_bw = 60.0;              // per socket memory channel
  double link_bw = 38.0;              // per interconnect link (both directions summed)

  // Cache-capacity overflow behaviour. Adaptive caches (§2.2, Qureshi et al.)
  // overflow gradually; older parts (Westmere X2-4) fall off a cliff.
  bool adaptive_caches = true;
  double cache_cliff_sharpness = 2.0;  // only used when !adaptive_caches
  // Fraction of a thread's L2 traffic that turns into L3 traffic when the
  // co-resident working sets outgrow the L2: only the reuse component
  // re-misses; the streaming component already missed.
  double l2_spill_fraction = 0.4;

  // Bank-level parallelism: with r threads issuing misses to a channel, the
  // channel sustains dram_bw * r / (r + dram_mlp_k) — more requesters keep
  // more banks busy, which is why SMT helps even saturated workloads.
  double dram_mlp_k = 1.0;

  // SMT burst-collision severity: how strongly bursty co-resident threads
  // inflate each other's effective core demand (ground truth behind the
  // paper's core-burstiness factor b).
  double burst_collision_beta = 1.0;

  // Generic SMT sibling pressure: sharing a core statically partitions
  // front-end queues and halves per-thread MLP, so each co-resident working
  // thread divides a thread's achievable rate by (1 + smt_pressure),
  // whatever resource it is bound on.
  double smt_pressure = 0.3;

  // Cross-socket latency scale: multiplies a workload's comm_intensity to
  // give the per-remote-peer rate penalty. Bigger machines with slower
  // interconnects have larger values.
  double remote_latency_scale = 1.0;

  // A thread's total communication volume is roughly constant, so the
  // per-peer cost saturates: peers are charged peers/(1 + peers/k) with
  // k = comm_peer_saturation (linear for few peers, bounded at many).
  double comm_peer_saturation = 8.0;

  // Relative magnitude of deterministic measurement jitter on run times.
  double noise_magnitude = 0.01;
  uint64_t noise_seed = 0x50414e444941ULL;  // "PANDIA"
};

// The four machines of the paper's evaluation (§6.1–6.2).
MachineSpec MakeX5_2();  // 2-socket Haswell,      2 x 18 cores, 72 HW threads
MachineSpec MakeX4_2();  // 2-socket Ivy Bridge,   2 x 8 cores,  32 HW threads
MachineSpec MakeX3_2();  // 2-socket Sandy Bridge, 2 x 8 cores,  32 HW threads
MachineSpec MakeX2_4();  // 4-socket Westmere,     4 x 10 cores, 80 HW threads

// Looks up a machine by name ("x5-2", "x4-2", "x3-2", "x2-4"); aborts on an
// unknown name. CLI front-ends should check KnownMachineNames() first.
MachineSpec MachineByName(const std::string& name);

// The machines this build can simulate.
std::vector<std::string> KnownMachineNames();

}  // namespace sim
}  // namespace pandia

#endif  // PANDIA_SRC_SIM_MACHINE_SPEC_H_
