// Seeded, deterministic fault injection for simulated runs.
//
// Real measurement pipelines are noisy: run times jitter with interrupts and
// frequency transitions, individual performance counters drop samples or
// return garbage, and whole benchmark runs crash or get evicted. A FaultPlan
// makes the simulator reproduce those failure modes on demand so the robust
// profiling layer (src/workload_desc) can be tested against them.
//
// Every perturbation is a pure function of (plan seed, caller nonce, run
// configuration), so a faulted run is exactly reproducible and independent
// of the order runs execute in. All faults are off by default: a
// default-constructed plan leaves Machine::Run byte-identical to a build
// without this header.
#ifndef PANDIA_SRC_SIM_FAULT_PLAN_H_
#define PANDIA_SRC_SIM_FAULT_PLAN_H_

#include <cstdint>

namespace pandia {
namespace sim {

struct FaultPlan {
  bool enabled = false;
  uint64_t seed = 1;

  // Extra multiplicative jitter on the measured wall time, applied on top of
  // the machine's intrinsic deterministic jitter: time scales by
  // 1 + U where U is triangular in [-time_jitter, +time_jitter].
  double time_jitter = 0.0;

  // Probability that each individual resource-consumption counter value is
  // dropped (reads zero, as a perf counter that lost its slot does).
  double counter_dropout = 0.0;

  // Probability that each counter value is corrupted instead: scaled by a
  // factor in [0.25, 1.75] (sampling error, multiplexing misattribution).
  double counter_corrupt = 0.0;

  // Probability that the whole run fails (crashed or evicted benchmark).
  // Failed runs return RunResult::failed == true; consumers must retry.
  double run_failure = 0.0;

  // The documented default fault model used by tests and the CI smoke run:
  // 3% time jitter, 5% counter dropout, 1-in-20 run failure.
  static FaultPlan Defaults(uint64_t seed) {
    FaultPlan plan;
    plan.enabled = true;
    plan.seed = seed;
    plan.time_jitter = 0.03;
    plan.counter_dropout = 0.05;
    plan.run_failure = 0.05;
    return plan;
  }

  bool active() const {
    return enabled && (time_jitter > 0.0 || counter_dropout > 0.0 ||
                       counter_corrupt > 0.0 || run_failure > 0.0);
  }
};

}  // namespace sim
}  // namespace pandia

#endif  // PANDIA_SRC_SIM_FAULT_PLAN_H_
