// Max-min fair rate allocation over a capacitated resource network.
//
// Each thread demands a fixed amount of every resource on its path per unit
// of progress; resources have finite capacities; threads may additionally
// carry an individual rate cap (e.g. from communication stalls). The solver
// computes the classic max-min-fair allocation by progressive filling: all
// unfrozen rates grow at the same speed until a resource saturates (freezing
// every thread that uses it) or a thread hits its cap.
//
// This is the simulator's ground-truth contention model. Pandia's predictor
// approximates the same physics with the paper's single-bottleneck
// oversubscription factor.
#ifndef PANDIA_SRC_SIM_FAIR_SHARE_H_
#define PANDIA_SRC_SIM_FAIR_SHARE_H_

#include <vector>

namespace pandia {
namespace sim {

struct ResourceDemand {
  int resource = 0;
  double amount = 0.0;  // consumption per unit of thread progress rate
};

struct FairShareProblem {
  std::vector<double> capacities;                     // per resource, > 0
  std::vector<std::vector<ResourceDemand>> demands;   // per thread, sparse
  std::vector<double> rate_caps;                      // per thread, > 0, finite
};

struct FairShareResult {
  std::vector<double> rates;           // per thread
  std::vector<double> resource_usage;  // per resource
};

FairShareResult SolveMaxMinFairShare(const FairShareProblem& problem);

}  // namespace sim
}  // namespace pandia

#endif  // PANDIA_SRC_SIM_FAIR_SHARE_H_
