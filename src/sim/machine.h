// The simulated machine: executes workloads under explicit thread placements
// and reports times plus resource-consumption counters.
//
// This module stands in for the paper's physical Xeons. A run consists of
// one foreground job (the workload being timed) and any number of background
// jobs (stress applications / background fillers, which run for the whole
// duration of the foreground job). Execution is modeled as:
//
//   * a serial section ((1-p) of the work) executed by one thread at a time
//     in critical sections spread over all threads (paper §2.3),
//   * a parallel section executed under the workload's balancing mode:
//     equal static shares with an end barrier, or a dynamic chunk pool,
//   * contention resolved by max-min fair sharing over the resource network,
//     with Turbo-Boost frequency scaling, SMT burst collisions,
//     cache-capacity overflow, NUMA traffic routing, and per-thread
//     communication stalls,
//   * deterministic measurement jitter applied to the final time.
#ifndef PANDIA_SRC_SIM_MACHINE_H_
#define PANDIA_SRC_SIM_MACHINE_H_

#include <span>
#include <string>
#include <vector>

#include "src/sim/fault_plan.h"
#include "src/sim/machine_spec.h"
#include "src/topology/resource_index.h"
#include "src/sim/workload_spec.h"
#include "src/topology/placement.h"

namespace pandia {
namespace sim {

struct JobRequest {
  const WorkloadSpec* spec = nullptr;
  Placement placement;
  // Background jobs (stressors) run for as long as the foreground job and
  // have no completion time of their own.
  bool background = false;
};

struct ThreadResult {
  ThreadLocation location;
  double work_done = 0.0;
  double busy_time = 0.0;
};

struct JobResult {
  // Foreground: time to completion (== wall_time). Background: wall_time.
  double completion_time = 0.0;
  std::vector<ThreadResult> threads;
  // Integrated consumption per resource (ResourceIndex order): bytes for
  // bandwidth resources, instructions for cores. This is what the counter
  // facade exposes.
  std::vector<double> resource_consumption;
};

struct RunResult {
  double wall_time = 0.0;
  std::vector<JobResult> jobs;  // same order as the request span
  // Frequency multiplier each socket ran at (fixed per run: placed threads
  // keep their cores awake, so the turbo bin is a function of placement).
  std::vector<double> socket_frequency;
  // Fault injection (src/sim/fault_plan.h): true when the run was made to
  // fail (crashed/evicted benchmark). A failed run's times and counters are
  // meaningless; robust consumers retry with a fresh nonce.
  bool failed = false;
  std::string failure_reason;
};

class Machine {
 public:
  explicit Machine(MachineSpec spec);

  const MachineTopology& topology() const { return spec_.topo; }
  const ResourceIndex& index() const { return index_; }

  // Ground truth — used by benches/tests for calibration, never by the
  // Pandia pipeline (machine_desc / workload_desc / predictor).
  const MachineSpec& spec() const { return spec_; }

  // Executes the given jobs. Exactly one job must be foreground; every
  // placement must belong to this machine's topology. `fault_nonce`
  // distinguishes otherwise-identical runs (profiling trials, retry
  // attempts) under an active fault plan; with faults off it is ignored, so
  // existing callers are byte-identical to the pre-fault-injection build.
  RunResult Run(std::span<const JobRequest> jobs, uint64_t fault_nonce = 0) const;

  // Convenience wrapper for a solo foreground run.
  RunResult RunOne(const WorkloadSpec& spec, const Placement& placement) const;

  // Fault injection. The plan applies to every subsequent Run; configure it
  // before sharing the machine across threads (Run only reads it).
  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }
  const FaultPlan& fault_plan() const { return fault_plan_; }

 private:
  MachineSpec spec_;
  ResourceIndex index_;
  FaultPlan fault_plan_;
};

}  // namespace sim
}  // namespace pandia

#endif  // PANDIA_SRC_SIM_MACHINE_H_
