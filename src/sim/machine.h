// The simulated machine: executes workloads under explicit thread placements
// and reports times plus resource-consumption counters.
//
// This module stands in for the paper's physical Xeons. A run consists of
// one foreground job (the workload being timed) and any number of background
// jobs (stress applications / background fillers, which run for the whole
// duration of the foreground job). Execution is modeled as:
//
//   * a serial section ((1-p) of the work) executed by one thread at a time
//     in critical sections spread over all threads (paper §2.3),
//   * a parallel section executed under the workload's balancing mode:
//     equal static shares with an end barrier, or a dynamic chunk pool,
//   * contention resolved by max-min fair sharing over the resource network,
//     with Turbo-Boost frequency scaling, SMT burst collisions,
//     cache-capacity overflow, NUMA traffic routing, and per-thread
//     communication stalls,
//   * deterministic measurement jitter applied to the final time.
#ifndef PANDIA_SRC_SIM_MACHINE_H_
#define PANDIA_SRC_SIM_MACHINE_H_

#include <span>
#include <vector>

#include "src/sim/machine_spec.h"
#include "src/topology/resource_index.h"
#include "src/sim/workload_spec.h"
#include "src/topology/placement.h"

namespace pandia {
namespace sim {

struct JobRequest {
  const WorkloadSpec* spec = nullptr;
  Placement placement;
  // Background jobs (stressors) run for as long as the foreground job and
  // have no completion time of their own.
  bool background = false;
};

struct ThreadResult {
  ThreadLocation location;
  double work_done = 0.0;
  double busy_time = 0.0;
};

struct JobResult {
  // Foreground: time to completion (== wall_time). Background: wall_time.
  double completion_time = 0.0;
  std::vector<ThreadResult> threads;
  // Integrated consumption per resource (ResourceIndex order): bytes for
  // bandwidth resources, instructions for cores. This is what the counter
  // facade exposes.
  std::vector<double> resource_consumption;
};

struct RunResult {
  double wall_time = 0.0;
  std::vector<JobResult> jobs;  // same order as the request span
  // Frequency multiplier each socket ran at (fixed per run: placed threads
  // keep their cores awake, so the turbo bin is a function of placement).
  std::vector<double> socket_frequency;
};

class Machine {
 public:
  explicit Machine(MachineSpec spec);

  const MachineTopology& topology() const { return spec_.topo; }
  const ResourceIndex& index() const { return index_; }

  // Ground truth — used by benches/tests for calibration, never by the
  // Pandia pipeline (machine_desc / workload_desc / predictor).
  const MachineSpec& spec() const { return spec_; }

  // Executes the given jobs. Exactly one job must be foreground; every
  // placement must belong to this machine's topology.
  RunResult Run(std::span<const JobRequest> jobs) const;

  // Convenience wrapper for a solo foreground run.
  RunResult RunOne(const WorkloadSpec& spec, const Placement& placement) const;

 private:
  MachineSpec spec_;
  ResourceIndex index_;
};

}  // namespace sim
}  // namespace pandia

#endif  // PANDIA_SRC_SIM_MACHINE_H_
