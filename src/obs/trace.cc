#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "src/util/strings.h"

namespace pandia {
namespace obs {
namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer()
    : epoch_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {
  id_ = g_next_tracer_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns_;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  // Per-thread cache keyed by tracer id: ids are never reused, so an entry
  // for a destroyed tracer can dangle but never match again.
  struct CacheEntry {
    uint64_t tracer_id;
    ThreadBuffer* buffer;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.tracer_id == id_) {
      return *entry.buffer;
    }
  }
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* buffer = owned.get();
  {
    util::MutexLock lock(mu_);
    buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
    buffers_.push_back(std::move(owned));
  }
  cache.push_back({id_, buffer});
  return *buffer;
}

void Tracer::Clear() {
  util::MutexLock lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    util::MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> Tracer::Events() const {
  util::MutexLock lock(mu_);
  std::vector<TraceEvent> events;
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    util::MutexLock buffer_lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  return events;
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrFormat(
        "\n{\"name\":\"%s\",\"cat\":\"pandia\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u",
        JsonEscape(event.name).c_str(), static_cast<double>(event.start_ns) / 1e3,
        static_cast<double>(event.dur_ns) / 1e3, event.tid);
    if (event.arg != kNoArg) {
      out += StrFormat(",\"args\":{\"n\":%lld}", static_cast<long long>(event.arg));
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Table Tracer::SummaryTable() const {
  struct Agg {
    uint64_t count = 0;
    int64_t total_ns = 0;
    int64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& event : Events()) {
    Agg& agg = by_name[event.name];
    ++agg.count;
    agg.total_ns += event.dur_ns;
    agg.max_ns = std::max(agg.max_ns, event.dur_ns);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  Table table({"span", "count", "total_ms", "mean_us", "max_us"});
  for (const auto& [name, agg] : rows) {
    table.AddRow(
        {name, StrFormat("%llu", static_cast<unsigned long long>(agg.count)),
         StrFormat("%.3f", static_cast<double>(agg.total_ns) / 1e6),
         StrFormat("%.2f", static_cast<double>(agg.total_ns) / 1e3 /
                               static_cast<double>(agg.count)),
         StrFormat("%.2f", static_cast<double>(agg.max_ns) / 1e3)});
  }
  return table;
}

TraceSpan::TraceSpan(Tracer& tracer, std::string_view name, int64_t arg) {
  if (!tracer.enabled()) {
    return;
  }
  tracer_ = &tracer;
  buffer_ = &tracer.LocalBuffer();
  name_ = std::string(name);
  start_ns_ = tracer.NowNs();
  depth_ = buffer_->open_depth++;
  arg_ = arg;
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) {
    return;
  }
  const int64_t end_ns = tracer_->NowNs();
  --buffer_->open_depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.start_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  event.depth = depth_;
  event.tid = buffer_->tid;
  event.arg = arg_;
  util::MutexLock lock(buffer_->mu);
  buffer_->events.push_back(std::move(event));
}

}  // namespace obs
}  // namespace pandia
