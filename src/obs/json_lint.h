// Minimal dependency-free JSON syntax checker.
//
// Used by tools/pandia_trace_check and the obs tests to validate that the
// tracer's Chrome trace_event output is well-formed JSON. This is a strict
// recursive-descent validator (RFC 8259 grammar: objects, arrays, strings
// with escapes, numbers, true/false/null), not a parser — it builds no DOM
// and allocates nothing beyond the call stack.
#ifndef PANDIA_SRC_OBS_JSON_LINT_H_
#define PANDIA_SRC_OBS_JSON_LINT_H_

#include <string>
#include <string_view>

namespace pandia {
namespace obs {

// Returns true when `text` is exactly one valid JSON value (plus optional
// surrounding whitespace). On failure, fills `*error` (if non-null) with a
// byte offset and reason.
bool LintJson(std::string_view text, std::string* error = nullptr);

}  // namespace obs
}  // namespace pandia

#endif  // PANDIA_SRC_OBS_JSON_LINT_H_
