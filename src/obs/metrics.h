// Thread-safe metrics registry for the Pandia pipeline.
//
// Instruments (counters, gauges, fixed-bucket histograms) are registered by
// name; registration takes a mutex once, but the hot paths — Counter::Add,
// Gauge::Set, Histogram::Observe — are single relaxed atomic operations and
// safe from any thread. Instrument references stay valid for the life of the
// registry (Reset zeroes values without invalidating references), so call
// sites typically cache them in a function-local static:
//
//   static obs::Counter& predictions =
//       obs::MetricsRegistry::Global().counter("predictor.predictions");
//   predictions.Increment();
//
// Snapshot() copies every instrument into plain values; RenderTable() turns
// a snapshot into a util/table Table (one row per counter/gauge, one row per
// histogram bucket plus count/sum/mean) for text or CSV output.
#ifndef PANDIA_SRC_OBS_METRICS_H_
#define PANDIA_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/table.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace obs {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram over fixed upper-bound buckets. `bounds` must be strictly
// increasing; an implicit +inf bucket catches everything above the last
// bound. Observe() is one atomic add on the bucket counter plus atomic
// accumulation of count and sum (sum via a compare-exchange loop, the only
// portable atomic double addition).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_counts() has bounds().size() + 1 entries; the last is the +inf
  // overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Estimated q-quantile (q in [0, 1]); see HistogramPercentile.
  double Percentile(double q) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Estimated q-quantile of a bucketed distribution: finds the bucket holding
// the q-th observation and linearly interpolates within it (Prometheus
// histogram_quantile semantics). `buckets` has bounds.size() + 1 entries,
// the last being the +inf overflow bucket. The first bucket interpolates
// from 0 (or from its own bound when that is <= 0, since latencies have no
// negative mass); a quantile landing in the overflow bucket clamps to the
// last finite bound — the histogram cannot resolve beyond it. q is clamped
// to [0, 1]; an empty histogram reports 0. Also the math behind
// Histogram::Percentile, exposed standalone so snapshot consumers (METRICS
// clients like pandia_top) can compute quantiles from exported buckets.
double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q);

// `count` strictly increasing bucket bounds starting at `start` and growing
// by `factor` per bucket (start > 0, factor > 1, count >= 1) — the standard
// shape for latency histograms, where resolution should follow magnitude:
// ExponentialBounds(100, 2, 10) = {100, 200, 400, ..., 51200}.
std::vector<double> ExponentialBounds(double start, double factor, int count);

// A point-in-time copy of every instrument, in name order.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 entries
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry used by the pipeline instrumentation.
  static MetricsRegistry& Global();

  // Returns the instrument registered under `name`, creating it on first
  // use. Re-registering a histogram ignores the new bounds. Registering the
  // same name as two different instrument kinds aborts. The returned
  // reference outlives the registration lock — instruments are heap-owned
  // and never destroyed before the registry.
  Counter& counter(std::string_view name) PANDIA_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) PANDIA_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      PANDIA_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const PANDIA_EXCLUDES(mu_);
  // Zeroes every instrument; references stay valid.
  void Reset() PANDIA_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable util::Mutex mu_{"obs.metrics", util::kLockRankObsMetrics};
  std::map<std::string, Entry, std::less<>> entries_ PANDIA_GUARDED_BY(mu_);
};

// One row per counter ("counter"), gauge ("gauge"), and histogram line
// ("histogram", rows name{le=BOUND} plus name.count / name.sum / name.mean).
// Columns: metric, type, value.
Table RenderTable(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace pandia

#endif  // PANDIA_SRC_OBS_METRICS_H_
