// Structured, leveled, thread-safe event log for long-running processes
// (the serving daemon foremost). Events are a site, a level, a message, and
// ordered key=value fields, rendered as one line per event:
//
//   [12.345678] W serve.journal append failed path=/tmp/j.wire errno=28
//
// Design points:
//   - The disabled path costs one relaxed atomic load: Log() compares the
//     event level against min_level_ before touching anything else, so a
//     Debug event under the default Info threshold is effectively free
//     (same discipline as obs::Tracer's disabled spans).
//   - Per-site rate limiting: each site (a stable string literal naming the
//     call site, e.g. "serve.rollback") may emit at most `burst` events per
//     `window`; further events in the window are dropped and accounted, and
//     the first event of the next window reports `suppressed=N`. A hot
//     error path can therefore log unconditionally without flooding.
//   - Sinks: stderr by default; OpenFileSink() tees every event to a file.
//     Sink writes happen under the log mutex — events from concurrent
//     threads never interleave mid-line.
//
// Field values are escaped with the same backslash scheme as the wire
// format (\\ \n \r \t and \s for space) so one event is always one line and
// values round-trip — but obs implements it locally: this layer must not
// depend on src/serialize.
#ifndef PANDIA_SRC_OBS_LOG_H_
#define PANDIA_SRC_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pandia {
namespace obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Single-character tag used in rendered lines: D, I, W, E.
char LogLevelTag(LogLevel level);

// One key=value field; values are escaped at render time.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  // Without this overload a string-literal value would prefer the pointer
  // -> bool standard conversion over string_view and render as "true".
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, int64_t v);
  LogField(std::string_view k, uint64_t v);
  LogField(std::string_view k, int v) : LogField(k, static_cast<int64_t>(v)) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false") {}
};

class EventLog {
 public:
  EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  // Process-wide log used by library instrumentation.
  static EventLog& Global();

  // Events below `level` are dropped on the relaxed-load fast path.
  void SetMinLevel(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  // Emits one event. `site` should be a stable dotted name for the call
  // site (it keys the rate limiter); `message` is free text without
  // newlines; `fields` render in order after the message.
  void Log(LogLevel level, std::string_view site, std::string_view message,
           std::vector<LogField> fields = {}) PANDIA_EXCLUDES(mu_);

  // Rate limiting: at most `burst` events per site per `window_ns` window
  // (defaults: 10 events per second). burst <= 0 disables limiting.
  void SetRateLimit(int burst, int64_t window_ns) PANDIA_EXCLUDES(mu_);

  // Tees events to `path` (truncating) in addition to stderr. Returns false
  // (and logs an error) when the file cannot be opened.
  bool OpenFileSink(const std::string& path) PANDIA_EXCLUDES(mu_);
  void CloseFileSink() PANDIA_EXCLUDES(mu_);

  // Redirects the primary sink (tests). nullptr restores stderr.
  void SetStream(std::FILE* stream) PANDIA_EXCLUDES(mu_);

  // Events dropped by the rate limiter since construction.
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  struct SiteState {
    int64_t window_start_ns = 0;
    int emitted_in_window = 0;
    uint64_t suppressed_in_window = 0;
  };

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<uint64_t> suppressed_{0};
  mutable util::Mutex mu_{"obs.log", util::kLockRankObsLog};
  std::FILE* stream_ PANDIA_GUARDED_BY(mu_) = nullptr;  // nullptr => stderr
  std::FILE* file_sink_ PANDIA_GUARDED_BY(mu_) = nullptr;
  int burst_ PANDIA_GUARDED_BY(mu_) = 10;
  int64_t window_ns_ PANDIA_GUARDED_BY(mu_) = 1000000000;
  int64_t start_ns_ PANDIA_GUARDED_BY(mu_) = 0;
  std::map<std::string, SiteState, std::less<>> sites_ PANDIA_GUARDED_BY(mu_);
};

// Renders one event line without the timestamp prefix — the deterministic
// part, exposed for tests: "W site message key=value key=value".
std::string FormatLogLine(LogLevel level, std::string_view site,
                          std::string_view message,
                          const std::vector<LogField>& fields);

}  // namespace obs
}  // namespace pandia

#endif  // PANDIA_SRC_OBS_LOG_H_
