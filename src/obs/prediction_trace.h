// Convergence introspection for the iterative predictor (§5.4).
//
// The fixed-point solver in predictor/co_schedule.cc is opaque from the
// outside: Prediction reports only the iteration count and a converged bit.
// Attaching a PredictionTrace via PredictionOptions::trace records the full
// per-iteration state — every thread's overall slowdown and bottleneck
// resource, the worst relative change against the previous iteration, and
// whether the dampening function was engaged for the next update — so
// oscillation, slow convergence, and dampening behaviour become visible.
//
// The trace is cleared at the start of every Predict call that carries it;
// for co-scheduled predictions the thread vectors cover all jobs' threads in
// request order (the same order the engine iterates).
#ifndef PANDIA_SRC_OBS_PREDICTION_TRACE_H_
#define PANDIA_SRC_OBS_PREDICTION_TRACE_H_

#include <string>
#include <vector>

namespace pandia {
namespace obs {

struct PredictionIterationTrace {
  int iteration = 0;      // 1-based, matches Prediction::iterations
  double max_delta = 0.0; // worst relative slowdown change vs previous iteration
  bool converged = false; // this iteration met the convergence threshold
  bool dampened = false;  // the utilization update after this iteration was dampened
  std::vector<double> thread_slowdowns;  // per-thread overall slowdown
  std::vector<int> thread_bottlenecks;   // per-thread binding ResourceIndex (-1: none)
};

struct PredictionTrace {
  std::vector<PredictionIterationTrace> iterations;
  bool converged = false;
  double final_delta = 0.0;  // max_delta of the last iteration

  void Clear();

  // One line per iteration: iteration, max delta, slowdown spread
  // (min/mean/max), modal bottleneck index, dampening flag. Suitable for the
  // bench convergence-dump mode and for debugging oscillating workloads.
  std::string Summary() const;
};

}  // namespace obs
}  // namespace pandia

#endif  // PANDIA_SRC_OBS_PREDICTION_TRACE_H_
