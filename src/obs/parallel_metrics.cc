#include "src/obs/parallel_metrics.h"

#include "src/obs/metrics.h"
#include "src/util/parallel.h"

namespace pandia {
namespace obs {
namespace {

class RegistryObserver : public util::ParallelObserver {
 public:
  RegistryObserver()
      : tasks_submitted_(MetricsRegistry::Global().counter("parallel.tasks_submitted")),
        tasks_completed_(MetricsRegistry::Global().counter("parallel.tasks_completed")),
        queue_high_water_(MetricsRegistry::Global().gauge("parallel.queue_high_water")),
        fanouts_(MetricsRegistry::Global().counter("parallel.fanouts")),
        serial_runs_(MetricsRegistry::Global().counter("parallel.serial_runs")),
        items_(MetricsRegistry::Global().counter("parallel.items")),
        chunks_(MetricsRegistry::Global().counter("parallel.chunks")) {}

  void OnTaskSubmitted(size_t queue_depth) override {
    tasks_submitted_.Increment();
    // Racy max is fine for a high-water gauge: a lost update can only
    // under-report by one transient depth reading.
    if (static_cast<double>(queue_depth) > queue_high_water_.value()) {
      queue_high_water_.Set(static_cast<double>(queue_depth));
    }
  }

  void OnTaskCompleted() override { tasks_completed_.Increment(); }

  void OnParallelFor(size_t n, int chunks) override {
    items_.Increment(n);
    if (chunks <= 1) {
      serial_runs_.Increment();
    } else {
      fanouts_.Increment();
      chunks_.Increment(static_cast<uint64_t>(chunks));
    }
  }

 private:
  Counter& tasks_submitted_;
  Counter& tasks_completed_;
  Gauge& queue_high_water_;
  Counter& fanouts_;
  Counter& serial_runs_;
  Counter& items_;
  Counter& chunks_;
};

}  // namespace

void InstallParallelMetrics() {
  // Magic-static initialization gives the once-only guarantee without
  // std::call_once (and its <mutex> include, which pandia_lint reserves for
  // src/util/mutex.h).
  [[maybe_unused]] static const bool installed = [] {
    static RegistryObserver* observer = new RegistryObserver;
    util::SetParallelObserver(observer);
    return true;
  }();
}

}  // namespace obs
}  // namespace pandia
