// Bridges src/util/parallel activity into the metrics registry.
//
// util::ThreadPool cannot link the registry directly (obs depends on util),
// so it exposes an observer hook; InstallParallelMetrics() plugs a registry-
// backed observer into it. Instruments:
//
//   parallel.tasks_submitted   counter — tasks enqueued on any pool
//   parallel.tasks_completed   counter — tasks a worker finished
//   parallel.queue_high_water  gauge   — deepest queue seen since install
//   parallel.fanouts           counter — ParallelFor calls that fanned out
//   parallel.serial_runs       counter — ParallelFor calls that ran serially
//   parallel.items             counter — total items across all calls
//   parallel.chunks            counter — total chunks across fanned-out calls
#ifndef PANDIA_SRC_OBS_PARALLEL_METRICS_H_
#define PANDIA_SRC_OBS_PARALLEL_METRICS_H_

namespace pandia {
namespace obs {

// Installs the registry-backed observer. Idempotent and thread-safe; every
// parallel entry point (optimizer, eval sweeps, tools) calls it lazily.
void InstallParallelMetrics();

}  // namespace obs
}  // namespace pandia

#endif  // PANDIA_SRC_OBS_PARALLEL_METRICS_H_
