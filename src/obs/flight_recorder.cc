#include "src/obs/flight_recorder.h"

#include <chrono>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {
namespace obs {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) : ring_(capacity) {
  PANDIA_CHECK_MSG(capacity >= 1, "flight recorder needs capacity >= 1");
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder(256);
  return *recorder;
}

void FlightRecorder::Record(std::string_view kind, std::string_view detail,
                            bool ok) {
  const int64_t now = NowNs();
  util::MutexLock lock(mu_);
  FlightEvent& slot = ring_[next_];
  slot.seq = ++recorded_;
  slot.timestamp_ns = now;
  slot.kind.assign(kind.data(), kind.size());
  slot.detail.assign(detail.data(), detail.size());
  slot.ok = ok;
  next_ = (next_ + 1) % ring_.size();
}

std::vector<FlightEvent> FlightRecorder::Dump() const {
  util::MutexLock lock(mu_);
  std::vector<FlightEvent> events;
  events.reserve(ring_.size());
  // Oldest first: the slot at next_ (when valid) is the oldest survivor.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const FlightEvent& event = ring_[(next_ + i) % ring_.size()];
    if (event.seq > 0) {
      events.push_back(event);
    }
  }
  return events;
}

uint64_t FlightRecorder::recorded() const {
  util::MutexLock lock(mu_);
  return recorded_;
}

uint64_t FlightRecorder::dropped() const {
  util::MutexLock lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void FlightRecorder::Clear() {
  util::MutexLock lock(mu_);
  for (FlightEvent& slot : ring_) {
    slot = FlightEvent{};
  }
  next_ = 0;
  recorded_ = 0;
}

std::string FormatFlightEvent(const FlightEvent& event, int64_t origin_ns) {
  const double t =
      static_cast<double>(event.timestamp_ns - origin_ns) * 1e-9;
  return StrFormat("seq=%llu t=%.6f %s %s %s",
                   static_cast<unsigned long long>(event.seq), t,
                   event.kind.c_str(), event.detail.c_str(),
                   event.ok ? "ok" : "err");
}

}  // namespace obs
}  // namespace pandia
