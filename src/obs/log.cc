#include "src/obs/log.h"

#include <chrono>

#include "src/util/strings.h"

namespace pandia {
namespace obs {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Local copy of the wire escaping scheme (obs must not depend on
// src/serialize): backslash, newline, carriage return, tab, and space.
void AppendEscaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case ' ':
        out += "\\s";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

char LogLevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

LogField::LogField(std::string_view k, double v)
    : key(k), value(StrFormat("%.6g", v)) {}
LogField::LogField(std::string_view k, int64_t v)
    : key(k), value(StrFormat("%lld", static_cast<long long>(v))) {}
LogField::LogField(std::string_view k, uint64_t v)
    : key(k), value(StrFormat("%llu", static_cast<unsigned long long>(v))) {}

EventLog::EventLog() {
  util::MutexLock lock(mu_);
  start_ns_ = NowNs();
}

EventLog::~EventLog() { CloseFileSink(); }

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog;
  return *log;
}

std::string FormatLogLine(LogLevel level, std::string_view site,
                          std::string_view message,
                          const std::vector<LogField>& fields) {
  std::string line;
  line += LogLevelTag(level);
  line += ' ';
  line.append(site.data(), site.size());
  line += ' ';
  line.append(message.data(), message.size());
  for (const LogField& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    AppendEscaped(line, field.value);
  }
  return line;
}

void EventLog::Log(LogLevel level, std::string_view site,
                   std::string_view message, std::vector<LogField> fields) {
  if (!Enabled(level)) {
    return;
  }
  const int64_t now = NowNs();
  util::MutexLock lock(mu_);
  SiteState& state = sites_.try_emplace(std::string(site)).first->second;
  uint64_t suppressed_note = 0;
  if (burst_ > 0) {
    if (now - state.window_start_ns >= window_ns_) {
      suppressed_note = state.suppressed_in_window;
      state.window_start_ns = now;
      state.emitted_in_window = 0;
      state.suppressed_in_window = 0;
    }
    if (state.emitted_in_window >= burst_) {
      ++state.suppressed_in_window;
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++state.emitted_in_window;
  }
  if (suppressed_note > 0) {
    fields.emplace_back("suppressed", suppressed_note);
  }
  const double elapsed_s = static_cast<double>(now - start_ns_) * 1e-9;
  const std::string line = FormatLogLine(level, site, message, fields);
  std::FILE* primary = stream_ != nullptr ? stream_ : stderr;
  std::fprintf(primary, "[%.6f] %s\n", elapsed_s, line.c_str());
  std::fflush(primary);
  if (file_sink_ != nullptr) {
    std::fprintf(file_sink_, "[%.6f] %s\n", elapsed_s, line.c_str());
    std::fflush(file_sink_);
  }
}

void EventLog::SetRateLimit(int burst, int64_t window_ns) {
  util::MutexLock lock(mu_);
  burst_ = burst;
  window_ns_ = window_ns > 0 ? window_ns : 1;
  sites_.clear();
}

bool EventLog::OpenFileSink(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  util::MutexLock lock(mu_);
  if (file_sink_ != nullptr) {
    std::fclose(file_sink_);
    file_sink_ = nullptr;
  }
  if (file == nullptr) {
    return false;
  }
  file_sink_ = file;
  return true;
}

void EventLog::CloseFileSink() {
  util::MutexLock lock(mu_);
  if (file_sink_ != nullptr) {
    std::fclose(file_sink_);
    file_sink_ = nullptr;
  }
}

void EventLog::SetStream(std::FILE* stream) {
  util::MutexLock lock(mu_);
  stream_ = stream;
}

}  // namespace obs
}  // namespace pandia
