#include "src/obs/metrics.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PANDIA_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  PANDIA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                       std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                           bounds_.end(),
                   "histogram bounds must be strictly increasing");
}

void Histogram::Observe(double v) {
  // Values land in the first bucket whose upper bound admits them (v <=
  // bound), Prometheus-style; anything above the last bound goes to +inf.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Percentile(double q) const {
  return HistogramPercentile(bounds_, bucket_counts(), q);
}

double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q) {
  PANDIA_CHECK_MSG(buckets.size() == bounds.size() + 1,
                   "bucket counts must cover every bound plus +inf");
  q = std::max(0.0, std::min(1.0, q));
  uint64_t total = 0;
  for (const uint64_t b : buckets) {
    total += b;
  }
  if (total == 0) {
    return 0.0;
  }
  // Rank of the target observation, 1-based; q=0 asks for the first.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const uint64_t below = cumulative;
    cumulative += buckets[i];
    if (rank > static_cast<double>(cumulative)) {
      continue;
    }
    if (i == bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return bounds.back();
    }
    const double upper = bounds[i];
    double lower = i == 0 ? 0.0 : bounds[i - 1];
    if (lower >= upper) {
      lower = upper;  // first bound <= 0: the bucket has no usable width
    }
    const double fraction =
        (rank - static_cast<double>(below)) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds.back();
}

std::vector<double> ExponentialBounds(double start, double factor, int count) {
  PANDIA_CHECK_MSG(start > 0.0 && factor > 1.0 && count >= 1,
                   "ExponentialBounds needs start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kCounter, std::make_unique<Counter>(), nullptr, nullptr};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PANDIA_CHECK_MSG(it->second.kind == Kind::kCounter,
                   "metric registered as a different kind");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kGauge, nullptr, std::make_unique<Gauge>(), nullptr};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PANDIA_CHECK_MSG(it->second.kind == Kind::kGauge,
                   "metric registered as a different kind");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kHistogram, nullptr, nullptr,
                std::make_unique<Histogram>(std::move(bounds))};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PANDIA_CHECK_MSG(it->second.kind == Kind::kHistogram,
                   "metric registered as a different kind");
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.counters.push_back({name, entry.counter->value()});
        break;
      case Kind::kGauge:
        snapshot.gauges.push_back({name, entry.gauge->value()});
        break;
      case Kind::kHistogram:
        snapshot.histograms.push_back({name, entry.histogram->bounds(),
                                       entry.histogram->bucket_counts(),
                                       entry.histogram->count(),
                                       entry.histogram->sum()});
        break;
    }
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

Table RenderTable(const MetricsSnapshot& snapshot) {
  Table table({"metric", "type", "value"});
  for (const MetricsSnapshot::CounterValue& c : snapshot.counters) {
    table.AddRow({c.name, "counter", StrFormat("%llu",
                                               static_cast<unsigned long long>(c.value))});
  }
  for (const MetricsSnapshot::GaugeValue& g : snapshot.gauges) {
    table.AddRow({g.name, "gauge", StrFormat("%.6g", g.value)});
  }
  for (const MetricsSnapshot::HistogramValue& h : snapshot.histograms) {
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      const std::string label =
          i < h.bounds.size() ? StrFormat("%s{le=%.6g}", h.name.c_str(), h.bounds[i])
                              : StrFormat("%s{le=+inf}", h.name.c_str());
      table.AddRow({label, "histogram",
                    StrFormat("%llu", static_cast<unsigned long long>(h.buckets[i]))});
    }
    table.AddRow({h.name + ".count", "histogram",
                  StrFormat("%llu", static_cast<unsigned long long>(h.count))});
    table.AddRow({h.name + ".sum", "histogram", StrFormat("%.6g", h.sum)});
    table.AddRow({h.name + ".mean", "histogram",
                  StrFormat("%.6g", h.count > 0 ? h.sum / static_cast<double>(h.count)
                                                : 0.0)});
  }
  return table;
}

}  // namespace obs
}  // namespace pandia
