#include "src/obs/metrics.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace pandia {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PANDIA_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  PANDIA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                       std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                           bounds_.end(),
                   "histogram bounds must be strictly increasing");
}

void Histogram::Observe(double v) {
  // Values land in the first bucket whose upper bound admits them (v <=
  // bound), Prometheus-style; anything above the last bound goes to +inf.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kCounter, std::make_unique<Counter>(), nullptr, nullptr};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PANDIA_CHECK_MSG(it->second.kind == Kind::kCounter,
                   "metric registered as a different kind");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kGauge, nullptr, std::make_unique<Gauge>(), nullptr};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PANDIA_CHECK_MSG(it->second.kind == Kind::kGauge,
                   "metric registered as a different kind");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry{Kind::kHistogram, nullptr, nullptr,
                std::make_unique<Histogram>(std::move(bounds))};
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  PANDIA_CHECK_MSG(it->second.kind == Kind::kHistogram,
                   "metric registered as a different kind");
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.counters.push_back({name, entry.counter->value()});
        break;
      case Kind::kGauge:
        snapshot.gauges.push_back({name, entry.gauge->value()});
        break;
      case Kind::kHistogram:
        snapshot.histograms.push_back({name, entry.histogram->bounds(),
                                       entry.histogram->bucket_counts(),
                                       entry.histogram->count(),
                                       entry.histogram->sum()});
        break;
    }
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

Table RenderTable(const MetricsSnapshot& snapshot) {
  Table table({"metric", "type", "value"});
  for (const MetricsSnapshot::CounterValue& c : snapshot.counters) {
    table.AddRow({c.name, "counter", StrFormat("%llu",
                                               static_cast<unsigned long long>(c.value))});
  }
  for (const MetricsSnapshot::GaugeValue& g : snapshot.gauges) {
    table.AddRow({g.name, "gauge", StrFormat("%.6g", g.value)});
  }
  for (const MetricsSnapshot::HistogramValue& h : snapshot.histograms) {
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      const std::string label =
          i < h.bounds.size() ? StrFormat("%s{le=%.6g}", h.name.c_str(), h.bounds[i])
                              : StrFormat("%s{le=+inf}", h.name.c_str());
      table.AddRow({label, "histogram",
                    StrFormat("%llu", static_cast<unsigned long long>(h.buckets[i]))});
    }
    table.AddRow({h.name + ".count", "histogram",
                  StrFormat("%llu", static_cast<unsigned long long>(h.count))});
    table.AddRow({h.name + ".sum", "histogram", StrFormat("%.6g", h.sum)});
    table.AddRow({h.name + ".mean", "histogram",
                  StrFormat("%.6g", h.count > 0 ? h.sum / static_cast<double>(h.count)
                                                : 0.0)});
  }
  return table;
}

}  // namespace obs
}  // namespace pandia
