#include "src/obs/json_lint.h"

#include <cctype>

#include "src/util/strings.h"

namespace pandia {
namespace obs {
namespace {

class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWhitespace();
    if (!Value()) {
      if (error != nullptr) {
        *error = StrFormat("offset %zu: %s", pos_, reason_.c_str());
      }
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = StrFormat("offset %zu: trailing content after JSON value", pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* reason) {
    if (reason_.empty()) {
      reason_ = reason;
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool Value() {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      if (!String()) {
        return false;
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      if (!Value()) {
        return false;
      }
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!Value()) {
        return false;
      }
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return Fail("unterminated escape");
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("invalid \\u escape");
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("invalid escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string reason_;
};

}  // namespace

bool LintJson(std::string_view text, std::string* error) {
  return Linter(text).Run(error);
}

}  // namespace obs
}  // namespace pandia
